#include "rdma/rdma.hpp"

#include <cassert>
#include <cstring>

#include "common/log.hpp"

namespace rvma::rdma {

namespace {
constexpr std::uint32_t kind_of(Op op) {
  return net::make_kind(nic::kProtoRdma, op);
}
}  // namespace

RdmaEndpoint::RdmaEndpoint(nic::Nic& nic, const RdmaParams& params,
                           net::Pid pid)
    : nic_(nic), engine_(nic.engine()), params_(params), pid_(pid) {
  nic_.register_proto(
      nic::kProtoRdma,
      [this](const net::Packet& pkt) { handle_packet(pkt); }, pid_);
}

Time RdmaEndpoint::registration_cost(std::uint64_t size) const {
  const double kib = static_cast<double>(size) / 1024.0;
  return params_.reg_base + ns(params_.reg_ns_per_kib * kib);
}

void RdmaEndpoint::register_region(std::span<std::byte> mem, std::uint64_t size,
                                   std::function<void(std::uint64_t)> done) {
  if (!mem.empty()) size = mem.size();
  const std::uint64_t addr = next_region_addr_;
  next_region_addr_ += (size + 0xfff) & ~std::uint64_t{0xfff};
  regions_[addr] = Region{mem, size, 0, {}};
  ++stats_.regions_registered;
  engine_.schedule(registration_cost(size),
                   [addr, done = std::move(done)] { done(addr); });
}

void RdmaEndpoint::serve_buffer_requests(RegionAllocator alloc,
                                         RegionObserver observer) {
  allocator_ = std::move(alloc);
  region_observer_ = std::move(observer);
}

void RdmaEndpoint::arm_last_byte_poll(
    std::uint64_t addr, std::uint64_t expected,
    std::function<void(Time, std::uint64_t)> done) {
  auto it = regions_.find(addr);
  assert(it != regions_.end() && "arming poll on unknown region");
  assert(expected > 0);
  it->second.polls.push_back(ArmedPoll{expected - 1, std::move(done)});
}

void RdmaEndpoint::post_recv(std::function<void(const Completion&)> done) {
  if (!recv_cq_.empty()) {
    Completion entry = recv_cq_.front();
    recv_cq_.pop_front();
    // Entry already in host memory; pay only the poll cost.
    engine_.schedule(params_.cq_poll,
                     [entry, done = std::move(done)] { done(entry); });
    return;
  }
  recv_waiters_.push_back(std::move(done));
}

std::uint64_t RdmaEndpoint::region_bytes_received(std::uint64_t addr) const {
  const auto it = regions_.find(addr);
  return it == regions_.end() ? 0 : it->second.bytes_received;
}

void RdmaEndpoint::request_buffer(NodeId target, std::uint64_t size,
                                  std::function<void(RemoteBuffer)> done,
                                  std::uint64_t tag, net::Pid target_pid) {
  const std::uint64_t id = next_handshake_id_++;
  pending_handshakes_[id] = std::move(done);
  net::Message msg;
  msg.dst = target;
  msg.bytes = params_.ctrl_bytes;
  msg.hdr.kind = kind_of(kReqBuf);
  msg.hdr.src_pid = pid_;
  msg.hdr.dst_pid = target_pid;
  msg.hdr.addr = tag;
  msg.hdr.imm = size;
  msg.hdr.imm2 = id;
  nic_.send(std::move(msg));
}

void RdmaEndpoint::put(const RemoteBuffer& dst, std::uint64_t offset,
                       const std::byte* data, std::uint64_t bytes,
                       std::function<void()> local_done,
                       std::function<void()> on_wire) {
  assert(offset + bytes <= dst.size && "put beyond negotiated region");
  net::Message msg;
  msg.dst = dst.node;
  msg.bytes = bytes;
  msg.data = data;
  msg.hdr.kind = kind_of(kPut);
  msg.hdr.src_pid = pid_;
  msg.hdr.dst_pid = dst.pid;
  msg.hdr.addr = dst.addr;
  msg.hdr.offset = offset;
  // Reserve the id up front so the ack can be matched.
  msg.id = (static_cast<std::uint64_t>(nic_.node()) << 40) |
           (0x8000000000ULL + next_get_id_++);
  if (local_done) pending_puts_[msg.id] = PendingPut{std::move(local_done)};
  nic_.send(std::move(msg), std::move(on_wire));
}

void RdmaEndpoint::send(NodeId dst, std::uint64_t imm,
                        std::function<void()> on_wire) {
  net::Message msg;
  msg.dst = dst;
  msg.bytes = params_.ctrl_bytes;
  msg.hdr.kind = kind_of(kSend);
  msg.hdr.src_pid = pid_;
  msg.hdr.imm = imm;
  nic_.send(std::move(msg), std::move(on_wire));
}

Status RdmaEndpoint::write_with_imm(const RemoteBuffer& dst,
                                    std::uint64_t offset,
                                    const std::byte* data, std::uint32_t bytes,
                                    std::uint64_t imm) {
  if (bytes > params_.write_imm_max) return Status::kInvalidArg;
  if (offset + bytes > dst.size) return Status::kOverflow;
  net::Message msg;
  msg.dst = dst.node;
  msg.bytes = bytes;
  msg.data = data;
  msg.hdr.kind = kind_of(kWriteImm);
  msg.hdr.src_pid = pid_;
  msg.hdr.dst_pid = dst.pid;
  msg.hdr.addr = dst.addr;
  msg.hdr.offset = offset;
  msg.hdr.imm = imm;
  nic_.send(std::move(msg));
  return Status::kOk;
}

void RdmaEndpoint::get(const RemoteBuffer& src, std::uint64_t offset,
                       std::byte* into, std::uint64_t bytes,
                       std::function<void()> done) {
  const std::uint64_t id = next_get_id_++;
  pending_gets_[id] = PendingGet{into, bytes, 0, std::move(done)};
  net::Message msg;
  msg.dst = src.node;
  msg.bytes = params_.ctrl_bytes;
  msg.hdr.kind = kind_of(kGetReq);
  msg.hdr.src_pid = pid_;
  msg.hdr.dst_pid = src.pid;
  msg.hdr.addr = src.addr;
  msg.hdr.offset = offset;
  msg.hdr.imm = bytes;
  msg.hdr.imm2 = id;
  nic_.send(std::move(msg));
}

void RdmaEndpoint::handle_packet(const net::Packet& pkt) {
  const auto op = static_cast<Op>(net::op_of(pkt.msg->hdr.kind));
  switch (op) {
    case kPut:
    case kWriteImm:
      handle_put_packet(pkt);
      return;

    case kReqBuf: {
      const std::uint64_t size = pkt.msg->hdr.imm;
      const std::uint64_t tag = pkt.msg->hdr.addr;
      const std::uint64_t id = pkt.msg->hdr.imm2;
      const NodeId requester = pkt.src;
      const net::Pid requester_pid = pkt.msg->hdr.src_pid;
      ++stats_.handshakes_served;
      engine_.schedule(params_.ctrl_proc, [this, size, tag, id, requester,
                                           requester_pid] {
        std::span<std::byte> mem =
            allocator_ ? allocator_(size, tag) : std::span<std::byte>{};
        register_region(mem, size,
                        [this, id, tag, requester, requester_pid,
                         size](std::uint64_t addr) {
          if (region_observer_) region_observer_(tag, addr, size);
          net::Message reply;
          reply.dst = requester;
          reply.bytes = params_.ctrl_bytes;
          reply.hdr.kind = kind_of(kRepBuf);
          reply.hdr.src_pid = pid_;
          reply.hdr.dst_pid = requester_pid;
          reply.hdr.addr = addr;
          reply.hdr.imm = size;
          reply.hdr.imm2 = id;
          nic_.send(std::move(reply));
        });
      });
      return;
    }

    case kRepBuf: {
      const auto it = pending_handshakes_.find(pkt.msg->hdr.imm2);
      assert(it != pending_handshakes_.end());
      auto done = std::move(it->second);
      pending_handshakes_.erase(it);
      const RemoteBuffer buf{pkt.src, pkt.msg->hdr.addr, pkt.msg->hdr.imm,
                             pkt.msg->hdr.src_pid};
      engine_.schedule(params_.ctrl_proc,
                       [buf, done = std::move(done)] { done(buf); });
      return;
    }

    case kPutAck: {
      ++stats_.put_acks;
      const auto it = pending_puts_.find(pkt.msg->hdr.imm);
      if (it == pending_puts_.end()) return;  // unsignaled put
      auto done = std::move(it->second.local_done);
      pending_puts_.erase(it);
      // CQE DMA write to host memory, then the host's poll observes it.
      engine_.schedule(nic_.params().pcie_latency + params_.cq_poll,
                       [done = std::move(done)] { done(); });
      return;
    }

    case kSend: {
      ++stats_.sends_received;
      Completion entry{pkt.src, pkt.msg->hdr.imm, pkt.msg->bytes,
                       engine_.now()};
      // CQE crosses PCIe into host memory before anyone can poll it.
      engine_.schedule(nic_.params().pcie_latency,
                       [this, entry] { deliver_recv_completion(entry); });
      return;
    }

    case kGetReq: {
      const NodeId requester = pkt.src;
      const std::uint64_t addr = pkt.msg->hdr.addr;
      const std::uint64_t offset = pkt.msg->hdr.offset;
      const std::uint64_t bytes = pkt.msg->hdr.imm;
      const std::uint64_t id = pkt.msg->hdr.imm2;
      const auto it = regions_.find(addr);
      assert(it != regions_.end() && "get from unknown region");
      const Region& region = it->second;
      net::Message resp;
      resp.dst = requester;
      resp.bytes = bytes;
      resp.hdr.kind = kind_of(kGetResp);
      resp.hdr.src_pid = pid_;
      resp.hdr.dst_pid = pkt.msg->hdr.src_pid;
      resp.hdr.imm2 = id;
      if (!region.mem.empty() && offset + bytes <= region.mem.size()) {
        resp.data = region.mem.data() + offset;
      }
      nic_.send(std::move(resp));
      return;
    }

    case kGetResp: {
      const auto it = pending_gets_.find(pkt.msg->hdr.imm2);
      assert(it != pending_gets_.end());
      PendingGet& get = it->second;
      if (get.into != nullptr && pkt.msg->data != nullptr) {
        std::memcpy(get.into + pkt.offset, pkt.msg->data + pkt.offset,
                    pkt.bytes);
      }
      get.received += pkt.bytes;
      if (get.received >= get.bytes) {
        auto done = std::move(get.done);
        pending_gets_.erase(it);
        engine_.schedule(nic_.params().pcie_latency + params_.cq_poll,
                         [done = std::move(done)] { done(); });
      }
      return;
    }
  }
  RVMA_LOG_WARN("rdma: unknown opcode %u", net::op_of(pkt.msg->hdr.kind));
}

void RdmaEndpoint::handle_put_packet(const net::Packet& pkt) {
  const auto it = regions_.find(pkt.msg->hdr.addr);
  assert(it != regions_.end() && "put to unregistered region");
  Region& region = it->second;

  const std::uint64_t place_at = pkt.msg->hdr.offset + pkt.offset;
  assert(place_at + pkt.bytes <= region.size && "put beyond region extent");
  if (!region.mem.empty() && pkt.msg->data != nullptr) {
    std::memcpy(region.mem.data() + place_at, pkt.msg->data + pkt.offset,
                pkt.bytes);
  }
  region.bytes_received += pkt.bytes;

  // Last-byte-poll cheat: fires as soon as the watched byte is written,
  // whether or not the rest of the payload has landed.
  for (std::size_t i = 0; i < region.polls.size();) {
    ArmedPoll& poll = region.polls[i];
    if (poll.index >= place_at && poll.index < place_at + pkt.bytes) {
      auto done = std::move(poll.done);
      const std::uint64_t watched = poll.index;
      region.polls.erase(region.polls.begin() + static_cast<long>(i));
      const std::uint64_t seen = region.bytes_received;
      if (seen < watched + 1) ++stats_.premature_flag_fires;
      engine_.schedule(params_.flag_poll,
                       [done = std::move(done), seen, t = engine_.now()] {
                         done(t, seen);
                       });
    } else {
      ++i;
    }
  }

  const auto op = static_cast<Op>(net::op_of(pkt.msg->hdr.kind));
  if (op == kWriteImm) {
    ++stats_.puts_received;
    Completion entry{pkt.src, pkt.msg->hdr.imm, pkt.msg->bytes, engine_.now()};
    engine_.schedule(nic_.params().pcie_latency,
                     [this, entry] { deliver_recv_completion(entry); });
    return;
  }

  // Track full-message arrival for the target-NIC put ack.
  const std::uint32_t arrived = ++put_arrived_[pkt.msg->id];
  if (arrived == pkt.total) {
    put_arrived_.erase(pkt.msg->id);
    ++stats_.puts_received;
    net::Message ack;
    ack.dst = pkt.src;
    ack.bytes = params_.ctrl_bytes;
    ack.hdr.kind = kind_of(kPutAck);
    ack.hdr.src_pid = pid_;
    ack.hdr.dst_pid = pkt.msg->hdr.src_pid;
    ack.hdr.imm = pkt.msg->id;
    nic_.send(std::move(ack));
  }
}

void RdmaEndpoint::deliver_recv_completion(Completion entry) {
  if (!recv_waiters_.empty()) {
    auto done = std::move(recv_waiters_.front());
    recv_waiters_.pop_front();
    engine_.schedule(params_.cq_poll,
                     [entry, done = std::move(done)] { done(entry); });
    return;
  }
  recv_cq_.push_back(entry);
}

}  // namespace rvma::rdma
