// Baseline RDMA model (the system the paper compares against).
//
// Implements the primitive set the paper instruments (§II, Fig. 1, §V-A):
//  * memory-region registration with a realistic cost,
//  * the buffer-negotiation handshake (request -> allocate+register -> reply
//    with address/length) every RDMA target must run before any put,
//  * one-sided put: data packets addressed to a remote physical address,
//    acked by the target NIC so the initiator's CQ can signal local
//    completion,
//  * two-sided send/recv with completion-queue polling cost — the
//    InfiniBand-spec-compliant way to signal put completion on adaptively
//    routed networks,
//  * write-with-immediate (single-packet payloads only),
//  * the last-byte-polling "cheat": completion inferred from the final byte
//    of the landing region. Correct only under static (in-order) routing;
//    under adaptive routing it can fire before all payload has landed, and
//    the model reports the premature byte count so tests can observe the
//    corruption the paper describes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "nic/nic.hpp"

namespace rvma::rdma {

using net::NodeId;
using rvma::Status;

enum Op : std::uint32_t {
  kReqBuf = 1,   ///< handshake: request a registered region (imm = size)
  kRepBuf = 2,   ///< handshake reply (addr = region addr, imm = size)
  kPut = 3,      ///< one-sided write (addr = region, offset into it)
  kPutAck = 4,   ///< target-NIC ack: all packets of a put have landed
  kSend = 5,     ///< two-sided send -> recv-CQ entry at the target
  kWriteImm = 6, ///< put with immediate; payload limited to one packet
  kGetReq = 7,   ///< one-sided read request
  kGetResp = 8,  ///< read response data
};

struct RdmaParams {
  Time cq_poll = 150 * kNanosecond;   ///< cost for the host to observe a CQE
  Time reg_base = 1500 * kNanosecond; ///< memory registration, fixed part
  double reg_ns_per_kib = 0.25;       ///< memory registration, per-KiB part
  Time ctrl_proc = 50 * kNanosecond;  ///< software handling of a ctrl msg
  Time flag_poll = 20 * kNanosecond;  ///< observing the polled last byte
  std::uint32_t ctrl_bytes = 64;      ///< control message payload size
  std::uint32_t write_imm_max = 64;   ///< max write-with-immediate payload
};

/// What an initiator must retain about a negotiated remote region —
/// exactly the state RVMA eliminates.
struct RemoteBuffer {
  NodeId node = -1;
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  net::Pid pid = 0;  ///< owning process on the target node
};

/// Recv-CQ entry for two-sided traffic.
struct Completion {
  NodeId peer = -1;
  std::uint64_t imm = 0;
  std::uint64_t bytes = 0;
  Time arrived_at = 0;
};

struct RdmaStats {
  std::uint64_t regions_registered = 0;
  std::uint64_t handshakes_served = 0;
  std::uint64_t puts_received = 0;
  std::uint64_t put_acks = 0;
  std::uint64_t sends_received = 0;
  std::uint64_t premature_flag_fires = 0;
};

class RdmaEndpoint {
 public:
  /// Allocates backing memory for a handshake-requested region of `size`
  /// bytes; `tag` is the requester-supplied channel identifier. May return
  /// an empty span for timing-only regions.
  using RegionAllocator =
      std::function<std::span<std::byte>(std::uint64_t size, std::uint64_t tag)>;
  /// Observes every region registered on behalf of a handshake.
  using RegionObserver = std::function<void(
      std::uint64_t tag, std::uint64_t addr, std::uint64_t size)>;

  /// `pid` identifies this endpoint's process on the node; several
  /// endpoints with distinct pids can share one NIC (NID/PID addressing).
  RdmaEndpoint(nic::Nic& nic, const RdmaParams& params, net::Pid pid = 0);

  NodeId node() const { return nic_.node(); }
  net::Pid pid() const { return pid_; }
  const RdmaParams& params() const { return params_; }
  const RdmaStats& stats() const { return stats_; }

  // ---------------------------------------------------------------- target
  /// Register a memory region; `done(addr)` fires after the registration
  /// cost. `mem` may be empty for timing-only simulations, in which case
  /// `size` gives the modeled extent.
  void register_region(std::span<std::byte> mem, std::uint64_t size,
                       std::function<void(std::uint64_t)> done);

  /// Serve incoming kReqBuf handshakes: allocate (via `alloc`, which may
  /// return an empty span for timing-only), register, reply addr+len.
  /// `observer`, when set, sees (tag, addr, size) after registration — the
  /// hook target-side middleware uses to arm completion detection.
  void serve_buffer_requests(RegionAllocator alloc,
                             RegionObserver observer = {});

  /// Arm the last-byte-polling completion cheat on a region: fires when the
  /// byte at `expected - 1` is written. Reports the bytes received at that
  /// instant — under adaptive routing this can be < expected (corruption).
  void arm_last_byte_poll(std::uint64_t addr, std::uint64_t expected,
                          std::function<void(Time, std::uint64_t)> done);

  /// Consume the next recv-CQ entry (FIFO); charges the CQ poll cost.
  void post_recv(std::function<void(const Completion&)> done);

  /// Bytes landed in a region so far (test/diagnostic surface).
  std::uint64_t region_bytes_received(std::uint64_t addr) const;

  // ------------------------------------------------------------- initiator
  /// Full buffer-negotiation handshake (Fig. 1 steps 1-3). `tag` is an
  /// application channel identifier surfaced to the target's allocator.
  void request_buffer(NodeId target, std::uint64_t size,
                      std::function<void(RemoteBuffer)> done,
                      std::uint64_t tag = 0, net::Pid target_pid = 0);

  /// One-sided put. `local_done` fires when the initiator observes its CQ
  /// completion (target-NIC ack + CQ poll) — the precondition for issuing
  /// the spec-compliant completion send on adaptive networks. `on_wire`,
  /// when set, fires as soon as the message has been handed to the wire
  /// (the point at which a pipelined initiator issues its next WR).
  void put(const RemoteBuffer& dst, std::uint64_t offset,
           const std::byte* data, std::uint64_t bytes,
           std::function<void()> local_done,
           std::function<void()> on_wire = {});

  /// Two-sided small send (control / completion signaling).
  void send(NodeId dst, std::uint64_t imm, std::function<void()> on_wire = {});

  /// Put with immediate: payload must fit one packet; generates a recv-CQ
  /// entry at the target carrying `imm`.
  Status write_with_imm(const RemoteBuffer& dst, std::uint64_t offset,
                        const std::byte* data, std::uint32_t bytes,
                        std::uint64_t imm);

  /// One-sided get: fetch `bytes` at `offset` from the remote region into
  /// `into` (may be null for timing-only); `done` fires when all response
  /// data has landed locally.
  void get(const RemoteBuffer& src, std::uint64_t offset, std::byte* into,
           std::uint64_t bytes, std::function<void()> done);

 private:
  struct ArmedPoll {
    std::uint64_t index = 0;  ///< watched byte within the region
    std::function<void(Time, std::uint64_t)> done;
  };

  struct Region {
    std::span<std::byte> mem;
    std::uint64_t size = 0;
    std::uint64_t bytes_received = 0;
    // Outstanding last-byte polls (several slots may be watched at once).
    // A poll must be armed before the watched byte is written; the
    // credit-before-data discipline of the callers guarantees this.
    std::vector<ArmedPoll> polls;
  };

  struct PendingPut {
    std::function<void()> local_done;
  };

  struct PendingGet {
    std::byte* into = nullptr;
    std::uint64_t bytes = 0;
    std::uint64_t received = 0;
    std::function<void()> done;
  };

  void handle_packet(const net::Packet& pkt);
  void handle_put_packet(const net::Packet& pkt);
  void deliver_recv_completion(Completion entry);
  Time registration_cost(std::uint64_t size) const;

  nic::Nic& nic_;
  sim::Engine& engine_;
  RdmaParams params_;
  RdmaStats stats_;
  net::Pid pid_ = 0;

  std::unordered_map<std::uint64_t, Region> regions_;
  std::uint64_t next_region_addr_ = 0x1000;
  RegionAllocator allocator_;
  RegionObserver region_observer_;

  // Per-message packet counting for put acks (target side).
  std::unordered_map<net::MsgId, std::uint32_t> put_arrived_;

  std::unordered_map<net::MsgId, PendingPut> pending_puts_;
  std::unordered_map<std::uint64_t, PendingGet> pending_gets_;
  std::uint64_t next_get_id_ = 1;
  std::unordered_map<std::uint64_t, std::function<void(RemoteBuffer)>>
      pending_handshakes_;
  std::uint64_t next_handshake_id_ = 1;

  std::deque<Completion> recv_cq_;
  std::deque<std::function<void(const Completion&)>> recv_waiters_;
};

}  // namespace rvma::rdma
