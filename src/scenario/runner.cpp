#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string_view>
#include <vector>

#include "common/rss.hpp"
#include "motifs/runner.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

namespace {

bool resolve(const ScenarioSpec& spec, net::NetworkConfig* cfg,
             const TransportEntry** transport, const MotifEntry** motif,
             std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const TopologyEntry* topo = topologies().find(spec.topology);
  if (topo == nullptr)
    return fail("unknown topology \"" + spec.topology + "\"");
  net::Routing routing = net::Routing::kStatic;
  if (!parse_routing(spec.routing, &routing))
    return fail("unknown routing \"" + spec.routing + "\"");
  *transport = transports().find(spec.transport);
  if (*transport == nullptr)
    return fail("unknown transport \"" + spec.transport + "\"");
  *motif = motifs_registry().find(spec.motif);
  if (*motif == nullptr) return fail("unknown motif \"" + spec.motif + "\"");

  cfg->topology = topo->kind;
  cfg->routing = routing;
  cfg->nodes_hint = spec.nodes;
  cfg->link.bw = spec.link_bandwidth;
  cfg->link.latency = spec.link_latency;
  cfg->long_link_latency = spec.long_link_latency;
  cfg->switch_latency = spec.switch_latency;
  cfg->xbar_factor = spec.xbar_factor;
  cfg->concentration = spec.concentration;
  cfg->seed = spec.seed;
  cfg->express = spec.express;
  // Spec validation already constrains the string to these two values;
  // anything else is a programming error upstream, so fail loudly here too.
  if (spec.route_table == "materialized") {
    cfg->route_table = net::RouteTable::kMaterialized;
  } else if (spec.route_table == "algebraic") {
    cfg->route_table = net::RouteTable::kAlgebraic;
  } else {
    return fail("unknown route_table \"" + spec.route_table + "\"");
  }
  return true;
}

/// Every record() line opens {"t":<ps>, — recover <ps> for the merge key.
Time parse_trace_time(std::string_view line) {
  constexpr std::string_view kPrefix = "{\"t\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return 0;
  Time t = 0;
  for (std::size_t i = kPrefix.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c < '0' || c > '9') break;
    t = t * 10 + static_cast<Time>(c - '0');
  }
  return t;
}

/// Merge the per-shard JSONL buffers into the armed sink, ordered by
/// (event time, shard, per-shard line index). Each shard's buffer is
/// already time-sorted (its engine records in execution order), so this
/// total order is a pure function of the event timeline — the merged file
/// is byte-identical across reruns at any thread schedule.
void merge_shard_traces(
    const std::vector<std::unique_ptr<Tracer>>& shard_tracers, Tracer* sink) {
  struct Line {
    Time t;
    std::size_t shard;
    std::size_t index;
    std::string_view text;  ///< one JSONL line, '\n' included
  };
  std::vector<Line> lines;
  for (std::size_t k = 0; k < shard_tracers.size(); ++k) {
    const std::string& buffer = shard_tracers[k]->buffer();
    std::size_t start = 0;
    std::size_t index = 0;
    while (start < buffer.size()) {
      std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) nl = buffer.size() - 1;
      const std::string_view text(buffer.data() + start, nl - start + 1);
      lines.push_back(Line{parse_trace_time(text), k, index++, text});
      start = nl + 1;
    }
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });
  for (const Line& line : lines) sink->write_line(line.text);
}

}  // namespace

bool validate_scenario(const ScenarioSpec& spec, std::string* error) {
  net::NetworkConfig cfg;
  const TransportEntry* transport = nullptr;
  const MotifEntry* motif = nullptr;
  if (!resolve(spec, &cfg, &transport, &motif, error)) return false;
  std::string build_error;
  if (motif->build_api) {
    if (motif->build_api(spec, &build_error) == nullptr) {
      if (error != nullptr) *error = build_error;
      return false;
    }
    return true;
  }
  if (motif->build(spec, &build_error).empty() && !build_error.empty()) {
    if (error != nullptr) *error = build_error;
    return false;
  }
  return true;
}

bool run_scenario(const ScenarioSpec& spec, ScenarioResult* out,
                  std::string* error, Tracer* trace_sink,
                  std::int64_t eng_id, RunTiming* timing) {
  net::NetworkConfig cfg;
  const TransportEntry* transport_entry = nullptr;
  const MotifEntry* motif_entry = nullptr;
  if (!resolve(spec, &cfg, &transport_entry, &motif_entry, error))
    return false;

  // Sharded execution must be exact; mid-run gauge sampling reads one
  // shard's engine mid-window, so it clamps back to serial here (Cluster
  // itself additionally clamps for adaptive routing, the global tracer,
  // and zero-lookahead topologies). An armed per-run trace sink no longer
  // clamps: sharded runs record into per-shard buffered tracers and merge
  // them deterministically below.
  int shards = spec.par_shards;
  if (spec.sample_period > 0) shards = 1;
  const auto t_build0 = std::chrono::steady_clock::now();
  nic::NicParams nic_params;
  nic_params.doorbell_batch = static_cast<std::uint32_t>(spec.doorbell_batch);
  cluster::Cluster cluster(cfg, nic_params, shards);
  const auto t_build1 = std::chrono::steady_clock::now();
  // Stamp the run id even when keeping the process-default sink: serial
  // grids funnel every run through Tracer::global(), and without distinct
  // "eng" fields trace analyses would mix (and double-count) the runs.
  std::vector<std::unique_ptr<Tracer>> shard_tracers;
  if (trace_sink != nullptr && trace_sink->enabled() && cluster.sharded()) {
    // Shard-safe tracing: each shard engine records into its own
    // in-memory buffer (single-threaded by construction), merged into the
    // armed sink after the run. The sink itself is never touched from a
    // worker thread.
    for (int k = 0; k < cluster.num_shards(); ++k) {
      auto tracer = std::make_unique<Tracer>();
      tracer->open_buffer();
      cluster.engine_for_shard(k).set_tracer(tracer.get(), eng_id);
      shard_tracers.push_back(std::move(tracer));
    }
  } else {
    cluster.engine().set_tracer(
        trace_sink != nullptr ? trace_sink : cluster.engine().tracer(),
        eng_id);
  }
  if (spec.sample_period > 0) cluster.enable_sampling(spec.sample_period);
  if (!spec.flight_recorder_path.empty()) {
    cluster.arm_flight_recorder(
        spec.flight_recorder_capacity != 0
            ? static_cast<std::size_t>(spec.flight_recorder_capacity)
            : obs::FlightRecorder::kDefaultCapacity);
  }
  if (!spec.pdes_profile_path.empty()) cluster.enable_pdes_profiling();

  // Either interpret per-rank programs over a transport (classic path)
  // or run an API-layer motif straight against rvma.h contexts. The API
  // path builds no transport at all: transports create endpoints, and a
  // second endpoint per (node, pid) would replace the packet handler the
  // motif's own contexts registered.
  std::string build_error;
  Time makespan = 0;
  std::uint64_t engine_events = 0;
  std::chrono::steady_clock::time_point t_sim0, t_sim1;
  if (motif_entry->build_api) {
    std::unique_ptr<motifs::ApiMotif> api_motif =
        motif_entry->build_api(spec, &build_error);
    if (api_motif == nullptr) {
      if (error != nullptr) *error = build_error;
      return false;
    }
    t_sim0 = std::chrono::steady_clock::now();
    const motifs::ApiMotifResult result = api_motif->run(cluster);
    t_sim1 = std::chrono::steady_clock::now();
    makespan = result.makespan;
    for (int k = 0; k < cluster.num_shards(); ++k) {
      engine_events += cluster.engine_for_shard(k).executed_events();
    }
  } else {
    auto programs = motif_entry->build(spec, &build_error);
    if (programs.empty() && !build_error.empty()) {
      if (error != nullptr) *error = build_error;
      return false;
    }
    std::unique_ptr<motifs::Transport> transport =
        transport_entry->make(cluster, spec);
    t_sim0 = std::chrono::steady_clock::now();
    const motifs::MotifResult result =
        motifs::MotifRunner(cluster, *transport, std::move(programs)).run();
    t_sim1 = std::chrono::steady_clock::now();
    makespan = result.makespan;
    engine_events = result.engine_events;
  }
  if (!shard_tracers.empty()) merge_shard_traces(shard_tracers, trace_sink);
  if (!spec.flight_recorder_path.empty()) {
    std::string dump_error;
    if (!cluster.write_flight_dump(spec.flight_recorder_path, &dump_error)) {
      if (error != nullptr) *error = dump_error;
      return false;
    }
  }
  if (!spec.pdes_profile_path.empty()) {
    obs::MetricsDoc doc;
    doc.tool = "pdes_profile";
    if (!spec.name.empty()) doc.meta["scenario"] = spec.name;
    doc.meta["topology"] = spec.topology;
    doc.meta["motif"] = spec.motif;
    doc.meta["nodes"] = std::to_string(spec.nodes);
    doc.meta["par_shards"] = std::to_string(cluster.num_shards());
    doc.totals.merge(cluster.collect_pdes_profile());
    if (!obs::write_metrics_file(doc, spec.pdes_profile_path)) {
      if (error != nullptr)
        *error = "cannot write pdes profile " + spec.pdes_profile_path;
      return false;
    }
  }
  if (timing != nullptr) {
    const auto secs = [](auto a, auto b) {
      return std::chrono::duration<double>(b - a).count();
    };
    timing->construct_wall_s = secs(t_build0, t_build1);
    timing->sim_wall_s = secs(t_sim0, t_sim1);
    timing->route_table_bytes = cluster.route_table_bytes();
    timing->peak_rss_bytes = rvma::peak_rss_bytes();
  }

  const net::FabricStats fabric = cluster.fabric_stats();
  ScenarioResult res;
  res.makespan = makespan;
  res.packets_injected = fabric.packets_injected;
  res.packets_delivered = fabric.packets_delivered;
  res.route_cache_hits = fabric.route_cache_hits;
  res.engine_events = engine_events;
  res.trace_events = trace_sink != nullptr ? trace_sink->events_written() : 0;
  res.metrics = cluster.collect_metrics();
  if (spec.sample_period > 0) res.series = cluster.sampler().take_series();
  *out = std::move(res);
  return true;
}

obs::MetricsDoc build_scenario_metrics_doc(const ScenarioSpec& spec,
                                           const ScenarioResult& result) {
  obs::MetricsDoc doc;
  doc.tool = "rvma_run";
  if (!spec.name.empty()) doc.meta["scenario"] = spec.name;
  doc.meta["topology"] = spec.topology;
  doc.meta["routing"] = spec.routing;
  doc.meta["transport"] = spec.transport;
  doc.meta["motif"] = spec.motif;
  doc.meta["nodes"] = std::to_string(spec.nodes);
  doc.meta["seed"] = std::to_string(spec.seed);
  if (spec.sample_period > 0) {
    doc.meta["sample_period_us"] =
        std::to_string(spec.sample_period / kMicrosecond);
  }
  doc.totals.merge(result.metrics);
  if (!result.series.empty()) {
    doc.timeseries.push_back(result.series);
    if (doc.timeseries.back().label.empty()) {
      doc.timeseries.back().label = spec.topology + "-" + spec.routing + "@" +
                                    format_bandwidth(spec.link_bandwidth) +
                                    "/" + spec.transport;
    }
  }
  return doc;
}

}  // namespace rvma::scenario
