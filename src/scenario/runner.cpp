#include "scenario/runner.hpp"

#include <chrono>

#include "common/rss.hpp"
#include "motifs/runner.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

namespace {

bool resolve(const ScenarioSpec& spec, net::NetworkConfig* cfg,
             const TransportEntry** transport, const MotifEntry** motif,
             std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const TopologyEntry* topo = topologies().find(spec.topology);
  if (topo == nullptr)
    return fail("unknown topology \"" + spec.topology + "\"");
  net::Routing routing = net::Routing::kStatic;
  if (!parse_routing(spec.routing, &routing))
    return fail("unknown routing \"" + spec.routing + "\"");
  *transport = transports().find(spec.transport);
  if (*transport == nullptr)
    return fail("unknown transport \"" + spec.transport + "\"");
  *motif = motifs_registry().find(spec.motif);
  if (*motif == nullptr) return fail("unknown motif \"" + spec.motif + "\"");

  cfg->topology = topo->kind;
  cfg->routing = routing;
  cfg->nodes_hint = spec.nodes;
  cfg->link.bw = spec.link_bandwidth;
  cfg->link.latency = spec.link_latency;
  cfg->switch_latency = spec.switch_latency;
  cfg->xbar_factor = spec.xbar_factor;
  cfg->concentration = spec.concentration;
  cfg->seed = spec.seed;
  cfg->express = spec.express;
  // Spec validation already constrains the string to these two values;
  // anything else is a programming error upstream, so fail loudly here too.
  if (spec.route_table == "materialized") {
    cfg->route_table = net::RouteTable::kMaterialized;
  } else if (spec.route_table == "algebraic") {
    cfg->route_table = net::RouteTable::kAlgebraic;
  } else {
    return fail("unknown route_table \"" + spec.route_table + "\"");
  }
  return true;
}

}  // namespace

bool validate_scenario(const ScenarioSpec& spec, std::string* error) {
  net::NetworkConfig cfg;
  const TransportEntry* transport = nullptr;
  const MotifEntry* motif = nullptr;
  if (!resolve(spec, &cfg, &transport, &motif, error)) return false;
  std::string build_error;
  if (motif->build(spec, &build_error).empty() && !build_error.empty()) {
    if (error != nullptr) *error = build_error;
    return false;
  }
  return true;
}

bool run_scenario(const ScenarioSpec& spec, ScenarioResult* out,
                  std::string* error, Tracer* trace_sink,
                  std::int64_t eng_id, RunTiming* timing) {
  net::NetworkConfig cfg;
  const TransportEntry* transport_entry = nullptr;
  const MotifEntry* motif_entry = nullptr;
  if (!resolve(spec, &cfg, &transport_entry, &motif_entry, error))
    return false;

  // Sharded execution must be exact; it is incompatible with mid-run
  // observers, so sampling or an armed trace sink clamp back to serial
  // here (Cluster itself additionally clamps for adaptive routing, the
  // global tracer, and zero-lookahead topologies).
  int shards = spec.par_shards;
  if (spec.sample_period > 0) shards = 1;
  if (trace_sink != nullptr && trace_sink->enabled()) shards = 1;
  const auto t_build0 = std::chrono::steady_clock::now();
  cluster::Cluster cluster(cfg, nic::NicParams{}, shards);
  const auto t_build1 = std::chrono::steady_clock::now();
  // Stamp the run id even when keeping the process-default sink: serial
  // grids funnel every run through Tracer::global(), and without distinct
  // "eng" fields trace analyses would mix (and double-count) the runs.
  cluster.engine().set_tracer(
      trace_sink != nullptr ? trace_sink : cluster.engine().tracer(), eng_id);
  if (spec.sample_period > 0) cluster.enable_sampling(spec.sample_period);

  std::string build_error;
  auto programs = motif_entry->build(spec, &build_error);
  if (programs.empty() && !build_error.empty()) {
    if (error != nullptr) *error = build_error;
    return false;
  }
  std::unique_ptr<motifs::Transport> transport =
      transport_entry->make(cluster, spec);
  const auto t_sim0 = std::chrono::steady_clock::now();
  const motifs::MotifResult result =
      motifs::MotifRunner(cluster, *transport, std::move(programs)).run();
  const auto t_sim1 = std::chrono::steady_clock::now();
  if (timing != nullptr) {
    const auto secs = [](auto a, auto b) {
      return std::chrono::duration<double>(b - a).count();
    };
    timing->construct_wall_s = secs(t_build0, t_build1);
    timing->sim_wall_s = secs(t_sim0, t_sim1);
    timing->route_table_bytes = cluster.route_table_bytes();
    timing->peak_rss_bytes = rvma::peak_rss_bytes();
  }

  const net::FabricStats fabric = cluster.fabric_stats();
  ScenarioResult res;
  res.makespan = result.makespan;
  res.packets_injected = fabric.packets_injected;
  res.packets_delivered = fabric.packets_delivered;
  res.route_cache_hits = fabric.route_cache_hits;
  res.engine_events = result.engine_events;
  res.trace_events = trace_sink != nullptr ? trace_sink->events_written() : 0;
  res.metrics = cluster.collect_metrics();
  if (spec.sample_period > 0) res.series = cluster.sampler().take_series();
  *out = std::move(res);
  return true;
}

obs::MetricsDoc build_scenario_metrics_doc(const ScenarioSpec& spec,
                                           const ScenarioResult& result) {
  obs::MetricsDoc doc;
  doc.tool = "rvma_run";
  if (!spec.name.empty()) doc.meta["scenario"] = spec.name;
  doc.meta["topology"] = spec.topology;
  doc.meta["routing"] = spec.routing;
  doc.meta["transport"] = spec.transport;
  doc.meta["motif"] = spec.motif;
  doc.meta["nodes"] = std::to_string(spec.nodes);
  doc.meta["seed"] = std::to_string(spec.seed);
  if (spec.sample_period > 0) {
    doc.meta["sample_period_us"] =
        std::to_string(spec.sample_period / kMicrosecond);
  }
  doc.totals.merge(result.metrics);
  if (!result.series.empty()) {
    doc.timeseries.push_back(result.series);
    if (doc.timeseries.back().label.empty()) {
      doc.timeseries.back().label = spec.topology + "-" + spec.routing + "@" +
                                    format_bandwidth(spec.link_bandwidth) +
                                    "/" + spec.transport;
    }
  }
  return doc;
}

}  // namespace rvma::scenario
