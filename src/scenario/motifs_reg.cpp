// Builtin motif registrations: name + params -> per-rank programs.
//
// Each builder reads its parameters through a ParamReader so typo'd keys
// and malformed values fail the scenario instead of silently simulating
// defaults. Process-grid shapes left unset derive from the rank count the
// same way the figure benches always have (near-cubic for halo3d,
// near-square for sweep3d), so `--nodes` alone scales a scenario.
#include <cmath>

#include "motifs/collectives.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/incast.hpp"
#include "motifs/sweep3d.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

namespace {

/// Shared tail: reject unknown keys / bad values with a useful message.
bool finish_params(ParamReader& reader, const std::string& motif,
                   std::string* error) {
  if (!reader.ok()) {
    if (error != nullptr)
      *error = motif + ": bad value for param \"" + reader.bad_values()[0] +
               "\"";
    return false;
  }
  const auto leftover = reader.unconsumed();
  if (!leftover.empty()) {
    if (error != nullptr)
      *error = motif + ": unknown param \"" + leftover[0] + "\"";
    return false;
  }
  return true;
}

std::vector<motifs::RankProgram> build_halo3d_spec(const ScenarioSpec& spec,
                                                   std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::Halo3DConfig cfg;
  // Near-cubic process grid that fits in `nodes` ranks, unless the shape
  // is pinned explicitly.
  const int p = std::max(
      1, static_cast<int>(std::cbrt(static_cast<double>(spec.nodes))));
  cfg.px = reader.get_int("px", p);
  cfg.py = reader.get_int("py", p);
  cfg.pz = reader.get_int("pz", std::max(1, spec.nodes / (p * p)));
  cfg.nx = reader.get_int("nx", cfg.nx);
  cfg.ny = reader.get_int("ny", cfg.ny);
  cfg.nz = reader.get_int("nz", cfg.nz);
  cfg.vars = reader.get_int("vars", cfg.vars);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.compute_per_cell =
      reader.get_duration("compute_per_cell", cfg.compute_per_cell);
  if (!finish_params(reader, "halo3d", error)) return {};
  return motifs::build_halo3d(cfg);
}

std::vector<motifs::RankProgram> build_sweep3d_spec(const ScenarioSpec& spec,
                                                    std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::Sweep3DConfig cfg;
  // Near-square process grid that fits in `nodes` ranks.
  const int pex_default =
      std::max(1, static_cast<int>(std::sqrt(spec.nodes)));
  cfg.pex = reader.get_int("pex", pex_default);
  cfg.pey = reader.get_int("pey", std::max(1, spec.nodes / cfg.pex));
  cfg.nx = reader.get_int("nx", cfg.nx);
  cfg.ny = reader.get_int("ny", cfg.ny);
  cfg.nz = reader.get_int("nz", cfg.nz);
  cfg.kba = reader.get_int("kba", cfg.kba);
  cfg.vars = reader.get_int("vars", cfg.vars);
  cfg.compute_per_cell =
      reader.get_duration("compute_per_cell", cfg.compute_per_cell);
  if (!finish_params(reader, "sweep3d", error)) return {};
  return motifs::build_sweep3d(cfg);
}

std::vector<motifs::RankProgram> build_incast_spec(const ScenarioSpec& spec,
                                                   std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::IncastConfig cfg;
  cfg.clients = reader.get_int("clients", std::max(1, spec.nodes - 1));
  cfg.messages_per_client =
      reader.get_int("messages_per_client", cfg.messages_per_client);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.client_compute =
      reader.get_duration("client_compute", cfg.client_compute);
  if (!finish_params(reader, "incast", error)) return {};
  return motifs::build_incast(cfg);
}

std::vector<motifs::RankProgram> build_barrier_spec(const ScenarioSpec& spec,
                                                    std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::BarrierConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  if (!finish_params(reader, "barrier", error)) return {};
  return motifs::build_barrier(cfg);
}

std::vector<motifs::RankProgram> build_allreduce_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::AllReduceConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.reduce_per_byte =
      reader.get_duration("reduce_per_byte", cfg.reduce_per_byte);
  if (!finish_params(reader, "allreduce", error)) return {};
  return motifs::build_allreduce(cfg);
}

std::vector<motifs::RankProgram> build_broadcast_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::BroadcastConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.root = reader.get_int("root", cfg.root);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  if (!finish_params(reader, "broadcast", error)) return {};
  return motifs::build_broadcast(cfg);
}

}  // namespace

void register_builtin_motifs(Registry<MotifEntry>& reg) {
  reg.add("halo3d", {"3-D face exchange, bandwidth-bound (paper Fig. 8)",
                     build_halo3d_spec});
  reg.add("sweep3d", {"KBA wavefront sweep, latency-bound (paper Fig. 7)",
                      build_sweep3d_spec});
  reg.add("incast", {"many clients to one server mailbox", build_incast_spec});
  reg.add("barrier",
          {"dissemination barrier, log2(n) signal rounds", build_barrier_spec});
  reg.add("allreduce",
          {"ring allreduce: reduce-scatter + allgather", build_allreduce_spec});
  reg.add("broadcast",
          {"binomial-tree broadcast from a root rank", build_broadcast_spec});
}

}  // namespace rvma::scenario
