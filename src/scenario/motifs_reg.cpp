// Builtin motif registrations: name + params -> per-rank programs.
//
// Each builder reads its parameters through a ParamReader so typo'd keys
// and malformed values fail the scenario instead of silently simulating
// defaults. Process-grid shapes left unset derive from the rank count the
// same way the figure benches always have (near-cubic for halo3d,
// near-square for sweep3d), so `--nodes` alone scales a scenario.
#include <cmath>
#include <memory>

#include "motifs/api_motifs.hpp"
#include "motifs/collectives.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/incast.hpp"
#include "motifs/sweep3d.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

namespace {

/// Shared tail: reject unknown keys / bad values with a useful message.
bool finish_params(ParamReader& reader, const std::string& motif,
                   std::string* error) {
  if (!reader.ok()) {
    if (error != nullptr)
      *error = motif + ": bad value for param \"" + reader.bad_values()[0] +
               "\"";
    return false;
  }
  const auto leftover = reader.unconsumed();
  if (!leftover.empty()) {
    if (error != nullptr)
      *error = motif + ": unknown param \"" + leftover[0] + "\"";
    return false;
  }
  return true;
}

std::vector<motifs::RankProgram> build_halo3d_spec(const ScenarioSpec& spec,
                                                   std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::Halo3DConfig cfg;
  // Near-cubic process grid that fits in `nodes` ranks, unless the shape
  // is pinned explicitly.
  const int p = std::max(
      1, static_cast<int>(std::cbrt(static_cast<double>(spec.nodes))));
  cfg.px = reader.get_int("px", p);
  cfg.py = reader.get_int("py", p);
  cfg.pz = reader.get_int("pz", std::max(1, spec.nodes / (p * p)));
  cfg.nx = reader.get_int("nx", cfg.nx);
  cfg.ny = reader.get_int("ny", cfg.ny);
  cfg.nz = reader.get_int("nz", cfg.nz);
  cfg.vars = reader.get_int("vars", cfg.vars);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.compute_per_cell =
      reader.get_duration("compute_per_cell", cfg.compute_per_cell);
  if (!finish_params(reader, "halo3d", error)) return {};
  return motifs::build_halo3d(cfg);
}

std::vector<motifs::RankProgram> build_sweep3d_spec(const ScenarioSpec& spec,
                                                    std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::Sweep3DConfig cfg;
  // Near-square process grid that fits in `nodes` ranks.
  const int pex_default =
      std::max(1, static_cast<int>(std::sqrt(spec.nodes)));
  cfg.pex = reader.get_int("pex", pex_default);
  cfg.pey = reader.get_int("pey", std::max(1, spec.nodes / cfg.pex));
  cfg.nx = reader.get_int("nx", cfg.nx);
  cfg.ny = reader.get_int("ny", cfg.ny);
  cfg.nz = reader.get_int("nz", cfg.nz);
  cfg.kba = reader.get_int("kba", cfg.kba);
  cfg.vars = reader.get_int("vars", cfg.vars);
  cfg.compute_per_cell =
      reader.get_duration("compute_per_cell", cfg.compute_per_cell);
  if (!finish_params(reader, "sweep3d", error)) return {};
  return motifs::build_sweep3d(cfg);
}

std::vector<motifs::RankProgram> build_incast_spec(const ScenarioSpec& spec,
                                                   std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::IncastConfig cfg;
  cfg.clients = reader.get_int("clients", std::max(1, spec.nodes - 1));
  cfg.messages_per_client =
      reader.get_int("messages_per_client", cfg.messages_per_client);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.client_compute =
      reader.get_duration("client_compute", cfg.client_compute);
  if (!finish_params(reader, "incast", error)) return {};
  return motifs::build_incast(cfg);
}

std::vector<motifs::RankProgram> build_barrier_spec(const ScenarioSpec& spec,
                                                    std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::BarrierConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  if (!finish_params(reader, "barrier", error)) return {};
  return motifs::build_barrier(cfg);
}

std::vector<motifs::RankProgram> build_allreduce_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::AllReduceConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  cfg.reduce_per_byte =
      reader.get_duration("reduce_per_byte", cfg.reduce_per_byte);
  if (!finish_params(reader, "allreduce", error)) return {};
  return motifs::build_allreduce(cfg);
}

std::vector<motifs::RankProgram> build_broadcast_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::BroadcastConfig cfg;
  cfg.ranks = spec.nodes;
  cfg.root = reader.get_int("root", cfg.root);
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  if (!finish_params(reader, "broadcast", error)) return {};
  return motifs::build_broadcast(cfg);
}

// API-layer motif builders: validate params, return a motifs::ApiMotif.
// The paper MTU (4096B NIC default) bounds single-packet records.

std::unique_ptr<motifs::ApiMotif> build_remote_paging_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::RemotePagingConfig cfg;
  cfg.seed = spec.seed;
  cfg.page_bytes = reader.get_size("page_bytes", cfg.page_bytes);
  cfg.pages_per_rank = reader.get_int("pages_per_rank", cfg.pages_per_rank);
  cfg.faults = reader.get_int("faults", cfg.faults);
  cfg.think = reader.get_duration("think", cfg.think);
  if (!finish_params(reader, "remote_paging", error)) return nullptr;
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = std::string("remote_paging: ") + msg;
    return nullptr;
  };
  if (spec.nodes < 2) return fail("needs >= 2 nodes");
  if (cfg.page_bytes == 0) return fail("page_bytes must be > 0");
  if (cfg.pages_per_rank < 1) return fail("pages_per_rank must be >= 1");
  if (cfg.faults < 0) return fail("faults must be >= 0");
  return std::make_unique<motifs::RemotePagingMotif>(cfg);
}

std::unique_ptr<motifs::ApiMotif> build_kv_store_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::KvStoreConfig cfg;
  cfg.seed = spec.seed;
  cfg.servers = reader.get_int("servers", std::max(1, spec.nodes / 4));
  cfg.requests = reader.get_int("requests", cfg.requests);
  cfg.value_bytes = reader.get_size("value_bytes", cfg.value_bytes);
  cfg.outstanding = reader.get_int("outstanding", cfg.outstanding);
  cfg.server_compute =
      reader.get_duration("server_compute", cfg.server_compute);
  if (!finish_params(reader, "kv_store", error)) return nullptr;
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = std::string("kv_store: ") + msg;
    return nullptr;
  };
  if (cfg.servers < 1) return fail("servers must be >= 1");
  if (spec.nodes <= cfg.servers) return fail("needs at least one client");
  if (cfg.requests < 0) return fail("requests must be >= 0");
  if (cfg.outstanding < 1) return fail("outstanding must be >= 1");
  // One record per request/reply buffer; keep it a single MTU packet.
  if (16 + cfg.value_bytes > 4096)
    return fail("value_bytes too large (record must fit one 4KiB MTU)");
  return std::make_unique<motifs::KvStoreMotif>(cfg);
}

std::unique_ptr<motifs::ApiMotif> build_alltoall_spec(
    const ScenarioSpec& spec, std::string* error) {
  ParamReader reader(spec.motif_params);
  motifs::AllToAllConfig cfg;
  cfg.bytes = reader.get_size("bytes", cfg.bytes);
  cfg.iterations = reader.get_int("iterations", cfg.iterations);
  if (!finish_params(reader, "alltoall", error)) return nullptr;
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = std::string("alltoall: ") + msg;
    return nullptr;
  };
  if (spec.nodes < 2) return fail("needs >= 2 nodes");
  if (cfg.bytes == 0) return fail("bytes must be > 0");
  if (cfg.iterations < 1 || cfg.iterations > 512)
    return fail("iterations must be in [1, 512]");
  return std::make_unique<motifs::AllToAllMotif>(cfg);
}

MotifEntry api_entry(std::string description,
                     std::unique_ptr<motifs::ApiMotif> (*build_api)(
                         const ScenarioSpec&, std::string*)) {
  MotifEntry entry;
  entry.description = std::move(description);
  entry.build_api = build_api;
  return entry;
}

}  // namespace

void register_builtin_motifs(Registry<MotifEntry>& reg) {
  reg.add("remote_paging",
          api_entry("page faults served by remote 4KiB rvma_get fetches",
                    build_remote_paging_spec));
  reg.add("kv_store",
          api_entry("closed-loop KV clients vs catch-all mailbox servers",
                    build_kv_store_spec));
  reg.add("alltoall",
          api_entry("full personalized exchange, one window per iteration",
                    build_alltoall_spec));
  reg.add("halo3d", {"3-D face exchange, bandwidth-bound (paper Fig. 8)",
                     build_halo3d_spec});
  reg.add("sweep3d", {"KBA wavefront sweep, latency-bound (paper Fig. 7)",
                      build_sweep3d_spec});
  reg.add("incast", {"many clients to one server mailbox", build_incast_spec});
  reg.add("barrier",
          {"dissemination barrier, log2(n) signal rounds", build_barrier_spec});
  reg.add("allreduce",
          {"ring allreduce: reduce-scatter + allgather", build_allreduce_spec});
  reg.add("broadcast",
          {"binomial-tree broadcast from a root rank", build_broadcast_spec});
}

}  // namespace rvma::scenario
