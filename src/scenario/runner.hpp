// ScenarioRunner: materialize and execute one ScenarioSpec.
//
// The single place a declarative spec becomes a live simulation: resolve
// the topology/transport/motif names through the registries, assemble the
// Cluster (composition root, src/cluster), run the motif, and return
// everything observable — makespan, fabric stats, the merged metrics
// snapshot, and the sampled timeseries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_io.hpp"
#include "obs/sampler.hpp"
#include "scenario/spec.hpp"

namespace rvma::scenario {

/// Everything observable from one scenario run, for table printing and
/// the jobs=N vs jobs=1 determinism checks.
struct ScenarioResult {
  Time makespan = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t route_cache_hits = 0;
  std::uint64_t engine_events = 0;
  /// Events recorded into the per-run sink; 0 when the run used the
  /// process-default sink (per-run attribution impossible there).
  std::uint64_t trace_events = 0;
  /// Full registry dump for the run (counters, gauge high-waters,
  /// histograms) — mergeable across grids in grid order.
  obs::MetricsSnapshot metrics;
  /// Sampled gauge timeseries; empty unless spec.sample_period > 0.
  obs::Timeseries series;

  bool operator==(const ScenarioResult&) const = default;
};

/// Host-side timing and memory for one run. Deliberately NOT part of
/// ScenarioResult: wall clocks differ run-to-run, and ScenarioResult's
/// defaulted operator== anchors the jobs=N vs jobs=1 and shards=K vs
/// serial byte-identity gates.
struct RunTiming {
  double construct_wall_s = 0;  ///< Cluster build (topology + routes + NICs)
  double sim_wall_s = 0;        ///< motif execution only
  std::size_t route_table_bytes = 0;  ///< resident static-route bytes, all shards
  std::size_t peak_rss_bytes = 0;     ///< process VmHWM after the run
};

/// Resolve every registry name in `spec` and build the motif programs
/// once, without running anything. Returns false with *error set on an
/// unknown topology/routing/transport/motif or bad motif params — call
/// before fanning a grid out so workers cannot fail mid-sweep.
bool validate_scenario(const ScenarioSpec& spec, std::string* error);

/// Run one scenario. When `trace_sink` is non-null it becomes the run's
/// engine sink (per-run isolation); null keeps the process default.
/// `eng_id` is stamped into every trace record so analyses can separate
/// runs sharing one sink; grid runners pass the run index.
bool run_scenario(const ScenarioSpec& spec, ScenarioResult* out,
                  std::string* error, Tracer* trace_sink = nullptr,
                  std::int64_t eng_id = 0, RunTiming* timing = nullptr);

/// Metrics document for a single (non-grid) run.
obs::MetricsDoc build_scenario_metrics_doc(const ScenarioSpec& spec,
                                           const ScenarioResult& result);

}  // namespace rvma::scenario
