// Name-keyed backend registries: topologies, transports, motifs.
//
// A ScenarioSpec references backends by name; these registries resolve
// the names to factories. Builtins self-register on first access (lazy
// registration from inside the library — static-initializer registration
// in a static library would be discarded by the linker), and tests or
// extensions can add entries at runtime. Entries carry one-line
// descriptions surfaced by `rvma_run --list`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "motifs/api_motif.hpp"
#include "motifs/runner.hpp"
#include "net/topology.hpp"
#include "scenario/spec.hpp"

namespace rvma::scenario {

struct TopologyEntry {
  net::TopologyKind kind = net::TopologyKind::kStar;
  std::string description;
};

struct TransportEntry {
  std::string description;
  /// Build the transport over an assembled cluster; the spec supplies
  /// backend knobs (rdma_slots, routing for the ordered-network choice).
  std::function<std::unique_ptr<motifs::Transport>(
      cluster::Cluster& cluster, const ScenarioSpec& spec)>
      make;
};

struct MotifEntry {
  std::string description;
  /// Build per-rank programs for spec.nodes ranks from spec.motif_params.
  /// Must be pure (no shared mutable state): parallel grids call it from
  /// several worker threads. Returns an empty vector with *error set on
  /// bad parameters.
  std::function<std::vector<motifs::RankProgram>(const ScenarioSpec& spec,
                                                 std::string* error)>
      build;
  /// API-layer motif: when set, `build` is unused and run_scenario runs
  /// the returned motif directly against the public rvma.h surface. The
  /// spec's transport field is ignored for these motifs — the API layer
  /// *is* the transport (see motifs/api_motif.hpp). Same purity contract
  /// as `build`; returns nullptr with *error set on bad parameters.
  std::function<std::unique_ptr<motifs::ApiMotif>(const ScenarioSpec& spec,
                                                  std::string* error)>
      build_api{};
};

template <typename Entry>
class Registry {
 public:
  void add(const std::string& name, Entry entry) {
    entries_[name] = std::move(entry);
  }
  const Entry* find(const std::string& name) const {
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
  }
  /// Sorted (name, entry) view for --list and the registry smoke tests.
  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  std::map<std::string, Entry> entries_;
};

/// Singletons with builtins pre-registered.
Registry<TopologyEntry>& topologies();
Registry<TransportEntry>& transports();
Registry<MotifEntry>& motifs_registry();

/// Parse "static" / "adaptive" (also accepts the figure label "DOR" for
/// static dimension-order routing). Returns false on unknown names.
bool parse_routing(const std::string& name, net::Routing* out);

// Builtin registration hooks, one per backend family; called once from
// the singleton accessors. Defined next to the backends they register.
void register_builtin_topologies(Registry<TopologyEntry>& reg);
void register_builtin_transports(Registry<TransportEntry>& reg);
void register_builtin_motifs(Registry<MotifEntry>& reg);

}  // namespace rvma::scenario
