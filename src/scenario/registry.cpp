#include "scenario/registry.hpp"

namespace rvma::scenario {

Registry<TopologyEntry>& topologies() {
  static Registry<TopologyEntry>* reg = [] {
    auto* r = new Registry<TopologyEntry>();
    register_builtin_topologies(*r);
    return r;
  }();
  return *reg;
}

Registry<TransportEntry>& transports() {
  static Registry<TransportEntry>* reg = [] {
    auto* r = new Registry<TransportEntry>();
    register_builtin_transports(*r);
    return r;
  }();
  return *reg;
}

Registry<MotifEntry>& motifs_registry() {
  static Registry<MotifEntry>* reg = [] {
    auto* r = new Registry<MotifEntry>();
    register_builtin_motifs(*r);
    return r;
  }();
  return *reg;
}

bool parse_routing(const std::string& name, net::Routing* out) {
  if (name == "static" || name == "DOR") {
    *out = net::Routing::kStatic;
    return true;
  }
  if (name == "adaptive") {
    *out = net::Routing::kAdaptive;
    return true;
  }
  return false;
}

void register_builtin_topologies(Registry<TopologyEntry>& reg) {
  reg.add("star", {net::TopologyKind::kStar,
                   "single switch, every node one hop away"});
  reg.add("torus3d", {net::TopologyKind::kTorus3D,
                      "3-D torus, dimension-order or adaptive routing"});
  reg.add("fattree", {net::TopologyKind::kFatTree,
                      "k-ary 3-level fat-tree, full bisection"});
  reg.add("dragonfly", {net::TopologyKind::kDragonfly,
                        "dragonfly groups with global links"});
  reg.add("hyperx", {net::TopologyKind::kHyperX,
                     "2-D HyperX lattice, DOR or adaptive routing"});
}

}  // namespace rvma::scenario
