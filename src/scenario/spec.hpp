// ScenarioSpec: one declarative description of one simulation run.
//
// A scenario names everything an experiment needs — topology + routing +
// link parameters, transport backend, motif + parameters, seed, sampling
// and output paths — as plain data. Specs round-trip through a canonical
// JSON form (same byte-stability discipline as rvma-metrics-v1): parsing
// a written spec and re-writing it reproduces the bytes exactly, so specs
// can anchor golden tests and be diffed meaningfully. CLI flags overlay
// onto a parsed spec (--nodes=64, --motif.vars=8, ...), keeping every
// field reachable from both files and the command line.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/units.hpp"

namespace rvma::scenario {

inline constexpr const char* kScenarioSchema = "rvma-scenario-v1";
inline constexpr const char* kGridSchema = "rvma-scenario-grid-v1";

/// Motif parameters as a sorted name -> value map. Values are unit
/// strings ("32", "50ps", "16KiB") parsed with the src/common/units
/// parsers when the motif builder reads them.
using MotifParams = std::map<std::string, std::string>;

struct ScenarioSpec {
  std::string name;  ///< optional label, carried into outputs

  // ---- topology ----
  std::string topology = "star";    ///< TopologyRegistry key
  std::string routing = "static";   ///< "static" | "adaptive"
  int nodes = 2;
  Bandwidth link_bandwidth = Bandwidth::gbps(100);
  Time link_latency = 100 * kNanosecond;
  /// Latency for the topology's long link tier (torus wrap-around,
  /// dragonfly global, fat-tree agg<->core, HyperX dim-1); 0 keeps every
  /// link at link_latency. See net::NetworkConfig::long_link_latency.
  Time long_link_latency = 0;
  Time switch_latency = 100 * kNanosecond;
  double xbar_factor = 1.5;  ///< crossbar bw = factor * link bw (paper §V-B1)
  int concentration = 1;     ///< endpoints per switch where applicable
  /// Express cut-through ablation; disabling it must not change results.
  bool express = true;
  /// Static next-hop resolution: "algebraic" (O(1) coordinate arithmetic,
  /// zero route-table bytes) or "materialized" (the full O(S*N) LUT
  /// ablation). Results are bit-identical either way; only memory and
  /// construction time move. Ignored under adaptive routing.
  std::string route_table = "algebraic";

  // ---- transport ----
  std::string transport = "rvma";  ///< TransportRegistry key
  /// RDMA credit-pipeline depth (registered slots per channel); read only
  /// by the rdma backend.
  int rdma_slots = 2;
  /// NIC doorbell batching depth (nic::NicParams::doorbell_batch): how
  /// many send descriptors may ride one PCIe doorbell crossing. 1 rings
  /// per message and reproduces the unbatched model byte-for-byte.
  int doorbell_batch = 1;

  // ---- motif ----
  std::string motif = "halo3d";  ///< MotifRegistry key
  MotifParams motif_params;

  // ---- run ----
  std::uint64_t seed = 2021;
  /// Parallel engine shards (conservative PDES; DESIGN.md §12). 1 runs
  /// serial; K > 1 shards the switches over K lock-step worker engines.
  /// Results are bit-identical either way — this knob only trades wall
  /// clock. Clamped back to 1 whenever exact sharding is impossible
  /// (adaptive routing, sampling, tracing, zero lookahead).
  int par_shards = 1;
  /// Simulated-time gauge sampling period; 0 disables sampling.
  Time sample_period = 0;

  // ---- outputs ----
  std::string metrics_path;  ///< write rvma-metrics-v1 doc here when set
  /// Write the flight recorder's binary "RVFR1" span dump here when set.
  /// Arming the recorder is purely passive — it never changes tables,
  /// metrics, or traces (obs/flight_recorder.hpp), so this field is an
  /// output path, not a simulation parameter.
  std::string flight_recorder_path;
  /// Per-shard recorder ring capacity in records; 0 uses the default
  /// (obs::FlightRecorder::kDefaultCapacity). Oldest records are
  /// overwritten once the ring fills.
  std::uint64_t flight_recorder_capacity = 0;
  /// Write the PDES runtime profile (rvma-metrics-v1 doc: per-shard
  /// utilization, barrier wait, window stride) here when set. Wall-clock
  /// values differ run to run, which is why the profile is a separate
  /// document and never part of the run metrics.
  std::string pdes_profile_path;

  bool operator==(const ScenarioSpec&) const = default;
};

/// A figure-style grid: one base scenario swept over (topology case x
/// link speed x {rdma, rvma}). Expanding a grid yields one ScenarioSpec
/// per cell half, each with its coordinate-derived seed.
struct GridSpec {
  std::string figure = "grid";      ///< table/doc header, e.g. "Figure 8"
  std::string motif_label;          ///< display name, e.g. "Halo3D"
  ScenarioSpec base;                ///< transport/topology fields overridden per cell
  /// Topology-routing case names ("torus3d-static", "hyperx-DOR", ...).
  std::vector<std::string> cases;
  std::vector<double> gbps = {100, 200, 400, 2000};

  bool operator==(const GridSpec&) const = default;
};

/// Canonical JSON rendering: fixed key order, unit strings from the
/// canonical_* writers, two-space indentation. write(parse(write(s))) ==
/// write(s) for every representable spec.
std::string to_json(const ScenarioSpec& spec);
std::string to_json(const GridSpec& grid);

/// Parse a scenario document. Returns false with *error set on malformed
/// JSON, wrong schema, or unparsable unit strings.
bool spec_from_json(const std::string& text, ScenarioSpec* out,
                    std::string* error);
bool grid_from_json(const std::string& text, GridSpec* out,
                    std::string* error);

/// True when `text` carries the grid schema (dispatch helper for tools
/// that accept either document kind).
bool looks_like_grid(const std::string& text);

/// Overlay CLI flags onto `spec`: --name, --topology, --routing, --nodes,
/// --bandwidth, --link-latency, --long-link-latency, --switch-latency,
/// --xbar-factor,
/// --concentration, --no-express/--express, --route-table, --transport,
/// --rdma-slots, --doorbell-batch, --motif, --motif.<param>=<value>,
/// --seed, --par-shards,
/// --sample-period, --metrics, --flight-recorder,
/// --flight-recorder-capacity, --pdes-profile.
/// Flags win over file values. Returns false with *error set on
/// unparsable values.
bool apply_cli_overlay(const Cli& cli, ScenarioSpec* spec,
                       std::string* error);

/// Typed readers over MotifParams; each returns the default when the key
/// is absent and records the key as consumed. `bad` collects keys whose
/// values failed to parse.
class ParamReader {
 public:
  explicit ParamReader(const MotifParams& params) : params_(&params) {}

  int get_int(const std::string& key, int fallback);
  double get_double(const std::string& key, double fallback);
  std::uint64_t get_size(const std::string& key, std::uint64_t fallback);
  Time get_duration(const std::string& key, Time fallback);

  /// Keys present in the params but never read — typo'd motif parameters
  /// must fail loudly, not silently simulate the defaults.
  std::vector<std::string> unconsumed() const;
  const std::vector<std::string>& bad_values() const { return bad_; }
  bool ok() const { return bad_.empty(); }

 private:
  const std::string* raw(const std::string& key);

  const MotifParams* params_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> bad_;
};

}  // namespace rvma::scenario
