#include "scenario/spec.hpp"

#include <charconv>
#include <cstdlib>

#include "obs/json.hpp"

namespace rvma::scenario {

namespace {

/// Shortest decimal rendering that parses back to exactly `v` — the same
/// discipline as the canonical unit writers in src/common/units.
std::string shortest_double(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  std::string s(buf, ptr);
  // JSON number, not a C++ literal: keep it parseable as a double but
  // stable ("1.5" stays "1.5", "2" stays "2").
  return s;
}

void append_quoted(std::string* out, const std::string& s) {
  obs::json_append_escaped(out, s);
}

/// Scenario object body in fixed canonical key order. `indent` is the
/// prefix for member lines (top-level doc: "  "; nested grid base: "    ").
void append_spec_object(std::string* out, const ScenarioSpec& spec,
                        const std::string& indent) {
  const std::string in2 = indent + "  ";
  const std::string in3 = in2 + "  ";
  out->append("{\n");
  if (!spec.name.empty()) {
    out->append(in2).append("\"name\": ");
    append_quoted(out, spec.name);
    out->append(",\n");
  }
  out->append(in2).append("\"topology\": {\n");
  out->append(in3).append("\"kind\": ");
  append_quoted(out, spec.topology);
  out->append(",\n");
  out->append(in3).append("\"routing\": ");
  append_quoted(out, spec.routing);
  out->append(",\n");
  out->append(in3).append("\"nodes\": ").append(std::to_string(spec.nodes));
  out->append(",\n");
  out->append(in3).append("\"link_bandwidth\": ");
  append_quoted(out, canonical_bandwidth(spec.link_bandwidth));
  out->append(",\n");
  out->append(in3).append("\"link_latency\": ");
  append_quoted(out, canonical_duration(spec.link_latency));
  out->append(",\n");
  out->append(in3).append("\"switch_latency\": ");
  append_quoted(out, canonical_duration(spec.switch_latency));
  out->append(",\n");
  out->append(in3).append("\"xbar_factor\": ")
      .append(shortest_double(spec.xbar_factor))
      .append(",\n");
  out->append(in3).append("\"concentration\": ")
      .append(std::to_string(spec.concentration))
      .append(",\n");
  out->append(in3).append("\"express\": ")
      .append(spec.express ? "true" : "false");
  // Default-valued long_link_latency and route_table are omitted so
  // pre-existing specs (and their golden bytes) round-trip unchanged.
  if (spec.long_link_latency != 0) {
    out->append(",\n").append(in3).append("\"long_link_latency\": ");
    append_quoted(out, canonical_duration(spec.long_link_latency));
  }
  if (spec.route_table != "algebraic") {
    out->append(",\n").append(in3).append("\"route_table\": ");
    append_quoted(out, spec.route_table);
  }
  out->append("\n");
  out->append(in2).append("},\n");
  out->append(in2).append("\"transport\": {\n");
  out->append(in3).append("\"kind\": ");
  append_quoted(out, spec.transport);
  out->append(",\n");
  out->append(in3).append("\"rdma_slots\": ")
      .append(std::to_string(spec.rdma_slots));
  // Default-valued doorbell_batch is omitted so pre-existing specs (and
  // their golden bytes) round-trip unchanged.
  if (spec.doorbell_batch != 1) {
    out->append(",\n").append(in3).append("\"doorbell_batch\": ")
        .append(std::to_string(spec.doorbell_batch));
  }
  out->append("\n");
  out->append(in2).append("},\n");
  out->append(in2).append("\"motif\": {\n");
  out->append(in3).append("\"kind\": ");
  append_quoted(out, spec.motif);
  if (spec.motif_params.empty()) {
    out->append("\n");
  } else {
    out->append(",\n");
    out->append(in3).append("\"params\": {\n");
    std::size_t i = 0;
    for (const auto& [key, value] : spec.motif_params) {
      out->append(in3).append("  ");
      append_quoted(out, key);
      out->append(": ");
      append_quoted(out, value);
      out->append(++i < spec.motif_params.size() ? ",\n" : "\n");
    }
    out->append(in3).append("}\n");
  }
  out->append(in2).append("},\n");
  out->append(in2).append("\"seed\": ").append(std::to_string(spec.seed));
  out->append(",\n");
  // Default-valued par_shards is omitted so pre-existing specs (and their
  // golden bytes) round-trip unchanged.
  if (spec.par_shards != 1) {
    out->append(in2).append("\"par_shards\": ")
        .append(std::to_string(spec.par_shards));
    out->append(",\n");
  }
  out->append(in2).append("\"sample_period\": ");
  append_quoted(out, canonical_duration(spec.sample_period));
  if (!spec.metrics_path.empty()) {
    out->append(",\n").append(in2).append("\"metrics\": ");
    append_quoted(out, spec.metrics_path);
  }
  // Like route_table/par_shards: output fields default to off and are
  // omitted then, keeping pre-existing specs' golden bytes unchanged.
  if (!spec.flight_recorder_path.empty()) {
    out->append(",\n").append(in2).append("\"flight_recorder\": ");
    append_quoted(out, spec.flight_recorder_path);
  }
  if (spec.flight_recorder_capacity != 0) {
    out->append(",\n")
        .append(in2)
        .append("\"flight_recorder_capacity\": ")
        .append(std::to_string(spec.flight_recorder_capacity));
  }
  if (!spec.pdes_profile_path.empty()) {
    out->append(",\n").append(in2).append("\"pdes_profile\": ");
    append_quoted(out, spec.pdes_profile_path);
  }
  out->append("\n").append(indent).append("}");
}

bool parse_spec_object(const obs::JsonValue& root, ScenarioSpec* out,
                       std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!root.is_object()) return fail("scenario: not a JSON object");
  ScenarioSpec spec;
  if (const auto* v = root.find("name")) spec.name = v->string;
  const auto* topo = root.find("topology");
  if (topo != nullptr) {
    if (!topo->is_object()) return fail("scenario: topology is not an object");
    if (const auto* v = topo->find("kind")) spec.topology = v->string;
    if (const auto* v = topo->find("routing")) spec.routing = v->string;
    if (const auto* v = topo->find("nodes"))
      spec.nodes = static_cast<int>(v->as_i64(spec.nodes));
    if (const auto* v = topo->find("link_bandwidth")) {
      if (!parse_bandwidth(v->string, &spec.link_bandwidth))
        return fail("scenario: bad link_bandwidth \"" + v->string + "\"");
    }
    if (const auto* v = topo->find("link_latency")) {
      if (!parse_duration(v->string, &spec.link_latency))
        return fail("scenario: bad link_latency \"" + v->string + "\"");
    }
    if (const auto* v = topo->find("long_link_latency")) {
      if (!parse_duration(v->string, &spec.long_link_latency))
        return fail("scenario: bad long_link_latency \"" + v->string + "\"");
    }
    if (const auto* v = topo->find("switch_latency")) {
      if (!parse_duration(v->string, &spec.switch_latency))
        return fail("scenario: bad switch_latency \"" + v->string + "\"");
    }
    if (const auto* v = topo->find("xbar_factor"))
      spec.xbar_factor = v->as_double(spec.xbar_factor);
    if (const auto* v = topo->find("concentration"))
      spec.concentration = static_cast<int>(v->as_i64(spec.concentration));
    if (const auto* v = topo->find("express"))
      spec.express = v->boolean;
    if (const auto* v = topo->find("route_table")) {
      spec.route_table = v->string;
      if (spec.route_table != "algebraic" && spec.route_table != "materialized")
        return fail("scenario: bad route_table \"" + spec.route_table + "\"");
    }
  }
  const auto* transport = root.find("transport");
  if (transport != nullptr) {
    if (!transport->is_object())
      return fail("scenario: transport is not an object");
    if (const auto* v = transport->find("kind")) spec.transport = v->string;
    if (const auto* v = transport->find("rdma_slots"))
      spec.rdma_slots = static_cast<int>(v->as_i64(spec.rdma_slots));
    if (const auto* v = transport->find("doorbell_batch")) {
      spec.doorbell_batch = static_cast<int>(v->as_i64(spec.doorbell_batch));
      if (spec.doorbell_batch < 1)
        return fail("scenario: doorbell_batch must be >= 1");
    }
  }
  const auto* motif = root.find("motif");
  if (motif != nullptr) {
    if (!motif->is_object()) return fail("scenario: motif is not an object");
    if (const auto* v = motif->find("kind")) spec.motif = v->string;
    if (const auto* params = motif->find("params")) {
      if (!params->is_object())
        return fail("scenario: motif params is not an object");
      for (const auto& [key, value] : params->object) {
        if (!value.is_string())
          return fail("scenario: motif param \"" + key +
                      "\" must be a string");
        spec.motif_params[key] = value.string;
      }
    }
  }
  if (const auto* v = root.find("seed")) spec.seed = v->as_u64(spec.seed);
  if (const auto* v = root.find("par_shards")) {
    spec.par_shards = static_cast<int>(
        v->as_u64(static_cast<std::uint64_t>(spec.par_shards)));
    if (spec.par_shards < 1)
      return fail("scenario: par_shards must be >= 1");
  }
  if (const auto* v = root.find("sample_period")) {
    if (!parse_duration(v->string, &spec.sample_period))
      return fail("scenario: bad sample_period \"" + v->string + "\"");
  }
  if (const auto* v = root.find("metrics")) spec.metrics_path = v->string;
  if (const auto* v = root.find("flight_recorder"))
    spec.flight_recorder_path = v->string;
  if (const auto* v = root.find("flight_recorder_capacity"))
    spec.flight_recorder_capacity = v->as_u64(spec.flight_recorder_capacity);
  if (const auto* v = root.find("pdes_profile"))
    spec.pdes_profile_path = v->string;
  *out = std::move(spec);
  return true;
}

}  // namespace

std::string to_json(const ScenarioSpec& spec) {
  std::string out;
  out.append("{\n  \"format\": ");
  append_quoted(&out, kScenarioSchema);
  out.append(",\n  \"scenario\": ");
  append_spec_object(&out, spec, "  ");
  out.append("\n}\n");
  return out;
}

std::string to_json(const GridSpec& grid) {
  std::string out;
  out.append("{\n  \"format\": ");
  append_quoted(&out, kGridSchema);
  out.append(",\n  \"figure\": ");
  append_quoted(&out, grid.figure);
  out.append(",\n  \"motif_label\": ");
  append_quoted(&out, grid.motif_label);
  out.append(",\n  \"cases\": [");
  for (std::size_t i = 0; i < grid.cases.size(); ++i) {
    if (i > 0) out.append(", ");
    append_quoted(&out, grid.cases[i]);
  }
  out.append("],\n  \"gbps\": [");
  for (std::size_t i = 0; i < grid.gbps.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(shortest_double(grid.gbps[i]));
  }
  out.append("],\n  \"base\": ");
  append_spec_object(&out, grid.base, "  ");
  out.append("\n}\n");
  return out;
}

bool spec_from_json(const std::string& text, ScenarioSpec* out,
                    std::string* error) {
  obs::JsonValue root;
  if (!obs::json_parse(text, &root, error)) return false;
  const auto* format = root.find("format");
  if (format == nullptr || format->string != kScenarioSchema) {
    if (error != nullptr)
      *error = std::string("scenario: expected format \"") + kScenarioSchema +
               "\"";
    return false;
  }
  const auto* spec = root.find("scenario");
  if (spec == nullptr) {
    if (error != nullptr) *error = "scenario: missing \"scenario\" object";
    return false;
  }
  return parse_spec_object(*spec, out, error);
}

bool grid_from_json(const std::string& text, GridSpec* out,
                    std::string* error) {
  obs::JsonValue root;
  if (!obs::json_parse(text, &root, error)) return false;
  const auto* format = root.find("format");
  if (format == nullptr || format->string != kGridSchema) {
    if (error != nullptr)
      *error = std::string("grid: expected format \"") + kGridSchema + "\"";
    return false;
  }
  GridSpec grid;
  if (const auto* v = root.find("figure")) grid.figure = v->string;
  if (const auto* v = root.find("motif_label")) grid.motif_label = v->string;
  if (const auto* v = root.find("cases")) {
    grid.cases.clear();
    for (const auto& item : v->array) grid.cases.push_back(item.string);
  }
  if (const auto* v = root.find("gbps")) {
    grid.gbps.clear();
    for (const auto& item : v->array) grid.gbps.push_back(item.as_double());
  }
  const auto* base = root.find("base");
  if (base == nullptr) {
    if (error != nullptr) *error = "grid: missing \"base\" scenario";
    return false;
  }
  if (!parse_spec_object(*base, &grid.base, error)) return false;
  *out = std::move(grid);
  return true;
}

bool looks_like_grid(const std::string& text) {
  obs::JsonValue root;
  std::string error;
  if (!obs::json_parse(text, &root, &error)) return false;
  const auto* format = root.find("format");
  return format != nullptr && format->string == kGridSchema;
}

bool apply_cli_overlay(const Cli& cli, ScenarioSpec* spec,
                       std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  spec->name = cli.get("name", spec->name);
  spec->topology = cli.get("topology", spec->topology);
  spec->routing = cli.get("routing", spec->routing);
  spec->nodes = static_cast<int>(cli.get_int("nodes", spec->nodes));
  if (cli.has("bandwidth")) {
    const std::string text = cli.get("bandwidth", "");
    if (!parse_bandwidth(text, &spec->link_bandwidth))
      return fail("bad --bandwidth \"" + text + "\"");
  }
  if (cli.has("link-latency")) {
    const std::string text = cli.get("link-latency", "");
    if (!parse_duration(text, &spec->link_latency))
      return fail("bad --link-latency \"" + text + "\"");
  }
  if (cli.has("long-link-latency")) {
    const std::string text = cli.get("long-link-latency", "");
    if (!parse_duration(text, &spec->long_link_latency))
      return fail("bad --long-link-latency \"" + text + "\"");
  }
  if (cli.has("switch-latency")) {
    const std::string text = cli.get("switch-latency", "");
    if (!parse_duration(text, &spec->switch_latency))
      return fail("bad --switch-latency \"" + text + "\"");
  }
  spec->xbar_factor = cli.get_double("xbar-factor", spec->xbar_factor);
  spec->concentration =
      static_cast<int>(cli.get_int("concentration", spec->concentration));
  if (cli.get_bool("no-express", false)) spec->express = false;
  if (cli.has("express")) spec->express = cli.get_bool("express", true);
  spec->route_table = cli.get("route-table", spec->route_table);
  if (spec->route_table != "algebraic" && spec->route_table != "materialized")
    return fail("bad --route-table \"" + spec->route_table +
                "\" (want algebraic|materialized)");
  spec->transport = cli.get("transport", spec->transport);
  spec->rdma_slots =
      static_cast<int>(cli.get_int("rdma-slots", spec->rdma_slots));
  spec->doorbell_batch =
      static_cast<int>(cli.get_int("doorbell-batch", spec->doorbell_batch));
  if (spec->doorbell_batch < 1)
    return fail("bad --doorbell-batch (must be >= 1)");
  spec->motif = cli.get("motif", spec->motif);
  for (const auto& [key, value] : cli.take_prefixed("motif.")) {
    spec->motif_params[key] = value;
  }
  spec->seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(spec->seed)));
  spec->par_shards =
      static_cast<int>(cli.get_int("par-shards", spec->par_shards));
  if (spec->par_shards < 1)
    return fail("bad --par-shards (must be >= 1)");
  if (cli.has("sample-period")) {
    const std::string text = cli.get("sample-period", "");
    if (!parse_duration(text, &spec->sample_period))
      return fail("bad --sample-period \"" + text + "\"");
  }
  spec->metrics_path = cli.get("metrics", spec->metrics_path);
  spec->flight_recorder_path =
      cli.get("flight-recorder", spec->flight_recorder_path);
  spec->flight_recorder_capacity = static_cast<std::uint64_t>(cli.get_int(
      "flight-recorder-capacity",
      static_cast<std::int64_t>(spec->flight_recorder_capacity)));
  spec->pdes_profile_path = cli.get("pdes-profile", spec->pdes_profile_path);
  return true;
}

const std::string* ParamReader::raw(const std::string& key) {
  consumed_[key] = true;
  const auto it = params_->find(key);
  return it == params_->end() ? nullptr : &it->second;
}

int ParamReader::get_int(const std::string& key, int fallback) {
  const std::string* text = raw(key);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0') {
    bad_.push_back(key);
    return fallback;
  }
  return static_cast<int>(value);
}

double ParamReader::get_double(const std::string& key, double fallback) {
  const std::string* text = raw(key);
  if (text == nullptr) return fallback;
  // from_chars, not strtod: locale-independent parsing so a comma-decimal
  // LC_NUMERIC cannot alter what a spec's "2.5" means (byte-stability).
  const char* first = text->data();
  const char* last = text->data() + text->size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || first == last) {
    bad_.push_back(key);
    return fallback;
  }
  return value;
}

std::uint64_t ParamReader::get_size(const std::string& key,
                                    std::uint64_t fallback) {
  const std::string* text = raw(key);
  if (text == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!parse_size(*text, &value)) {
    bad_.push_back(key);
    return fallback;
  }
  return value;
}

Time ParamReader::get_duration(const std::string& key, Time fallback) {
  const std::string* text = raw(key);
  if (text == nullptr) return fallback;
  Time value = 0;
  if (!parse_duration(*text, &value)) {
    bad_.push_back(key);
    return fallback;
  }
  return value;
}

std::vector<std::string> ParamReader::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : *params_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rvma::scenario
