#include "scenario/transports.hpp"

#include <algorithm>
#include <cassert>

#include "motifs/rdma_transport.hpp"
#include "motifs/rvma_transport.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

// ---------------------------------------------------------------- sockets

SocketsTransport::SocketsTransport(cluster::Cluster& cluster,
                                   const sockets::SocketParams& params)
    : cluster_(cluster) {
  endpoints_.reserve(cluster.num_nodes());
  stacks_.reserve(cluster.num_nodes());
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    endpoints_.push_back(std::make_unique<core::RvmaEndpoint>(
        cluster.nic(node), core::RvmaParams{}));
    stacks_.push_back(
        std::make_unique<sockets::SocketStack>(*endpoints_.back(), params));
  }
}

SocketsTransport::ChannelState& SocketsTransport::state(int src, int dst,
                                                        std::uint64_t tag) {
  const auto it = channels_.find({src, dst, tag});
  assert(it != channels_.end() && "undeclared channel");
  return it->second;
}

void SocketsTransport::setup(const std::vector<motifs::Channel>& channels,
                             std::function<void()> ready) {
  std::uint64_t max_bytes = 0;
  std::uint16_t port = 1;
  // One listening port per channel so concurrent connects cannot cross:
  // channel index -> port, assigned in declaration order. Setup is done
  // only when every accept AND every connect ACK has landed — the sender
  // side must hold its ConnId before the motif's first send.
  auto pending = std::make_shared<int>(2 * static_cast<int>(channels.size()));
  auto maybe_ready = [this, pending, ready]() {
    if (--*pending == 0) cluster_.engine().schedule(0, ready);
  };
  for (const motifs::Channel& ch : channels) {
    ChannelState cs;
    cs.ch = ch;
    max_bytes = std::max(max_bytes, ch.bytes);
    auto [it, inserted] =
        channels_.emplace(std::make_tuple(ch.src, ch.dst, ch.tag),
                          std::move(cs));
    assert(inserted && "duplicate channel");
    ChannelState* slot = &it->second;
    stacks_[ch.dst]->listen(port, [slot, maybe_ready](sockets::ConnId id) {
      slot->recv_conn = id;
      maybe_ready();
    });
    stacks_[ch.src]->connect(ch.dst, port,
                             [slot, maybe_ready](sockets::ConnId id) {
                               slot->send_conn = id;
                               maybe_ready();
                             });
    ++port;
  }
  scratch_.assign(max_bytes, std::byte{0});
  if (channels.empty()) cluster_.engine().schedule(0, std::move(ready));
}

void SocketsTransport::recv_post(int, int, std::uint64_t) {
  // Receiver-managed placement: the stack owns its segment ring; arming a
  // receive requires no action and no message (paper §IV-B).
}

void SocketsTransport::send(int src, int dst, std::uint64_t tag,
                            std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  ++stats_.data_messages;
  stacks_[src]->send(cs.send_conn, scratch_.data(), cs.ch.bytes);
  // Stream semantics: the send is fire-and-forget; the sender's buffer is
  // reusable as soon as the stack has staged the put.
  cluster_.engine().schedule(0, std::move(done));
}

void SocketsTransport::drain(ChannelState& cs) {
  sockets::SocketStack& stack = *stacks_[cs.ch.dst];
  while (cs.draining > 0) {
    const std::uint64_t got = stack.recv(
        cs.recv_conn, scratch_.data(),
        std::min<std::uint64_t>(cs.draining, scratch_.size()));
    if (got == 0) break;
    cs.draining -= got;
  }
  if (cs.draining > 0) {
    stack.recv_wait(cs.recv_conn, [this, &cs] { drain(cs); });
    return;
  }
  auto done = std::move(cs.waiters.front());
  cs.waiters.pop_front();
  done();
  // Start the next queued message drain, if any.
  if (!cs.waiters.empty()) {
    cs.draining = cs.ch.bytes;
    drain(cs);
  }
}

void SocketsTransport::recv_wait(int dst, int src, std::uint64_t tag,
                                 std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  cs.waiters.push_back(std::move(done));
  if (cs.waiters.size() == 1) {
    cs.draining = cs.ch.bytes;
    drain(cs);
  }
}

// -------------------------------------------------------------------- rma

RmaTransport::RmaTransport(cluster::Cluster& cluster,
                           const core::RvmaParams& params, int bucket_depth)
    : cluster_(cluster), bucket_depth_(bucket_depth) {
  endpoints_.reserve(cluster.num_nodes());
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    endpoints_.push_back(
        std::make_unique<core::RvmaEndpoint>(cluster.nic(node), params));
  }
}

RmaTransport::ChannelState& RmaTransport::state(int src, int dst,
                                                std::uint64_t tag) {
  const auto it = channels_.find({src, dst, tag});
  assert(it != channels_.end() && "undeclared channel");
  return it->second;
}

void RmaTransport::setup(const std::vector<motifs::Channel>& channels,
                         std::function<void()> ready) {
  for (const motifs::Channel& ch : channels) {
    ChannelState cs;
    cs.ch = ch;
    cs.vaddr = next_vaddr_++;
    cs.remaining_posts = ch.count;
    channels_.emplace(std::make_tuple(ch.src, ch.dst, ch.tag), std::move(cs));
  }
  for (auto& [key, cs_ref] : channels_) {
    ChannelState& cs = cs_ref;
    core::RvmaEndpoint& ep = *endpoints_[cs.ch.dst];
    // One operation per epoch: the message completes when its put has
    // fully arrived, independent of length — op-counted completion.
    ep.init_window(cs.vaddr, 1, core::EpochType::kOps);
    for (int i = 0; i < bucket_depth_ && cs.remaining_posts > 0; ++i) {
      ep.post_buffer_timing_only(cs.vaddr, cs.ch.bytes);
      --cs.remaining_posts;
    }
    ep.set_completion_observer(cs.vaddr, [this, &cs](void*, std::int64_t) {
      ++cs.completed;
      if (cs.remaining_posts > 0) {
        endpoints_[cs.ch.dst]->post_buffer_timing_only(cs.vaddr, cs.ch.bytes);
        --cs.remaining_posts;
      }
      if (!cs.waiters.empty() && cs.completed > cs.consumed) {
        ++cs.consumed;
        auto done = std::move(cs.waiters.front());
        cs.waiters.pop_front();
        done();
      }
    });
  }
  cluster_.engine().schedule(0, std::move(ready));
}

void RmaTransport::recv_post(int, int, std::uint64_t) {}

void RmaTransport::send(int src, int dst, std::uint64_t tag,
                        std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  ++stats_.data_messages;
  endpoints_[src]->put(dst, cs.vaddr, 0, nullptr, cs.ch.bytes,
                       std::move(done));
}

void RmaTransport::recv_wait(int dst, int src, std::uint64_t tag,
                             std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  if (cs.completed > cs.consumed) {
    ++cs.consumed;
    cluster_.engine().schedule(0, std::move(done));
    return;
  }
  cs.waiters.push_back(std::move(done));
}

// ---------------------------------------------------------------- portals

PortalsTransport::PortalsTransport(cluster::Cluster& cluster,
                                   const core::RvmaParams& params,
                                   int bucket_depth)
    : cluster_(cluster), bucket_depth_(bucket_depth) {
  endpoints_.reserve(cluster.num_nodes());
  match_lists_.reserve(cluster.num_nodes());
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    endpoints_.push_back(
        std::make_unique<core::RvmaEndpoint>(cluster.nic(node), params));
    match_lists_.push_back(std::make_unique<portals::MatchList>());
  }
}

PortalsTransport::ChannelState& PortalsTransport::state(int src, int dst,
                                                        std::uint64_t tag) {
  const auto it = channels_.find({src, dst, tag});
  assert(it != channels_.end() && "undeclared channel");
  return it->second;
}

void PortalsTransport::setup(const std::vector<motifs::Channel>& channels,
                             std::function<void()> ready) {
  obs::Counter& traversed =
      cluster_.metrics().counter("portals.entries_traversed");
  obs::Counter& matched = cluster_.metrics().counter("portals.matches");
  for (const motifs::Channel& ch : channels) {
    ChannelState cs;
    cs.ch = ch;
    cs.vaddr = next_vaddr_++;
    cs.remaining_posts = ch.count;
    channels_.emplace(std::make_tuple(ch.src, ch.dst, ch.tag), std::move(cs));
  }
  for (auto& [key, cs_ref] : channels_) {
    ChannelState& cs = cs_ref;
    core::RvmaEndpoint& ep = *endpoints_[cs.ch.dst];
    // The posted receive as a persistent match entry: source-qualified,
    // exact match bits, appended in channel declaration order.
    match_lists_[cs.ch.dst]->append(portals::MatchEntry{
        .match_bits = cs.ch.tag,
        .source = cs.ch.src,
        .use_once = false,
    });
    ep.init_window(cs.vaddr, static_cast<std::int64_t>(cs.ch.bytes),
                   core::EpochType::kBytes);
    for (int i = 0; i < bucket_depth_ && cs.remaining_posts > 0; ++i) {
      ep.post_buffer_timing_only(cs.vaddr, cs.ch.bytes);
      --cs.remaining_posts;
    }
    ep.set_completion_observer(
        cs.vaddr, [this, &cs, &traversed, &matched](void*, std::int64_t) {
          // Model the matching unit's list walk for this arrival and
          // account the entries it touched — the cost a single-lookup
          // LUT never pays.
          portals::MatchList& list = *match_lists_[cs.ch.dst];
          const std::uint64_t before = list.entries_traversed();
          list.match(cs.ch.src, cs.ch.tag);
          traversed.inc(list.entries_traversed() - before);
          matched.inc();
          ++cs.completed;
          if (cs.remaining_posts > 0) {
            endpoints_[cs.ch.dst]->post_buffer_timing_only(cs.vaddr,
                                                           cs.ch.bytes);
            --cs.remaining_posts;
          }
          if (!cs.waiters.empty() && cs.completed > cs.consumed) {
            ++cs.consumed;
            auto done = std::move(cs.waiters.front());
            cs.waiters.pop_front();
            done();
          }
        });
  }
  cluster_.engine().schedule(0, std::move(ready));
}

void PortalsTransport::recv_post(int, int, std::uint64_t) {}

void PortalsTransport::send(int src, int dst, std::uint64_t tag,
                            std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  ++stats_.data_messages;
  endpoints_[src]->put(dst, cs.vaddr, 0, nullptr, cs.ch.bytes,
                       std::move(done));
}

void PortalsTransport::recv_wait(int dst, int src, std::uint64_t tag,
                                 std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  if (cs.completed > cs.consumed) {
    ++cs.consumed;
    cluster_.engine().schedule(0, std::move(done));
    return;
  }
  cs.waiters.push_back(std::move(done));
}

// --------------------------------------------------------- registration

void register_builtin_transports(Registry<TransportEntry>& reg) {
  reg.add("rvma",
          {"RVMA mailboxes: byte-threshold windows, no handshakes",
           [](cluster::Cluster& cluster, const ScenarioSpec&) {
             return std::unique_ptr<motifs::Transport>(
                 std::make_unique<motifs::RvmaTransport>(cluster,
                                                         core::RvmaParams{}));
           }});
  reg.add("rdma",
          {"RDMA baseline: buffer negotiation, credits, CQ completions",
           [](cluster::Cluster& cluster, const ScenarioSpec& spec) {
             net::Routing routing = net::Routing::kStatic;
             parse_routing(spec.routing, &routing);
             return std::unique_ptr<motifs::Transport>(
                 std::make_unique<motifs::RdmaTransport>(
                     cluster, rdma::RdmaParams{},
                     routing == net::Routing::kStatic, spec.rdma_slots));
           }});
  reg.add("sockets",
          {"stream sockets over receiver-managed RVMA mailboxes",
           [](cluster::Cluster& cluster, const ScenarioSpec&) {
             return std::unique_ptr<motifs::Transport>(
                 std::make_unique<SocketsTransport>(cluster,
                                                    sockets::SocketParams{}));
           }});
  reg.add("rma",
          {"op-counted RVMA epochs: one operation completes a message",
           [](cluster::Cluster& cluster, const ScenarioSpec&) {
             return std::unique_ptr<motifs::Transport>(
                 std::make_unique<RmaTransport>(cluster, core::RvmaParams{}));
           }});
  reg.add("portals",
          {"RVMA wire with Portals-style match-list receive resolution",
           [](cluster::Cluster& cluster, const ScenarioSpec&) {
             return std::unique_ptr<motifs::Transport>(
                 std::make_unique<PortalsTransport>(cluster,
                                                    core::RvmaParams{}));
           }});
}

}  // namespace rvma::scenario
