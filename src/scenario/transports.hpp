// Scenario transport adapters beyond the rvma/rdma motif transports:
// sockets (receiver-managed stream middleware), rma (op-counted epochs),
// and portals (list matching on the receive path). Each implements the
// motifs::Transport interface so any registered motif runs over any
// registered backend.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "core/endpoint.hpp"
#include "motifs/transport.hpp"
#include "cluster/cluster.hpp"
#include "portals/match_list.hpp"
#include "sockets/socket_stack.hpp"

namespace rvma::scenario {

/// Messages as stream writes over the sockets middleware (paper §IV-B):
/// one connection per channel, send() is a fire-and-forget stream write,
/// recv_wait() consumes exactly one message's bytes off the stream. No
/// per-message coordination — but also no message boundaries, so the
/// receiver counts bytes.
class SocketsTransport final : public motifs::Transport {
 public:
  SocketsTransport(cluster::Cluster& cluster,
                   const sockets::SocketParams& params);

  std::string name() const override { return "sockets"; }
  void setup(const std::vector<motifs::Channel>& channels,
             std::function<void()> ready) override;
  void recv_post(int dst, int src, std::uint64_t tag) override;
  void send(int src, int dst, std::uint64_t tag,
            std::function<void()> done) override;
  void recv_wait(int dst, int src, std::uint64_t tag,
                 std::function<void()> done) override;
  const motifs::TransportStats& stats() const override { return stats_; }

  sockets::SocketStack& stack(int node) { return *stacks_[node]; }

 private:
  struct ChannelState {
    motifs::Channel ch;
    sockets::ConnId send_conn = 0;  ///< valid on the src node's stack
    sockets::ConnId recv_conn = 0;  ///< valid on the dst node's stack
    /// Bytes of the message currently being drained by recv_wait.
    std::uint64_t draining = 0;
    std::deque<std::function<void()>> waiters;
  };

  ChannelState& state(int src, int dst, std::uint64_t tag);
  void drain(ChannelState& cs);

  cluster::Cluster& cluster_;
  std::vector<std::unique_ptr<core::RvmaEndpoint>> endpoints_;
  std::vector<std::unique_ptr<sockets::SocketStack>> stacks_;
  std::map<std::tuple<int, int, std::uint64_t>, ChannelState> channels_;
  std::vector<std::byte> scratch_;  ///< zero payload for timing sends
  motifs::TransportStats stats_;
};

/// Op-counted mailboxes (paper §IV-E flavor): each channel's window uses
/// an operations threshold of one, so a message completes when its put
/// has fully arrived regardless of length — the RMA epoch primitive the
/// fence machinery in src/rma builds on, here exposed as a transport.
class RmaTransport final : public motifs::Transport {
 public:
  RmaTransport(cluster::Cluster& cluster, const core::RvmaParams& params,
               int bucket_depth = 16);

  std::string name() const override { return "rma"; }
  void setup(const std::vector<motifs::Channel>& channels,
             std::function<void()> ready) override;
  void recv_post(int dst, int src, std::uint64_t tag) override;
  void send(int src, int dst, std::uint64_t tag,
            std::function<void()> done) override;
  void recv_wait(int dst, int src, std::uint64_t tag,
                 std::function<void()> done) override;
  const motifs::TransportStats& stats() const override { return stats_; }

 private:
  struct ChannelState {
    motifs::Channel ch;
    std::uint64_t vaddr = 0;
    int remaining_posts = 0;
    std::uint64_t completed = 0;
    std::uint64_t consumed = 0;
    std::deque<std::function<void()>> waiters;
  };

  ChannelState& state(int src, int dst, std::uint64_t tag);

  cluster::Cluster& cluster_;
  int bucket_depth_;
  std::vector<std::unique_ptr<core::RvmaEndpoint>> endpoints_;
  std::map<std::tuple<int, int, std::uint64_t>, ChannelState> channels_;
  motifs::TransportStats stats_;
  std::uint64_t next_vaddr_ = 0x33AA0000;  // rma mailbox namespace
};

/// RVMA wire with Portals-style receive-side resolution: every channel's
/// posted receive is a match-list entry, and each completed message walks
/// the node's posted-order list (paper §II / §IV-A). The walk changes no
/// timing here — it quantifies the matching work RVMA's single-lookup
/// LUT avoids, surfaced via the portals.match_* registry counters.
class PortalsTransport final : public motifs::Transport {
 public:
  PortalsTransport(cluster::Cluster& cluster, const core::RvmaParams& params,
                   int bucket_depth = 16);

  std::string name() const override { return "portals"; }
  void setup(const std::vector<motifs::Channel>& channels,
             std::function<void()> ready) override;
  void recv_post(int dst, int src, std::uint64_t tag) override;
  void send(int src, int dst, std::uint64_t tag,
            std::function<void()> done) override;
  void recv_wait(int dst, int src, std::uint64_t tag,
                 std::function<void()> done) override;
  const motifs::TransportStats& stats() const override { return stats_; }

  const portals::MatchList& match_list(int node) const {
    return *match_lists_[node];
  }

 private:
  struct ChannelState {
    motifs::Channel ch;
    std::uint64_t vaddr = 0;
    int remaining_posts = 0;
    std::uint64_t completed = 0;
    std::uint64_t consumed = 0;
    std::deque<std::function<void()>> waiters;
  };

  ChannelState& state(int src, int dst, std::uint64_t tag);

  cluster::Cluster& cluster_;
  int bucket_depth_;
  std::vector<std::unique_ptr<core::RvmaEndpoint>> endpoints_;
  std::vector<std::unique_ptr<portals::MatchList>> match_lists_;
  std::map<std::tuple<int, int, std::uint64_t>, ChannelState> channels_;
  motifs::TransportStats stats_;
  std::uint64_t next_vaddr_ = 0x44BB0000;  // portals mailbox namespace
};

}  // namespace rvma::scenario
