#include "scenario/figure_grid.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "scenario/registry.hpp"

namespace rvma::scenario {

const std::vector<TopoCase>& figure_topo_cases() {
  static const std::vector<TopoCase> cases = {
      {"torus3d-static", net::TopologyKind::kTorus3D, net::Routing::kStatic},
      {"torus3d-adaptive", net::TopologyKind::kTorus3D, net::Routing::kAdaptive},
      {"fattree-static", net::TopologyKind::kFatTree, net::Routing::kStatic},
      {"fattree-adaptive", net::TopologyKind::kFatTree, net::Routing::kAdaptive},
      {"dragonfly-static", net::TopologyKind::kDragonfly, net::Routing::kStatic},
      {"dragonfly-adaptive", net::TopologyKind::kDragonfly,
       net::Routing::kAdaptive},
      {"hyperx-DOR", net::TopologyKind::kHyperX, net::Routing::kStatic},
      {"hyperx-adaptive", net::TopologyKind::kHyperX, net::Routing::kAdaptive},
  };
  return cases;
}

std::vector<std::string> figure_topo_case_names() {
  std::vector<std::string> names;
  for (const TopoCase& tc : figure_topo_cases()) names.push_back(tc.name);
  return names;
}

bool resolve_topo_case(const std::string& name, TopoCase* out,
                       std::string* error) {
  for (const TopoCase& tc : figure_topo_cases()) {
    if (tc.name == name) {
      *out = tc;
      return true;
    }
  }
  // "<topology>-<routing>": split at the last '-' so topology names may
  // themselves contain dashes.
  const auto dash = name.rfind('-');
  if (dash != std::string::npos) {
    const std::string topo_name = name.substr(0, dash);
    const std::string routing_name = name.substr(dash + 1);
    const TopologyEntry* topo = topologies().find(topo_name);
    net::Routing routing = net::Routing::kStatic;
    if (topo != nullptr && parse_routing(routing_name, &routing)) {
      out->name = name;
      out->kind = topo->kind;
      out->routing = routing;
      return true;
    }
  }
  if (error != nullptr) *error = "unknown topology case \"" + name + "\"";
  return false;
}

std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t case_index,
                              std::uint64_t speed_index, bool use_rvma) {
  // Chain the coordinates through splitmix64: neighboring cells get
  // decorrelated streams, and a fixed (base, coordinates) tuple maps to
  // the same seed under any job count or execution order.
  // Each step folds the *mixed* output back into the state — XORing the
  // raw (linear) splitmix state instead would let nearby coordinates
  // cancel and collide.
  std::uint64_t state = base_seed;
  state = splitmix64(state) ^ case_index;
  state = splitmix64(state) ^ speed_index;
  state = splitmix64(state) ^ (use_rvma ? 0x5256ULL : 0x5244ULL);  // 'RV'/'RD'
  return splitmix64(state);
}

ScenarioSpec expand_cell(const GridSpec& grid, const TopoCase& tc,
                         std::size_t case_index, std::size_t speed_index,
                         bool use_rvma) {
  ScenarioSpec spec = grid.base;
  // Registry names for the case: canonical figure rows carry their kind
  // and routing directly; recover the registry names from them.
  spec.topology = to_string(tc.kind);
  spec.routing = tc.routing == net::Routing::kStatic ? "static" : "adaptive";
  spec.link_bandwidth = Bandwidth::gbps(grid.gbps[speed_index]);
  spec.transport = use_rvma ? "rvma" : "rdma";
  spec.seed = derive_run_seed(grid.base.seed, case_index, speed_index,
                              use_rvma);
  return spec;
}

bool run_grid(const GridSpec& grid, int jobs, std::vector<GridCell>* out,
              std::string* error) {
  std::vector<TopoCase> cases;
  for (const std::string& name :
       grid.cases.empty() ? figure_topo_case_names() : grid.cases) {
    TopoCase tc;
    if (!resolve_topo_case(name, &tc, error)) return false;
    cases.push_back(std::move(tc));
  }
  // Fail before fanning out: one representative cell half per protocol
  // resolves every registry name the workers will touch.
  for (const bool use_rvma : {false, true}) {
    if (!validate_scenario(expand_cell(grid, cases[0], 0, 0, use_rvma),
                           error)) {
      return false;
    }
  }

  const std::size_t speeds = grid.gbps.size();
  const std::size_t runs = cases.size() * speeds * 2;
  // Run index -> (case, speed, protocol) in row-major grid order; the
  // executor may finish them in any order, sweep_map restores this one.
  auto outputs = exec::sweep_map<ScenarioResult>(
      jobs, runs, [&](std::size_t i) {
        const std::size_t case_index = i / (speeds * 2);
        const std::size_t speed_index = (i / 2) % speeds;
        const bool use_rvma = (i % 2) != 0;
        const TopoCase& tc = cases[case_index];
        ScenarioResult result;
        std::string run_error;
        ScenarioSpec spec =
            expand_cell(grid, tc, case_index, speed_index, use_rvma);
        // Observability outputs get a per-run suffix: a grid produces one
        // dump/profile per cell half, named by the (stable) run index, so
        // parallel workers never race on one file.
        if (!spec.flight_recorder_path.empty()) {
          spec.flight_recorder_path += ".run" + std::to_string(i);
        }
        if (!spec.pdes_profile_path.empty()) {
          spec.pdes_profile_path += ".run" + std::to_string(i);
        }
        const bool ok = run_scenario(
            spec, &result, &run_error, /*trace_sink=*/nullptr,
            /*eng_id=*/static_cast<std::int64_t>(i));
        assert(ok && "grid cell failed after validation");
        (void)ok;
        // Label from grid coordinates, not completion order: the same run
        // gets the same label at any job count.
        result.series.label =
            tc.name + "@" +
            format_bandwidth(Bandwidth::gbps(grid.gbps[speed_index])) +
            (use_rvma ? "/rvma" : "/rdma");
        return result;
      });

  std::vector<GridCell> cells(cases.size() * speeds);
  for (std::size_t i = 0; i < runs; i += 2) {
    cells[i / 2].rdma = outputs[i];
    cells[i / 2].rvma = outputs[i + 1];
  }
  *out = std::move(cells);
  return true;
}

obs::MetricsDoc build_grid_metrics_doc(const GridSpec& grid,
                                       const std::vector<GridCell>& cells) {
  const std::size_t num_cases =
      grid.cases.empty() ? figure_topo_cases().size() : grid.cases.size();
  obs::MetricsDoc doc;
  doc.tool = grid.figure;
  doc.meta["motif"] = grid.motif_label;
  doc.meta["nodes"] = std::to_string(grid.base.nodes);
  doc.meta["rdma_slots"] = std::to_string(grid.base.rdma_slots);
  doc.meta["seed"] = std::to_string(grid.base.seed);
  doc.meta["grid_cases"] = std::to_string(num_cases);
  doc.meta["grid_speeds"] = std::to_string(grid.gbps.size());
  if (grid.base.sample_period > 0) {
    doc.meta["sample_period_us"] =
        std::to_string(grid.base.sample_period / kMicrosecond);
  }
  for (const GridCell& cell : cells) {
    doc.totals.merge(cell.rdma.metrics);
    doc.totals.merge(cell.rvma.metrics);
    if (!cell.rdma.series.empty()) doc.timeseries.push_back(cell.rdma.series);
    if (!cell.rvma.series.empty()) doc.timeseries.push_back(cell.rvma.series);
  }
  return doc;
}

namespace {

void write_grid_json(const std::string& path, const GridSpec& grid,
                     const std::vector<TopoCase>& cases,
                     const std::vector<GridCell>& cells, int jobs,
                     double wall_seconds, double serial_wall_seconds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"figure\": \"%s\",\n"
               "  \"motif\": \"%s\",\n"
               "  \"nodes\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"jobs\": %d,\n"
               "  \"host_cores\": %d,\n"
               "  \"wall_seconds\": %.3f,\n",
               grid.figure.c_str(), grid.motif_label.c_str(), grid.base.nodes,
               static_cast<unsigned long long>(grid.base.seed), jobs,
               exec::hardware_jobs(), wall_seconds);
  if (serial_wall_seconds > 0.0) {
    std::fprintf(out, "  \"speedup_vs_serial\": %.2f,\n",
                 serial_wall_seconds / wall_seconds);
  }
  std::fprintf(out, "  \"cells\": [\n");
  const std::size_t speeds = grid.gbps.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GridCell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"case\": \"%s\", \"gbps\": %g, \"rdma_ms\": %.6f, "
        "\"rvma_ms\": %.6f, \"speedup\": %.4f, \"packets\": %llu}%s\n",
        cases[i / speeds].name.c_str(), grid.gbps[i % speeds],
        to_ms(cell.rdma.makespan), to_ms(cell.rvma.makespan), cell.speedup(),
        static_cast<unsigned long long>(cell.rdma.packets_delivered +
                                        cell.rvma.packets_delivered),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int run_grid_with_output(const GridSpec& grid, const GridRunOptions& opts) {
  std::vector<TopoCase> cases;
  std::string error;
  for (const std::string& name :
       grid.cases.empty() ? figure_topo_case_names() : grid.cases) {
    TopoCase tc;
    if (!resolve_topo_case(name, &tc, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    cases.push_back(std::move(tc));
  }
  const int effective_jobs =
      opts.jobs <= 0 ? exec::hardware_jobs() : opts.jobs;

  std::printf("%s: %s motif, RVMA vs RDMA across topologies, routing, and "
              "link speeds (%d ranks)\n",
              grid.figure.c_str(), grid.motif_label.c_str(), grid.base.nodes);
  std::printf("crossbar = 1.5x link bw, PCIe 150 ns (paper model "
              "parameters); seed %llu\n\n",
              static_cast<unsigned long long>(grid.base.seed));

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<GridCell> cells;
  if (!run_grid(grid, opts.jobs, &cells, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<std::string> headers = {"topology-routing"};
  for (double g : grid.gbps) {
    headers.push_back(format_bandwidth(Bandwidth::gbps(g)) + " rdma");
    headers.push_back("rvma");
    headers.push_back("speedup");
  }
  Table table(headers);

  RunningStat all_speedups;
  double best = 0.0;
  std::string best_case;
  const std::size_t speeds = grid.gbps.size();
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<std::string> row = {cases[ci].name};
    for (std::size_t si = 0; si < speeds; ++si) {
      const GridCell& cell = cells[ci * speeds + si];
      const double speedup = cell.speedup();
      all_speedups.add(speedup);
      if (speedup > best) {
        best = speedup;
        best_case = cases[ci].name + " @ " +
                    format_bandwidth(Bandwidth::gbps(grid.gbps[si]));
      }
      row.push_back(Table::num(to_ms(cell.rdma.makespan), 3) + " ms");
      row.push_back(Table::num(to_ms(cell.rvma.makespan), 3) + " ms");
      row.push_back(Table::num(speedup, 2) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\naverage RVMA speedup across all topologies/speeds: %.2fx\n",
              all_speedups.mean());
  std::printf("best case: %.2fx (%s)\n", best, best_case.c_str());
  std::printf("min speedup: %.2fx\n", all_speedups.min());
  std::printf("grid wall-clock: %.2f s (jobs=%d, host cores=%d)\n",
              wall_seconds, effective_jobs, exec::hardware_jobs());
  if (opts.serial_wall_s > 0.0) {
    std::printf("speedup vs serial sweep: %.2fx (serial %.2f s)\n",
                opts.serial_wall_s / wall_seconds, opts.serial_wall_s);
  }
  if (!opts.json_path.empty()) {
    write_grid_json(opts.json_path, grid, cases, cells, effective_jobs,
                    wall_seconds, opts.serial_wall_s);
  }
  if (!opts.metrics_path.empty()) {
    const obs::MetricsDoc doc = build_grid_metrics_doc(grid, cells);
    if (!obs::write_metrics_file(doc, opts.metrics_path)) return 1;
    std::printf("metrics written to %s\n", opts.metrics_path.c_str());
  }
  return 0;
}

namespace {

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int run_figure_cli(GridSpec grid, int argc, char** argv) {
  Cli cli(argc, argv);
  grid.base.nodes = static_cast<int>(cli.get_int("nodes", grid.base.nodes));
  grid.base.rdma_slots =
      static_cast<int>(cli.get_int("rdma-slots", grid.base.rdma_slots));
  grid.base.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(grid.base.seed)));
  grid.base.par_shards =
      static_cast<int>(cli.get_int("par-shards", grid.base.par_shards));
  grid.base.route_table = cli.get("route-table", grid.base.route_table);
  if (grid.base.route_table != "algebraic" &&
      grid.base.route_table != "materialized") {
    std::fprintf(stderr, "bad --route-table \"%s\" (want algebraic|materialized)\n",
                 grid.base.route_table.c_str());
    return 2;
  }
  // Comma-list overlays narrow the sweep without editing the document —
  // --cases=torus3d-static,fattree-static --gbps=100,2000. Case names are
  // validated by resolve_topo_case before any cell runs.
  const std::string cases_flag = cli.get("cases", "");
  if (!cases_flag.empty()) grid.cases = split_commas(cases_flag);
  const std::string gbps_flag = cli.get("gbps", "");
  if (!gbps_flag.empty()) {
    grid.gbps.clear();
    for (const std::string& part : split_commas(gbps_flag)) {
      char* end = nullptr;
      const double g = std::strtod(part.c_str(), &end);
      if (end == part.c_str() || *end != '\0' || g <= 0) {
        std::fprintf(stderr, "bad --gbps entry \"%s\"\n", part.c_str());
        return 2;
      }
      grid.gbps.push_back(g);
    }
  }
  const bool quick = cli.get_bool("quick", false);
  grid.base.express = !cli.get_bool("no-express", false);
  // Per-run observability outputs; run_grid suffixes ".run<i>" per cell
  // half. Arming the recorder never changes the printed table or metrics.
  grid.base.flight_recorder_path =
      cli.get("flight-recorder", grid.base.flight_recorder_path);
  grid.base.pdes_profile_path =
      cli.get("pdes-profile", grid.base.pdes_profile_path);
  GridRunOptions opts;
  opts.jobs = static_cast<int>(cli.get_int("jobs", 0));
  opts.json_path = cli.get("json", "");
  opts.metrics_path = cli.get("metrics", "");
  const std::int64_t metrics_period_us = cli.get_int("metrics-period-us", 10);
  if (!opts.metrics_path.empty() && metrics_period_us > 0) {
    grid.base.sample_period =
        static_cast<Time>(metrics_period_us) * kMicrosecond;
  }
  opts.serial_wall_s = cli.get_double("serial-wall-s", 0.0);
  const std::string emit_path = cli.get("emit-grid", "");
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  if (quick) grid.gbps = {100, 2000};

  if (!emit_path.empty()) {
    std::ofstream out(emit_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
      return 1;
    }
    out << to_json(grid);
    std::printf("grid spec written to %s\n", emit_path.c_str());
    return 0;
  }
  return run_grid_with_output(grid, opts);
}

}  // namespace rvma::scenario
