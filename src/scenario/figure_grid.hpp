// The Figure 7 / Figure 8 grid driver: one motif over every (topology,
// routing, link speed) x (RDMA, RVMA) combination, described by a
// GridSpec and expanded into per-cell ScenarioSpecs.
//
// Each grid cell is an independent simulation with its own
// Cluster/Engine, seeded from its grid coordinates — so the grid can run
// serially or across all cores (exec::SweepExecutor) with bit-identical
// results, printed in deterministic grid order either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics_io.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rvma::scenario {

/// One (topology, routing) row of the paper's Figure 7/8 grids.
struct TopoCase {
  std::string name;
  net::TopologyKind kind = net::TopologyKind::kStar;
  net::Routing routing = net::Routing::kStatic;
};

/// The eight (topology, routing) rows the paper evaluates — also the
/// default case list of every GridSpec.
const std::vector<TopoCase>& figure_topo_cases();
std::vector<std::string> figure_topo_case_names();

/// Resolve a case name: one of the canonical figure rows, or any
/// "<topology>-<routing>" pair of registered names.
bool resolve_topo_case(const std::string& name, TopoCase* out,
                       std::string* error);

/// Seed for one grid run, derived from the base seed and the run's grid
/// coordinates. Stable across job counts and execution orders — the heart
/// of the parallel sweep's determinism contract.
std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t case_index,
                              std::uint64_t speed_index, bool use_rvma);

/// The per-cell-half scenario: the grid's base with the case's topology
/// and routing, the speed's bandwidth, the protocol's transport, and the
/// coordinate-derived seed.
ScenarioSpec expand_cell(const GridSpec& grid, const TopoCase& tc,
                         std::size_t case_index, std::size_t speed_index,
                         bool use_rvma);

struct GridCell {
  ScenarioResult rdma;
  ScenarioResult rvma;
  double speedup() const {
    return rvma.makespan == 0
               ? 0.0
               : static_cast<double>(rdma.makespan) /
                     static_cast<double>(rvma.makespan);
  }
  bool operator==(const GridCell&) const = default;
};

/// Run the whole grid — cases x grid.gbps x {RDMA, RVMA} — with `jobs`
/// workers (<= 0: all cores; 1: inline serial). Cells come back in grid
/// order (row-major: case, then speed) regardless of completion order.
/// Returns false with *error set when a case name or the base scenario
/// fails validation (checked before any simulation starts).
bool run_grid(const GridSpec& grid, int jobs, std::vector<GridCell>* out,
              std::string* error);

/// Merge every grid cell's metrics (in grid order) and collect the
/// per-run timeseries into one self-describing metrics document. The
/// document deliberately carries no job count or wall-clock data, so it
/// is byte-identical at any --jobs (see obs/metrics_io.hpp).
obs::MetricsDoc build_grid_metrics_doc(const GridSpec& grid,
                                       const std::vector<GridCell>& cells);

/// Options for the printing/output tail shared by the figure benches and
/// `rvma_run` on a grid document.
struct GridRunOptions {
  int jobs = 0;
  std::string json_path;
  std::string metrics_path;
  /// Serial-run wall-clock handed in by tools/run_bench.sh so the
  /// parallel run can report its speedup over the serial baseline.
  double serial_wall_s = 0.0;
};

/// Run the grid and print the figure table plus wall-clock footers;
/// writes the JSON/metrics outputs when requested. Returns process exit
/// code.
int run_grid_with_output(const GridSpec& grid, const GridRunOptions& opts);

/// CLI driver shared by fig7_sweep3d / fig8_halo3d: parses --nodes,
/// --rdma-slots, --quick, --no-express, --jobs, --seed, --json,
/// --metrics, --metrics-period-us, --serial-wall-s, --flight-recorder,
/// --pdes-profile; runs the grid and
/// prints the table plus a wall-clock footer. `--emit-grid=<path>`
/// writes the configured GridSpec as a scenario-grid document (for
/// rvma_run) instead of running it.
int run_figure_cli(GridSpec grid, int argc, char** argv);

}  // namespace rvma::scenario
