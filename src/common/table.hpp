// Fixed-width ASCII table printer for bench output.
//
// Bench binaries regenerate the paper's figures as tables; this keeps their
// output aligned and diff-able (EXPERIMENTS.md copies rows verbatim).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace rvma {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render to stdout (or any FILE*). First column left-aligned, the rest
  /// right-aligned, matching typical benchmark table conventions.
  void print(std::FILE* out = stdout) const;

  /// Render as a string (used by tests).
  std::string to_string() const;

  static std::string num(double v, int precision = 2);

  /// num(v), except an empty statistic (count == 0) renders as "-" —
  /// RunningStat::min()/max() return 0.0 when empty, and printing that 0
  /// as a real measurement is misleading.
  static std::string stat_num(std::uint64_t count, double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rvma
