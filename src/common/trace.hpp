// Lightweight event tracing: one JSON object per line (JSONL), cheap
// enough to leave compiled in (a branch on an enabled flag). Components
// emit trace events at interesting points — packet injection/delivery,
// RVMA completion-pointer writes, NACKs — and analyses replay the file.
//
// Enable programmatically (Tracer::open) or via RVMA_TRACE=<path> in the
// environment (init_trace_from_env), mirroring RVMA_LOG.
//
// Thread safety: record() formats each line into a stack buffer and hands
// it to the FILE* with a single locked fwrite, and the event counter is
// atomic — so several engines running concurrently (SweepExecutor jobs)
// may share one sink without interleaving partial lines. The sink pointer
// itself is atomic and reconfiguration (open/close/open_buffer) asserts
// that no record() call is in flight: reconfiguring a sink that a running
// simulation still writes to is a caller bug, and it now trips an assert
// instead of racing a dangling FILE*. Buffer mode (open_buffer) is
// single-threaded by contract — each sharded engine gets its own
// buffered tracer (cluster runs merge them deterministically at run end).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace rvma {

class Tracer {
 public:
  /// A single field of a trace event: integer or string valued.
  ///
  /// Overload resolution keeps call sites unambiguous: integer literals
  /// reach the int64 constructor via a standard conversion, while string
  /// literals reach the string_view one via its converting constructor
  /// (there is deliberately no const char* overload — `Field{"k", 0}`
  /// must stay numeric).
  struct Field {
    std::string_view key;
    std::int64_t value = 0;
    std::string_view str;  ///< valid when is_string
    bool is_string = false;

    Field(std::string_view k, std::int64_t v) : key(k), value(v) {}
    Field(std::string_view k, std::string_view s)
        : key(k), str(s), is_string(true) {}
  };

  Tracer() = default;
  ~Tracer() { close(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open (truncate) `path` as the sink. On failure the tracer is fully
  /// closed and the event counter reset — never stale state from a
  /// previous session. Asserts no record() is in flight.
  bool open(const std::string& path);
  void close();

  /// Record into an in-memory JSONL buffer instead of a file. Buffered
  /// tracers are single-threaded by contract (one per shard engine);
  /// ScenarioRunner merges shard buffers into the armed sink at run end,
  /// sorted by (time, shard, line index).
  void open_buffer();
  const std::string& buffer() const { return buffer_; }

  /// Append one already-formatted JSONL line (newline included) to the
  /// file sink, counting it as one event — the shard-merge write path.
  void write_line(std::string_view line);

  bool enabled() const {
    return buffered_ || file_.load(std::memory_order_relaxed) != nullptr;
  }

  /// Emit {"t":<ps>,"ev":"<event>",<fields...>} as one atomic write.
  /// String field values must not contain quotes, backslashes, or control
  /// characters (they are emitted verbatim) — use short identifiers.
  void record(Time now, std::string_view event,
              std::initializer_list<Field> fields);

  /// Same, stamping an "eng" field right after "ev" so analyses can group
  /// records per engine when several engines share one sink (a serial
  /// sweep writing through the global tracer). eng < 0 omits the field,
  /// keeping single-engine traces byte-compatible with the 3-arg form.
  void record(Time now, std::string_view event, std::int64_t eng,
              std::initializer_list<Field> fields);

  std::uint64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// Process-wide tracer used as the default engine sink.
  static Tracer& global();

 private:
  /// Asserts that no record() call is active — reconfiguration while a
  /// simulation is writing is a caller bug, not a tolerated race.
  void assert_quiescent() const;

  std::atomic<std::FILE*> file_ = nullptr;
  std::atomic<std::uint64_t> events_ = 0;
  std::atomic<std::int32_t> in_flight_ = 0;  ///< record() calls active
  bool buffered_ = false;
  std::string buffer_;  ///< JSONL lines when buffered_
};

/// Open the global tracer from RVMA_TRACE, if set.
void init_trace_from_env();

/// Convenience: record into the global tracer only when it is enabled.
/// Simulation components should prefer sim::Engine::trace(), which routes
/// through the engine's per-run sink.
inline void trace_event(Time now, std::string_view event,
                        std::initializer_list<Tracer::Field> fields) {
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) tracer.record(now, event, fields);
}

}  // namespace rvma
