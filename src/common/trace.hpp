// Lightweight event tracing: one JSON object per line (JSONL), cheap
// enough to leave compiled in (a branch on an enabled flag). Components
// emit trace events at interesting points — packet injection/delivery,
// RVMA completion-pointer writes, NACKs — and analyses replay the file.
//
// Enable programmatically (Tracer::open) or via RVMA_TRACE=<path> in the
// environment (init_trace_from_env), mirroring RVMA_LOG.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace rvma {

class Tracer {
 public:
  /// A single numeric field of a trace event.
  struct Field {
    std::string_view key;
    std::int64_t value;
  };

  Tracer() = default;
  ~Tracer() { close(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool open(const std::string& path);
  void close();
  bool enabled() const { return file_ != nullptr; }

  /// Emit {"t":<ps>,"ev":"<event>",<fields...>}.
  void record(Time now, std::string_view event,
              std::initializer_list<Field> fields);

  std::uint64_t events_written() const { return events_; }

  /// Process-wide tracer used by the built-in hooks.
  static Tracer& global();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t events_ = 0;
};

/// Open the global tracer from RVMA_TRACE, if set.
void init_trace_from_env();

/// Convenience: record into the global tracer only when it is enabled.
inline void trace_event(Time now, std::string_view event,
                        std::initializer_list<Tracer::Field> fields) {
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) tracer.record(now, event, fields);
}

}  // namespace rvma
