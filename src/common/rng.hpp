// Deterministic pseudo-random number generation for the simulator.
//
// Simulations must be reproducible run-to-run: every stochastic decision
// (adaptive route choice, jitter, workload generation) draws from an Rng
// seeded from the experiment configuration, never from global state.
#pragma once

#include <cstdint>
#include <limits>

namespace rvma {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> distributions if ever needed, though the built-in helpers
/// below cover all simulator call sites without distribution overhead.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child generator (for per-entity streams).
  constexpr Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace rvma
