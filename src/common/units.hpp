// Time, bandwidth, and size units used throughout the RVMA simulator.
//
// Simulated time is an integer count of picoseconds. Picosecond resolution
// comfortably covers the paper's timescales (5e9 updates per simulated
// second corresponds to 200 ps ticks) while a 64-bit counter still spans
// ~213 days of simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rvma {

/// Simulated time in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000ULL;

/// A time value larger than any reachable simulation time.
inline constexpr Time kTimeInfinity = ~Time{0};

constexpr Time ns(double v) { return static_cast<Time>(v * kNanosecond); }
constexpr Time us(double v) { return static_cast<Time>(v * kMicrosecond); }
constexpr Time ms(double v) { return static_cast<Time>(v * kMillisecond); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }

/// Link/bus bandwidth in bits per second.
struct Bandwidth {
  double bits_per_sec = 0.0;

  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bps) : bits_per_sec(bps) {}

  static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }
  static constexpr Bandwidth tbps(double v) { return Bandwidth{v * 1e12}; }
  static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }

  constexpr double gbps_value() const { return bits_per_sec / 1e9; }

  /// Serialization time for `bytes` at this bandwidth.
  constexpr Time serialize(std::uint64_t bytes) const {
    if (bits_per_sec <= 0.0) return 0;
    const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_sec;
    return static_cast<Time>(seconds * static_cast<double>(kSecond));
  }

  /// This bandwidth scaled by `factor` (e.g. crossbar = 1.5x link).
  constexpr Bandwidth scaled(double factor) const {
    return Bandwidth{bits_per_sec * factor};
  }

  constexpr bool operator==(const Bandwidth&) const = default;
};

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * 1024;
inline constexpr std::uint64_t GiB = 1024ULL * 1024 * 1024;

/// Human-readable rendering, e.g. "1.50 us" or "320 ns".
std::string format_time(Time t);
/// Human-readable size, e.g. "4 KiB".
std::string format_size(std::uint64_t bytes);
/// Human-readable bandwidth, e.g. "400 Gbps" / "2 Tbps".
std::string format_bandwidth(Bandwidth bw);

// ---- unit-string parsing (scenario specs, CLI flags) ----------------------
//
// Each parser accepts a decimal number followed by a unit suffix, with
// optional whitespace in between ("100Gbps", "2.5 us", "64KiB"). On
// success the value is stored and true returned; malformed text, unknown
// units, or values that do not land on an exact representable quantity
// (e.g. a fractional picosecond) return false and leave *out untouched.

/// "2.5us", "150 ns", "1ms", "0s", bare picoseconds "1500ps", or "inf"
/// (-> kTimeInfinity, for unbounded queue depths).
bool parse_duration(std::string_view text, Time* out);

/// "64KiB", "4 MiB", "2GiB", or a bare byte count "4096" / "512B".
bool parse_size(std::string_view text, std::uint64_t* out);

/// "100Gbps", "2Tbps", "800 Mbps", or bare bits-per-second "125000bps".
bool parse_bandwidth(std::string_view text, Bandwidth* out);

// Canonical renderings: the exact inverse of the parsers (no rounding, no
// padding), used wherever a unit value must survive a byte-stable JSON
// round-trip (scenario specs). canonical -> parse -> canonical is the
// identity for every representable value.
std::string canonical_duration(Time t);
std::string canonical_size(std::uint64_t bytes);
std::string canonical_bandwidth(Bandwidth bw);

}  // namespace rvma
