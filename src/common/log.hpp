// Leveled logging for the simulator. Off (kWarn) by default so benches stay
// quiet; tests and debugging sessions can raise verbosity per-run via
// RVMA_LOG=debug or set_level().
#pragma once

#include <cstdio>
#include <string_view>

namespace rvma {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Initialize from the RVMA_LOG environment variable ("debug", "info", ...).
void init_log_from_env();

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define RVMA_LOG_DEBUG(...)                                   \
  do {                                                        \
    if (::rvma::log_level() <= ::rvma::LogLevel::kDebug)      \
      ::rvma::detail::vlog(::rvma::LogLevel::kDebug, __VA_ARGS__); \
  } while (0)

#define RVMA_LOG_INFO(...)                                    \
  do {                                                        \
    if (::rvma::log_level() <= ::rvma::LogLevel::kInfo)       \
      ::rvma::detail::vlog(::rvma::LogLevel::kInfo, __VA_ARGS__); \
  } while (0)

#define RVMA_LOG_WARN(...)                                    \
  do {                                                        \
    if (::rvma::log_level() <= ::rvma::LogLevel::kWarn)       \
      ::rvma::detail::vlog(::rvma::LogLevel::kWarn, __VA_ARGS__); \
  } while (0)

#define RVMA_LOG_ERROR(...)                                   \
  do {                                                        \
    if (::rvma::log_level() <= ::rvma::LogLevel::kError)      \
      ::rvma::detail::vlog(::rvma::LogLevel::kError, __VA_ARGS__); \
  } while (0)

}  // namespace rvma
