// Status codes shared by the RVMA core API and the RDMA baseline model.
//
// The paper's API returns `RVMA_Status`; this enum is the C++ spelling, and
// the C wrappers in core/rvma_c_api.h map it 1:1.
#pragma once

#include <string_view>

namespace rvma {

enum class Status {
  kOk = 0,
  kError,           ///< generic failure
  kInvalidArg,      ///< bad pointer / size / window handle
  kClosed,          ///< operation on a closed window (paper: may NACK)
  kNoBuffer,        ///< no posted buffer available for the mailbox
  kNoMailbox,       ///< mailbox address not present in the LUT
  kOutOfResources,  ///< NIC resource pool (counters, LUT slots) exhausted
  kOverflow,        ///< write beyond the head buffer's extent
  kNotReady,        ///< completion not yet available
  kUnreachable,     ///< destination node does not exist in the fabric
  kNacked,          ///< initiator received a NACK from the target NIC
};

constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kError: return "ERROR";
    case Status::kInvalidArg: return "INVALID_ARG";
    case Status::kClosed: return "CLOSED";
    case Status::kNoBuffer: return "NO_BUFFER";
    case Status::kNoMailbox: return "NO_MAILBOX";
    case Status::kOutOfResources: return "OUT_OF_RESOURCES";
    case Status::kOverflow: return "OVERFLOW";
    case Status::kNotReady: return "NOT_READY";
    case Status::kUnreachable: return "UNREACHABLE";
    case Status::kNacked: return "NACKED";
  }
  return "UNKNOWN";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

}  // namespace rvma
