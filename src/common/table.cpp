#include "common/table.hpp"

#include <algorithm>
#include <sstream>

namespace rvma {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::stat_num(std::uint64_t count, double v, int precision) {
  return count == 0 ? "-" : num(v, precision);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      if (c == 0) {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        os << "  " << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::FILE* out) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace rvma
