#include "common/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rvma {

namespace {
std::string fmt(double v, const char* unit) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, unit);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
  }
  return buf;
}
}  // namespace

std::string format_time(Time t) {
  if (t >= kSecond) return fmt(static_cast<double>(t) / kSecond, "s");
  if (t >= kMillisecond) return fmt(to_ms(t), "ms");
  if (t >= kMicrosecond) return fmt(to_us(t), "us");
  if (t >= kNanosecond) return fmt(to_ns(t), "ns");
  return fmt(static_cast<double>(t), "ps");
}

std::string format_size(std::uint64_t bytes) {
  if (bytes >= GiB && bytes % GiB == 0) return std::to_string(bytes / GiB) + " GiB";
  if (bytes >= MiB && bytes % MiB == 0) return std::to_string(bytes / MiB) + " MiB";
  if (bytes >= KiB && bytes % KiB == 0) return std::to_string(bytes / KiB) + " KiB";
  return std::to_string(bytes) + " B";
}

std::string format_bandwidth(Bandwidth bw) {
  if (bw.bits_per_sec >= 1e12) return fmt(bw.bits_per_sec / 1e12, "Tbps");
  if (bw.bits_per_sec >= 1e9) return fmt(bw.bits_per_sec / 1e9, "Gbps");
  return fmt(bw.bits_per_sec / 1e6, "Mbps");
}

// ---- unit-string parsing --------------------------------------------------

namespace {

/// Split "2.5us" / "64 KiB" / "4096" into a decimal value and a
/// (possibly empty) unit suffix, also exposing the raw numeric token so
/// digits-only inputs can take the exact integer path below. Returns false
/// on malformed numbers or trailing garbage after the unit.
bool split_number_unit(std::string_view text, double* value,
                       std::string_view* number, std::string* unit) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *value);
  if (ec != std::errc{} || ptr == begin) return false;
  *number = std::string_view(begin, static_cast<std::size_t>(ptr - begin));
  std::string_view rest(ptr, static_cast<std::size_t>(end - ptr));
  while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front())))
    rest.remove_prefix(1);
  unit->assign(rest);
  return true;
}

/// Exactly 2^64 as a double. Doubles at or above this cannot fit uint64_t;
/// everything strictly below casts without overflow (though values past
/// 2^53 may already have lost integer precision — hence the exact integer
/// path for digits-only input).
constexpr double kTwoPow64 = 18446744073709551616.0;

/// `value` scaled by `scale` if the product is integral and in range.
bool exact_scaled(double value, double scale, std::uint64_t* out) {
  const double scaled = value * scale;
  if (!(scaled >= 0.0) || scaled >= kTwoPow64) return false;
  if (scaled != std::floor(scaled)) return false;
  *out = static_cast<std::uint64_t>(scaled);
  return true;
}

enum class IntPath { kNotInteger, kOverflow, kOk };

/// Exact path for digits-only tokens: parse as uint64_t and multiply with
/// an explicit overflow check, so e.g. byte counts near UINT64_MAX survive
/// verbatim instead of detouring through double (53-bit mantissa).
IntPath exact_scaled_integer(std::string_view number, std::uint64_t scale,
                             std::uint64_t* out) {
  if (number.empty()) return IntPath::kNotInteger;
  for (const char c : number) {
    if (c < '0' || c > '9') return IntPath::kNotInteger;
  }
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(number.data(), number.data() + number.size(), value);
  if (ec != std::errc{} || ptr != number.data() + number.size()) {
    // Digits-only input can only fail by exceeding uint64 — reject it
    // rather than let the double path round it back into range.
    return IntPath::kOverflow;
  }
  std::uint64_t scaled = 0;
  if (__builtin_mul_overflow(value, scale, &scaled)) return IntPath::kOverflow;
  *out = scaled;
  return IntPath::kOk;
}

/// Scale by an integral unit: exact integer arithmetic for digits-only
/// tokens, double fallback for fractional/exponent forms ("2.5us", "1e3us").
bool exact_scaled_unit(double value, std::string_view number,
                       std::uint64_t scale, std::uint64_t* out) {
  switch (exact_scaled_integer(number, scale, out)) {
    case IntPath::kOk: return true;
    case IntPath::kOverflow: return false;
    case IntPath::kNotInteger: break;
  }
  return exact_scaled(value, static_cast<double>(scale), out);
}

/// Shortest decimal rendering that parses back to exactly `v`.
std::string shortest_double(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

}  // namespace

bool parse_duration(std::string_view text, Time* out) {
  if (text == "inf") {
    *out = kTimeInfinity;
    return true;
  }
  double value = 0.0;
  std::string_view number;
  std::string unit;
  if (!split_number_unit(text, &value, &number, &unit)) return false;
  std::uint64_t scale = 0;
  if (unit == "s") scale = kSecond;
  else if (unit == "ms") scale = kMillisecond;
  else if (unit == "us") scale = kMicrosecond;
  else if (unit == "ns") scale = kNanosecond;
  else if (unit == "ps" || unit.empty()) scale = 1;
  else return false;
  return exact_scaled_unit(value, number, scale, out);
}

bool parse_size(std::string_view text, std::uint64_t* out) {
  double value = 0.0;
  std::string_view number;
  std::string unit;
  if (!split_number_unit(text, &value, &number, &unit)) return false;
  std::uint64_t scale = 0;
  if (unit == "GiB") scale = GiB;
  else if (unit == "MiB") scale = MiB;
  else if (unit == "KiB") scale = KiB;
  else if (unit == "B" || unit.empty()) scale = 1;
  else return false;
  return exact_scaled_unit(value, number, scale, out);
}

bool parse_bandwidth(std::string_view text, Bandwidth* out) {
  double value = 0.0;
  std::string_view number;
  std::string unit;
  if (!split_number_unit(text, &value, &number, &unit)) return false;
  double scale = 0.0;
  if (unit == "Tbps") scale = 1e12;
  else if (unit == "Gbps") scale = 1e9;
  else if (unit == "Mbps") scale = 1e6;
  else if (unit == "Kbps") scale = 1e3;
  else if (unit == "bps" || unit.empty()) scale = 1.0;
  else return false;
  if (!(value >= 0.0)) return false;
  *out = Bandwidth{value * scale};
  return true;
}

std::string canonical_duration(Time t) {
  if (t == kTimeInfinity) return "inf";
  struct { Time unit; const char* suffix; } steps[] = {
      {kSecond, "s"}, {kMillisecond, "ms"}, {kMicrosecond, "us"},
      {kNanosecond, "ns"}};
  for (const auto& s : steps) {
    if (t >= s.unit && t % s.unit == 0)
      return std::to_string(t / s.unit) + s.suffix;
  }
  return std::to_string(t) + "ps";
}

std::string canonical_size(std::uint64_t bytes) {
  if (bytes >= GiB && bytes % GiB == 0) return std::to_string(bytes / GiB) + "GiB";
  if (bytes >= MiB && bytes % MiB == 0) return std::to_string(bytes / MiB) + "MiB";
  if (bytes >= KiB && bytes % KiB == 0) return std::to_string(bytes / KiB) + "KiB";
  return std::to_string(bytes) + "B";
}

std::string canonical_bandwidth(Bandwidth bw) {
  struct { double unit; const char* suffix; } steps[] = {
      {1e12, "Tbps"}, {1e9, "Gbps"}, {1e6, "Mbps"}, {1e3, "Kbps"}};
  for (const auto& s : steps) {
    const double scaled = bw.bits_per_sec / s.unit;
    // Emit in this unit only when division is exact under round-trip:
    // the parser recomputes scaled * unit, which must restore the value.
    if (scaled >= 1.0 && scaled * s.unit == bw.bits_per_sec &&
        scaled == std::floor(scaled)) {
      return shortest_double(scaled) + s.suffix;
    }
  }
  return shortest_double(bw.bits_per_sec) + "bps";
}

}  // namespace rvma
