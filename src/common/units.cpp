#include "common/units.hpp"

#include <cstdio>

namespace rvma {

namespace {
std::string fmt(double v, const char* unit) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, unit);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
  }
  return buf;
}
}  // namespace

std::string format_time(Time t) {
  if (t >= kSecond) return fmt(static_cast<double>(t) / kSecond, "s");
  if (t >= kMillisecond) return fmt(to_ms(t), "ms");
  if (t >= kMicrosecond) return fmt(to_us(t), "us");
  if (t >= kNanosecond) return fmt(to_ns(t), "ns");
  return fmt(static_cast<double>(t), "ps");
}

std::string format_size(std::uint64_t bytes) {
  if (bytes >= GiB && bytes % GiB == 0) return std::to_string(bytes / GiB) + " GiB";
  if (bytes >= MiB && bytes % MiB == 0) return std::to_string(bytes / MiB) + " MiB";
  if (bytes >= KiB && bytes % KiB == 0) return std::to_string(bytes / KiB) + " KiB";
  return std::to_string(bytes) + " B";
}

std::string format_bandwidth(Bandwidth bw) {
  if (bw.bits_per_sec >= 1e12) return fmt(bw.bits_per_sec / 1e12, "Tbps");
  if (bw.bits_per_sec >= 1e9) return fmt(bw.bits_per_sec / 1e9, "Gbps");
  return fmt(bw.bits_per_sec / 1e6, "Mbps");
}

}  // namespace rvma
