#include "common/log.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace rvma {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void init_log_from_env() {
  const char* env = std::getenv("RVMA_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else if (std::strcmp(env, "off") == 0) g_level = LogLevel::kOff;
}

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  // One buffered write per line so messages from concurrent engine
  // threads (SweepExecutor jobs) never interleave mid-line on stderr.
  char buf[1024];
  int len = std::snprintf(buf, sizeof(buf), "[rvma %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf + len, sizeof(buf) - len - 1, fmt, args);
  va_end(args);
  if (n > 0) len = std::min(len + n, static_cast<int>(sizeof(buf)) - 1);
  buf[len++] = '\n';
  std::fwrite(buf, 1, static_cast<std::size_t>(len), stderr);
}
}  // namespace detail

}  // namespace rvma
