// Process peak-RSS probe for benchmark and timing reports.
#pragma once

#include <cstddef>

namespace rvma {

/// High-water resident set size of this process in bytes (Linux VmHWM
/// from /proc/self/status). Returns 0 on platforms without procfs — the
/// reports that consume this print 0 rather than failing.
std::size_t peak_rss_bytes();

}  // namespace rvma
