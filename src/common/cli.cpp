#include "common/cli.hpp"

#include <cstdlib>

namespace rvma {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      opts_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  return it == opts_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  return it == opts_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& key, double fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  return it == opts_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::pair<std::string, std::string>> Cli::take_prefixed(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, value] : opts_) {
    if (key.size() > prefix.size() && key.rfind(prefix, 0) == 0) {
      consumed_[key] = true;
      out.emplace_back(key.substr(prefix.size()), value);
    }
  }
  return out;
}

std::vector<std::string> Cli::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : opts_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rvma
