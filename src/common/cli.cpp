#include "common/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace rvma {

namespace {

// Numeric flags fail loud: "--link-latency=abc" silently becoming 0.0 (or
// "--nodes=64k" becoming 64) means benchmarking a configuration nobody
// asked for. Malformed or trailing-garbage values abort with exit code 2,
// the same contract ParamReader enforces for scenario parameters.
[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* kind) {
  std::fprintf(stderr, "bad %s value for --%s: \"%s\"\n", kind, key.c_str(),
               value.c_str());
  std::exit(2);
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      opts_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  return it == opts_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  const std::string& text = it->second;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  // from_chars does not consume a "0x" prefix itself; keep accepting hex
  // values (handy for seeds) by switching base explicitly.
  int base = 10;
  bool negative = false;
  if (first != last && (*first == '+' || *first == '-')) {
    negative = *first == '-';
    ++first;
  }
  if (last - first > 2 && first[0] == '0' && (first[1] == 'x' || first[1] == 'X')) {
    base = 16;
    first += 2;
  }
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last || first == last) {
    bad_value(key, text, "integer");
  }
  return negative ? -value : value;
}

double Cli::get_double(const std::string& key, double fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  const std::string& text = it->second;
  // std::from_chars, unlike strtod, is locale-independent — a comma-decimal
  // LC_NUMERIC cannot change what "2.5" parses to — and surfacing ptr lets
  // us reject trailing garbage instead of ignoring it.
  const char* first = text.data();
  const char* last = text.data() + text.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || first == last) {
    bad_value(key, text, "numeric");
  }
  return value;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  consumed_[key] = true;
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::pair<std::string, std::string>> Cli::take_prefixed(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, value] : opts_) {
    if (key.size() > prefix.size() && key.rfind(prefix, 0) == 0) {
      consumed_[key] = true;
      out.emplace_back(key.substr(prefix.size()), value);
    }
  }
  return out;
}

std::vector<std::string> Cli::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : opts_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rvma
