// Minimal command-line option parser for bench and example binaries.
//
// Supports "--key=value" and boolean "--flag" (the unambiguous subset —
// "--key value" is not accepted so flags can precede positionals). Unknown
// options are reported so a typo'd sweep parameter fails loudly instead of
// silently benchmarking the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rvma {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const { return opts_.contains(key); }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were supplied but never queried; call after all get()s to
  /// reject typos. Returns empty vector when everything was consumed.
  std::vector<std::string> unconsumed() const;

  /// All options whose key starts with `prefix`, with the prefix stripped,
  /// in sorted key order; marks them consumed. For dynamic option families
  /// like the scenario overlay's --motif.<param>=<value>.
  std::vector<std::pair<std::string, std::string>> take_prefixed(
      const std::string& prefix) const;

 private:
  std::map<std::string, std::string> opts_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace rvma
