#include "common/trace.hpp"

#include <cstdlib>

namespace rvma {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "w");
  events_ = 0;
  return file_ != nullptr;
}

void Tracer::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Tracer::record(Time now, std::string_view event,
                    std::initializer_list<Field> fields) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "{\"t\":%llu,\"ev\":\"%.*s\"",
               static_cast<unsigned long long>(now),
               static_cast<int>(event.size()), event.data());
  for (const Field& field : fields) {
    std::fprintf(file_, ",\"%.*s\":%lld", static_cast<int>(field.key.size()),
                 field.key.data(), static_cast<long long>(field.value));
  }
  std::fputs("}\n", file_);
  ++events_;
}

void init_trace_from_env() {
  const char* path = std::getenv("RVMA_TRACE");
  if (path != nullptr && *path != '\0') {
    Tracer::global().open(path);
  }
}

}  // namespace rvma
