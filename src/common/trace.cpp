#include "common/trace.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace rvma {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::assert_quiescent() const {
  assert(in_flight_.load(std::memory_order_acquire) == 0 &&
         "Tracer reconfigured while record() is in flight — reconfigure "
         "sinks only while no simulation is running");
}

bool Tracer::open(const std::string& path) {
  close();
  events_.store(0, std::memory_order_relaxed);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  file_.store(file, std::memory_order_release);
  return true;
}

void Tracer::close() {
  assert_quiescent();
  std::FILE* file = file_.exchange(nullptr, std::memory_order_acq_rel);
  if (file != nullptr) std::fclose(file);
  buffered_ = false;
  buffer_.clear();
}

void Tracer::open_buffer() {
  close();
  events_.store(0, std::memory_order_relaxed);
  buffered_ = true;
}

void Tracer::write_line(std::string_view line) {
  std::FILE* file = file_.load(std::memory_order_acquire);
  if (file == nullptr || line.empty()) return;
  std::fwrite(line.data(), 1, line.size(), file);
  events_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(Time now, std::string_view event,
                    std::initializer_list<Field> fields) {
  record(now, event, -1, fields);
}

void Tracer::record(Time now, std::string_view event, std::int64_t eng,
                    std::initializer_list<Field> fields) {
  // In-flight guard: reconfiguration (open/close) asserts this is zero,
  // so a sink can never be swapped out from under an active record().
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  struct Guard {
    std::atomic<std::int32_t>& n;
    ~Guard() { n.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{in_flight_};
  std::FILE* file = file_.load(std::memory_order_acquire);
  if (file == nullptr && !buffered_) return;
  // Format the whole line locally and emit it with one fwrite: FILE*
  // writes are locked, so lines from concurrent engines sharing this sink
  // never interleave mid-record.
  char buf[768];
  int len = std::snprintf(buf, sizeof(buf), "{\"t\":%llu,\"ev\":\"%.*s\"",
                          static_cast<unsigned long long>(now),
                          static_cast<int>(event.size()), event.data());
  if (eng >= 0 && len < static_cast<int>(sizeof(buf))) {
    const int n = std::snprintf(buf + len, sizeof(buf) - len, ",\"eng\":%lld",
                                static_cast<long long>(eng));
    if (n > 0) len += n;
  }
  for (const Field& field : fields) {
    if (len >= static_cast<int>(sizeof(buf))) break;
    int n;
    if (field.is_string) {
      n = std::snprintf(buf + len, sizeof(buf) - len, ",\"%.*s\":\"%.*s\"",
                        static_cast<int>(field.key.size()), field.key.data(),
                        static_cast<int>(field.str.size()), field.str.data());
    } else {
      n = std::snprintf(buf + len, sizeof(buf) - len, ",\"%.*s\":%lld",
                        static_cast<int>(field.key.size()), field.key.data(),
                        static_cast<long long>(field.value));
    }
    if (n < 0) break;
    len += n;
  }
  // Reserve room for the closing "}\n" even if a pathological event
  // overflowed the buffer (fields are numeric, so 768 bytes is ample).
  if (len > static_cast<int>(sizeof(buf)) - 2) {
    len = static_cast<int>(sizeof(buf)) - 2;
  }
  buf[len++] = '}';
  buf[len++] = '\n';
  if (buffered_) {
    // Buffer mode is single-threaded by contract (one tracer per shard
    // engine), so plain string append is safe.
    buffer_.append(buf, static_cast<std::size_t>(len));
  } else {
    std::fwrite(buf, 1, static_cast<std::size_t>(len), file);
  }
  events_.fetch_add(1, std::memory_order_relaxed);
}

void init_trace_from_env() {
  const char* path = std::getenv("RVMA_TRACE");
  if (path != nullptr && *path != '\0') {
    Tracer::global().open(path);
  }
}

}  // namespace rvma
