#include "common/rss.hpp"

#include <cstdio>
#include <cstring>

namespace rvma {

std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:      123456 kB" — the kernel always reports kB here.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) {
        kib = static_cast<std::size_t>(v);
      }
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace rvma
