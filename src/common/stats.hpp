// Lightweight statistics accumulators used by benches and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rvma {

/// Streaming mean/variance/min/max (Welford's algorithm). O(1) memory.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact percentiles. Use for bench summaries
/// where sample counts are modest.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }

  double mean() const {
    if (data_.empty()) return 0.0;
    double sum = 0.0;
    for (double x : data_) sum += x;
    return sum / static_cast<double>(data_.size());
  }

  double stddev() const {
    if (data_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : data_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(data_.size() - 1));
  }

  /// Exact percentile with linear interpolation; p in [0, 100].
  double percentile(double p) {
    if (data_.empty()) return 0.0;
    ensure_sorted();
    const double rank =
        p / 100.0 * static_cast<double>(data_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, data_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double min() {
    ensure_sorted();
    return data_.empty() ? 0.0 : data_.front();
  }
  double max() {
    ensure_sorted();
    return data_.empty() ? 0.0 : data_.back();
  }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  std::vector<double> data_;
  bool sorted_ = true;
};

/// Fixed-bucket log2 histogram for latency distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++total_;
  }

  static constexpr int kBuckets = 64;
  std::uint64_t bucket_count(int b) const { return buckets_[b]; }
  std::uint64_t total() const { return total_; }

  /// Lower edge of bucket b (2^(b-1), with bucket 0 = value 0).
  static std::uint64_t bucket_floor(int b) {
    return b == 0 ? 0 : (1ULL << (b - 1));
  }

  static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return 64 - __builtin_clzll(v);
  }

 private:
  std::uint64_t buckets_[kBuckets + 1] = {};
  std::uint64_t total_ = 0;
};

}  // namespace rvma
