// Deprecated core/rvma_c_api.h shim, now a delegation layer over the
// handle-based api/rvma.h surface.
//
// The thread-local here is the documented compatibility wart: each
// endpoint seen by RVMA_Set_endpoint gets one borrowing rvma_ctx, cached
// for the thread's lifetime and intentionally never freed (the original
// shim leaked its window handles the same way). It lives in this file
// only — nothing under src/api routes through it.
#include "core/rvma_c_api.h"

#include <map>

#include "api/rvma.h"

struct RVMA_Win_s {
  rvma_win win;
};

namespace {

thread_local rvma_ctx g_ctx = nullptr;
thread_local std::map<void*, rvma_ctx>* g_wrapped = nullptr;

RVMA_Win wrap(rvma_win win) {
  return win == nullptr ? nullptr : new RVMA_Win_s{win};
}

uint64_t vaddr_of(void* virtual_addr) {
  return reinterpret_cast<uint64_t>(virtual_addr);
}

}  // namespace

extern "C" {

void RVMA_Set_endpoint(void* endpoint) {
  if (endpoint == nullptr) {
    g_ctx = nullptr;
    return;
  }
  if (g_wrapped == nullptr) g_wrapped = new std::map<void*, rvma_ctx>();
  auto [it, inserted] = g_wrapped->try_emplace(endpoint, nullptr);
  if (inserted) it->second = rvma_wrap_endpoint(endpoint);
  g_ctx = it->second;
}

RVMA_Win RVMA_Init_window(void* virtual_addr, rvma_key_t* key,
                          int64_t epoch_threshold, epoch_type type) {
  if (g_ctx == nullptr) return nullptr;
  return wrap(rvma_init_window(
      g_ctx, vaddr_of(virtual_addr), key, epoch_threshold,
      type == EPOCH_OPS ? RVMA_EPOCH_OPS : RVMA_EPOCH_BYTES));
}

RVMA_Status RVMA_Post_buffer(void* buffer, int64_t size,
                             void** notification_ptr, RVMA_Win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return rvma_post_buffer(win->win, buffer, size, notification_ptr);
}

RVMA_Status RVMA_Close_Win(RVMA_Win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return rvma_win_close(win->win);
}

RVMA_Status RVMA_Win_inc_epoch(RVMA_Win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return rvma_win_inc_epoch(win->win);
}

int64_t RVMA_Win_get_epoch(RVMA_Win win) {
  if (win == nullptr) return -1;
  return rvma_win_get_epoch(win->win);
}

int RVMA_Win_get_buf_ptrs(RVMA_Win win, void* notification_ptrs[],
                          int count) {
  if (win == nullptr || notification_ptrs == nullptr || count <= 0) return 0;
  return rvma_win_get_buf_ptrs(win->win, notification_ptrs, count);
}

RVMA_Status RVMA_Put(void* send_buffer, int64_t size, rvma_addr_in* dest_addr,
                     void* virtual_addr) {
  return RVMA_Put_offset(send_buffer, size, 0, dest_addr, virtual_addr);
}

RVMA_Status RVMA_Put_offset(void* send_buffer, int64_t size, int64_t offset,
                            rvma_addr_in* dest_addr, void* virtual_addr) {
  if (g_ctx == nullptr || dest_addr == nullptr) return RVMA_ERR_INVALID;
  return rvma_put_offset(g_ctx, send_buffer, dest_addr->node,
                         vaddr_of(virtual_addr), offset, size);
}

RVMA_Status RVMA_Get(int64_t size, int64_t offset, rvma_addr_in* src_addr,
                     void* virtual_addr, void* reply_virtual_addr) {
  if (g_ctx == nullptr || src_addr == nullptr) return RVMA_ERR_INVALID;
  return rvma_get_ex(g_ctx, src_addr->node, vaddr_of(virtual_addr), offset,
                     size, nullptr, vaddr_of(reply_virtual_addr), nullptr,
                     nullptr);
}

RVMA_Win RVMA_Init_catch_all(int64_t epoch_threshold, epoch_type type) {
  if (g_ctx == nullptr) return nullptr;
  return wrap(rvma_init_catch_all(
      g_ctx, epoch_threshold,
      type == EPOCH_OPS ? RVMA_EPOCH_OPS : RVMA_EPOCH_BYTES));
}

RVMA_Status RVMA_Win_rewind(RVMA_Win win, int epochs_back, void** buffer,
                            int64_t* length) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return rvma_win_rewind(win->win, epochs_back, buffer, length);
}

void RVMA_Win_free(RVMA_Win win) {
  if (win == nullptr) return;
  rvma_win_free(win->win);
  delete win;
}

}  // extern "C"
