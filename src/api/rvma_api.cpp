// Implementation of the public rvma.h surface over cluster::Cluster and
// core::RvmaEndpoint.
//
// A context is a plain heap object owned by its node's shard thread; all
// mutation happens from calls and completion callbacks running on that
// thread (endpoint callbacks fire on the owning engine), so no locking
// is needed anywhere here — the same single-writer discipline the motif
// runner uses for its per-rank arrays.
#include "api/rvma.h"

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

namespace {

using rvma::core::EpochType;
using rvma::core::RvmaEndpoint;

/// Auto-captured reply windows for rvma_get live in a reserved corner of
/// the 64-bit virtual address space far above any pointer- or
/// motif-derived address.
constexpr uint64_t kAutoReplyBase = 0xEEA0000000000000ULL;

/// Completions kept for rvma_poll; oldest are dropped beyond this, so an
/// unpolled high-rate window cannot grow the context without bound.
constexpr std::size_t kMaxPollTokens = 1024;

int to_c(rvma::Status st) {
  switch (st) {
    case rvma::Status::kOk: return RVMA_SUCCESS;
    case rvma::Status::kInvalidArg: return RVMA_ERR_INVALID;
    case rvma::Status::kClosed: return RVMA_ERR_CLOSED;
    case rvma::Status::kNoBuffer: return RVMA_ERR_NO_BUFFER;
    case rvma::Status::kNoMailbox: return RVMA_ERR_NO_MAILBOX;
    case rvma::Status::kOverflow: return RVMA_ERR_OVERFLOW;
    default: return RVMA_ERROR;
  }
}

EpochType to_epoch(rvma_epoch_type type) {
  return type == RVMA_EPOCH_OPS ? EpochType::kOps : EpochType::kBytes;
}

/// The paper's key derivation, kept identical to the legacy shim so keys
/// printed by old and new code agree.
uint64_t derive_key(uint64_t vaddr) { return vaddr * 0x9e3779b97f4a7c15ULL; }

}  // namespace

struct rvma_win_s {
  rvma_ctx ctx = nullptr;
  uint64_t vaddr = 0;
  rvma_notify_fn observer = nullptr;
  void* observer_arg = nullptr;
};

namespace {

/// Heap-held state for one auto-captured rvma_get reply window; freed by
/// the one-shot completion callback, or by rvma_finalize if the reply
/// never arrives.
struct ReplySlot {
  rvma_ctx ctx;
  uint64_t vaddr;
  rvma_notify_fn fn;
  void* arg;
  void* notif = nullptr;
  int64_t len = 0;
};

}  // namespace

struct rvma_ctx_s {
  RvmaEndpoint* ep = nullptr;
  std::unique_ptr<RvmaEndpoint> owned;
  rvma::cluster::Cluster* cluster = nullptr;
  int32_t node = 0;

  /// Counted local completion per destination plus the all-destinations
  /// aggregate (proc == RVMA_ALL_PROCS).
  struct Flight {
    uint64_t initiated = 0;
    uint64_t completed = 0;
    std::vector<std::pair<rvma_done_fn, void*>> waiters;
  };
  std::map<int32_t, Flight> flight;
  Flight all;

  struct Token {
    uint64_t vaddr;
    void* buf;
    int64_t len;
  };
  std::deque<Token> tokens;

  /// vaddr -> live handle, so the per-vaddr endpoint observer can reach
  /// the user observer without capturing a handle that rvma_win_free may
  /// have deleted.
  std::map<uint64_t, rvma_win_s*> wins;

  /// Every vaddr install_observer has armed on the endpoint. The endpoint
  /// observer captures this ctx raw, and it outlives the rvma_win handle
  /// (rvma_win_free erases from `wins` but keeps the window — and the
  /// observer — live), so finalize must walk this set, not `wins`, to
  /// disarm them all.
  std::set<uint64_t> observed;

  /// Internal two-word completion regions (head, length) for windows whose
  /// caller did not supply a notification pointer (capture path and
  /// rvma_post_buffer with NULL). The endpoint keeps raw pointers into
  /// these — in posted buffers and in already-scheduled completion-pointer
  /// writes — so their lifetime must match the *context*, not any rvma_win
  /// handle: rvma_win_free/rvma_release delete the handle while the window
  /// (or a pending write) can still be live. std::map node addresses are
  /// stable; slots are reclaimed only with the ctx in rvma_finalize.
  struct Slot {
    void* notif = nullptr;
    int64_t len = 0;
  };
  std::map<uint64_t, Slot> slots;

  /// Outstanding auto-captured rvma_get reply windows, so rvma_finalize
  /// can tear down the endpoint-side waiters (which capture this ctx raw)
  /// and reclaim the slots when a reply never arrived.
  std::map<uint64_t, ReplySlot*> replies;
  uint64_t reply_seq = 0;
};

namespace {

void push_token(rvma_ctx ctx, uint64_t vaddr, void* buf, int64_t len) {
  if (ctx->tokens.size() >= kMaxPollTokens) ctx->tokens.pop_front();
  ctx->tokens.push_back({vaddr, buf, len});
}

/// One endpoint-level observer per API window: queue a poll token, then
/// forward to the handle's user observer if one is set.
void install_observer(rvma_ctx ctx, uint64_t vaddr) {
  ctx->observed.insert(vaddr);
  ctx->ep->set_completion_observer(vaddr, [ctx, vaddr](void* buf,
                                                       int64_t len) {
    push_token(ctx, vaddr, buf, len);
    const auto it = ctx->wins.find(vaddr);
    if (it == ctx->wins.end()) return;
    rvma_win_s* win = it->second;
    if (win->observer != nullptr) win->observer(win->observer_arg, buf, len);
  });
}

rvma_win make_win(rvma_ctx ctx, uint64_t vaddr) {
  auto* win = new rvma_win_s;
  win->ctx = ctx;
  win->vaddr = vaddr;
  ctx->wins[vaddr] = win;
  install_observer(ctx, vaddr);
  return win;
}

void fire_waiters(rvma_ctx_s::Flight& f) {
  if (f.initiated != f.completed || f.waiters.empty()) return;
  std::vector<std::pair<rvma_done_fn, void*>> fired;
  fired.swap(f.waiters);
  for (const auto& [fn, arg] : fired) fn(arg);
}

void note_initiated(rvma_ctx ctx, int32_t proc) {
  ++ctx->flight[proc].initiated;
  ++ctx->all.initiated;
}

void note_completed(rvma_ctx ctx, int32_t proc) {
  rvma_ctx_s::Flight& f = ctx->flight[proc];
  ++f.completed;
  ++ctx->all.completed;
  fire_waiters(f);
  fire_waiters(ctx->all);
}

rvma_status do_put(rvma_ctx ctx, const void* local, int32_t proc,
                   uint64_t virtual_addr, int64_t offset, int64_t bytes) {
  if (ctx == nullptr || proc < 0 || bytes < 0 || offset < 0)
    return RVMA_ERR_INVALID;
  if (bytes > 0 && local == nullptr) return RVMA_ERR_INVALID;
  note_initiated(ctx, proc);
  ctx->ep->put(proc, virtual_addr, static_cast<uint64_t>(offset),
               static_cast<const std::byte*>(local),
               static_cast<uint64_t>(bytes),
               [ctx, proc] { note_completed(ctx, proc); });
  return RVMA_SUCCESS;
}

}  // namespace

extern "C" {

rvma_ctx rvma_initialize(void* cluster, int32_t node) {
  if (cluster == nullptr) return nullptr;
  auto* c = static_cast<rvma::cluster::Cluster*>(cluster);
  if (node < 0 || node >= c->num_nodes()) return nullptr;
  auto* ctx = new rvma_ctx_s;
  ctx->cluster = c;
  ctx->node = node;
  ctx->owned = std::make_unique<RvmaEndpoint>(c->nic(node),
                                              rvma::core::RvmaParams{});
  ctx->ep = ctx->owned.get();
  return ctx;
}

rvma_ctx rvma_wrap_endpoint(void* endpoint) {
  if (endpoint == nullptr) return nullptr;
  auto* ctx = new rvma_ctx_s;
  ctx->ep = static_cast<RvmaEndpoint*>(endpoint);
  ctx->node = ctx->ep->node();
  return ctx;
}

void rvma_finalize(rvma_ctx ctx) {
  if (ctx == nullptr) return;
  // The per-vaddr observers installed by install_observer capture this
  // ctx raw; on a wrapped (borrowed) endpoint they would outlive it and
  // fire into freed memory on the next completion. Disarm every vaddr
  // ever observed — `wins` is not enough, rvma_win_free drops the handle
  // from it while the window and its observer stay live.
  for (const uint64_t vaddr : ctx->observed) {
    ctx->ep->set_completion_observer(vaddr, nullptr);
  }
  ctx->observed.clear();
  for (const auto& [vaddr, win] : ctx->wins) delete win;
  ctx->wins.clear();
  // Posted buffers registered against ctx-owned completion slots: on a
  // borrowed endpoint the windows outlive this ctx, so detach the slot
  // pointers before the slots are freed with it.
  for (auto& [vaddr, slot] : ctx->slots) {
    ctx->ep->detach_notification(vaddr, &slot.notif, &slot.len);
  }
  // Auto-captured reply windows whose get never completed: freeing the
  // window drops the endpoint-side waiter (which captures ctx and the
  // slot), then the slot itself can be reclaimed.
  for (const auto& [vaddr, slot] : ctx->replies) {
    ctx->ep->free_window(vaddr);
    delete slot;
  }
  ctx->replies.clear();
  delete ctx;
}

int32_t rvma_ctx_node(rvma_ctx ctx) { return ctx == nullptr ? -1 : ctx->node; }

rvma_win rvma_capture_at(rvma_ctx ctx, uint64_t virtual_addr, void* data,
                         int64_t bytes) {
  if (ctx == nullptr || data == nullptr || bytes <= 0) return nullptr;
  ctx->ep->init_window(virtual_addr, bytes, EpochType::kBytes);
  rvma_win win = make_win(ctx, virtual_addr);
  rvma_ctx_s::Slot& slot = ctx->slots[virtual_addr];
  const rvma::Status st = ctx->ep->post_buffer(
      virtual_addr,
      std::span<std::byte>(static_cast<std::byte*>(data),
                           static_cast<std::size_t>(bytes)),
      &slot.notif, &slot.len);
  if (!rvma::ok(st)) {
    ctx->ep->free_window(virtual_addr);
    ctx->wins.erase(virtual_addr);
    delete win;
    return nullptr;
  }
  return win;
}

rvma_win rvma_capture(rvma_ctx ctx, void* data, int64_t bytes) {
  return rvma_capture_at(
      ctx, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(data)), data,
      bytes);
}

rvma_status rvma_release(rvma_ctx ctx, rvma_win win) {
  if (ctx == nullptr || win == nullptr || win->ctx != ctx)
    return RVMA_ERR_INVALID;
  const rvma::Status st = ctx->ep->free_window(win->vaddr);
  ctx->wins.erase(win->vaddr);
  delete win;
  return to_c(st);
}

rvma_status rvma_put(rvma_ctx ctx, const void* local, int32_t proc,
                     uint64_t virtual_addr, int64_t bytes) {
  return do_put(ctx, local, proc, virtual_addr, 0, bytes);
}

rvma_status rvma_put_offset(rvma_ctx ctx, const void* local, int32_t proc,
                            uint64_t virtual_addr, int64_t offset,
                            int64_t bytes) {
  return do_put(ctx, local, proc, virtual_addr, offset, bytes);
}

rvma_status rvma_get_ex(rvma_ctx ctx, int32_t proc, uint64_t virtual_addr,
                        int64_t offset, int64_t bytes, void* local,
                        uint64_t reply_virtual_addr, rvma_notify_fn fn,
                        void* arg) {
  if (ctx == nullptr || proc < 0 || bytes <= 0 || offset < 0)
    return RVMA_ERR_INVALID;
  if (reply_virtual_addr != 0) {
    // Pre-posted reply mailbox: misuse fails loud, never a silent drop.
    if (ctx->ep->find_mailbox(reply_virtual_addr) == nullptr)
      return RVMA_ERR_NO_MAILBOX;
    if (fn != nullptr) {
      ctx->ep->notify_wait(reply_virtual_addr,
                           [fn, arg](void* buf, int64_t len) {
                             fn(arg, buf, len);
                           });
    }
    note_initiated(ctx, proc);
    ctx->ep->get(proc, virtual_addr, static_cast<uint64_t>(offset),
                 static_cast<uint64_t>(bytes), reply_virtual_addr,
                 /*dst_pid=*/0, [ctx, proc] { note_completed(ctx, proc); });
    return RVMA_SUCCESS;
  }
  // Auto-capture: a one-epoch reply window over `local`, torn down by its
  // own completion.
  if (local == nullptr) return RVMA_ERR_INVALID;
  const uint64_t reply = kAutoReplyBase + ctx->reply_seq++;
  ctx->ep->init_window(reply, bytes, EpochType::kBytes);
  auto* slot = new ReplySlot{ctx, reply, fn, arg};
  const rvma::Status st = ctx->ep->post_buffer(
      reply,
      std::span<std::byte>(static_cast<std::byte*>(local),
                           static_cast<std::size_t>(bytes)),
      &slot->notif, &slot->len);
  if (!rvma::ok(st)) {
    ctx->ep->free_window(reply);
    delete slot;
    return to_c(st);
  }
  ctx->replies[reply] = slot;
  ctx->ep->notify_wait(reply, [slot](void* buf, int64_t len) {
    rvma_ctx sctx = slot->ctx;
    push_token(sctx, slot->vaddr, buf, len);
    if (slot->fn != nullptr) slot->fn(slot->arg, buf, len);
    sctx->ep->free_window(slot->vaddr);
    sctx->replies.erase(slot->vaddr);
    delete slot;
  });
  note_initiated(ctx, proc);
  ctx->ep->get(proc, virtual_addr, static_cast<uint64_t>(offset),
               static_cast<uint64_t>(bytes), reply,
               /*dst_pid=*/0, [ctx, proc] { note_completed(ctx, proc); });
  return RVMA_SUCCESS;
}

rvma_status rvma_get(rvma_ctx ctx, int32_t proc, uint64_t virtual_addr,
                     int64_t bytes, void* local) {
  return rvma_get_ex(ctx, proc, virtual_addr, 0, bytes, local, 0, nullptr,
                     nullptr);
}

rvma_status rvma_flush(rvma_ctx ctx, int32_t proc) {
  if (ctx == nullptr) return RVMA_ERR_INVALID;
  if (proc == RVMA_ALL_PROCS) {
    return ctx->all.initiated == ctx->all.completed ? RVMA_SUCCESS
                                                    : RVMA_ERR_PENDING;
  }
  const auto it = ctx->flight.find(proc);
  if (it == ctx->flight.end()) return RVMA_SUCCESS;
  return it->second.initiated == it->second.completed ? RVMA_SUCCESS
                                                      : RVMA_ERR_PENDING;
}

rvma_status rvma_flush_wait(rvma_ctx ctx, int32_t proc, rvma_done_fn fn,
                            void* arg) {
  if (ctx == nullptr || fn == nullptr) return RVMA_ERR_INVALID;
  if (rvma_flush(ctx, proc) == RVMA_SUCCESS) {
    fn(arg);
    return RVMA_SUCCESS;
  }
  rvma_ctx_s::Flight& f =
      proc == RVMA_ALL_PROCS ? ctx->all : ctx->flight[proc];
  f.waiters.emplace_back(fn, arg);
  return RVMA_ERR_PENDING;
}

int rvma_poll(rvma_ctx ctx, rvma_completion* out) {
  if (ctx == nullptr || ctx->tokens.empty()) return 0;
  const rvma_ctx_s::Token token = ctx->tokens.front();
  ctx->tokens.pop_front();
  if (out != nullptr) {
    out->virtual_addr = token.vaddr;
    out->buf = token.buf;
    out->len = token.len;
  }
  return 1;
}

rvma_win rvma_init_window(rvma_ctx ctx, uint64_t virtual_addr, uint64_t* key,
                          int64_t epoch_threshold, rvma_epoch_type type) {
  if (ctx == nullptr || epoch_threshold <= 0) return nullptr;
  ctx->ep->init_window(virtual_addr, epoch_threshold, to_epoch(type));
  if (key != nullptr) *key = derive_key(virtual_addr);
  return make_win(ctx, virtual_addr);
}

rvma_win rvma_init_catch_all(rvma_ctx ctx, int64_t epoch_threshold,
                             rvma_epoch_type type) {
  if (ctx == nullptr || epoch_threshold <= 0) return nullptr;
  const rvma::core::Window w =
      ctx->ep->init_catch_all(epoch_threshold, to_epoch(type));
  return make_win(ctx, w.vaddr());
}

rvma_status rvma_post_buffer(rvma_win win, void* buffer, int64_t size,
                             void** notification_ptr) {
  if (win == nullptr || buffer == nullptr || size <= 0)
    return RVMA_ERR_INVALID;
  // Completion slot: the caller's two-word region (head word at
  // notification_ptr, length at notification_ptr + 1 — paper §III-B), or
  // the context-owned pair for this vaddr when the caller passes NULL
  // (ctx-owned, not handle-owned: the endpoint keeps these pointers past
  // rvma_win_free/rvma_release).
  void** notif;
  int64_t* len;
  if (notification_ptr != nullptr) {
    notif = notification_ptr;
    len = reinterpret_cast<int64_t*>(notification_ptr + 1);
  } else {
    rvma_ctx_s::Slot& slot = win->ctx->slots[win->vaddr];
    notif = &slot.notif;
    len = &slot.len;
  }
  return to_c(win->ctx->ep->post_buffer(
      win->vaddr,
      std::span<std::byte>(static_cast<std::byte*>(buffer),
                           static_cast<std::size_t>(size)),
      notif, len));
}

rvma_status rvma_post_buffer_timing_only(rvma_win win, int64_t size) {
  if (win == nullptr || size <= 0) return RVMA_ERR_INVALID;
  return to_c(win->ctx->ep->post_buffer_timing_only(
      win->vaddr, static_cast<uint64_t>(size)));
}

rvma_status rvma_win_inc_epoch(rvma_win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ctx->ep->inc_epoch(win->vaddr));
}

int64_t rvma_win_get_epoch(rvma_win win) {
  return win == nullptr ? -1 : win->ctx->ep->get_epoch(win->vaddr);
}

int rvma_win_get_buf_ptrs(rvma_win win, void* notification_ptrs[],
                          int count) {
  if (win == nullptr) return 0;
  return win->ctx->ep->get_buf_ptrs(win->vaddr, notification_ptrs, count);
}

rvma_status rvma_win_rewind(rvma_win win, int epochs_back, void** buffer,
                            int64_t* length) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ctx->ep->rewind(win->vaddr, epochs_back, buffer, length));
}

rvma_status rvma_win_close(rvma_win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ctx->ep->close_window(win->vaddr));
}

uint64_t rvma_win_completions(rvma_win win) {
  return win == nullptr ? 0 : win->ctx->ep->completions(win->vaddr);
}

uint64_t rvma_win_vaddr(rvma_win win) {
  return win == nullptr ? 0 : win->vaddr;
}

void rvma_win_observe(rvma_win win, rvma_notify_fn fn, void* arg) {
  if (win == nullptr) return;
  win->observer = fn;
  win->observer_arg = arg;
}

void rvma_win_wait(rvma_win win, rvma_notify_fn fn, void* arg) {
  if (win == nullptr || fn == nullptr) return;
  win->ctx->ep->notify_wait(win->vaddr, [fn, arg](void* buf, int64_t len) {
    fn(arg, buf, len);
  });
}

void rvma_win_free(rvma_win win) {
  if (win == nullptr) return;
  win->ctx->wins.erase(win->vaddr);
  delete win;
}

void rvma_sim_run(void* cluster) {
  if (cluster == nullptr) return;
  auto* c = static_cast<rvma::cluster::Cluster*>(cluster);
  if (c->sharded()) {
    c->sharded_engine().run_windowed();
  } else {
    c->engine().run();
  }
}

}  // extern "C"
