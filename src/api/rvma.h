// rvma.h — the public RVMA library surface.
//
// This is the SED99-style programming interface the paper positions RVMA
// as: applications obtain an `rvma_ctx` handle per (cluster, node) with
// rvma_initialize(), capture local memory into remotely writable windows
// with rvma_capture(), move data with rvma_put()/rvma_get(), and reason
// about completion with rvma_flush() (counted local completion) and
// rvma_poll() (notification-word check). The paper's window calls
// (RVMA_Init_window / Post_buffer / Win_inc_epoch / rewind / catch-all)
// are re-expressed here over explicit handles.
//
// Handles, not thread-locals: the legacy C API in src/core/rvma_c_api.h
// routed every call through a thread-local endpoint set by
// RVMA_Set_endpoint(). Under the sharded engine (--par-shards) one OS
// thread drives many node endpoints, so "current endpoint" is not a
// per-thread notion — it must travel with the call. Every function below
// takes the context (or a window handle that knows its context), which
// makes the surface shard-safe by construction. The legacy header is now
// a deprecated wrapper over this one.
//
// Threading contract: a context is owned by the shard thread of its node.
// All calls on a ctx (and on windows created from it) must run on that
// thread — in practice, from simulation callbacks scheduled on
// cluster.engine_for(node), which is exactly where motif code runs.
//
// Lifetime: rvma_finalize() releases every window handle still registered
// with the context; outstanding rvma_win pointers become invalid then.
// Release windows early with rvma_release(); drop just the handle (the
// window itself stays live) with rvma_win_free() — the window's internal
// completion slot is context-owned, so completions arriving after the
// handle is freed stay safe. Finalize only when the context is quiescent:
// rvma_flush(ctx, RVMA_ALL_PROCS) == RVMA_SUCCESS and no completion is
// mid-delivery (in practice, after the simulation has drained).
#ifndef RVMA_API_RVMA_H_
#define RVMA_API_RVMA_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes. Values are shared with the legacy core/rvma_c_api.h so
 * the two headers can coexist in one translation unit. */
#ifndef RVMA_SUCCESS
#define RVMA_SUCCESS 0
#define RVMA_ERROR 1
#define RVMA_ERR_INVALID 2
#define RVMA_ERR_CLOSED 3
#define RVMA_ERR_NO_BUFFER 4
#define RVMA_ERR_NO_MAILBOX 5
#define RVMA_ERR_OVERFLOW 7
#endif
/* rvma_flush: operations to this destination are still in flight. */
#define RVMA_ERR_PENDING 8

/* rvma_flush / rvma_flush_wait: match operations to every destination. */
#define RVMA_ALL_PROCS (-1)

typedef int rvma_status;

typedef struct rvma_ctx_s* rvma_ctx;
typedef struct rvma_win_s* rvma_win;

typedef enum rvma_epoch_type {
  RVMA_EPOCH_BYTES = 0,
  RVMA_EPOCH_OPS = 1,
} rvma_epoch_type;

/* Completion notification: `buf` is the head of the completed buffer and
 * `len` the bytes landed in it (the paper's two-word completion pointer,
 * unpacked). */
typedef void (*rvma_notify_fn)(void* arg, void* buf, int64_t len);
typedef void (*rvma_done_fn)(void* arg);

/* One completion drained by rvma_poll(). */
typedef struct rvma_completion {
  uint64_t virtual_addr;
  void* buf;
  int64_t len;
} rvma_completion;

/* ---- context lifecycle ---- */

/* Create a context for `node` on a cluster::Cluster (passed as void* to
 * keep this header C-clean). The context owns a fresh RVMA endpoint on
 * that node's NIC. Returns NULL on bad arguments. */
rvma_ctx rvma_initialize(void* cluster, int32_t node);

/* Wrap an existing core::RvmaEndpoint without taking ownership — the
 * bridge the deprecated core/rvma_c_api.h shim rides on. */
rvma_ctx rvma_wrap_endpoint(void* endpoint);

/* Destroy the context; frees the owned endpoint (if any) and every
 * window handle still registered with the context. */
void rvma_finalize(rvma_ctx ctx);

int32_t rvma_ctx_node(rvma_ctx ctx);

/* ---- capture: window init + buffer post in one call ---- */

/* Make `bytes` of local memory at `data` remotely writable. The virtual
 * address is the pointer value itself (SED99 capture semantics); peers
 * rvma_put() to (uint64_t)(uintptr_t)data. The window completes (epoch
 * rolls) every `bytes` received. */
rvma_win rvma_capture(rvma_ctx ctx, void* data, int64_t bytes);

/* Capture under an explicit virtual address. Simulation motifs use this
 * with fixed integer vaddrs so results never depend on heap layout. */
rvma_win rvma_capture_at(rvma_ctx ctx, uint64_t virtual_addr, void* data,
                         int64_t bytes);

/* Close + free the window and its handle. */
rvma_status rvma_release(rvma_ctx ctx, rvma_win win);

/* ---- data movement ---- */

/* Write `bytes` starting at `local` into the window at (proc,
 * virtual_addr). Zero-copy: `local` must stay untouched until a
 * rvma_flush()/rvma_flush_wait() covering this operation succeeds. */
rvma_status rvma_put(rvma_ctx ctx, const void* local, int32_t proc,
                     uint64_t virtual_addr, int64_t bytes);
rvma_status rvma_put_offset(rvma_ctx ctx, const void* local, int32_t proc,
                            uint64_t virtual_addr, int64_t offset,
                            int64_t bytes);

/* Fetch `bytes` from the active buffer of the window at (proc,
 * virtual_addr) into `local`. The reply window is captured automatically
 * over `local` and torn down after the reply lands (satellite: no
 * pre-posted reply mailbox needed). Completion is observable via
 * rvma_poll() or the _ex callback. */
rvma_status rvma_get(rvma_ctx ctx, int32_t proc, uint64_t virtual_addr,
                     int64_t bytes, void* local);

/* Full-control get: read at `offset` into the target buffer; optional
 * completion callback. When `reply_virtual_addr` is nonzero it must name
 * an already-posted local mailbox — an unknown address fails loudly with
 * RVMA_ERR_NO_MAILBOX (never a silent drop). When zero, the reply window
 * is auto-captured over `local` as in rvma_get(). */
rvma_status rvma_get_ex(rvma_ctx ctx, int32_t proc, uint64_t virtual_addr,
                        int64_t offset, int64_t bytes, void* local,
                        uint64_t reply_virtual_addr, rvma_notify_fn fn,
                        void* arg);

/* ---- completion ---- */

/* Counted local completion: RVMA_SUCCESS when every put/get issued from
 * this ctx to `proc` (or all procs, RVMA_ALL_PROCS) has been handed to
 * the NIC injection link — local buffers are reusable from then on.
 * RVMA_ERR_PENDING while operations are still in flight. */
rvma_status rvma_flush(rvma_ctx ctx, int32_t proc);

/* As rvma_flush, but invoke `fn(arg)` once the condition holds (fires
 * synchronously if it already does). */
rvma_status rvma_flush_wait(rvma_ctx ctx, int32_t proc, rvma_done_fn fn,
                            void* arg);

/* Drain one window completion (the notification-word check). Returns 1
 * and fills `*out` (if non-NULL) when a completion was pending, else 0.
 * The context keeps a bounded queue of recent completions; prefer
 * rvma_win_observe() for high-rate windows. */
int rvma_poll(rvma_ctx ctx, rvma_completion* out);

/* ---- the paper's window calls, over handles ---- */

/* RVMA_Init_window: create a window at `virtual_addr` completing every
 * `epoch_threshold` bytes/ops. `key` (optional out) receives the derived
 * protection key. Returns NULL on bad arguments. */
rvma_win rvma_init_window(rvma_ctx ctx, uint64_t virtual_addr, uint64_t* key,
                          int64_t epoch_threshold, rvma_epoch_type type);

/* RVMA_Init_catch_all: the per-process default mailbox receiving traffic
 * for unknown virtual addresses (always managed placement). */
rvma_win rvma_init_catch_all(rvma_ctx ctx, int64_t epoch_threshold,
                             rvma_epoch_type type);

/* RVMA_Post_buffer: append a real buffer to the window's posted queue.
 * `notification_ptr` (optional) names the first word of the caller's
 * cache-line two-word completion region (paper §III-B): the completed
 * buffer's head is written to word 0 and the received length to word 1.
 * NULL keeps completion in the handle (read it via rvma_poll or an
 * observer). */
rvma_status rvma_post_buffer(rvma_win win, void* buffer, int64_t size,
                             void** notification_ptr);
/* Timing-only variant: models the buffer without backing memory. */
rvma_status rvma_post_buffer_timing_only(rvma_win win, int64_t size);

rvma_status rvma_win_inc_epoch(rvma_win win);
int64_t rvma_win_get_epoch(rvma_win win);
int rvma_win_get_buf_ptrs(rvma_win win, void* notification_ptrs[], int count);
rvma_status rvma_win_rewind(rvma_win win, int epochs_back, void** buffer,
                            int64_t* length);
rvma_status rvma_win_close(rvma_win win);
uint64_t rvma_win_completions(rvma_win win);
uint64_t rvma_win_vaddr(rvma_win win);

/* Persistent completion observer: `fn(arg, buf, len)` on every epoch
 * roll of this window. One observer per window; NULL fn clears it. */
void rvma_win_observe(rvma_win win, rvma_notify_fn fn, void* arg);
/* One-shot completion wait (paper notify semantics). */
void rvma_win_wait(rvma_win win, rvma_notify_fn fn, void* arg);

/* Release the handle only; the window itself stays live on the
 * endpoint (legacy RVMA_Win_free semantics). */
void rvma_win_free(rvma_win win);

/* ---- simulation helper ---- */

/* Run the cluster's engine (serial or sharded) to completion — lets
 * examples stay entirely on this header. */
void rvma_sim_run(void* cluster);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* RVMA_API_RVMA_H_ */
