#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <new>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace rvma::cluster {

Cluster::NicSlab::NicSlab(std::size_t capacity) : capacity_(capacity) {
  slots_ = static_cast<nic::Nic*>(::operator new(
      capacity * sizeof(nic::Nic), std::align_val_t{alignof(nic::Nic)}));
}

Cluster::NicSlab::~NicSlab() {
  for (std::size_t i = count_; i > 0; --i) {
    slots_[i - 1].~Nic();
  }
  ::operator delete(slots_, std::align_val_t{alignof(nic::Nic)});
}

nic::Nic* Cluster::NicSlab::emplace(sim::Engine& engine, net::Network& network,
                                    net::NodeId node,
                                    const nic::NicParams& params,
                                    obs::MetricsRegistry* metrics) {
  assert(count_ < capacity_ && "NIC slab overflow");
  nic::Nic* nic =
      new (slots_ + count_) nic::Nic(engine, network, node, params, metrics);
  ++count_;
  return nic;
}

Cluster::Cluster(const net::NetworkConfig& net_config,
                 const nic::NicParams& nic_params, int par_shards) {
  // Every experiment builds a Cluster, so this is the one-time hook for
  // the environment-driven diagnostics (RVMA_LOG / RVMA_TRACE).
  static const bool env_initialized = [] {
    init_log_from_env();
    init_trace_from_env();
    return true;
  }();
  (void)env_initialized;

  int k = std::max(1, par_shards);
  // Exact sharding requires static routing (adaptive consults a
  // per-Network RNG stream, which would diverge across shard-local
  // replicas) and no global trace sink (one serial stream).
  if (net_config.routing != net::Routing::kStatic) k = 1;
  if (Tracer::global().enabled()) k = 1;

  // Shard 0 is built first: its network tells us the switch count and the
  // cross-shard lookahead, which bound how many shards are viable.
  shards_.push_back(std::make_unique<Shard>());
  Shard& s0 = *shards_[0];
  sharded_.attach(&s0.engine);
  s0.network =
      std::make_unique<net::Network>(s0.engine, net_config, &s0.metrics);
  net::Fabric& f0 = s0.network->fabric();
  const int num_sw = f0.num_switches();
  k = std::min(k, num_sw);

  // Contiguous slab assignment: switch sw belongs to shard sw*k/S. Every
  // topology builder numbers switches so that adjacent indices are
  // adjacent in the machine (torus z-slabs, fat-tree pods...), keeping
  // most links intra-shard.
  std::vector<std::int32_t> shard_of_switch;
  if (k > 1) {
    shard_of_switch.resize(static_cast<std::size_t>(num_sw));
    for (int sw = 0; sw < num_sw; ++sw) {
      shard_of_switch[static_cast<std::size_t>(sw)] = static_cast<std::int32_t>(
          static_cast<std::int64_t>(sw) * k / num_sw);
    }
    // Conservative lookahead, per shard pair: the minimum latency of any
    // link crossing shard src -> dst — an event on src can influence dst
    // no earlier than t + la[src][dst]. A zero crossing latency anywhere
    // (or a topology where no link crosses at all) means windows cannot
    // make progress exactly — fall back to serial.
    std::vector<Time> la =
        net::cross_shard_min_latency(f0, shard_of_switch, k);
    Time la_min = kTimeInfinity;
    bool la_zero = false;
    for (int src = 0; src < k; ++src) {
      for (int dst = 0; dst < k; ++dst) {
        if (src == dst) continue;
        const Time d = la[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(k) +
                          static_cast<std::size_t>(dst)];
        if (d == 0) la_zero = true;
        if (d != kTimeInfinity) la_min = std::min(la_min, d);
      }
    }
    if (la_zero || la_min == kTimeInfinity) {
      k = 1;
      shard_of_switch.clear();
    } else {
      lookahead_ = la_min;
      // Close the direct-crossing matrix over shard paths (min-plus
      // all-pairs shortest path): influence can chain src -> m -> dst
      // across rounds with a smaller total latency than any direct
      // src -> dst link, so the window bound must use path distances —
      // DESIGN.md §12 has the two-hop counterexample. Pairs with no path
      // stay infinite and never constrain a window.
      net::close_min_latency_matrix(la, k);
      lookahead_matrix_ = std::move(la);
    }
  }

  // Remaining shards: identical construction (same config, same seed)
  // yields identical wiring and static route tables; each shard's fabric
  // only ever arbitrates ports on its own switches.
  for (int s = 1; s < k; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sharded_.attach(&sh.engine);
    sh.network =
        std::make_unique<net::Network>(sh.engine, net_config, &sh.metrics);
  }

  if (k > 1) {
    // Install after every shard is attached: the matrix is K x K.
    sharded_.set_lookahead_matrix(lookahead_matrix_);
    for (int s = 0; s < k; ++s) {
      net::Fabric& f = shards_[static_cast<std::size_t>(s)]->network->fabric();
      // The handoff hook runs on the source shard's thread mid-event. The
      // Message descriptor lives in the source thread's MsgRef pool
      // (non-atomic refcount), so it is copied out to a plain value here
      // and re-pooled on the destination thread when the posted callback
      // runs. Message::owned is a shared_ptr (atomic refcount) — safe to
      // carry across. The callback itself exceeds the inline Callback
      // capacity and rides in a pooled block, which simply migrates to
      // the destination thread's free list; the window barriers provide
      // the happens-before edge for both.
      f.set_shard_map(
          s, shard_of_switch,
          [this, s](int dst_shard, int next_sw, Time arrival, Time rank,
                    net::Packet&& pkt) {
            net::Message msg = *pkt.msg;
            msg.pool_rc = 0;
            pkt.msg.reset();
            net::Fabric* dst_fabric =
                &shards_[static_cast<std::size_t>(dst_shard)]
                     ->network->fabric();
            sharded_.post(
                s, dst_shard, arrival,
                sim::Callback([dst_fabric, next_sw, arrival, rank,
                               pkt = std::move(pkt),
                               msg = std::move(msg)]() mutable {
                  pkt.msg = net::MsgRef::make(std::move(msg));
                  dst_fabric->receive_remote(next_sw, arrival, rank,
                                             std::move(pkt));
                }));
          });
    }
  }

  // One NIC per node, living on the shard that owns its switch: delivery
  // and the express-rx hook register only there, so a packet reaching its
  // ejection switch is always on the right shard. NICs are arena-allocated
  // per shard: resolve every node's shard first, size one slab per shard,
  // then placement-construct in node order.
  const int n = s0.network->num_nodes();
  shard_of_node_.resize(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> shard_nics(static_cast<std::size_t>(k), 0);
  for (net::NodeId node = 0; node < n; ++node) {
    int s = 0;
    if (k > 1) {
      s = shard_of_switch[static_cast<std::size_t>(f0.switch_of_node(node))];
    }
    shard_of_node_[static_cast<std::size_t>(node)] =
        static_cast<std::int32_t>(s);
    ++shard_nics[static_cast<std::size_t>(s)];
  }
  nic_slabs_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    nic_slabs_.push_back(
        std::make_unique<NicSlab>(shard_nics[static_cast<std::size_t>(s)]));
  }
  nics_.reserve(static_cast<std::size_t>(n));
  for (net::NodeId node = 0; node < n; ++node) {
    const std::size_t s =
        static_cast<std::size_t>(shard_of_node_[static_cast<std::size_t>(node)]);
    Shard& sh = *shards_[s];
    nics_.push_back(nic_slabs_[s]->emplace(sh.engine, *sh.network, node,
                                           nic_params, &sh.metrics));
  }

  if (!sharded()) {
    // Standard sampler columns. Providers only dereference Cluster-owned
    // state (engine, fabric, NICs, registry), all of which outlives the
    // sampler's use. Same-named providers sum into one column (NIC
    // queues). Sharded runs never sample: the providers read one shard's
    // engine mid-flight, which the windowed phase cannot do exactly — the
    // scenario layer clamps par_shards to 1 whenever sampling is armed.
    sampler_ = std::make_unique<obs::Sampler>(s0.metrics);
    sampler_->add_gauge("engine.heap_depth", [this] {
      return static_cast<std::int64_t>(shards_[0]->engine.pending());
    });
    sampler_->add_gauge("fabric.inflight_packets", [this] {
      return shards_[0]->network->fabric().inflight_packets();
    });
    sampler_->add_gauge("fabric.port_backlog_ns", [this] {
      // Single conversion point for this column lives on the Fabric
      // (current_port_backlog_max_ns), shared with the registry gauge's
      // unit.
      return shards_[0]->network->fabric().current_port_backlog_max_ns();
    });
    for (nic::Nic* raw : nics_) {
      sampler_->add_gauge("nic.tx_queue_depth",
                          [raw] { return raw->tx_queue_depth(); });
    }
    // Endpoint levels derived from counter pairs: endpoints come and go
    // per experiment, but the registry counters they mirror into are
    // stable.
    sampler_->add_gauge("rvma.posted_buffers", [this] {
      return static_cast<std::int64_t>(
          shards_[0]->metrics.counter("rvma.buffers_posted").value() -
          shards_[0]->metrics.counter("rvma.buffers_retired").value());
    });
    sampler_->add_gauge("rvma.nic_counters_in_use", [this] {
      return static_cast<std::int64_t>(
          shards_[0]->metrics.counter("rvma.nic_counters_acquired").value() -
          shards_[0]->metrics.counter("rvma.nic_counters_released").value());
    });
  }
}

Cluster::Cluster(const ClusterBuilder& builder)
    : Cluster(builder.net_config(), builder.nic_params(),
              builder.par_shards()) {}

void Cluster::enable_sampling(Time period) {
  assert(!sharded() && "sampling requires a serial (one-shard) cluster");
  sampler_->enable(period);
  shards_[0]->engine.set_sampler(sampler_.get());
}

std::size_t Cluster::route_table_bytes() const {
  std::size_t bytes = 0;
  for (const auto& sh : shards_) {
    bytes += sh->network->fabric().route_table_bytes();
  }
  return bytes;
}

net::FabricStats Cluster::fabric_stats() const {
  net::FabricStats total = shards_[0]->network->fabric().stats();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const net::FabricStats fs = shards_[s]->network->fabric().stats();
    total.packets_delivered += fs.packets_delivered;
    total.packets_injected += fs.packets_injected;
    total.total_hops += fs.total_hops;
    total.wire_bytes_delivered += fs.wire_bytes_delivered;
    total.packets_dropped_dead_node += fs.packets_dropped_dead_node;
    total.route_cache_hits += fs.route_cache_hits;
    total.max_port_backlog = std::max(total.max_port_backlog,
                                      fs.max_port_backlog);
    total.express_commits += fs.express_commits;
    total.express_fallbacks += fs.express_fallbacks;
    total.express_remats += fs.express_remats;
  }
  return total;
}

void Cluster::arm_flight_recorder(std::size_t capacity_per_shard) {
  recorders_.clear();
  recorders_.reserve(shards_.size());
  for (auto& sh : shards_) {
    recorders_.push_back(
        std::make_unique<obs::FlightRecorder>(capacity_per_shard));
    sh->engine.set_flight_recorder(recorders_.back().get());
  }
}

bool Cluster::write_flight_dump(const std::string& path,
                                std::string* error) const {
  std::vector<const obs::FlightRecorder*> recs;
  recs.reserve(recorders_.size());
  for (const auto& r : recorders_) recs.push_back(r.get());
  return obs::write_flight_file(path, recs, error);
}

void Cluster::enable_pdes_profiling() {
  if (sharded()) sharded_.enable_profiling(true);
}

obs::MetricsSnapshot Cluster::collect_pdes_profile() const {
  obs::MetricsRegistry reg;
  const int k = num_shards();
  reg.counter("pdes.shards").inc(static_cast<std::uint64_t>(k));
  // Per-pair lookahead spread (min / max / mean over finite off-diagonal
  // entries of the path-closed matrix, in picoseconds): how much wider the
  // matrix lets windows open compared to the old single global minimum
  // (which equals lookahead_min_ps). All zero when serial.
  {
    Time lmin = 0, lmax = 0;
    std::uint64_t lsum = 0, finite = 0, unreachable = 0;
    const std::size_t ks = static_cast<std::size_t>(k);
    if (lookahead_matrix_.size() == ks * ks) {
      lmin = kTimeInfinity;
      for (std::size_t src = 0; src < ks; ++src) {
        for (std::size_t dst = 0; dst < ks; ++dst) {
          if (src == dst) continue;
          const Time d = lookahead_matrix_[src * ks + dst];
          if (d == kTimeInfinity) {
            ++unreachable;
            continue;
          }
          lmin = std::min(lmin, d);
          lmax = std::max(lmax, d);
          lsum += d;
          ++finite;
        }
      }
      if (finite == 0) lmin = 0;
    }
    reg.gauge("pdes.lookahead_min_ps").set(static_cast<std::int64_t>(lmin));
    reg.gauge("pdes.lookahead_max_ps").set(static_cast<std::int64_t>(lmax));
    reg.gauge("pdes.lookahead_mean_ps")
        .set(static_cast<std::int64_t>(finite == 0 ? 0 : lsum / finite));
    reg.gauge("pdes.lookahead_unreachable_pairs")
        .set(static_cast<std::int64_t>(unreachable));
  }
  reg.counter("pdes.windows").inc(sharded_.windows_executed());
  reg.histogram("pdes.window_stride_ps").merge(sharded_.window_stride_ps());
  char name[64];
  for (int s = 0; s < k; ++s) {
    const bool have = sharded() && sharded_.profiling();
    // A serial cluster has no barriers: its one shard is 100% busy by
    // definition, which keeps the K=1 row comparable in bench sweeps.
    const sim::ShardedEngine::ShardProfile* prof =
        have ? &sharded_.profile(s) : nullptr;
    std::snprintf(name, sizeof(name), "pdes.shard%d.busy_wall_ns", s);
    reg.counter(name).inc(prof != nullptr ? prof->busy_wall_ns : 0);
    std::snprintf(name, sizeof(name), "pdes.shard%d.barrier_wait_wall_ns", s);
    reg.counter(name).inc(prof != nullptr ? prof->barrier_wait_wall_ns : 0);
    std::snprintf(name, sizeof(name), "pdes.shard%d.drain_wall_ns", s);
    reg.counter(name).inc(prof != nullptr ? prof->drain_wall_ns : 0);
    std::snprintf(name, sizeof(name), "pdes.shard%d.completion_wall_ns", s);
    reg.counter(name).inc(prof != nullptr ? prof->completion_wall_ns : 0);
    std::snprintf(name, sizeof(name), "pdes.shard%d.items_drained", s);
    reg.counter(name).inc(prof != nullptr ? prof->items_drained : 0);
    std::snprintf(name, sizeof(name), "pdes.shard%d.utilization_pct", s);
    reg.gauge(name).set(static_cast<std::int64_t>(
        prof != nullptr ? prof->utilization_pct() : 100.0));
    std::snprintf(name, sizeof(name), "pdes.shard%d.drain_depth", s);
    if (prof != nullptr) reg.histogram(name).merge(prof->drain_depth);
  }
  return reg.snapshot();
}

obs::MetricsSnapshot Cluster::collect_metrics() const {
  obs::MetricsSnapshot snap = shards_[0]->metrics.snapshot();
  std::uint64_t executed = shards_[0]->engine.executed_events();
  std::uint64_t scheduled = shards_[0]->engine.scheduled_events();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    snap.merge(shards_[s]->metrics.snapshot());
    executed += shards_[s]->engine.executed_events();
    scheduled += shards_[s]->engine.scheduled_events();
  }
  snap.counters["engine.events_executed"] = executed;
  snap.counters["engine.events_scheduled"] = scheduled;
  return snap;
}

}  // namespace rvma::cluster
