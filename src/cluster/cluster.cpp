#include "cluster/cluster.hpp"

#include "common/log.hpp"
#include "common/trace.hpp"

namespace rvma::cluster {

Cluster::Cluster(const net::NetworkConfig& net_config,
                 const nic::NicParams& nic_params) {
  // Every experiment builds a Cluster, so this is the one-time hook for
  // the environment-driven diagnostics (RVMA_LOG / RVMA_TRACE).
  static const bool env_initialized = [] {
    init_log_from_env();
    init_trace_from_env();
    return true;
  }();
  (void)env_initialized;
  network_ = std::make_unique<net::Network>(engine_, net_config, &metrics_);
  const int n = network_->num_nodes();
  nics_.reserve(n);
  for (net::NodeId node = 0; node < n; ++node) {
    nics_.push_back(std::make_unique<nic::Nic>(engine_, *network_, node,
                                               nic_params, &metrics_));
  }

  // Standard sampler columns. Providers only dereference Cluster-owned
  // state (engine, fabric, NICs, registry), all of which outlives the
  // sampler's use. Same-named providers sum into one column (NIC queues).
  sampler_.add_gauge("engine.heap_depth", [this] {
    return static_cast<std::int64_t>(engine_.pending());
  });
  sampler_.add_gauge("fabric.inflight_packets", [this] {
    return network_->fabric().inflight_packets();
  });
  sampler_.add_gauge("fabric.port_backlog_ns", [this] {
    // Single conversion point for this column lives on the Fabric
    // (current_port_backlog_max_ns), shared with the registry gauge's unit.
    return network_->fabric().current_port_backlog_max_ns();
  });
  for (const auto& nic : nics_) {
    nic::Nic* raw = nic.get();
    sampler_.add_gauge("nic.tx_queue_depth", [raw] {
      return raw->tx_queue_depth();
    });
  }
  // Endpoint levels derived from counter pairs: endpoints come and go per
  // experiment, but the registry counters they mirror into are stable.
  sampler_.add_gauge("rvma.posted_buffers", [this] {
    return static_cast<std::int64_t>(
        metrics_.counter("rvma.buffers_posted").value() -
        metrics_.counter("rvma.buffers_retired").value());
  });
  sampler_.add_gauge("rvma.nic_counters_in_use", [this] {
    return static_cast<std::int64_t>(
        metrics_.counter("rvma.nic_counters_acquired").value() -
        metrics_.counter("rvma.nic_counters_released").value());
  });
}

Cluster::Cluster(const ClusterBuilder& builder)
    : Cluster(builder.net_config(), builder.nic_params()) {}

void Cluster::enable_sampling(Time period) {
  sampler_.enable(period);
  engine_.set_sampler(&sampler_);
}

obs::MetricsSnapshot Cluster::collect_metrics() const {
  obs::MetricsSnapshot snap = metrics_.snapshot();
  snap.counters["engine.events_executed"] = engine_.executed_events();
  snap.counters["engine.events_scheduled"] = engine_.scheduled_events();
  return snap;
}

}  // namespace rvma::cluster
