// Cluster: the composition root of every simulated experiment.
//
// Engine + network + one NIC per node + the shared metrics registry and
// sampler. This is the single place where the simulation layers are wired
// together; everything above it (protocol endpoints, transports, motifs,
// benches, examples) receives an already-assembled Cluster — either built
// directly from a NetworkConfig, fluently through ClusterBuilder, or
// declaratively through a scenario spec (src/scenario).
#pragma once

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/engine.hpp"

namespace rvma::cluster {

class ClusterBuilder;

/// Engine + network + one NIC per node: the simulated machine every
/// experiment instantiates.
class Cluster {
 public:
  Cluster(const net::NetworkConfig& net_config,
          const nic::NicParams& nic_params);
  explicit Cluster(const ClusterBuilder& builder);

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return *network_; }
  nic::Nic& nic(net::NodeId node) { return *nics_[node]; }
  int num_nodes() const { return network_->num_nodes(); }

  /// The cluster-wide instrument registry every layer records into.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Sampler& sampler() { return sampler_; }

  /// Arm simulated-time gauge sampling (engine.heap_depth, in-flight
  /// packets, port backlog, NIC tx queues, posted buffers...) with the
  /// given period. Call before running the simulation.
  void enable_sampling(Time period);

  /// Registry snapshot plus the engine's own counters (events executed /
  /// scheduled, final heap depth). Idempotent — engine values are stamped
  /// into the snapshot, not accumulated into the registry.
  obs::MetricsSnapshot collect_metrics() const;

 private:
  // Declaration order is lifetime order: instruments and sampler must
  // outlive the engine/NICs that hold pointers into them (destruction
  // runs in reverse).
  obs::MetricsRegistry metrics_;
  obs::Sampler sampler_{metrics_};
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<nic::Nic>> nics_;
};

/// Fluent front-end over (NetworkConfig, NicParams) for callers that wire
/// a machine inline — examples, benches, perf harnesses. Keeps the
/// "construct Engine/Fabric/NIC" knowledge inside this library: callers
/// describe the machine, Cluster assembles it.
///
///   cluster::Cluster c(cluster::ClusterBuilder()
///                          .topology(net::TopologyKind::kFatTree)
///                          .routing(net::Routing::kAdaptive)
///                          .nodes(17)
///                          .link_bandwidth(Bandwidth::gbps(400)));
class ClusterBuilder {
 public:
  ClusterBuilder& topology(net::TopologyKind kind) {
    net_.topology = kind;
    return *this;
  }
  ClusterBuilder& routing(net::Routing routing) {
    net_.routing = routing;
    return *this;
  }
  ClusterBuilder& nodes(int n) {
    net_.nodes_hint = n;
    return *this;
  }
  ClusterBuilder& link_bandwidth(Bandwidth bw) {
    net_.link.bw = bw;
    return *this;
  }
  ClusterBuilder& link_latency(Time t) {
    net_.link.latency = t;
    return *this;
  }
  ClusterBuilder& switch_latency(Time t) {
    net_.switch_latency = t;
    return *this;
  }
  ClusterBuilder& xbar_factor(double factor) {
    net_.xbar_factor = factor;
    return *this;
  }
  ClusterBuilder& concentration(int c) {
    net_.concentration = c;
    return *this;
  }
  ClusterBuilder& seed(std::uint64_t s) {
    net_.seed = s;
    return *this;
  }
  ClusterBuilder& express(bool on) {
    net_.express = on;
    return *this;
  }
  /// Wholesale overrides for callers that already hold a config.
  ClusterBuilder& net_config(const net::NetworkConfig& config) {
    net_ = config;
    return *this;
  }
  ClusterBuilder& nic_params(const nic::NicParams& params) {
    nic_ = params;
    return *this;
  }

  const net::NetworkConfig& net_config() const { return net_; }
  const nic::NicParams& nic_params() const { return nic_; }

  std::unique_ptr<Cluster> build() const {
    return std::make_unique<Cluster>(net_, nic_);
  }

 private:
  net::NetworkConfig net_;
  nic::NicParams nic_;
};

}  // namespace rvma::cluster
