// Cluster: the composition root of every simulated experiment.
//
// Engine + network + one NIC per node + the shared metrics registry and
// sampler. This is the single place where the simulation layers are wired
// together; everything above it (protocol endpoints, transports, motifs,
// benches, examples) receives an already-assembled Cluster — either built
// directly from a NetworkConfig, fluently through ClusterBuilder, or
// declaratively through a scenario spec (src/scenario).
//
// Sharded mode (par_shards > 1): the switch set splits into contiguous
// shard slabs, each with its own Engine, MetricsRegistry, and a full copy
// of the Network (identical construction => identical wiring and routes;
// off-shard port state is dead weight that is never read). NICs attach on
// the shard owning their switch, so injection and ejection never cross a
// shard boundary — only transit hops do, handed across through
// sim::ShardedEngine's windowed channels (DESIGN.md §12). Falls back to
// one shard whenever conservative sharding cannot be exact: adaptive
// routing (per-network RNG streams would diverge), an active global
// tracer (one serial sink), or zero cross-shard lookahead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"

namespace rvma::cluster {

class ClusterBuilder;

/// Engine + network + one NIC per node: the simulated machine every
/// experiment instantiates.
class Cluster {
 public:
  Cluster(const net::NetworkConfig& net_config,
          const nic::NicParams& nic_params, int par_shards = 1);
  explicit Cluster(const ClusterBuilder& builder);

  /// Shard 0's engine — THE engine of a serial (par_shards == 1) cluster.
  /// Sharded callers must anchor per-node work via engine_for().
  sim::Engine& engine() { return shards_[0]->engine; }
  net::Network& network() { return *shards_[0]->network; }
  nic::Nic& nic(net::NodeId node) { return *nics_[node]; }
  int num_nodes() const { return shards_[0]->network->num_nodes(); }

  // ---- sharding ----
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool sharded() const { return num_shards() > 1; }
  sim::ShardedEngine& sharded_engine() { return sharded_; }
  int shard_of_node(net::NodeId node) const {
    return shard_of_node_[static_cast<std::size_t>(node)];
  }
  /// The engine that simulates `node`'s NIC and protocol state.
  sim::Engine& engine_for(net::NodeId node) {
    return shards_[static_cast<std::size_t>(shard_of_node(node))]->engine;
  }
  sim::Engine& engine_for_shard(int k) {
    return shards_[static_cast<std::size_t>(k)]->engine;
  }
  net::Network& network_for(net::NodeId node) {
    return *shards_[static_cast<std::size_t>(shard_of_node(node))]->network;
  }
  /// Minimum cross-shard link latency (0 when serial) — the scalar the
  /// pre-matrix windowing used, kept for ablation baselines
  /// (sharded_engine().set_lookahead(lookahead())).
  Time lookahead() const { return lookahead_; }

  /// Per-shard-pair lookahead: the minimum summed link latency over any
  /// shard path src -> dst (min-plus closure of the direct crossing-link
  /// matrix), kTimeInfinity when src can never influence dst. This is the
  /// matrix driving the windowed run's per-destination window edges.
  /// Only valid when sharded().
  Time lookahead(int src, int dst) const {
    return lookahead_matrix_[static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(num_shards()) +
                             static_cast<std::size_t>(dst)];
  }
  const std::vector<Time>& lookahead_matrix() const {
    return lookahead_matrix_;
  }

  /// Whole-machine fabric view: counters summed across shards,
  /// max_port_backlog maxed. Equals network().fabric().stats() when serial.
  net::FabricStats fabric_stats() const;

  /// Static-routing state resident bytes summed across shards (each shard
  /// replicates the Network): 0 under algebraic routing, K * S * N * 4
  /// under the materialized LUT ablation.
  std::size_t route_table_bytes() const;

  /// The cluster-wide instrument registry every layer records into
  /// (shard 0's registry when sharded — use collect_metrics() for totals).
  obs::MetricsRegistry& metrics() { return shards_[0]->metrics; }
  obs::Sampler& sampler() { return *sampler_; }

  /// Arm simulated-time gauge sampling (engine.heap_depth, in-flight
  /// packets, port backlog, NIC tx queues, posted buffers...) with the
  /// given period. Call before running the simulation. Serial only — the
  /// scenario layer clamps par_shards to 1 whenever sampling is on.
  void enable_sampling(Time period);

  /// Registry snapshot plus the engine's own counters (events executed /
  /// scheduled, final heap depth). Sharded: shard snapshots merged in
  /// shard order (counters sum, gauges max, histograms bucket-sum — all
  /// order-invariant) and engine counters summed. Idempotent — engine
  /// values are stamped into the snapshot, not accumulated.
  obs::MetricsSnapshot collect_metrics() const;

  /// Arm the span-based flight recorder: one fixed-capacity ring per
  /// shard, attached to that shard's engine so record() stays
  /// single-threaded. Purely passive — arming changes no simulation
  /// output (see obs/flight_recorder.hpp). Call before running.
  void arm_flight_recorder(
      std::size_t capacity_per_shard = obs::FlightRecorder::kDefaultCapacity);
  bool flight_recorder_armed() const { return !recorders_.empty(); }
  obs::FlightRecorder* flight_recorder_for_shard(int k) {
    return recorders_.empty() ? nullptr
                              : recorders_[static_cast<std::size_t>(k)].get();
  }

  /// Write the armed recorders' rings as one multi-shard "RVFR1" dump.
  /// Shard sections are written in shard order; readers merge by
  /// (time, shard, index), which is deterministic.
  bool write_flight_dump(const std::string& path,
                         std::string* error = nullptr) const;

  /// Arm PDES runtime profiling of the windowed loop (no-op when serial).
  void enable_pdes_profiling();

  /// Per-shard PDES runtime profile as rvma-metrics-v1 instruments:
  /// pdes.windows / pdes.window_stride_ps and the lookahead spread gauges
  /// pdes.lookahead_{min,max,mean}_ps / pdes.lookahead_unreachable_pairs
  /// (deterministic) plus per-shard pdes.shard<k>.{busy_wall_ns,
  /// barrier_wait_wall_ns, drain_wall_ns, completion_wall_ns,
  /// items_drained, utilization_pct, drain_depth}. Wall-clock values
  /// differ run to run —
  /// this snapshot is intentionally separate from collect_metrics() so
  /// the run metrics stay byte-identical across jobs/shard counts. A
  /// serial cluster reports one shard at 100% utilization, zero barrier
  /// wait.
  obs::MetricsSnapshot collect_pdes_profile() const;

 private:
  /// Everything one shard owns. Declaration order is lifetime order: the
  /// registry and engine must outlive the network/NICs holding pointers
  /// into them (destruction runs in reverse).
  struct Shard {
    obs::MetricsRegistry metrics;
    sim::Engine engine;
    std::unique_ptr<net::Network> network;
  };

  /// Arena of one shard's NICs: a single aligned allocation holding all of
  /// the shard's Nic objects contiguously (placement-new in node order,
  /// destroyed in reverse). A NIC is ~memory-heavy per-node state; packing
  /// a shard's NICs into one block replaces N individual heap allocations
  /// and keeps neighbor NICs on shared cache lines during event bursts.
  class NicSlab {
   public:
    explicit NicSlab(std::size_t capacity);
    ~NicSlab();
    NicSlab(const NicSlab&) = delete;
    NicSlab& operator=(const NicSlab&) = delete;
    nic::Nic* emplace(sim::Engine& engine, net::Network& network,
                      net::NodeId node, const nic::NicParams& params,
                      obs::MetricsRegistry* metrics);

   private:
    nic::Nic* slots_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t count_ = 0;
  };

  sim::ShardedEngine sharded_;  ///< non-owning view over shard engines
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::int32_t> shard_of_node_;
  /// Declared after shards_ so the NICs (which hold references into their
  /// shard's engine/network/registry) are destroyed first.
  std::vector<std::unique_ptr<NicSlab>> nic_slabs_;  ///< one per shard
  std::vector<nic::Nic*> nics_;  ///< node -> NIC, non-owning (slab storage)
  std::unique_ptr<obs::Sampler> sampler_;  ///< serial clusters only
  /// One recorder per shard when armed (index == shard id), else empty.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;
  Time lookahead_ = 0;  ///< min direct crossing latency (scalar baseline)
  /// Path-closed per-pair lookahead, [src * K + dst]; empty when serial.
  std::vector<Time> lookahead_matrix_;
};

/// Fluent front-end over (NetworkConfig, NicParams) for callers that wire
/// a machine inline — examples, benches, perf harnesses. Keeps the
/// "construct Engine/Fabric/NIC" knowledge inside this library: callers
/// describe the machine, Cluster assembles it.
///
///   cluster::Cluster c(cluster::ClusterBuilder()
///                          .topology(net::TopologyKind::kFatTree)
///                          .routing(net::Routing::kAdaptive)
///                          .nodes(17)
///                          .link_bandwidth(Bandwidth::gbps(400)));
class ClusterBuilder {
 public:
  ClusterBuilder& topology(net::TopologyKind kind) {
    net_.topology = kind;
    return *this;
  }
  ClusterBuilder& routing(net::Routing routing) {
    net_.routing = routing;
    return *this;
  }
  ClusterBuilder& nodes(int n) {
    net_.nodes_hint = n;
    return *this;
  }
  ClusterBuilder& link_bandwidth(Bandwidth bw) {
    net_.link.bw = bw;
    return *this;
  }
  ClusterBuilder& link_latency(Time t) {
    net_.link.latency = t;
    return *this;
  }
  /// Latency for the topology's long link tier (0 = uniform); see
  /// NetworkConfig::long_link_latency.
  ClusterBuilder& long_link_latency(Time t) {
    net_.long_link_latency = t;
    return *this;
  }
  ClusterBuilder& switch_latency(Time t) {
    net_.switch_latency = t;
    return *this;
  }
  ClusterBuilder& xbar_factor(double factor) {
    net_.xbar_factor = factor;
    return *this;
  }
  ClusterBuilder& concentration(int c) {
    net_.concentration = c;
    return *this;
  }
  ClusterBuilder& seed(std::uint64_t s) {
    net_.seed = s;
    return *this;
  }
  ClusterBuilder& express(bool on) {
    net_.express = on;
    return *this;
  }
  /// Number of parallel engine shards (1 = serial; clamped to the switch
  /// count and to 1 whenever exact sharding is impossible — see Cluster).
  ClusterBuilder& par_shards(int k) {
    par_shards_ = k;
    return *this;
  }
  /// Wholesale overrides for callers that already hold a config.
  ClusterBuilder& net_config(const net::NetworkConfig& config) {
    net_ = config;
    return *this;
  }
  ClusterBuilder& nic_params(const nic::NicParams& params) {
    nic_ = params;
    return *this;
  }

  const net::NetworkConfig& net_config() const { return net_; }
  const nic::NicParams& nic_params() const { return nic_; }
  int par_shards() const { return par_shards_; }

  std::unique_ptr<Cluster> build() const {
    return std::make_unique<Cluster>(net_, nic_, par_shards_);
  }

 private:
  net::NetworkConfig net_;
  nic::NicParams nic_;
  int par_shards_ = 1;
};

}  // namespace rvma::cluster
