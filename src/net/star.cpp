#include "net/topologies.hpp"

namespace rvma::net {

StarTopology::StarTopology(const NetworkConfig& config)
    : config_(config), nodes_(config.nodes_hint < 1 ? 1 : config.nodes_hint) {}

void StarTopology::build(Fabric& fabric) {
  const int sw = fabric.add_switch(config_.switch_latency,
                                   config_.link.bw.scaled(config_.xbar_factor));
  for (NodeId n = 0; n < nodes_; ++n) {
    fabric.attach_node(sw, n, config_.link);
  }
}

int StarTopology::route(Fabric&, int, Packet&, Routing, Rng&) {
  // Unreachable: every destination is attached to the single switch, so the
  // fabric always takes the ejection path before consulting the router.
  return -1;
}

}  // namespace rvma::net
