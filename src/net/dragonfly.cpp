#include "net/topologies.hpp"

namespace rvma::net {

DragonflyTopology::DragonflyTopology(const NetworkConfig& config)
    : config_(config) {
  p_ = config.df_p;
  a_ = config.df_a;
  h_ = config.df_h;
  if (p_ == 0 || a_ == 0 || h_ == 0) {
    // Balanced dragonfly: a = 2h, p = h (Kim et al.); grow h to cover hint.
    int h = 1;
    auto nodes_for = [](int hh) {
      const std::int64_t a = 2 * hh, p = hh;
      const std::int64_t g = a * hh + 1;
      return g * a * p;
    };
    while (nodes_for(h) < config.nodes_hint) ++h;
    h_ = h;
    a_ = 2 * h;
    p_ = h;
  }
  groups_ = a_ * h_ + 1;
}

void DragonflyTopology::build(Fabric& fabric) {
  const Bandwidth xbar = config_.link.bw.scaled(config_.xbar_factor);
  const int total_switches = groups_ * a_;
  // Long tier: the global (inter-group) links — optical cables in a real
  // dragonfly, an order of magnitude longer than intra-group copper.
  LinkParams long_link = config_.link;
  if (config_.long_link_latency != 0) {
    long_link.latency = config_.long_link_latency;
  }
  // Pass 1 — one switch at a time, in id order, with ALL of its ports
  // (a-1 local, then h global, then p ejection links): the fabric's SoA
  // port arrays require per-switch contiguous blocks. Local port
  // numbering is unchanged from the pre-SoA builder.
  for (int sw = 0; sw < total_switches; ++sw) {
    fabric.add_switch(config_.switch_latency, xbar);
    for (int p = 0; p < a_ - 1; ++p) fabric.add_port(sw, config_.link);
    for (int p = 0; p < h_; ++p) fabric.add_port(sw, long_link);
    for (int n = 0; n < p_; ++n) {
      fabric.attach_node(sw, sw * p_ + n, config_.link);
    }
  }

  // Pass 2 — wiring only (no port creation).
  for (int g = 0; g < groups_; ++g) {
    // Local all-to-all within the group.
    for (int s = 0; s < a_; ++s) {
      for (int t = s + 1; t < a_; ++t) {
        fabric.connect(switch_id(g, s), local_port(s, t),
                       switch_id(g, t), local_port(t, s));
      }
    }
    // Global links: group-level link l connects g to (g + l + 1) mod G; the
    // reverse link in the target group has index G - 2 - l. Wire each pair
    // once (g < target only).
    for (int l = 0; l < groups_ - 1; ++l) {
      const int target_group = (g + l + 1) % groups_;
      if (target_group < g) continue;
      const int back = groups_ - 2 - l;
      fabric.connect(switch_id(g, l / h_), global_port(l),
                     switch_id(target_group, back / h_), global_port(back));
    }
  }
}

TopologyFootprint DragonflyTopology::footprint() const {
  const int switches = groups_ * a_;
  return TopologyFootprint{switches, switches * (a_ - 1 + h_),
                           switches * p_};
}

int DragonflyTopology::minimal_port(int sw, int dst_sw) const {
  const int g = group_of_switch(sw);
  const int dg = group_of_switch(dst_sw);
  const int s = sw % a_;
  if (g == dg) {
    return local_port(s, dst_sw % a_);
  }
  const int l = link_to_group(g, dg);
  const int gateway = l / h_;
  if (s == gateway) return global_port(l);
  return local_port(s, gateway);
}

int DragonflyTopology::static_next_hop(int sw, NodeId dst) const {
  // Minimal local-global-local; dst's switch is dst / p_ (nodes are
  // attached in switch-id order).
  return minimal_port(sw, static_cast<int>(dst) / p_);
}

int DragonflyTopology::route(Fabric& fabric, int sw, Packet& pkt, Routing mode,
                             Rng& rng) {
  const int dst_sw = fabric.switch_of_node(pkt.dst);
  const int g = group_of_switch(sw);
  const int dg = group_of_switch(dst_sw);

  if (mode == Routing::kStatic) {
    return minimal_port(sw, dst_sw);
  }

  // UGAL-lite: decide minimal vs Valiant at the injection switch only.
  if (pkt.hops == 1 && pkt.rt_aux == -1 && g != dg && groups_ > 2) {
    const int min_port = minimal_port(sw, dst_sw);
    // Candidate intermediate group, uniformly among "others".
    int vg = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(groups_)));
    if (vg == g || vg == dg) vg = -1;
    if (vg >= 0) {
      const int l = link_to_group(g, vg);
      const int gateway = l / h_;
      const int s = sw % a_;
      const int val_port =
          s == gateway ? global_port(l) : local_port(s, gateway);
      const Time q_min = fabric.port_backlog(sw, min_port);
      const Time q_val = fabric.port_backlog(sw, val_port);
      // Valiant roughly doubles the path, so it must look at least twice
      // as uncongested to be worth taking.
      if (q_min > 2 * q_val + config_.switch_latency) {
        pkt.rt_aux = vg;
        return val_port;
      }
    }
    pkt.rt_aux = -2;  // committed to minimal
    return min_port;
  }

  if (pkt.rt_aux >= 0 && !pkt.rt_mid_done) {
    if (g == pkt.rt_aux) {
      pkt.rt_mid_done = true;  // reached the intermediate group
    } else {
      // Continue toward the intermediate group's gateway.
      const int l = link_to_group(g, pkt.rt_aux);
      const int gateway = l / h_;
      const int s = sw % a_;
      return s == gateway ? global_port(l) : local_port(s, gateway);
    }
  }

  return minimal_port(sw, dst_sw);
}

}  // namespace rvma::net
