// Concrete topology classes. Most callers go through Network/make_topology;
// these are exposed so tests can exercise wiring and routing directly.
#pragma once

#include "net/topology.hpp"

namespace rvma::net {

/// All nodes on one switch. Used by the two-node microbenchmark figures
/// (Figures 4-6) where topology is not under study.
class StarTopology final : public Topology {
 public:
  explicit StarTopology(const NetworkConfig& config);

  int num_nodes() const override { return nodes_; }
  void build(Fabric& fabric) override;
  int route(Fabric&, int, Packet&, Routing, Rng&) override;
  /// Never consulted: every destination is on the single switch, so the
  /// fabric always takes the ejection path before routing. Declaring the
  /// topology algebraic keeps static-mode semantics (express eligibility,
  /// sequence reservation) identical with zero route-table bytes.
  int static_next_hop(int, NodeId) const override { return -1; }
  bool algebraic_routing() const override { return true; }
  TopologyFootprint footprint() const override {
    return TopologyFootprint{1, 0, nodes_};
  }
  int diameter() const override { return 1; }

 private:
  NetworkConfig config_;
  int nodes_;
};

/// 3-D torus, one switch per coordinate, +/- links in x, y, z.
/// Static: dimension-order routing, shortest direction, positive tie-break.
/// Adaptive: minimal-adaptive — among dimensions still needing correction,
/// take the least-backlogged productive port.
class Torus3DTopology final : public Topology {
 public:
  explicit Torus3DTopology(const NetworkConfig& config);

  int num_nodes() const override { return dx_ * dy_ * dz_ * conc_; }
  void build(Fabric& fabric) override;
  int route(Fabric& fabric, int sw, Packet& pkt, Routing mode, Rng& rng) override;
  int static_next_hop(int sw, NodeId dst) const override;
  bool algebraic_routing() const override { return true; }
  TopologyFootprint footprint() const override;
  int diameter() const override { return dx_ / 2 + dy_ / 2 + dz_ / 2; }

  int dim_x() const { return dx_; }
  int dim_y() const { return dy_; }
  int dim_z() const { return dz_; }

 private:
  int switch_of(int x, int y, int z) const { return (x * dy_ + y) * dz_ + z; }
  NetworkConfig config_;
  int dx_, dy_, dz_, conc_;
};

/// k-ary three-level fat-tree (k pods, k^2/4 cores, k^3/4 nodes).
/// Static: D-mod-k style deterministic up-ports; adaptive: least-backlog
/// up-port, deterministic down path.
class FatTreeTopology final : public Topology {
 public:
  explicit FatTreeTopology(const NetworkConfig& config);

  int num_nodes() const override { return k_ * k_ * k_ / 4; }
  void build(Fabric& fabric) override;
  int route(Fabric& fabric, int sw, Packet& pkt, Routing mode, Rng& rng) override;
  int static_next_hop(int sw, NodeId dst) const override;
  bool algebraic_routing() const override { return true; }
  TopologyFootprint footprint() const override;
  int diameter() const override { return 6; }

  int arity() const { return k_; }

 private:
  int half() const { return k_ / 2; }
  int edge_id(int pod, int e) const { return pod * half() + e; }
  int agg_id(int pod, int a) const { return num_edges_ + pod * half() + a; }
  int core_id(int c) const { return num_edges_ + num_aggs_ + c; }

  NetworkConfig config_;
  int k_;
  int num_edges_, num_aggs_, num_cores_;
};

/// Canonical fully-connected dragonfly(p, a, h): a switches per group each
/// with p nodes and h global links; g = a*h + 1 groups.
/// Static: minimal local-global-local with deterministic gateway.
/// Adaptive: UGAL-lite — per packet, compare the backlog of the minimal
/// first hop against a Valiant detour via a random intermediate group
/// (weighted by its longer path) and take the cheaper one.
class DragonflyTopology final : public Topology {
 public:
  explicit DragonflyTopology(const NetworkConfig& config);

  int num_nodes() const override { return groups_ * a_ * p_; }
  void build(Fabric& fabric) override;
  int route(Fabric& fabric, int sw, Packet& pkt, Routing mode, Rng& rng) override;
  int static_next_hop(int sw, NodeId dst) const override;
  bool algebraic_routing() const override { return true; }
  TopologyFootprint footprint() const override;
  int diameter() const override { return 5; }  // l-g-l worst case (+detour)

  int groups() const { return groups_; }
  int switches_per_group() const { return a_; }

 private:
  int switch_id(int group, int s) const { return group * a_ + s; }
  int group_of_switch(int sw) const { return sw / a_; }
  int local_port(int s, int neighbor) const {
    return neighbor < s ? neighbor : neighbor - 1;  // a-1 local ports
  }
  int global_port(int link_in_group) const {
    return (a_ - 1) + link_in_group % h_;
  }
  /// Group-level link index connecting `group` to `target_group`.
  int link_to_group(int group, int target_group) const {
    return (target_group - group - 1 + groups_) % groups_;
  }
  /// Next hop toward dst switch within/between groups (minimal). Pure
  /// coordinate arithmetic — shared by route(kStatic) and
  /// static_next_hop.
  int minimal_port(int sw, int dst_sw) const;

  NetworkConfig config_;
  int p_, a_, h_, groups_;
};

/// 2-D HyperX: L1 x L2 lattice of switches, each dimension fully connected.
/// Static: dimension-order (dim 0 then dim 1) — the "DOR" flavor Figure 8
/// highlights. Adaptive: choose the productive dimension with the smaller
/// first-hop backlog.
class HyperXTopology final : public Topology {
 public:
  explicit HyperXTopology(const NetworkConfig& config);

  int num_nodes() const override { return l1_ * l2_ * conc_; }
  void build(Fabric& fabric) override;
  int route(Fabric& fabric, int sw, Packet& pkt, Routing mode, Rng& rng) override;
  int static_next_hop(int sw, NodeId dst) const override;
  bool algebraic_routing() const override { return true; }
  TopologyFootprint footprint() const override;
  int diameter() const override { return 2; }

  int extent1() const { return l1_; }
  int extent2() const { return l2_; }

 private:
  int switch_id(int i, int j) const { return i * l2_ + j; }
  // Port layout per switch (i,j): dim-0 peers (L1-1 ports), then dim-1
  // peers (L2-1 ports), then attached nodes.
  int dim0_port(int i, int peer_i) const { return peer_i < i ? peer_i : peer_i - 1; }
  int dim1_port(int j, int peer_j) const {
    return (l1_ - 1) + (peer_j < j ? peer_j : peer_j - 1);
  }

  NetworkConfig config_;
  int l1_, l2_, conc_;
};

}  // namespace rvma::net
