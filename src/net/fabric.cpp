#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace rvma::net {

Fabric::Fabric(sim::Engine& engine, obs::MetricsRegistry* metrics)
    : engine_(engine) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_injected_ = &metrics_->counter("fabric.packets_injected");
  c_delivered_ = &metrics_->counter("fabric.packets_delivered");
  c_hops_ = &metrics_->counter("fabric.hops");
  c_wire_bytes_ = &metrics_->counter("fabric.wire_bytes_delivered");
  c_drops_dead_node_ = &metrics_->counter("fabric.drops_dead_node");
  c_route_cache_hits_ = &metrics_->counter("fabric.route_cache_hits");
  g_port_backlog_ps_ = &metrics_->gauge("fabric.port_backlog_ps");
  h_pkt_latency_ns_ = &metrics_->histogram("fabric.pkt_latency_ns");
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.packets_injected = c_injected_->value();
  s.packets_delivered = c_delivered_->value();
  s.total_hops = c_hops_->value();
  s.wire_bytes_delivered = c_wire_bytes_->value();
  s.packets_dropped_dead_node = c_drops_dead_node_->value();
  s.route_cache_hits = c_route_cache_hits_->value();
  s.max_port_backlog = static_cast<Time>(g_port_backlog_ps_->high_water());
  return s;
}

Time Fabric::current_port_backlog_max() const {
  const Time now = engine_.now();
  Time worst = 0;
  for (const Switch& s : switches_) {
    for (const Port& p : s.ports) {
      if (p.busy_until > now) worst = std::max(worst, p.busy_until - now);
    }
  }
  for (const NodeAttach& at : node_attach_) {
    const Time busy = at.injection.busy_until;
    if (busy > now) worst = std::max(worst, busy - now);
  }
  return worst;
}

int Fabric::add_switch(Time latency, Bandwidth xbar_bw) {
  switches_.push_back(Switch{latency, xbar_bw, {}});
  return static_cast<int>(switches_.size()) - 1;
}

int Fabric::add_port(int sw, LinkParams link) {
  auto& ports = switches_[sw].ports;
  ports.push_back(Port{link, -1, -1, -1, 0});
  return static_cast<int>(ports.size()) - 1;
}

void Fabric::connect(int sw_a, int port_a, int sw_b, int port_b) {
  Port& a = switches_[sw_a].ports[port_a];
  Port& b = switches_[sw_b].ports[port_b];
  assert(a.peer_switch == -1 && a.peer_node == -1 && "port already wired");
  assert(b.peer_switch == -1 && b.peer_node == -1 && "port already wired");
  a.peer_switch = sw_b;
  a.peer_port = port_b;
  b.peer_switch = sw_a;
  b.peer_port = port_a;
}

int Fabric::attach_node(int sw, NodeId node, LinkParams link) {
  if (node >= static_cast<NodeId>(node_attach_.size())) {
    node_attach_.resize(node + 1);
  }
  NodeAttach& at = node_attach_[node];
  assert(at.sw == -1 && "node attached twice");
  const int port = add_port(sw, link);
  switches_[sw].ports[port].peer_node = node;
  at.sw = sw;
  at.port = port;
  at.injection = Port{link, sw, port, -1, 0};
  return port;
}

void Fabric::set_delivery(NodeId node, Delivery fn) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].delivery = std::move(fn);
}

void Fabric::set_static_routes(std::vector<std::int32_t> table) {
  assert(table.empty() ||
         table.size() == switches_.size() * node_attach_.size());
  static_routes_ = std::move(table);
}

Time Fabric::port_backlog(int sw, int port) const {
  const Time busy = switches_[sw].ports[port].busy_until;
  const Time now = engine_.now();
  return busy > now ? busy - now : 0;
}

Time Fabric::injection_backlog(NodeId node) const {
  const Time busy = node_attach_[node].injection.busy_until;
  const Time now = engine_.now();
  return busy > now ? busy - now : 0;
}

void Fabric::fail_node(NodeId node) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].failed = true;
}

void Fabric::revive_node(NodeId node) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].failed = false;
}

bool Fabric::node_failed(NodeId node) const {
  return node_attach_[node].failed;
}

void Fabric::inject(Packet&& pkt) {
  assert(pkt.src >= 0 && pkt.src < static_cast<NodeId>(node_attach_.size()));
  assert(pkt.dst >= 0 && pkt.dst < static_cast<NodeId>(node_attach_.size()));
  if (node_attach_[pkt.src].failed || node_attach_[pkt.dst].failed) {
    c_drops_dead_node_->inc();
    return;
  }
  c_injected_->inc();
  ++inflight_;
  pkt.injected_at = engine_.now();
  engine_.trace("pkt_inject",
                {{"src", pkt.src},
                 {"dst", pkt.dst},
                 {"msg", static_cast<std::int64_t>(pkt.msg->id)},
                 {"seq", pkt.seq},
                 {"bytes", pkt.bytes}});

  NodeAttach& at = node_attach_[pkt.src];
  Port& inj = at.injection;
  const std::uint64_t wire = pkt.wire_bytes();
  const Time start = std::max(engine_.now(), inj.busy_until);
  const Time finish = start + inj.link.bw.serialize(wire);
  inj.busy_until = finish;
  const Time arrival = finish + inj.link.latency;
  const int sw = at.sw;
  engine_.schedule_at(arrival, [this, sw, pkt = std::move(pkt)]() mutable {
    arrive_at_switch(sw, std::move(pkt));
  });
}

void Fabric::inject_burst(std::vector<Packet>&& pkts) {
  assert(!pkts.empty());
  const NodeId src = pkts.front().src;
  const NodeId dst = pkts.front().dst;
  assert(src >= 0 && src < static_cast<NodeId>(node_attach_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(node_attach_.size()));
  if (node_attach_[src].failed || node_attach_[dst].failed) {
    c_drops_dead_node_->inc(pkts.size());
    return;
  }

  NodeAttach& at = node_attach_[src];
  Port& inj = at.injection;
  auto burst = std::make_unique<Burst>();
  burst->sw = at.sw;
  burst->arrivals.reserve(pkts.size());
  // Charge the injection link for the whole message now: backlog-based
  // admission and the per-packet arrival times are exactly what N eager
  // inject() calls at this instant would have produced.
  for (Packet& pkt : pkts) {
    c_injected_->inc();
    ++inflight_;
    pkt.injected_at = engine_.now();
    engine_.trace("pkt_inject",
                  {{"src", pkt.src},
                   {"dst", pkt.dst},
                   {"msg", static_cast<std::int64_t>(pkt.msg->id)},
                   {"seq", pkt.seq},
                   {"bytes", pkt.bytes}});
    const std::uint64_t wire = pkt.wire_bytes();
    const Time start = std::max(engine_.now(), inj.busy_until);
    const Time finish = start + inj.link.bw.serialize(wire);
    inj.busy_until = finish;
    burst->arrivals.push_back(finish + inj.link.latency);
  }
  burst->pkts = std::move(pkts);
  burst->seq_base = engine_.reserve_sequence(burst->pkts.size());
  const Time first_arrival = burst->arrivals.front();
  const std::uint64_t first_seq = burst->seq_base;
  engine_.schedule_at_seq(first_arrival, first_seq,
                          [this, b = std::move(burst)]() mutable {
                            burst_step(std::move(b));
                          });
}

void Fabric::burst_step(std::unique_ptr<Burst> burst) {
  const std::size_t i = burst->next++;
  const int sw = burst->sw;
  Packet pkt = std::move(burst->pkts[i]);
  if (burst->next < burst->pkts.size()) {
    const Time arrival = burst->arrivals[burst->next];
    const std::uint64_t seq = burst->seq_base + burst->next;
    engine_.schedule_at_seq(arrival, seq,
                            [this, b = std::move(burst)]() mutable {
                              burst_step(std::move(b));
                            });
  }
  arrive_at_switch(sw, std::move(pkt));
}

void Fabric::arrive_at_switch(int sw, Packet&& pkt) {
  ++pkt.hops;
  Switch& s = switches_[sw];

  int port;
  const NodeAttach& dst_at = node_attach_[pkt.dst];
  if (dst_at.sw == sw) {
    port = dst_at.port;  // ejection to the destination node
  } else if (!static_routes_.empty()) {
    // Deterministic routing: one flat-array load instead of a
    // std::function call into the topology's route logic per hop.
    port = static_routes_[static_cast<std::size_t>(sw) * node_attach_.size() +
                          static_cast<std::size_t>(pkt.dst)];
    c_route_cache_hits_->inc();
    assert(port >= 0 && port < static_cast<int>(s.ports.size()));
  } else {
    port = router_(sw, pkt);
    assert(port >= 0 && port < static_cast<int>(s.ports.size()));
  }

  Port& p = s.ports[port];
  const std::uint64_t wire = pkt.wire_bytes();
  const Time backlog = p.busy_until > engine_.now() ? p.busy_until - engine_.now() : 0;
  g_port_backlog_ps_->set(static_cast<std::int64_t>(backlog));
  const Time xbar_done = engine_.now() + s.latency + s.xbar_bw.serialize(wire);
  const Time start = std::max(xbar_done, p.busy_until);
  const Time finish = start + p.link.bw.serialize(wire);
  p.busy_until = finish;
  const Time arrival = finish + p.link.latency;

  if (p.peer_node >= 0) {
    const NodeId node = p.peer_node;
    engine_.schedule_at(arrival, [this, node, pkt = std::move(pkt)]() mutable {
      deliver(node, std::move(pkt));
    });
  } else {
    const int next = p.peer_switch;
    assert(next >= 0 && "packet routed to an unwired port");
    engine_.schedule_at(arrival, [this, next, pkt = std::move(pkt)]() mutable {
      arrive_at_switch(next, std::move(pkt));
    });
  }
}

void Fabric::deliver(NodeId node, Packet&& pkt) {
  if (node_attach_[node].failed) {
    c_drops_dead_node_->inc();
    --inflight_;
    return;
  }
  c_delivered_->inc();
  c_hops_->inc(pkt.hops);
  c_wire_bytes_->inc(pkt.wire_bytes());
  --inflight_;
  h_pkt_latency_ns_->record((engine_.now() - pkt.injected_at) / kNanosecond);
  engine_.trace("pkt_deliver",
                {{"src", pkt.src},
                 {"dst", pkt.dst},
                 {"msg", static_cast<std::int64_t>(pkt.msg->id)},
                 {"seq", pkt.seq},
                 {"hops", pkt.hops},
                 {"lat_ps", static_cast<std::int64_t>(engine_.now() -
                                                      pkt.injected_at)}});
  NodeAttach& at = node_attach_[node];
  assert(at.delivery && "packet delivered to node without a NIC");
  at.delivery(std::move(pkt));
}

void Fabric::check_wired() const {
  for (std::size_t sw = 0; sw < switches_.size(); ++sw) {
    const auto& ports = switches_[sw].ports;
    for (std::size_t p = 0; p < ports.size(); ++p) {
      if (ports[p].peer_switch < 0 && ports[p].peer_node < 0) {
        std::fprintf(stderr, "fabric: switch %zu port %zu unwired\n", sw, p);
        std::abort();
      }
    }
  }
  for (std::size_t n = 0; n < node_attach_.size(); ++n) {
    if (node_attach_[n].sw < 0) {
      std::fprintf(stderr, "fabric: node %zu unattached\n", n);
      std::abort();
    }
  }
}

}  // namespace rvma::net
