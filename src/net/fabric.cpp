#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace rvma::net {

Fabric::Fabric(sim::Engine& engine, obs::MetricsRegistry* metrics)
    : engine_(engine) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_injected_ = &metrics_->counter("fabric.packets_injected");
  c_delivered_ = &metrics_->counter("fabric.packets_delivered");
  c_hops_ = &metrics_->counter("fabric.hops");
  c_wire_bytes_ = &metrics_->counter("fabric.wire_bytes_delivered");
  c_drops_dead_node_ = &metrics_->counter("fabric.drops_dead_node");
  c_route_cache_hits_ = &metrics_->counter("fabric.route_cache_hits");
  g_port_backlog_ns_ = &metrics_->gauge("fabric.port_backlog_ns");
  h_pkt_latency_ns_ = &metrics_->histogram("fabric.pkt_latency_ns");
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.packets_injected = c_injected_->value();
  s.packets_delivered = c_delivered_->value();
  s.total_hops = c_hops_->value();
  s.wire_bytes_delivered = c_wire_bytes_->value();
  s.packets_dropped_dead_node = c_drops_dead_node_->value();
  s.route_cache_hits = c_route_cache_hits_->value();
  s.max_port_backlog =
      static_cast<Time>(g_port_backlog_ns_->high_water()) * kNanosecond;
  s.express_commits = express_commits_;
  s.express_fallbacks = express_fallbacks_;
  s.express_remats = express_remats_;
  return s;
}

Time Fabric::current_port_backlog_max() const {
  const Time now = engine_.now();
  Time worst = 0;
  for (const Time busy : port_busy_) {
    if (busy > now) worst = std::max(worst, busy - now);
  }
  for (const NodeAttach& at : node_attach_) {
    if (at.inj_busy > now) worst = std::max(worst, at.inj_busy - now);
  }
  return worst;
}

void Fabric::reserve(int switches, int ports, int nodes) {
  switches_.reserve(static_cast<std::size_t>(switches));
  const std::size_t total =
      static_cast<std::size_t>(ports) + static_cast<std::size_t>(nodes);
  port_busy_.reserve(total);
  port_xuntil_.reserve(total);
  port_link_.reserve(total);
  port_peer_sw_.reserve(total);
  port_peer_node_.reserve(total);
  node_attach_.reserve(static_cast<std::size_t>(nodes));
}

int Fabric::add_switch(Time latency, Bandwidth xbar_bw) {
  Switch s;
  s.latency = latency;
  s.xbar_bw = xbar_bw;
  s.port_base = static_cast<std::int32_t>(port_link_.size());
  s.num_ports = 0;
  switches_.push_back(s);
  return static_cast<int>(switches_.size()) - 1;
}

int Fabric::add_port(int sw, LinkParams link) {
  Switch& s = switches_[sw];
  // Ports are SoA-contiguous per switch: a switch's block must still sit
  // at the tail of the arrays when a port is appended to it.
  assert(static_cast<std::size_t>(s.port_base + s.num_ports) ==
             port_link_.size() &&
         "ports must be added switch-by-switch in id order");
  port_busy_.push_back(0);
  port_xuntil_.push_back(0);
  port_link_.push_back(link);
  port_peer_sw_.push_back(-1);
  port_peer_node_.push_back(-1);
  return s.num_ports++;
}

void Fabric::connect(int sw_a, int port_a, int sw_b, int port_b) {
  const std::size_t a = pid(sw_a, port_a);
  const std::size_t b = pid(sw_b, port_b);
  assert(port_peer_sw_[a] == -1 && port_peer_node_[a] == -1 &&
         "port already wired");
  assert(port_peer_sw_[b] == -1 && port_peer_node_[b] == -1 &&
         "port already wired");
  port_peer_sw_[a] = sw_b;
  port_peer_sw_[b] = sw_a;
}

int Fabric::attach_node(int sw, NodeId node, LinkParams link) {
  if (node >= static_cast<NodeId>(node_attach_.size())) {
    node_attach_.resize(node + 1);
  }
  NodeAttach& at = node_attach_[node];
  assert(at.sw == -1 && "node attached twice");
  const int port = add_port(sw, link);
  port_peer_node_[pid(sw, port)] = node;
  at.sw = sw;
  at.port = port;
  at.inj_link = link;
  at.inj_busy = 0;
  return port;
}

void Fabric::set_delivery(NodeId node, Delivery fn) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].delivery = std::move(fn);
}

void Fabric::set_express_rx(NodeId node, Time rx_delay, Delivery rx) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].express_rx = std::move(rx);
  node_attach_[node].express_rx_delay = rx_delay;
}

void Fabric::set_static_routes(std::vector<std::int32_t> table) {
  assert(table.empty() ||
         table.size() == switches_.size() * node_attach_.size());
  static_routes_ = std::move(table);
  next_hop_fn_ = nullptr;
  next_hop_ctx_ = nullptr;
  static_mode_ = !static_routes_.empty();
}

void Fabric::set_algebraic_routes(NextHopFn fn, const void* ctx) {
  assert(fn != nullptr);
  static_routes_.clear();
  static_routes_.shrink_to_fit();
  next_hop_fn_ = fn;
  next_hop_ctx_ = ctx;
  static_mode_ = true;
}

void Fabric::set_shard_map(int my_shard,
                           std::vector<std::int32_t> shard_of_switch,
                           RemoteHop hook) {
  assert(shard_of_switch.size() == switches_.size());
  my_shard_ = my_shard;
  shard_of_switch_ = std::move(shard_of_switch);
  remote_hop_ = std::move(hook);
}

void Fabric::receive_remote(int sw, Time arrival, Time rank, Packet&& pkt) {
  assert(sharded() && shard_of_switch_[static_cast<std::size_t>(sw)] ==
                          my_shard_);
  // This packet's future arbitrations are invisible to the express path's
  // eager charges (it never went through a local conflict walk), so any
  // open record could interleave with it: fall back to exact arbitration.
  rematerialize_open();
  ++hop_inflight_;
  ++inflight_;
  const std::uint64_t tie = packet_tie(pkt);
  engine_.schedule_at_ranked(
      arrival, rank, tie, [this, sw, pkt = std::move(pkt)]() mutable {
        arrive_at_switch(sw, std::move(pkt));
      });
}

Time Fabric::port_backlog(int sw, int port) const {
  const Time busy = port_busy_[pid(sw, port)];
  const Time now = engine_.now();
  return busy > now ? busy - now : 0;
}

Time Fabric::injection_backlog(NodeId node) const {
  const Time busy = node_attach_[node].inj_busy;
  const Time now = engine_.now();
  return busy > now ? busy - now : 0;
}

void Fabric::fail_node(NodeId node) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  // Failure injection is a whole-fabric event (liveness is checked at
  // delivery wherever the packet entered); a sharded run would need the
  // failure mirrored on every shard at the same instant. Unsupported —
  // the Cluster clamps to one shard before any failure experiment.
  assert(!sharded() && "fail_node is not supported on a sharded fabric");
  // A dead node invalidates the no-divergence window the eager charges rely
  // on: put every open express packet back on the exact hop-by-hop path
  // before marking the node, and never fold delivery+rx again this run
  // (folded events check liveness later than deliver() would have).
  rematerialize_open();
  ever_failed_ = true;
  node_attach_[node].failed = true;
}

void Fabric::revive_node(NodeId node) {
  assert(node >= 0 && node < static_cast<NodeId>(node_attach_.size()));
  node_attach_[node].failed = false;
}

bool Fabric::node_failed(NodeId node) const {
  return node_attach_[node].failed;
}

void Fabric::inject(Packet&& pkt) {
  assert(pkt.src >= 0 && pkt.src < static_cast<NodeId>(node_attach_.size()));
  assert(pkt.dst >= 0 && pkt.dst < static_cast<NodeId>(node_attach_.size()));
  if (node_attach_[pkt.src].failed || node_attach_[pkt.dst].failed) {
    c_drops_dead_node_->inc();
    return;
  }
  c_injected_->inc();
  ++inflight_;
  pkt.injected_at = engine_.now();
  RVMA_ETRACE(engine_, "pkt_inject",
              {{"src", pkt.src},
               {"dst", pkt.dst},
               {"msg", static_cast<std::int64_t>(pkt.msg->id)},
               {"seq", pkt.seq},
               {"bytes", pkt.bytes}});

  NodeAttach& at = node_attach_[pkt.src];
  const std::uint64_t wire = pkt.wire_bytes();
  const Time start = std::max(engine_.now(), at.inj_busy);
  const Time finish = start + at.inj_link.bw.serialize(wire);
  at.inj_busy = finish;
  const Time arrival = finish + at.inj_link.latency;
  const int sw = at.sw;
  if (static_mode_) {
    // Reserve the delivery/rx sequence pair whether or not the express
    // path engages, so tie-break order of all events shared between the
    // two modes is identical (the exactness invariant, DESIGN.md §8).
    pkt.res_seq = engine_.reserve_sequence(2);
    if (express_enabled_ && try_express_burst(&pkt, 1, &arrival) == 1) return;
  }
  // Express-committed packets record kExpressCommit in phase C instead.
  RVMA_FREC(engine_, pkt.injected_at, obs::SpanKind::kTxInject, pkt.msg->id,
            pkt.src, static_cast<std::int64_t>(pkt.seq));
  ++hop_inflight_;
  const std::uint64_t tie = packet_tie(pkt);
  engine_.schedule_at_ranked(arrival, engine_.now(), tie,
                             [this, sw, pkt = std::move(pkt)]() mutable {
                               arrive_at_switch(sw, std::move(pkt));
                             });
}

void Fabric::inject_burst(std::vector<Packet>& pkts) {
  assert(!pkts.empty());
  const NodeId src = pkts.front().src;
  const NodeId dst = pkts.front().dst;
  assert(src >= 0 && src < static_cast<NodeId>(node_attach_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(node_attach_.size()));
  if (node_attach_[src].failed || node_attach_[dst].failed) {
    c_drops_dead_node_->inc(pkts.size());
    pkts.clear();
    return;
  }

  NodeAttach& at = node_attach_[src];
  const bool reserved = static_mode_;
  burst_arrivals_.clear();
  burst_arrivals_.reserve(pkts.size());
  // Phase 1 — identical in every routing/express mode: per-packet
  // accounting, sequence-pair reservation, and the eager injection-link
  // charge. Backlog-based admission and the per-packet arrival times are
  // exactly what N inject() calls at this instant would have produced.
  for (Packet& pkt : pkts) {
    c_injected_->inc();
    ++inflight_;
    pkt.injected_at = engine_.now();
    RVMA_ETRACE(engine_, "pkt_inject",
                {{"src", pkt.src},
                 {"dst", pkt.dst},
                 {"msg", static_cast<std::int64_t>(pkt.msg->id)},
                 {"seq", pkt.seq},
                 {"bytes", pkt.bytes}});
    if (reserved) pkt.res_seq = engine_.reserve_sequence(2);
    const std::uint64_t wire = pkt.wire_bytes();
    const Time start = std::max(engine_.now(), at.inj_busy);
    const Time finish = start + at.inj_link.bw.serialize(wire);
    at.inj_busy = finish;
    burst_arrivals_.push_back(finish + at.inj_link.latency);
  }

  // Phase 2 — commit the longest possible prefix to the express path as a
  // single pooled record with one chained delivery event. The first
  // ineligible packet clears the whole suffix: later packets follow the
  // same static route, FIFO ports forbid overtaking, so their real
  // arrivals are bounded below by the cleared packet's optimistic ones.
  std::size_t i = 0;
  if (reserved && express_enabled_) {
    i = try_express_burst(pkts.data(), pkts.size(), burst_arrivals_.data());
  }
  if (i == pkts.size()) {
    pkts.clear();  // whole message committed: zero queued events remain
    return;
  }
  hop_inflight_ += static_cast<std::int64_t>(pkts.size() - i);
  if (engine_.recording_enabled()) {
    // The committed prefix recorded kExpressCommit in phase C; the suffix
    // takes the hop path.
    for (std::size_t k = i; k < pkts.size(); ++k) {
      engine_.frecord(pkts[k].injected_at, obs::SpanKind::kTxInject,
                      pkts[k].msg->id, pkts[k].src,
                      static_cast<std::int64_t>(pkts[k].seq));
    }
  }
  auto burst = std::make_unique<Burst>();
  burst->sw = at.sw;
  if (i == 0) {
    burst->pkts = std::move(pkts);
    burst->arrivals = std::move(burst_arrivals_);
  } else {
    burst->pkts.assign(std::make_move_iterator(pkts.begin() +
                                               static_cast<std::ptrdiff_t>(i)),
                       std::make_move_iterator(pkts.end()));
    burst->arrivals.assign(burst_arrivals_.begin() +
                               static_cast<std::ptrdiff_t>(i),
                           burst_arrivals_.end());
  }
  pkts.clear();
  burst->seq_base = engine_.reserve_sequence(burst->pkts.size());
  const Time first_arrival = burst->arrivals.front();
  const std::uint64_t first_seq = burst->seq_base;
  // Rank = the reservation instant (== every packet's injected_at: the
  // whole burst is stamped inside this event); tie = the packet the
  // chained event hands to the switch.
  const Time rank = burst->pkts.front().injected_at;
  const std::uint64_t tie = packet_tie(burst->pkts.front());
  engine_.schedule_at_seq(first_arrival, first_seq, rank, tie,
                          [this, b = std::move(burst)]() mutable {
                            burst_step(std::move(b));
                          });
}

void Fabric::burst_step(std::unique_ptr<Burst> burst) {
  const std::size_t i = burst->next++;
  const int sw = burst->sw;
  Packet pkt = std::move(burst->pkts[i]);
  if (burst->next < burst->pkts.size()) {
    const Time arrival = burst->arrivals[burst->next];
    const std::uint64_t seq = burst->seq_base + burst->next;
    const Time rank = burst->pkts[burst->next].injected_at;
    const std::uint64_t tie = packet_tie(burst->pkts[burst->next]);
    engine_.schedule_at_seq(arrival, seq, rank, tie,
                            [this, b = std::move(burst)]() mutable {
                              burst_step(std::move(b));
                            });
  }
  arrive_at_switch(sw, std::move(pkt));
}

std::size_t Fabric::try_express_burst(Packet* pkts, std::size_t n,
                                      const Time* arrivals) {
  // With a hop-mode packet in flight a commit is impossible, and with no
  // open records no conflict is possible either (completed records'
  // express_until marks are all in the past, below any future arrival):
  // skip the walk entirely.
  if (hop_inflight_ > 0 && xopen_head_ == kNone) {
    express_fallbacks_ += n;
    return 0;
  }

  const NodeId dst = pkts[0].dst;
  const NodeAttach& dst_at = node_attach_[dst];
  // A burst is full-MTU packets plus a possibly shorter final packet, so
  // exactly two wire sizes cover every serialization the walk needs.
  const std::uint64_t wire_f = pkts[0].wire_bytes();
  const std::uint64_t wire_l = pkts[n - 1].wire_bytes();

  // Phase A — discover the route once, cache every per-hop constant, and
  // run the eager-charge conflict test. `opt_f`/`opt_l` are the
  // zero-queue-wait lower bounds on the first and last packets' arrivals
  // at each switch; every real hop-by-hop arrival is >= its bound, which
  // makes the conflict test sound. Middle packets need no track of their
  // own: they are full-size with injection arrivals between the two, so
  // their bounds are bracketed by these.
  walk_.clear();
  Time opt_f = arrivals[0];
  Time opt_l = arrivals[n - 1];
  int sw = node_attach_[pkts[0].src].sw;
  while (true) {
    const Switch& s = switches_[sw];
    int port;
    bool transit = false;
    if (dst_at.sw == sw) {
      port = dst_at.port;  // ejection to the destination node
    } else {
      port = next_hop(sw, dst);
      assert(port >= 0 && port < s.num_ports);
      transit = true;
    }
    const std::size_t p = pid(sw, port);
    // An open express packet already holds this port with a virtual
    // arbitration time at or after some burst packet's earliest possible
    // arrival: real hop-by-hop execution could order the two the other
    // way. Unwind everything speculative and let exact arbitration decide.
    if (opt_f <= port_xuntil_[p] || opt_l <= port_xuntil_[p]) {
      rematerialize_open();
      express_fallbacks_ += n;
      return 0;
    }
    const LinkParams& link = port_link_[p];
    const Time xser_f = s.xbar_bw.serialize(wire_f);
    const Time pser_f = link.bw.serialize(wire_f);
    const Time xser_l = wire_l == wire_f ? xser_f : s.xbar_bw.serialize(wire_l);
    const Time pser_l = wire_l == wire_f ? pser_f : link.bw.serialize(wire_l);
    walk_.push_back(WalkHop{sw, static_cast<std::int32_t>(p), s.latency,
                            link.latency, xser_f, xser_l, pser_f, pser_l,
                            port_busy_[p], port_xuntil_[p], transit});
    opt_f += s.latency + xser_f + pser_f + link.latency;
    opt_l += s.latency + xser_l + pser_l + link.latency;
    if (port_peer_node_[p] >= 0) break;  // ejection hop: walk complete
    assert(port_peer_sw_[p] >= 0 && "packet routed to an unwired port");
    sw = port_peer_sw_[p];
    if (!shard_of_switch_.empty() &&
        shard_of_switch_[static_cast<std::size_t>(sw)] != my_shard_) {
      // The route leaves this shard: the remaining hops belong to a peer
      // fabric whose port state we can neither read nor charge. The walk
      // only read state so far — plain fallback, no unwinding needed.
      express_fallbacks_ += n;
      return 0;
    }
  }
  if (hop_inflight_ > 0) {
    express_fallbacks_ += n;  // conflict scan only; commits impossible
    return 0;
  }

  // Phase B — eligibility, packet by packet, pure arithmetic. A packet is
  // eligible when every hop arbitrates with zero queue wait against the
  // port state left by the committed prefix (commit_busy_). Trial columns
  // are swapped in wholesale on success, so a failed candidate leaves the
  // committed state untouched without any copying.
  const std::size_t nh = walk_.size();
  commit_busy_.resize(nh);
  trial_busy_.resize(nh);
  commit_arr_.resize(nh);
  trial_arr_.resize(nh);
  scratch_delivers_.clear();
  for (std::size_t h = 0; h < nh; ++h) commit_busy_[h] = walk_[h].prev_busy;
  std::size_t m = 0;
  while (m < n) {
    const bool last = m == n - 1;
    Time a = arrivals[m];
    bool ok = true;
    for (std::size_t h = 0; h < nh; ++h) {
      const WalkHop& w = walk_[h];
      const Time xbar_done = a + w.sw_latency + (last ? w.xser_l : w.xser_f);
      if (commit_busy_[h] > xbar_done) {
        // Nonzero queue wait: the packet would sit behind earlier traffic
        // here, and events executing in the meantime may change what it
        // observes. The suffix falls back to the hop path.
        ok = false;
        break;
      }
      trial_arr_[h] = a;
      trial_busy_[h] = xbar_done + (last ? w.pser_l : w.pser_f);
      a = trial_busy_[h] + w.link_latency;
    }
    if (!ok) break;
    commit_busy_.swap(trial_busy_);
    commit_arr_.swap(trial_arr_);
    scratch_delivers_.push_back(a);  // last-hop finish + ejection latency
    ++m;
  }
  if (m == 0) {
    express_fallbacks_ += n;
    return 0;
  }

  // Phase C — commit the prefix: the route arbitrates with zero queue
  // wait for every committed packet and no open record can interleave, so
  // eager charging is exact. Charge each port once with the prefix's
  // final state and collapse the whole traversal into one pending event.
  express_commits_ += m;
  express_fallbacks_ += n - m;
  const std::uint32_t idx = acquire_record();
  ExpressRecord& r = *xrecords_[idx];
  r.node = dst;
  r.next = 0;
  r.chain_end = static_cast<std::uint32_t>(m);
  std::uint64_t transit_hops = 0;
  for (std::size_t h = 0; h < nh; ++h) {
    const WalkHop& w = walk_[h];
    const std::size_t p = static_cast<std::size_t>(w.pid);
    port_busy_[p] = commit_busy_[h];
    port_xuntil_[p] = std::max(port_xuntil_[p], commit_arr_[h]);
    r.hops.push_back(ExpressHop{w.sw, w.pid, w.prev_busy,
                                w.prev_express_until, ++express_epoch_,
                                w.transit});
    if (w.transit) ++transit_hops;
  }
  if (transit_hops > 0) {
    c_route_cache_hits_->inc(transit_hops * static_cast<std::uint64_t>(m));
  }
  for (std::size_t k = 0; k < m; ++k) {
    pkts[k].hops = static_cast<std::uint16_t>(pkts[k].hops + nh);
    RVMA_FREC(engine_, pkts[k].injected_at, obs::SpanKind::kExpressCommit,
              pkts[k].msg->id, pkts[k].src,
              static_cast<std::int64_t>(pkts[k].seq));
    r.pkts.push_back(std::move(pkts[k]));
    r.arrivals.push_back(arrivals[k]);
    r.delivers.push_back(scratch_delivers_[k]);
  }
  NodeAttach& at = node_attach_[dst];
  // Fold the delivery and the NIC receive pipeline into one event only
  // when nothing downstream can tell: tracing off (pkt_deliver records
  // stamp event time, which a folded event would get wrong) and no
  // failure ever injected (deliver() checks destination liveness at the
  // delivery instant; a folded event checks later). A sampler does NOT
  // block folding: it observes without scheduling, so sampled and
  // unsampled runs must execute the same events — only the express-vs-hop
  // gauge timeseries differ, which eager charging causes anyway
  // (DESIGN.md §8).
  const bool fold = !engine_.tracing_enabled() && !ever_failed_ &&
                    static_cast<bool>(at.express_rx);
  if (fold) {
    r.state = XState::kFolded;
    engine_.schedule_at_seq(r.delivers[0] + at.express_rx_delay,
                            r.pkts[0].res_seq + 1, r.pkts[0].injected_at,
                            packet_tie(r.pkts[0]),
                            [this, idx] { express_event(idx); });
  } else {
    r.state = XState::kDelivery;
    engine_.schedule_at_seq(r.delivers[0], r.pkts[0].res_seq,
                            r.pkts[0].injected_at, packet_tie(r.pkts[0]),
                            [this, idx] { express_event(idx); });
  }
  // Append to the open list (ordered by commit, i.e. by charge epoch).
  r.prev_open = xopen_tail_;
  r.next_open = kNone;
  if (xopen_tail_ != kNone) {
    xrecords_[xopen_tail_]->next_open = idx;
  } else {
    xopen_head_ = idx;
  }
  xopen_tail_ = idx;
  r.open = true;
  return m;
}

void Fabric::open_list_remove(ExpressRecord& r, std::uint32_t idx) {
  if (r.prev_open != kNone) {
    xrecords_[r.prev_open]->next_open = r.next_open;
  } else {
    xopen_head_ = r.next_open;
  }
  if (r.next_open != kNone) {
    xrecords_[r.next_open]->prev_open = r.prev_open;
  } else {
    xopen_tail_ = r.prev_open;
  }
  (void)idx;
  r.prev_open = kNone;
  r.next_open = kNone;
  r.open = false;
}

void Fabric::deliver_stats(const Packet& pkt, Time deliver_at) {
  c_delivered_->inc();
  c_hops_->inc(pkt.hops);
  c_wire_bytes_->inc(pkt.wire_bytes());
  --inflight_;
  h_pkt_latency_ns_->record(
      static_cast<std::uint64_t>((deliver_at - pkt.injected_at) /
                                 kNanosecond));
  RVMA_ETRACE(engine_, "pkt_deliver",
              {{"src", pkt.src},
               {"dst", pkt.dst},
               {"msg", static_cast<std::int64_t>(pkt.msg->id)},
               {"seq", pkt.seq},
               {"hops", pkt.hops},
               {"lat_ps",
                static_cast<std::int64_t>(deliver_at - pkt.injected_at)}});
  // `deliver_at` is the true delivery instant even when this runs inside
  // a later folded event, so the recorded span is fold-invariant.
  RVMA_FREC(engine_, deliver_at, obs::SpanKind::kPktDeliver, pkt.msg->id,
            pkt.dst, static_cast<std::int64_t>(pkt.seq));
}

void Fabric::express_event(std::uint32_t idx) {
  // The record's ONE pending event: handle packet `next`, then either
  // chain the next packet's event at its exact reserved (time, sequence)
  // or free the record. The chain is scheduled before the delivery/rx
  // callback runs so any re-entrant injection sees consistent state.
  ExpressRecord& r = *xrecords_[idx];
  const std::uint32_t k = r.next;
  switch (r.state) {
    case XState::kDelivery: {
      // Exact replay of the hop-by-hop delivery event: same time
      // (delivers[k]), same sequence (res_seq), same liveness check.
      Packet pkt = std::move(r.pkts[k]);
      const NodeId node = r.node;
      r.next = k + 1;
      if (r.next < r.chain_end) {
        engine_.schedule_at_seq(r.delivers[r.next], r.pkts[r.next].res_seq,
                                r.pkts[r.next].injected_at,
                                packet_tie(r.pkts[r.next]),
                                [this, idx] { express_event(idx); });
      } else {
        close_record(idx);
      }
      deliver(node, std::move(pkt));
      break;
    }
    case XState::kFolded: {
      // Delivery bookkeeping plus the NIC receive hook in one event. The
      // fold preconditions guarantee nothing observed the window between
      // the delivery instant and now (a failure would have rematerialized
      // this record first); the stats use the stored delivery instant.
      NodeAttach& at = node_attach_[r.node];
      assert(!at.failed && "folded record outlived a node failure");
      deliver_stats(r.pkts[k], r.delivers[k]);
      Packet pkt = std::move(r.pkts[k]);
      r.next = k + 1;
      if (r.next < r.chain_end) {
        engine_.schedule_at_seq(r.delivers[r.next] + at.express_rx_delay,
                                r.pkts[r.next].res_seq + 1,
                                r.pkts[r.next].injected_at,
                                packet_tie(r.pkts[r.next]),
                                [this, idx] { express_event(idx); });
      } else {
        close_record(idx);
      }
      at.express_rx(std::move(pkt));
      break;
    }
    case XState::kRemRx: {
      // Delivery bookkeeping already ran (at rematerialize or via
      // express_finalize); hand the packet to the NIC receive pipeline —
      // in exact semantics a delivered packet's rx proceeds even if the
      // node died after delivery. Later packets were re-scheduled
      // individually by the rematerialize, so the chain ends here.
      Packet pkt = std::move(r.pkts[k]);
      const NodeId node = r.node;
      close_record(idx);
      node_attach_[node].express_rx(std::move(pkt));
      break;
    }
    case XState::kRemDead:
      // Bookkeeping handled elsewhere; this event only frees.
      close_record(idx);
      break;
  }
}

void Fabric::express_finalize(std::uint32_t idx) {
  // Scheduled at (delivers[next], res_seq) when a folded record is
  // rematerialized before packet `next`'s delivery instant: performs
  // exactly what deliver() would have — liveness check included — at the
  // exact time and tie-break position hop-by-hop execution would have
  // used. The NIC receive half stays on the record's pending
  // (res_seq + 1) event, which frees the record (kRemRx) or, if the node
  // died in between, just drops it (kRemDead).
  ExpressRecord& r = *xrecords_[idx];
  const std::uint32_t k = r.next;
  NodeAttach& at = node_attach_[r.node];
  if (at.failed) {
    c_drops_dead_node_->inc();
    --inflight_;
    r.state = XState::kRemDead;
    return;
  }
  deliver_stats(r.pkts[k], r.delivers[k]);
  r.state = XState::kRemRx;
}

void Fabric::rematerialize_open() {
  if (xopen_head_ == kNone) return;
  ++express_remats_;
  const Time now = engine_.now();

  // One pass per open record: recompute every packet's per-hop
  // arbitration and finish times (pure arithmetic — eligibility at commit
  // time meant zero queue wait, so the recurrence needs no max() against
  // port state), gather the port restores for charges whose arbitration
  // instant is still in the future, and convert each undelivered packet
  // back to exact execution. Conversions only schedule events and read no
  // port state, so all restores can be applied after the scan, in global
  // LIFO (epoch) order — each then sees exactly the state it saved.
  undo_.clear();
  std::uint32_t i = xopen_head_;
  xopen_head_ = kNone;
  xopen_tail_ = kNone;
  while (i != kNone) {
    ExpressRecord& r = *xrecords_[i];
    const std::uint32_t nexti = r.next_open;
    r.prev_open = kNone;
    r.next_open = kNone;
    r.open = false;

    const std::size_t n = r.pkts.size();
    const std::size_t nh = r.hops.size();
    // Replay rows: arr[k*nh+h] is packet k's arbitration instant at hop
    // h, fin[k*nh+h] its port-serialization finish. Wire sizes come from
    // the stored packets — delivered entries are moved-from, but moves
    // leave the scalar fields (bytes, header_bytes) intact.
    replay_arr_.resize(n * nh);
    replay_fin_.resize(n * nh);
    for (std::size_t k = 0; k < n; ++k) {
      Time a = r.arrivals[k];
      const std::uint64_t wire = r.pkts[k].wire_bytes();
      for (std::size_t h = 0; h < nh; ++h) {
        const Switch& s = switches_[r.hops[h].sw];
        const LinkParams& link = port_link_[r.hops[h].pid];
        replay_arr_[k * nh + h] = a;
        const Time fin = a + s.latency + s.xbar_bw.serialize(wire) +
                         link.bw.serialize(wire);
        replay_fin_[k * nh + h] = fin;
        a = fin + link.latency;
      }
    }

    // Port restores. Arbitration instants are nondecreasing in k at every
    // hop (FIFO), so "the packets already arbitrated here" is a prefix
    // [0, j): the port rolls back to that prefix's state. Charges whose
    // last arbitration has passed are real history and stay.
    for (std::size_t h = 0; h < nh; ++h) {
      if (replay_arr_[(n - 1) * nh + h] <= now) continue;
      std::size_t j = n;
      while (j > 0 && replay_arr_[(j - 1) * nh + h] > now) --j;
      const ExpressHop& eh = r.hops[h];
      UndoHop u;
      u.epoch = eh.epoch;
      u.pid = eh.pid;
      u.expect_busy = replay_fin_[(n - 1) * nh + h];
      if (j > 0) {
        u.restore_busy = replay_fin_[(j - 1) * nh + h];
        u.restore_express_until =
            std::max(eh.prev_express_until, replay_arr_[(j - 1) * nh + h]);
      } else {
        u.restore_busy = eh.prev_busy;
        u.restore_express_until = eh.prev_express_until;
      }
      undo_.push_back(u);
    }

    // Packet conversions. "All arbitrations past" is monotone across the
    // burst (arrivals are FIFO-ordered), so the undelivered packets split
    // into an all-past prefix and a mid-flight suffix.
    const std::uint32_t d = r.next;
    NodeAttach& at = node_attach_[r.node];
    for (std::size_t k = d; k < n; ++k) {
      std::size_t jfut = 0;
      while (jfut < nh && replay_arr_[k * nh + jfut] <= now) ++jfut;
      if (jfut == nh) {
        // Every arbitration already happened; only wire propagation (and
        // possibly the folded rx) remains.
        if (r.state == XState::kDelivery) {
          // The chained events at (delivers[k], res_k) ARE the exact
          // hop-mode deliveries — keep the chain running through this
          // packet. (delivers[k] >= now here: the chain's pending event
          // at delivers[d] has not fired and delivers are nondecreasing.)
          r.chain_end = static_cast<std::uint32_t>(k + 1);
          continue;
        }
        if (k == d) {
          // This packet's folded (res_d + 1) event is the record's
          // pending event; split the delivery half back out of it.
          if (r.delivers[k] < now) {
            // Hop-by-hop delivery would already have run (node was alive
            // then — a current failure postdates it); the pending event
            // at delivers[d] + rx_delay is already the exact rx instant.
            deliver_stats(r.pkts[k], r.delivers[k]);
          } else {
            // Re-create the delivery at its exact time and reserved
            // sequence; it performs deliver()'s bookkeeping — liveness
            // check included — and may flip the record to kRemDead.
            const std::uint32_t idx = i;
            engine_.schedule_at_seq(r.delivers[k], r.pkts[k].res_seq,
                                    r.pkts[k].injected_at,
                                    packet_tie(r.pkts[k]),
                                    [this, idx] { express_finalize(idx); });
          }
          r.state = XState::kRemRx;
        } else {
          // No pending event backs this packet (the chain never got to
          // it): re-create its exact delivery — or, when its delivery
          // instant already passed inside the fold window, its exact
          // receive event — on the packet's own reserved pair.
          const NodeId node = r.node;
          if (r.delivers[k] >= now) {
            Packet pkt = std::move(r.pkts[k]);
            const std::uint64_t seq = pkt.res_seq;
            const Time rank = pkt.injected_at;
            const std::uint64_t tie = packet_tie(pkt);
            engine_.schedule_at_seq(
                r.delivers[k], seq, rank, tie,
                [this, node, pkt = std::move(pkt)]() mutable {
                  deliver(node, std::move(pkt));
                });
          } else {
            deliver_stats(r.pkts[k], r.delivers[k]);
            Packet pkt = std::move(r.pkts[k]);
            const std::uint64_t seq = pkt.res_seq + 1;
            const Time rank = pkt.injected_at;
            const std::uint64_t tie = packet_tie(pkt);
            engine_.schedule_at_seq(
                r.delivers[k] + at.express_rx_delay, seq, rank, tie,
                [this, node, pkt = std::move(pkt)]() mutable {
                  node_attach_[node].express_rx(std::move(pkt));
                });
          }
        }
      } else {
        // Mid-flight: the packet has really traversed hops [0, jfut) and
        // its charges beyond are being unwound. Resume exact hop-by-hop
        // execution from its current wire position.
        std::uint64_t future_transit = 0;
        for (std::size_t h = jfut; h < nh; ++h) {
          if (r.hops[h].transit) ++future_transit;
        }
        if (future_transit > 0) c_route_cache_hits_->dec(future_transit);
        Packet pkt = std::move(r.pkts[k]);
        pkt.hops = static_cast<std::uint16_t>(jfut);
        if (k == d) {
          // The reserved pair backs this record's still-queued (now dead)
          // event; the resumed path must not reuse it. Later packets'
          // pairs are unclaimed and ride along, so their delivery and rx
          // keep the exact hop-mode tie-break positions.
          pkt.res_seq = kNoResSeq;
          r.state = XState::kRemDead;
        }
        ++hop_inflight_;
        const int sw = r.hops[jfut].sw;
        const std::uint64_t tie = packet_tie(pkt);
        // Rank = the instant hop-by-hop execution would have scheduled
        // this arrive event: hop jfut-1's arbitration (the previous row
        // entry), or the injection instant for a packet still on its
        // injection link — NOT the remat instant, which is a property of
        // the schedule, not of the packet.
        const Time rank =
            jfut > 0 ? replay_arr_[k * nh + (jfut - 1)] : pkt.injected_at;
        engine_.schedule_at_ranked(replay_arr_[k * nh + jfut], rank, tie,
                                   [this, sw, pkt = std::move(pkt)]() mutable {
                                     arrive_at_switch(sw, std::move(pkt));
                                   });
      }
    }
    i = nexti;
  }

  // Unwind every not-yet-arbitrated charge, newest first, so each
  // prev_* restore sees exactly the port state it saved.
  std::sort(undo_.begin(), undo_.end(),
            [](const UndoHop& x, const UndoHop& y) { return x.epoch > y.epoch; });
  for (const UndoHop& u : undo_) {
    const std::size_t p = static_cast<std::size_t>(u.pid);
    assert(port_busy_[p] == u.expect_busy &&
           "a future express charge was overwritten");
    port_busy_[p] = u.restore_busy;
    port_xuntil_[p] = u.restore_express_until;
  }
}

void Fabric::arrive_at_switch(int sw, Packet&& pkt) {
  ++pkt.hops;
  const Switch& s = switches_[sw];

  int port;
  const NodeAttach& dst_at = node_attach_[pkt.dst];
  if (dst_at.sw == sw) {
    port = dst_at.port;  // ejection to the destination node
  } else if (static_mode_) {
    // Deterministic routing: O(1) coordinate arithmetic (or one flat-array
    // load under the materialized LUT) instead of a std::function call
    // into the topology's route logic per hop.
    port = next_hop(sw, pkt.dst);
    c_route_cache_hits_->inc();
    assert(port >= 0 && port < s.num_ports);
  } else {
    port = router_(sw, pkt);
    assert(port >= 0 && port < s.num_ports);
  }

  const std::size_t p = pid(sw, port);
  const LinkParams& link = port_link_[p];
  const std::uint64_t wire = pkt.wire_bytes();
  const Time xbar_done = engine_.now() + s.latency + s.xbar_bw.serialize(wire);
  if (port_busy_[p] > xbar_done) {
    // True queue wait beyond the crossbar (DESIGN.md §7). Recorded only
    // when positive, so zero-wait arbitrations — the ones the express
    // path elides — leave the gauge untouched in both modes.
    g_port_backlog_ns_->set(
        static_cast<std::int64_t>((port_busy_[p] - xbar_done) / kNanosecond));
  }
  const Time start = std::max(xbar_done, port_busy_[p]);
  const Time finish = start + link.bw.serialize(wire);
  port_busy_[p] = finish;
  const Time arrival = finish + link.latency;

  if (port_peer_node_[p] >= 0) {
    --hop_inflight_;  // final arbitration for this packet
    const NodeId node = port_peer_node_[p];
    const Time rank = pkt.injected_at;
    const std::uint64_t tie = packet_tie(pkt);
    if (pkt.res_seq == kRemoteResSeq) {
      // Crossed a shard boundary: the source-side reserved pair is gone,
      // but (rank, tie) — properties of the packet, not of the schedule —
      // give this delivery exactly the heap position the serial run's
      // reserved sequence would have (sim/engine.hpp).
      engine_.schedule_at_ranked(arrival, rank, tie,
                                 [this, node, pkt = std::move(pkt)]() mutable {
                                   deliver(node, std::move(pkt));
                                 });
    } else if (pkt.res_seq != kNoResSeq) {
      const std::uint64_t seq = pkt.res_seq;
      engine_.schedule_at_seq(arrival, seq, rank, tie,
                              [this, node, pkt = std::move(pkt)]() mutable {
                                deliver(node, std::move(pkt));
                              });
    } else {
      engine_.schedule_at_ranked(arrival, rank, tie,
                                 [this, node, pkt = std::move(pkt)]() mutable {
                                   deliver(node, std::move(pkt));
                                 });
    }
  } else {
    const int next = port_peer_sw_[p];
    assert(next >= 0 && "packet routed to an unwired port");
    if (!shard_of_switch_.empty() &&
        shard_of_switch_[static_cast<std::size_t>(next)] != my_shard_) {
      // The next hop's switch belongs to a peer shard: this fabric's part
      // of the traversal (the arbitration above) is done. Hand the packet
      // across; the owning fabric re-accounts it via receive_remote. The
      // reserved sequence pair is an index into *this* engine's sequence
      // space — meaningless (and possibly unreserved) on the peer — so
      // it is replaced by the kRemoteResSeq marker: the peer schedules
      // delivery/rx on fresh local sequences ranked at injected_at, and
      // the hop event itself is ranked at this arbitration instant, so
      // both resume the positions the serial tie-break would have given
      // them (sim/engine.hpp).
      --hop_inflight_;
      --inflight_;
      pkt.res_seq = kRemoteResSeq;
      remote_hop_(shard_of_switch_[static_cast<std::size_t>(next)], next,
                  arrival, engine_.now(), std::move(pkt));
      return;
    }
    const std::uint64_t tie = packet_tie(pkt);
    engine_.schedule_at_ranked(arrival, engine_.now(), tie,
                               [this, next, pkt = std::move(pkt)]() mutable {
                                 arrive_at_switch(next, std::move(pkt));
                               });
  }
}

void Fabric::deliver(NodeId node, Packet&& pkt) {
  if (node_attach_[node].failed) {
    c_drops_dead_node_->inc();
    --inflight_;
    return;
  }
  c_delivered_->inc();
  c_hops_->inc(pkt.hops);
  c_wire_bytes_->inc(pkt.wire_bytes());
  --inflight_;
  h_pkt_latency_ns_->record((engine_.now() - pkt.injected_at) / kNanosecond);
  RVMA_ETRACE(engine_, "pkt_deliver",
              {{"src", pkt.src},
               {"dst", pkt.dst},
               {"msg", static_cast<std::int64_t>(pkt.msg->id)},
               {"seq", pkt.seq},
               {"hops", pkt.hops},
               {"lat_ps", static_cast<std::int64_t>(engine_.now() -
                                                    pkt.injected_at)}});
  RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kPktDeliver, pkt.msg->id,
            pkt.dst, static_cast<std::int64_t>(pkt.seq));
  NodeAttach& at = node_attach_[node];
  assert(at.delivery && "packet delivered to node without a NIC");
  at.delivery(std::move(pkt));
}

std::uint32_t Fabric::acquire_record() {
  if (xfree_ != kNone) {
    const std::uint32_t idx = xfree_;
    xfree_ = xrecords_[idx]->next_free;
    xrecords_[idx]->next_free = kNone;
    return idx;
  }
  xrecords_.push_back(std::make_unique<ExpressRecord>());
  return static_cast<std::uint32_t>(xrecords_.size() - 1);
}

void Fabric::release_record(std::uint32_t idx) {
  ExpressRecord& r = *xrecords_[idx];
  r.pkts.clear();  // drops the MsgRefs now, not when the slot is reused
  r.arrivals.clear();
  r.delivers.clear();
  r.hops.clear();  // capacities retained for the record's next commit
  r.node = -1;
  r.next = 0;
  r.chain_end = 0;
  r.state = XState::kDelivery;
  r.next_free = xfree_;
  xfree_ = idx;
}

void Fabric::close_record(std::uint32_t idx) {
  ExpressRecord& r = *xrecords_[idx];
  if (r.open) open_list_remove(r, idx);
  release_record(idx);
}

void Fabric::check_wired() const {
  for (std::size_t sw = 0; sw < switches_.size(); ++sw) {
    const Switch& s = switches_[sw];
    for (int p = 0; p < s.num_ports; ++p) {
      const std::size_t id = pid(static_cast<int>(sw), p);
      if (port_peer_sw_[id] < 0 && port_peer_node_[id] < 0) {
        std::fprintf(stderr, "fabric: switch %zu port %d unwired\n", sw, p);
        std::abort();
      }
    }
  }
  for (std::size_t n = 0; n < node_attach_.size(); ++n) {
    if (node_attach_[n].sw < 0) {
      std::fprintf(stderr, "fabric: node %zu unattached\n", n);
      std::abort();
    }
  }
}

}  // namespace rvma::net
