#include <cmath>

#include "net/topologies.hpp"

namespace rvma::net {

namespace {
// Per-switch neighbor ports: +x, -x, +y, -y, +z, -z.
constexpr int kPortPlus[3] = {0, 2, 4};
constexpr int kPortMinus[3] = {1, 3, 5};
}  // namespace

Torus3DTopology::Torus3DTopology(const NetworkConfig& config)
    : config_(config), conc_(config.concentration < 1 ? 1 : config.concentration) {
  dx_ = config.torus_x;
  dy_ = config.torus_y;
  dz_ = config.torus_z;
  if (dx_ == 0 || dy_ == 0 || dz_ == 0) {
    const int want = (config.nodes_hint + conc_ - 1) / conc_;
    int d = static_cast<int>(std::lround(std::cbrt(static_cast<double>(want))));
    if (d < 2) d = 2;
    dx_ = d;
    dy_ = d;
    dz_ = (want + d * d - 1) / (d * d);
    if (dz_ < 2) dz_ = 2;
  }
  if (dx_ < 2) dx_ = 2;
  if (dy_ < 2) dy_ = 2;
  if (dz_ < 2) dz_ = 2;
}

void Torus3DTopology::build(Fabric& fabric) {
  const Bandwidth xbar = config_.link.bw.scaled(config_.xbar_factor);
  const int num_switches = dx_ * dy_ * dz_;
  // Long tier: the wrap-around links closing each ring. Both directed
  // ports of a wrap wire get the override, so latency stays symmetric
  // per wire.
  LinkParams long_link = config_.link;
  if (config_.long_link_latency != 0) {
    long_link.latency = config_.long_link_latency;
  }
  const int dims[3] = {dx_, dy_, dz_};
  // Pass 1 — one switch at a time, in id order, with ALL of its ports
  // (6 neighbor links then conc_ ejection links): the fabric's SoA port
  // arrays require each switch's block to be contiguous. Local port
  // numbering is unchanged from the pre-SoA builder: +x,-x,+y,-y,+z,-z.
  for (int sw = 0; sw < num_switches; ++sw) {
    fabric.add_switch(config_.switch_latency, xbar);
    const int coords[3] = {sw / (dy_ * dz_), (sw / dz_) % dy_, sw % dz_};
    for (int dim = 0; dim < 3; ++dim) {
      // The +dim port of the last coordinate and the -dim port of the
      // first are the two ends of the ring's wrap wire.
      fabric.add_port(
          sw, coords[dim] == dims[dim] - 1 ? long_link : config_.link);
      fabric.add_port(sw, coords[dim] == 0 ? long_link : config_.link);
    }
    for (int c = 0; c < conc_; ++c) {
      fabric.attach_node(sw, sw * conc_ + c, config_.link);
    }
  }
  // Pass 2 — wiring only (no port creation).
  for (int x = 0; x < dx_; ++x) {
    for (int y = 0; y < dy_; ++y) {
      for (int z = 0; z < dz_; ++z) {
        const int sw = switch_of(x, y, z);
        const int coords[3] = {x, y, z};
        for (int dim = 0; dim < 3; ++dim) {
          int nc[3] = {x, y, z};
          nc[dim] = (coords[dim] + 1) % dims[dim];
          const int neighbor = switch_of(nc[0], nc[1], nc[2]);
          fabric.connect(sw, kPortPlus[dim], neighbor, kPortMinus[dim]);
        }
      }
    }
  }
}

TopologyFootprint Torus3DTopology::footprint() const {
  const int switches = dx_ * dy_ * dz_;
  return TopologyFootprint{switches, switches * 6, switches * conc_};
}

int Torus3DTopology::static_next_hop(int sw, NodeId dst) const {
  // Same dimension-order arithmetic as route(kStatic); dst's switch is
  // dst / conc_ (nodes are attached in switch-id order).
  const int dst_sw = static_cast<int>(dst) / conc_;
  const int dims[3] = {dx_, dy_, dz_};
  const int cur[3] = {sw / (dy_ * dz_), (sw / dz_) % dy_, sw % dz_};
  const int dsc[3] = {dst_sw / (dy_ * dz_), (dst_sw / dz_) % dy_,
                      dst_sw % dz_};
  for (int dim = 0; dim < 3; ++dim) {
    const int fwd = (dsc[dim] - cur[dim] + dims[dim]) % dims[dim];
    if (fwd == 0) continue;
    const int bwd = (cur[dim] - dsc[dim] + dims[dim]) % dims[dim];
    return fwd <= bwd ? kPortPlus[dim] : kPortMinus[dim];
  }
  return -1;  // unreachable: dst would be attached to this switch
}

int Torus3DTopology::route(Fabric& fabric, int sw, Packet& pkt, Routing mode,
                           Rng&) {
  const int dst_sw = fabric.switch_of_node(pkt.dst);
  const int dims[3] = {dx_, dy_, dz_};
  int cur[3] = {sw / (dy_ * dz_), (sw / dz_) % dy_, sw % dz_};
  int dst[3] = {dst_sw / (dy_ * dz_), (dst_sw / dz_) % dy_, dst_sw % dz_};

  // Productive port per dimension: shortest wrap-around direction,
  // positive on ties (deterministic).
  auto productive_port = [&](int dim) -> int {
    const int fwd = (dst[dim] - cur[dim] + dims[dim]) % dims[dim];
    const int bwd = (cur[dim] - dst[dim] + dims[dim]) % dims[dim];
    if (fwd == 0) return -1;
    return fwd <= bwd ? kPortPlus[dim] : kPortMinus[dim];
  };

  if (mode == Routing::kStatic) {
    for (int dim = 0; dim < 3; ++dim) {
      const int port = productive_port(dim);
      if (port >= 0) return port;
    }
    return -1;  // unreachable: dst would be attached to this switch
  }

  // Minimal-adaptive: among dimensions still needing correction, pick the
  // least-backlogged productive port (deterministic dimension tie-break).
  int best_port = -1;
  Time best_backlog = kTimeInfinity;
  for (int dim = 0; dim < 3; ++dim) {
    const int port = productive_port(dim);
    if (port < 0) continue;
    const Time backlog = fabric.port_backlog(sw, port);
    if (backlog < best_backlog) {
      best_backlog = backlog;
      best_port = port;
    }
  }
  return best_port;
}

}  // namespace rvma::net
