#include "net/topology.hpp"

#include <stdexcept>

#include "net/topologies.hpp"

namespace rvma::net {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStar: return "star";
    case TopologyKind::kTorus3D: return "torus3d";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kHyperX: return "hyperx";
  }
  return "?";
}

std::string to_string(Routing routing) {
  return routing == Routing::kStatic ? "static" : "adaptive";
}

std::unique_ptr<Topology> make_topology(const NetworkConfig& config) {
  switch (config.topology) {
    case TopologyKind::kStar:
      return std::make_unique<StarTopology>(config);
    case TopologyKind::kTorus3D:
      return std::make_unique<Torus3DTopology>(config);
    case TopologyKind::kFatTree:
      return std::make_unique<FatTreeTopology>(config);
    case TopologyKind::kDragonfly:
      return std::make_unique<DragonflyTopology>(config);
    case TopologyKind::kHyperX:
      return std::make_unique<HyperXTopology>(config);
  }
  throw std::invalid_argument("unknown topology kind");
}

Network::Network(sim::Engine& engine, const NetworkConfig& config,
                 obs::MetricsRegistry* metrics)
    : config_(config),
      fabric_(engine, metrics),
      rng_(config.seed ^ 0x746f706fULL) {
  topology_ = make_topology(config_);
  topology_->build(fabric_);
  fabric_.check_wired();
  fabric_.set_router([this](int sw, const Packet& pkt) {
    // route() may stash per-packet state (Valiant detours), so cast away
    // the const the Fabric::Router signature imposes on transit packets.
    return topology_->route(fabric_, sw, const_cast<Packet&>(pkt),
                            config_.routing, rng_);
  });
  if (config_.routing == Routing::kStatic) {
    // Static routes depend only on (switch, dst) — every topology's
    // static mode is deterministic and consults neither the RNG nor
    // per-packet state — so precompute the whole next-hop table once and
    // spare the per-hop std::function dispatch (see Fabric::set_static_routes).
    const int switches = fabric_.num_switches();
    const int nodes = num_nodes();
    std::vector<std::int32_t> table(
        static_cast<std::size_t>(switches) * static_cast<std::size_t>(nodes),
        -1);
    Packet probe;
    for (NodeId dst = 0; dst < nodes; ++dst) {
      probe.dst = dst;
      const int dst_sw = fabric_.switch_of_node(dst);
      for (int sw = 0; sw < switches; ++sw) {
        if (sw == dst_sw) continue;  // ejection handled before routing
        table[static_cast<std::size_t>(sw) * nodes + dst] = topology_->route(
            fabric_, sw, probe, Routing::kStatic, rng_);
      }
    }
    fabric_.set_static_routes(std::move(table));
    fabric_.set_express_enabled(config_.express);
  }
}

}  // namespace rvma::net
