#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "net/topologies.hpp"

namespace rvma::net {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStar: return "star";
    case TopologyKind::kTorus3D: return "torus3d";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kHyperX: return "hyperx";
  }
  return "?";
}

std::string to_string(Routing routing) {
  return routing == Routing::kStatic ? "static" : "adaptive";
}

std::string to_string(RouteTable table) {
  return table == RouteTable::kAlgebraic ? "algebraic" : "materialized";
}

std::unique_ptr<Topology> make_topology(const NetworkConfig& config) {
  switch (config.topology) {
    case TopologyKind::kStar:
      return std::make_unique<StarTopology>(config);
    case TopologyKind::kTorus3D:
      return std::make_unique<Torus3DTopology>(config);
    case TopologyKind::kFatTree:
      return std::make_unique<FatTreeTopology>(config);
    case TopologyKind::kDragonfly:
      return std::make_unique<DragonflyTopology>(config);
    case TopologyKind::kHyperX:
      return std::make_unique<HyperXTopology>(config);
  }
  throw std::invalid_argument("unknown topology kind");
}

std::vector<Time> cross_shard_min_latency(
    const Fabric& fabric, const std::vector<std::int32_t>& shard_of_switch,
    int num_shards) {
  const std::size_t k = static_cast<std::size_t>(num_shards);
  std::vector<Time> la(k * k, kTimeInfinity);
  const int num_sw = fabric.num_switches();
  for (int sw = 0; sw < num_sw; ++sw) {
    const std::size_t src =
        static_cast<std::size_t>(shard_of_switch[static_cast<std::size_t>(sw)]);
    const int ports = fabric.switch_num_ports(sw);
    for (int p = 0; p < ports; ++p) {
      const std::int32_t peer = fabric.port_peer_switch(sw, p);
      if (peer < 0) continue;
      const std::size_t dst = static_cast<std::size_t>(
          shard_of_switch[static_cast<std::size_t>(peer)]);
      if (src == dst) continue;
      la[src * k + dst] =
          std::min(la[src * k + dst], fabric.port_link(sw, p).latency);
    }
  }
  return la;
}

void close_min_latency_matrix(std::vector<Time>& la, int num_shards) {
  const std::size_t k = static_cast<std::size_t>(num_shards);
  assert(la.size() == k * k);
  const auto sat_add = [](Time a, Time b) {
    return (kTimeInfinity - a < b) ? kTimeInfinity : a + b;
  };
  for (std::size_t i = 0; i < k; ++i) la[i * k + i] = 0;
  for (std::size_t m = 0; m < k; ++m) {
    for (std::size_t i = 0; i < k; ++i) {
      const Time im = la[i * k + m];
      if (im == kTimeInfinity) continue;
      for (std::size_t j = 0; j < k; ++j) {
        const Time cand = sat_add(im, la[m * k + j]);
        if (cand < la[i * k + j]) la[i * k + j] = cand;
      }
    }
  }
}

Network::Network(sim::Engine& engine, const NetworkConfig& config,
                 obs::MetricsRegistry* metrics)
    : config_(config),
      fabric_(engine, metrics),
      rng_(config.seed ^ 0x746f706fULL) {
  topology_ = make_topology(config_);
  const TopologyFootprint fp = topology_->footprint();
  fabric_.reserve(fp.switches, fp.ports, fp.nodes);
  topology_->build(fabric_);
  fabric_.check_wired();
  fabric_.set_router([this](int sw, const Packet& pkt) {
    // route() may stash per-packet state (Valiant detours), so cast away
    // the const the Fabric::Router signature imposes on transit packets.
    return topology_->route(fabric_, sw, const_cast<Packet&>(pkt),
                            config_.routing, rng_);
  });
  if (config_.routing == Routing::kStatic) {
    // Static routes depend only on (switch, dst) — every topology's
    // static mode is deterministic and consults neither the RNG nor
    // per-packet state — so next hops can be resolved without the per-hop
    // std::function dispatch. Every registered topology is regular enough
    // that the next hop is pure O(1) arithmetic on (switch, dst)
    // coordinates (static_next_hop); the materialized O(S*N) LUT is kept
    // as an ablation and as the oracle test_routing_algebra checks the
    // arithmetic against. Both modes produce bit-identical simulations.
    if (config_.route_table == RouteTable::kAlgebraic &&
        topology_->algebraic_routing()) {
      // topology_ outlives fabric_ callbacks: both die with this Network,
      // and the fabric never routes after destruction begins.
      fabric_.set_algebraic_routes(
          +[](const void* ctx, int sw, NodeId dst) {
            return static_cast<const Topology*>(ctx)->static_next_hop(sw,
                                                                      dst);
          },
          topology_.get());
    } else {
      const int switches = fabric_.num_switches();
      const int nodes = num_nodes();
      std::vector<std::int32_t> table(
          static_cast<std::size_t>(switches) * static_cast<std::size_t>(nodes),
          -1);
      Packet probe;
      for (NodeId dst = 0; dst < nodes; ++dst) {
        probe.dst = dst;
        const int dst_sw = fabric_.switch_of_node(dst);
        for (int sw = 0; sw < switches; ++sw) {
          if (sw == dst_sw) continue;  // ejection handled before routing
          table[static_cast<std::size_t>(sw) * nodes + dst] = topology_->route(
              fabric_, sw, probe, Routing::kStatic, rng_);
        }
      }
      fabric_.set_static_routes(std::move(table));
    }
    fabric_.set_express_enabled(config_.express);
  }
}

}  // namespace rvma::net
