// Topology interface and the Network facade that owns fabric + routing.
//
// The paper evaluates RVMA vs RDMA across dragonfly, fat-tree, HyperX and
// torus topologies under static (deterministic) and adaptive routing
// (paper Figures 7 and 8). Each topology builds its own wiring and
// implements both routing modes; adaptive modes consult output-port
// backlogs, producing per-packet path diversity and therefore out-of-order
// arrival — the network condition RVMA is designed for.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/types.hpp"

namespace rvma::net {

enum class Routing {
  kStatic,   ///< deterministic single path per (src, dst): in-order delivery
  kAdaptive  ///< per-packet congestion-aware choice: may reorder
};

enum class TopologyKind { kStar, kTorus3D, kFatTree, kDragonfly, kHyperX };

/// How static next-hops are resolved on the fabric hot path.
///
/// Every registered topology is regular, so the static next hop is a pure
/// O(1) function of (switch, dst) coordinates — no per-destination storage.
/// kAlgebraic installs that function directly; kMaterialized precomputes
/// the full O(switches x nodes) int32 LUT (the pre-PR-7 behavior), kept as
/// an ablation and as the oracle the algebraic routers are tested against.
/// Simulation results are bit-identical either way (DESIGN.md §13); only
/// memory footprint and construction time move.
enum class RouteTable { kAlgebraic, kMaterialized };

std::string to_string(TopologyKind kind);
std::string to_string(Routing routing);
std::string to_string(RouteTable table);

struct NetworkConfig {
  TopologyKind topology = TopologyKind::kStar;
  Routing routing = Routing::kStatic;

  /// Desired endpoint count; the topology rounds up to its natural size.
  int nodes_hint = 2;

  LinkParams link;                     ///< applied to every link
  Time switch_latency = 100 * kNanosecond;
  double xbar_factor = 1.5;            ///< crossbar bw = factor * link bw

  /// Latency override for the topology's "long" link tier — the links that
  /// are physically long cables in a real machine: torus wrap-around links,
  /// dragonfly global (inter-group) links, fat-tree agg<->core links and
  /// HyperX dimension-1 links. 0 means uniform (every link uses
  /// link.latency). Bandwidth is unchanged. Star has no switch-to-switch
  /// links, so the override is a no-op there. Non-uniform latencies are
  /// where the per-shard-pair PDES lookahead matrix diverges most from the
  /// single global minimum (DESIGN.md §12).
  Time long_link_latency = 0;

  /// Endpoints per switch (torus / hyperx concentration; dragonfly uses p).
  int concentration = 1;

  // Topology-specific shape overrides; 0 means derive from nodes_hint.
  int torus_x = 0, torus_y = 0, torus_z = 0;
  int fat_k = 0;                       ///< k-ary 3-level fat-tree arity
  int df_p = 0, df_a = 0, df_h = 0;    ///< dragonfly nodes/sw, sw/grp, global links/sw
  int hx_l1 = 0, hx_l2 = 0;            ///< HyperX lattice extents

  std::uint64_t seed = 1;

  /// Arm the express cut-through fast path (Fabric::set_express_enabled).
  /// Only meaningful under static routing; results are bit-identical with
  /// it off (--no-express ablation), only event counts and wall time move.
  bool express = true;

  /// Static next-hop resolution strategy (ignored under adaptive routing).
  RouteTable route_table = RouteTable::kAlgebraic;
};

/// Exact element counts a topology will create in build(), so Fabric can
/// reserve its SoA arrays up front instead of growing them incrementally.
struct TopologyFootprint {
  int switches = 0;
  int ports = 0;  ///< switch-to-switch ports, summed over all switches
  int nodes = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// Total endpoints created by build().
  virtual int num_nodes() const = 0;

  /// Construct switches, wire links, attach nodes.
  virtual void build(Fabric& fabric) = 0;

  /// Select the output port for a transit packet (dst not on `sw`).
  virtual int route(Fabric& fabric, int sw, Packet& pkt, Routing mode,
                    Rng& rng) = 0;

  /// O(1) static next hop for a transit packet at `sw` headed to `dst`
  /// (dst's switch != sw). Must agree with route(..., kStatic, ...) on
  /// every reachable (sw, dst) pair — test_routing_algebra checks this
  /// against the materialized LUT oracle. Only consulted when
  /// algebraic_routing() is true.
  virtual int static_next_hop(int sw, NodeId dst) const {
    (void)sw;
    (void)dst;
    return -1;
  }

  /// True when static_next_hop implements this topology's static routing.
  virtual bool algebraic_routing() const { return false; }

  /// Element counts for Fabric::reserve(); all-zero means "unknown".
  virtual TopologyFootprint footprint() const { return {}; }

  /// Expected hop count bounds, used by tests.
  virtual int diameter() const = 0;
};

/// Owns the engine-facing pieces: fabric, topology, routing policy, RNG.
class Network {
 public:
  /// `metrics` is forwarded to the Fabric (shared Cluster registry);
  /// nullptr gives the fabric a private registry.
  Network(sim::Engine& engine, const NetworkConfig& config,
          obs::MetricsRegistry* metrics = nullptr);

  int num_nodes() const { return topology_->num_nodes(); }
  Fabric& fabric() { return fabric_; }
  const NetworkConfig& config() const { return config_; }
  Topology& topology() { return *topology_; }

  void set_delivery(NodeId node, Fabric::Delivery fn) {
    fabric_.set_delivery(node, std::move(fn));
  }
  void inject(Packet&& pkt) { fabric_.inject(std::move(pkt)); }
  /// Batched injection of one message's packets (see Fabric::inject_burst).
  /// Consumes `pkts` but keeps its capacity for caller reuse.
  void inject_burst(std::vector<Packet>& pkts) { fabric_.inject_burst(pkts); }

 private:
  NetworkConfig config_;
  Fabric fabric_;
  std::unique_ptr<Topology> topology_;
  Rng rng_;
};

/// Factory for the topology named in `config` (used by Network; exposed for
/// tests that want to poke a topology directly).
std::unique_ptr<Topology> make_topology(const NetworkConfig& config);

/// Per-shard-pair minimum crossing-link latency, row-major [src * k + dst]:
/// the minimum latency over all fabric links leaving a shard-`src` switch
/// for a shard-`dst` switch, kTimeInfinity where no link crosses src->dst.
/// This is the *direct* one-crossing matrix; a conservative PDES window
/// bound must close it over paths first (close_min_latency_matrix), because
/// influence can chain through intermediate shards with a smaller total
/// latency than any direct link (DESIGN.md §12).
std::vector<Time> cross_shard_min_latency(
    const Fabric& fabric, const std::vector<std::int32_t>& shard_of_switch,
    int num_shards);

/// In-place min-plus (all-pairs shortest path) closure of a
/// cross_shard_min_latency matrix: after the call, la[src * k + dst] is the
/// minimum summed latency over any shard path src -> ... -> dst, still
/// kTimeInfinity for pairs with no path. Diagonal entries are forced to 0
/// (self-influence needs no window bound). Saturating adds keep
/// kTimeInfinity absorbing. O(k^3); k is the shard count, single digits.
void close_min_latency_matrix(std::vector<Time>& la, int num_shards);

}  // namespace rvma::net
