#include "net/topologies.hpp"

namespace rvma::net {

FatTreeTopology::FatTreeTopology(const NetworkConfig& config) : config_(config) {
  k_ = config.fat_k;
  if (k_ == 0) {
    k_ = 2;
    while (k_ * k_ * k_ / 4 < config.nodes_hint) k_ += 2;
  }
  if (k_ < 2) k_ = 2;
  if (k_ % 2 != 0) ++k_;  // arity must be even
  num_edges_ = k_ * half();
  num_aggs_ = k_ * half();
  num_cores_ = half() * half();
}

void FatTreeTopology::build(Fabric& fabric) {
  const Bandwidth xbar = config_.link.bw.scaled(config_.xbar_factor);
  const int h = half();
  // Long tier: the agg<->core links spanning the machine-room spine.
  LinkParams long_link = config_.link;
  if (config_.long_link_latency != 0) {
    long_link.latency = config_.long_link_latency;
  }
  // Pass 1 — one switch at a time, in id order (edges, aggs, cores), each
  // with ALL of its ports: the fabric's SoA port arrays require per-switch
  // contiguous blocks. Local port numbering matches the pre-SoA builder:
  //   Edge ports 0..h-1: uplinks to the pod's aggregation switches;
  //     ports h..k-1: ejection links to the edge's h nodes.
  //   Agg ports 0..h-1: downlinks to edges; ports h..k-1: uplinks to cores.
  //   Core ports 0..k-1: downlinks, one per pod.
  const int nodes_per_pod = h * h;
  for (int sw = 0; sw < num_edges_; ++sw) {
    fabric.add_switch(config_.switch_latency, xbar);
    for (int p = 0; p < h; ++p) fabric.add_port(sw, config_.link);
    const int pod = sw / h, e = sw % h;
    for (int n = 0; n < h; ++n) {
      fabric.attach_node(sw, pod * nodes_per_pod + e * h + n, config_.link);
    }
  }
  for (int sw = num_edges_; sw < num_edges_ + num_aggs_; ++sw) {
    fabric.add_switch(config_.switch_latency, xbar);
    for (int p = 0; p < h; ++p) fabric.add_port(sw, config_.link);
    for (int p = h; p < k_; ++p) fabric.add_port(sw, long_link);
  }
  for (int c = 0; c < num_cores_; ++c) {
    fabric.add_switch(config_.switch_latency, xbar);
    for (int p = 0; p < k_; ++p) fabric.add_port(core_id(c), long_link);
  }

  // Pass 2 — wiring only (no port creation).
  for (int pod = 0; pod < k_; ++pod) {
    for (int e = 0; e < h; ++e) {
      for (int a = 0; a < h; ++a) {
        // Edge (pod, e) uplink a <-> agg (pod, a) downlink e.
        fabric.connect(edge_id(pod, e), a, agg_id(pod, a), e);
      }
    }
    for (int a = 0; a < h; ++a) {
      for (int j = 0; j < h; ++j) {
        const int c = a * h + j;
        // Agg (pod, a) uplink j <-> core c downlink for this pod.
        fabric.connect(agg_id(pod, a), h + j, core_id(c), pod);
      }
    }
  }
}

TopologyFootprint FatTreeTopology::footprint() const {
  return TopologyFootprint{
      num_edges_ + num_aggs_ + num_cores_,
      num_edges_ * half() + num_aggs_ * k_ + num_cores_ * k_, num_nodes()};
}

int FatTreeTopology::static_next_hop(int sw, NodeId dst) const {
  // Same D-mod-k arithmetic as route(kStatic); dst's edge switch is
  // dst / h (node = pod*h*h + e*h + n, edge id = pod*h + e).
  const int h = half();
  if (sw < num_edges_) return static_cast<int>(dst) % h;  // deterministic up
  if (sw < num_edges_ + num_aggs_) {
    const int pod = (sw - num_edges_) / h;
    const int dst_edge_sw = static_cast<int>(dst) / h;
    if (pod == dst_edge_sw / h) return dst_edge_sw % h;  // down to the edge
    return h + static_cast<int>(dst) % h;                // deterministic up
  }
  return static_cast<int>(dst) / (h * h);  // core: unique downward pod port
}

int FatTreeTopology::route(Fabric& fabric, int sw, Packet& pkt, Routing mode,
                           Rng&) {
  const int h = half();
  const int nodes_per_pod = h * h;
  const int dst = pkt.dst;
  const int dst_pod = dst / nodes_per_pod;
  const int dst_edge = (dst % nodes_per_pod) / h;

  if (sw < num_edges_) {
    // Edge switch; dst is elsewhere, so go up.
    if (mode == Routing::kStatic) return dst % h;
    int best = 0;
    Time best_backlog = kTimeInfinity;
    for (int p = 0; p < h; ++p) {
      const Time backlog = fabric.port_backlog(sw, p);
      if (backlog < best_backlog) {
        best_backlog = backlog;
        best = p;
      }
    }
    return best;
  }

  if (sw < num_edges_ + num_aggs_) {
    const int pod = (sw - num_edges_) / h;
    if (pod == dst_pod) return dst_edge;  // down to the destination edge
    if (mode == Routing::kStatic) return h + dst % h;
    int best = h;
    Time best_backlog = kTimeInfinity;
    for (int p = h; p < k_; ++p) {
      const Time backlog = fabric.port_backlog(sw, p);
      if (backlog < best_backlog) {
        best_backlog = backlog;
        best = p;
      }
    }
    return best;
  }

  // Core switch: the downward path is unique.
  return dst_pod;
}

}  // namespace rvma::net
