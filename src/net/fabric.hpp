// Switch fabric: output-queued switches connected by point-to-point links.
//
// Model (paper §V-B1): each switch forwards a packet through its crossbar
// at 1.5x the link bandwidth (configurable factor) plus a fixed traversal
// latency, then serializes it onto the chosen output port. Output ports are
// FIFO resources (`busy_until`), so a single deterministic path delivers
// in order — the property RDMA's last-byte polling depends on — while
// adaptive per-packet path choice yields genuine out-of-order arrival.
//
// Express cut-through (static routing only): when the precomputed next-hop
// table is installed, an injection may walk its whole route inline,
// eagerly charging every port's busy window, and keep a single chained
// delivery event per *message* instead of one arrival event per hop per
// packet. The fast path is timing-exact — it engages only when every hop
// would arbitrate with zero queue wait, and any later injection that
// could reach a charged port before its virtual arbitration time
// rematerializes the outstanding express packets back onto the hop-by-hop
// path. See DESIGN.md §8 for the exactness argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace rvma::net {

struct LinkParams {
  Bandwidth bw = Bandwidth::gbps(100);
  Time latency = 100 * kNanosecond;  ///< propagation (wire/SerDes) delay
};

/// Per-port state lives in flat fabric-wide SoA arrays indexed by global
/// port id (Switch::port_base + local port index), not in per-Port
/// objects: the express walk and hop arbitration touch only busy/express
/// times, so packing those into dense dedicated arrays keeps the hot
/// working set at 16 bytes/port instead of dragging link parameters and
/// wiring (cold, read at build/walk-setup time) through the cache.
struct Switch {
  Time latency = 100 * kNanosecond;  ///< fixed crossbar traversal latency
  Bandwidth xbar_bw;                 ///< crossbar serialization bandwidth
  std::int32_t port_base = 0;        ///< first global port id of this switch
  std::int32_t num_ports = 0;
};

struct FabricStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t wire_bytes_delivered = 0;
  std::uint64_t packets_dropped_dead_node = 0;  ///< failure injection
  /// Transit hops resolved from the precomputed static next-hop table
  /// instead of the routing callback (static routing only).
  std::uint64_t route_cache_hits = 0;
  Time max_port_backlog = 0;  ///< worst queue wait beyond the crossbar seen
  /// Express cut-through telemetry. Deliberately *not* registry
  /// instruments: metrics documents must stay byte-identical between
  /// --no-express and express runs, and these counters are the one
  /// legitimate difference.
  std::uint64_t express_commits = 0;    ///< packets that took the fast path
  std::uint64_t express_fallbacks = 0;  ///< walks that arbitrated hop-by-hop
  std::uint64_t express_remats = 0;     ///< conflict unwinds of open records
};

class Fabric {
 public:
  /// Routes a transit packet at `sw`; returns the output port index.
  using Router = std::function<int(int sw, const Packet&)>;
  /// Per-node delivery callback (installed by the NIC model).
  using Delivery = std::function<void(Packet&&)>;
  /// Cross-shard handoff hook (sharded runs only): invoked when a packet's
  /// next hop lands on a switch owned by another shard. `rank` is the
  /// handing-off arbitration's instant — where a serial engine would have
  /// allocated the arrival event's sequence number. The hook must
  /// eventually call receive_remote(next_sw, arrival, rank, pkt) on the
  /// owning shard's fabric; the Cluster wires it through
  /// sim::ShardedEngine.
  using RemoteHop = std::function<void(int dst_shard, int next_sw,
                                       Time arrival, Time rank, Packet&&)>;

  /// When `metrics` is non-null the fabric records into that shared
  /// registry (the Cluster's); otherwise it owns a private one so
  /// standalone fabrics (unit tests, topology experiments) keep working.
  explicit Fabric(sim::Engine& engine,
                  obs::MetricsRegistry* metrics = nullptr);

  /// Pre-size the switch and port arrays (Topology::footprint()), so a
  /// paper-scale build is a single allocation per array instead of a
  /// doubling-growth sequence. `ports` counts switch-to-switch ports;
  /// attach_node adds one ejection port per node on top.
  void reserve(int switches, int ports, int nodes);

  int add_switch(Time latency, Bandwidth xbar_bw);
  /// Append a port to `sw`; wiring is set later via connect()/attach_node().
  /// Ports live in fabric-wide contiguous arrays, so all of a switch's
  /// ports must be added before the next switch's first port (every
  /// topology builds switch-by-switch in id order).
  int add_port(int sw, LinkParams link);
  /// Wire two existing switch ports together (bidirectional pair).
  void connect(int sw_a, int port_a, int sw_b, int port_b);
  /// Create a port on `sw` facing `node` and an injection link back.
  /// Returns the switch-side port index.
  int attach_node(int sw, NodeId node, LinkParams link);

  void set_delivery(NodeId node, Delivery fn);
  void set_router(Router fn) { router_ = std::move(fn); }

  /// Register the folded receive hook for `node`: when tracing is off,
  /// an express-committed packet's delivery and NIC
  /// receive pipeline collapse into one event at delivery + `rx_delay`
  /// (the NIC's per-packet receive cost), which runs the fabric delivery
  /// bookkeeping and then hands the packet to `rx`. Installed by the NIC
  /// model; without it express packets still collapse hops but keep a
  /// separate delivery event.
  void set_express_rx(NodeId node, Time rx_delay, Delivery rx);

  /// O(1) algebraic next-hop resolver: returns the output (local) port at
  /// `sw` for a transit packet to node `dst` (never called when dst's
  /// switch == sw). Plain function pointer + context — not std::function —
  /// so the per-hop dispatch is one indirect call with no capture storage.
  using NextHopFn = int (*)(const void* ctx, int sw, NodeId dst);

  /// Install the precomputed next-hop table for deterministic routing:
  /// entry [sw * num_attached_nodes() + dst] is the output port at `sw`
  /// for a transit packet to node `dst` (ejection switches excluded — the
  /// fabric takes the ejection path before consulting routing). While a
  /// table is installed, transit hops bypass the router_ std::function
  /// call entirely; adaptive routing never installs one. Built by
  /// Network after wiring (see Network ctor).
  void set_static_routes(std::vector<std::int32_t> table);

  /// Install an algebraic static resolver instead of a materialized table:
  /// same routing semantics and identical simulation output, O(1) memory.
  /// `ctx` must outlive the fabric's routing (Network owns both).
  void set_algebraic_routes(NextHopFn fn, const void* ctx);

  /// True when static next hops are resolvable without the router_
  /// callback — either resolver form counts.
  bool has_static_routes() const { return static_mode_; }

  /// Resident bytes of static-routing state: the materialized LUT's
  /// capacity, or 0 under the algebraic resolver. The paper-scale metric
  /// BENCH_engine.json tracks (route-table memory, ISSUE 7).
  std::size_t route_table_bytes() const {
    return static_routes_.capacity() * sizeof(std::int32_t);
  }

  /// Arm or disarm the express cut-through fast path (--no-express
  /// ablation). Only effective while a static route table is installed;
  /// timing, stats, and trace output are bit-identical either way.
  void set_express_enabled(bool on) { express_enabled_ = on; }
  bool express_enabled() const { return express_enabled_; }

  /// Shard this fabric: switches whose `shard_of_switch` entry differs
  /// from `my_shard` are foreign — a packet hopping onto one is handed to
  /// `hook` instead of being scheduled locally, and express walks stop at
  /// the boundary. Nodes always inject and eject on the shard owning
  /// their attachment switch, so only transit hops cross.
  void set_shard_map(int my_shard, std::vector<std::int32_t> shard_of_switch,
                     RemoteHop hook);
  bool sharded() const { return !shard_of_switch_.empty(); }

  /// Entry point for a packet handed off by a peer shard: accounts it as
  /// an in-flight hop-mode packet of this fabric and schedules its
  /// arrival at switch `sw` (owned by this shard) at time `arrival`,
  /// tie-break-ranked at `rank` (the source-side handoff instant). Open
  /// express records are rematerialized first — their eager charges were
  /// committed without knowledge of this packet.
  void receive_remote(int sw, Time arrival, Time rank, Packet&& pkt);

  /// Inject a packet from its source node's injection link.
  void inject(Packet&& pkt);

  /// Inject every packet of one message (same src/dst) back to back on the
  /// source node's injection link. Timing, stats, and tie-break order are
  /// identical to calling inject() per packet — the link is charged for the
  /// whole burst immediately and delivery sequence numbers are reserved up
  /// front — but only one chained engine event stays queued per message
  /// instead of one arrival event per packet (zero events per message when
  /// the whole burst commits to the express path). Consumes the contents
  /// of `pkts` and leaves it empty with its capacity intact, so callers
  /// can reuse the buffer allocation-free.
  void inject_burst(std::vector<Packet>& pkts);

  sim::Engine& engine() { return engine_; }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  int num_attached_nodes() const { return static_cast<int>(node_attach_.size()); }
  const Switch& switch_at(int sw) const { return switches_[sw]; }
  int switch_of_node(NodeId node) const { return node_attach_[node].sw; }

  // Per-port wiring accessors (SoA arrays; `port` is the local index).
  int switch_num_ports(int sw) const { return switches_[sw].num_ports; }
  std::int32_t port_peer_switch(int sw, int port) const {
    return port_peer_sw_[pid(sw, port)];
  }
  NodeId port_peer_node(int sw, int port) const {
    return port_peer_node_[pid(sw, port)];
  }
  const LinkParams& port_link(int sw, int port) const {
    return port_link_[pid(sw, port)];
  }

  /// Output-queue backlog of (sw, port) relative to now; the congestion
  /// signal adaptive routing policies compare.
  Time port_backlog(int sw, int port) const;

  /// Backlog (in serialization time) of `node`'s injection link — how far
  /// ahead of the wire the NIC's transmit queue currently runs.
  Time injection_backlog(NodeId node) const;

  /// Compatibility view assembled from the registry instruments (the
  /// counters live in obs::MetricsRegistry now). Returned by value;
  /// callers binding a const reference get lifetime extension.
  FabricStats stats() const;

  /// Registry this fabric records into (shared or privately owned).
  obs::MetricsRegistry& metrics_registry() { return *metrics_; }

  /// Packets currently inside the fabric (injected, not yet delivered or
  /// dropped) — a sampler gauge provider.
  std::int64_t inflight_packets() const { return inflight_; }

  /// Worst output-port or injection-link backlog right now (in time) —
  /// the instantaneous congestion level, for the sampler. O(ports).
  Time current_port_backlog_max() const;

  /// The same instantaneous worst backlog in nanoseconds — the single
  /// picosecond->nanosecond conversion point shared by the Cluster
  /// sampler's `fabric.port_backlog_ns` column (DESIGN.md §7).
  std::int64_t current_port_backlog_max_ns() const {
    return static_cast<std::int64_t>(current_port_backlog_max() / kNanosecond);
  }

  /// Failure injection: from now on, packets destined to or originating
  /// from `node` are silently dropped (the node has died). Rematerializes
  /// every open express packet first — a failure invalidates the
  /// no-divergence window eager charging relies on — and permanently
  /// disables event folding for the rest of the run. Used by the
  /// fault-tolerance experiments (paper §IV-F).
  void fail_node(NodeId node);
  /// Revive a failed node (e.g. restart after recovery).
  void revive_node(NodeId node);
  bool node_failed(NodeId node) const;

  /// Validate that every port is wired and every node has a delivery
  /// callback; aborts with a message otherwise. Call after topology build.
  void check_wired() const;

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct NodeAttach {
    std::int32_t sw = -1;
    std::int32_t port = -1;       ///< switch-side (ejection) port, local idx
    LinkParams inj_link;          ///< node -> switch link parameters
    Time inj_busy = 0;            ///< node -> switch link busy_until
    Delivery delivery;
    Delivery express_rx;          ///< folded NIC receive hook (optional)
    Time express_rx_delay = 0;    ///< NIC per-packet rx pipeline cost
    bool failed = false;
  };

  /// In-flight state of a multi-packet injection: the packets, their
  /// precomputed switch-arrival times, and the sequence numbers reserved so
  /// execution order matches eager per-packet scheduling.
  struct Burst {
    int sw = -1;
    std::uint64_t seq_base = 0;
    std::size_t next = 0;
    std::vector<Packet> pkts;
    std::vector<Time> arrivals;
  };

  /// One eagerly charged hop of an express-committed burst: the port, the
  /// saved pre-charge state for an exact unwind, and `epoch` to order
  /// unwinds LIFO across interleaved records. Per-packet arbitration and
  /// finish times are NOT stored — express eligibility means every packet
  /// arbitrated with zero queue wait, so they are pure functions of the
  /// packet's injection-link arrival and the per-hop constants, and the
  /// (rare) rematerialize path recomputes them.
  struct ExpressHop {
    std::int32_t sw = -1;
    std::int32_t pid = -1;  ///< global port id
    Time prev_busy = 0;
    Time prev_express_until = 0;
    std::uint64_t epoch = 0;
    bool transit = false;  ///< resolved via static routing (route_cache_hits)
  };

  /// Scratch row built once per walk: the route plus every per-hop
  /// constant the whole burst needs, including the serialization times for
  /// the two packet sizes a burst can contain (all full-MTU packets are
  /// `wire_f`; the final packet may be the shorter `wire_l`). Computing
  /// these once replaces two Bandwidth::serialize divisions per packet per
  /// hop with table lookups.
  struct WalkHop {
    std::int32_t sw = -1;
    std::int32_t pid = -1;  ///< global port id
    Time sw_latency = 0;
    Time link_latency = 0;
    Time xser_f = 0;  ///< crossbar serialization, full-size packet
    Time xser_l = 0;  ///< crossbar serialization, last packet
    Time pser_f = 0;  ///< port serialization, full-size packet
    Time pser_l = 0;  ///< port serialization, last packet
    Time prev_busy = 0;
    Time prev_express_until = 0;
    bool transit = false;
  };

  /// One port-state restore gathered during rematerialize: applied in
  /// descending epoch order so every restore sees the state it saved.
  struct UndoHop {
    std::uint64_t epoch = 0;
    std::int32_t pid = -1;  ///< global port id
    Time restore_busy = 0;
    Time restore_express_until = 0;
    Time expect_busy = 0;  ///< asserted == the port's busy_until pre-restore
  };

  /// What the record's one pending reserved-sequence event must do.
  enum class XState : std::uint8_t {
    kDelivery,  ///< chained deliver() events at (delivers[k], res_k)
    kFolded,    ///< chained deliver+rx events at (delivers[k]+rx, res_k+1)
    kRemRx,     ///< delivery bookkeeping handled; NIC receive of pkts[next]
    kRemDead,   ///< rematerialized onto the hop path; free only
  };

  /// An express-committed burst between commit and its last delivery.
  /// One record per inject/inject_burst commit; at most ONE engine event
  /// is pending per record at any time — each chained event delivers
  /// packet `next` and schedules the next packet's event at its exact
  /// reserved (time, sequence). Pooled (free list + capacity-retaining
  /// vectors): steady-state express traffic allocates nothing.
  struct ExpressRecord {
    std::vector<Packet> pkts;
    std::vector<Time> arrivals;  ///< first-switch arrival per packet
    std::vector<Time> delivers;  ///< delivery instant per packet
    std::vector<ExpressHop> hops;
    NodeId node = -1;
    std::uint32_t next = 0;       ///< next undelivered packet index
    std::uint32_t chain_end = 0;  ///< chain stops here (== pkts.size() unless
                                  ///< a remat handed the tail to the hop path)
    XState state = XState::kDelivery;
    std::uint32_t prev_open = kNone;
    std::uint32_t next_open = kNone;
    std::uint32_t next_free = kNone;
    bool open = false;
  };

  /// Global port id of `sw`'s local port index.
  std::size_t pid(int sw, int port) const {
    return static_cast<std::size_t>(switches_[sw].port_base + port);
  }

  /// Static next hop (local port at `sw`) for a transit packet to `dst`:
  /// O(1) arithmetic under the algebraic resolver, one array load under
  /// the materialized LUT. Only valid while has_static_routes().
  int next_hop(int sw, NodeId dst) const {
    if (next_hop_fn_ != nullptr) return next_hop_fn_(next_hop_ctx_, sw, dst);
    return static_routes_[static_cast<std::size_t>(sw) * node_attach_.size() +
                          static_cast<std::size_t>(dst)];
  }

  void arrive_at_switch(int sw, Packet&& pkt);
  void deliver(NodeId node, Packet&& pkt);
  void burst_step(std::unique_ptr<Burst> burst);

  /// Attempt the express cut-through for the `n`-packet burst `pkts`
  /// (same src/dst, back-to-back on the injection link) whose first-switch
  /// arrivals are `arrivals`. Walks the route once, commits the longest
  /// eligible prefix as ONE pooled record with a single chained delivery
  /// event, and returns the number of packets committed (0 on fallback).
  /// Detects eager-charge conflicts along the way and rematerializes open
  /// records when one is found. Maintains express_commits_/fallbacks_.
  std::size_t try_express_burst(Packet* pkts, std::size_t n,
                                const Time* arrivals);
  /// Convert every open express record back to exact hop-by-hop execution:
  /// unwind not-yet-arbitrated charges in reverse charge order, reschedule
  /// each packet's continuation from its current wire position, and leave
  /// already-final delivery events in place.
  void rematerialize_open();
  void express_event(std::uint32_t idx);
  void express_finalize(std::uint32_t idx);
  /// deliver()'s fabric-side bookkeeping for an express packet, using the
  /// stored delivery instant (the executing event may run later).
  void deliver_stats(const Packet& pkt, Time deliver_at);
  std::uint32_t acquire_record();
  void release_record(std::uint32_t idx);
  /// Drop the record from the open list (if still there) and free it.
  void close_record(std::uint32_t idx);
  void open_list_remove(ExpressRecord& r, std::uint32_t idx);

  sim::Engine& engine_;
  std::vector<Switch> switches_;
  // ---- per-port SoA arrays, indexed by global port id ----
  // Hot (touched per arbitration / express walk):
  std::vector<Time> port_busy_;    ///< output FIFO busy_until
  /// Latest *virtual* arbitration time among express (eagerly charged)
  /// packets on the port. A later injection whose optimistic arrival at
  /// the port is <= this could arbitrate out of charge order — the
  /// conflict that rematerializes open express records. Restored per
  /// charge on unwind; contributions from completed packets are always in
  /// the past and can never conflict.
  std::vector<Time> port_xuntil_;
  // Cold (wiring + link parameters, read at walk setup / hop setup):
  std::vector<LinkParams> port_link_;
  std::vector<std::int32_t> port_peer_sw_;  ///< -1 when the peer is a node
  std::vector<NodeId> port_peer_node_;      ///< -1 when the peer is a switch
  std::vector<NodeAttach> node_attach_;
  Router router_;
  /// Flat (switch, dst) -> port table for static routing; empty when the
  /// routing mode is adaptive (per-packet router_ calls) or the algebraic
  /// resolver is installed.
  std::vector<std::int32_t> static_routes_;
  /// Algebraic static resolver; when set, next_hop() never touches the
  /// materialized table.
  NextHopFn next_hop_fn_ = nullptr;
  const void* next_hop_ctx_ = nullptr;
  /// True when either static resolver form is installed.
  bool static_mode_ = false;
  /// Sharding (empty when this fabric owns the whole topology): owning
  /// shard per switch, this fabric's shard id, and the handoff hook.
  std::vector<std::int32_t> shard_of_switch_;
  int my_shard_ = 0;
  RemoteHop remote_hop_;

  /// Shared (Cluster) or privately owned registry, plus the instruments
  /// resolved once at construction — a record is one add through a
  /// cached pointer, no name lookups on the hot path.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_injected_;
  obs::Counter* c_delivered_;
  obs::Counter* c_hops_;
  obs::Counter* c_wire_bytes_;
  obs::Counter* c_drops_dead_node_;
  obs::Counter* c_route_cache_hits_;
  obs::Gauge* g_port_backlog_ns_;
  obs::Histogram* h_pkt_latency_ns_;
  std::int64_t inflight_ = 0;

  // ---- express cut-through state ----
  bool express_enabled_ = false;
  bool ever_failed_ = false;   ///< any fail_node() this run: folding off
  /// Packets currently traversing hop-by-hop (injected or rematerialized,
  /// last arbitration not yet executed). Express commits require zero:
  /// an in-flight hop packet's future arbitrations are not captured by
  /// any port's express_until, so eager charging could reorder with them.
  std::int64_t hop_inflight_ = 0;
  std::uint64_t express_epoch_ = 0;  ///< global eager-charge order
  std::uint64_t express_commits_ = 0;
  std::uint64_t express_fallbacks_ = 0;
  std::uint64_t express_remats_ = 0;
  std::vector<std::unique_ptr<ExpressRecord>> xrecords_;
  std::uint32_t xfree_ = kNone;
  std::uint32_t xopen_head_ = kNone;
  std::uint32_t xopen_tail_ = kNone;
  // Reused scratch buffers (steady state allocates nothing).
  std::vector<WalkHop> walk_;
  std::vector<Time> burst_arrivals_;
  std::vector<Time> commit_busy_;     ///< per-hop busy after committed prefix
  std::vector<Time> trial_busy_;      ///< candidate packet's busy column
  std::vector<Time> commit_arr_;      ///< last committed packet's arrivals
  std::vector<Time> trial_arr_;       ///< candidate packet's arrivals
  std::vector<Time> scratch_delivers_;
  std::vector<Time> replay_arr_;      ///< remat: n x hops arbitration times
  std::vector<Time> replay_fin_;      ///< remat: n x hops port-finish times
  std::vector<UndoHop> undo_;
};

}  // namespace rvma::net
