// Switch fabric: output-queued switches connected by point-to-point links.
//
// Model (paper §V-B1): each switch forwards a packet through its crossbar
// at 1.5x the link bandwidth (configurable factor) plus a fixed traversal
// latency, then serializes it onto the chosen output port. Output ports are
// FIFO resources (`busy_until`), so a single deterministic path delivers
// in order — the property RDMA's last-byte polling depends on — while
// adaptive per-packet path choice yields genuine out-of-order arrival.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace rvma::net {

struct LinkParams {
  Bandwidth bw = Bandwidth::gbps(100);
  Time latency = 100 * kNanosecond;  ///< propagation (wire/SerDes) delay
};

struct Port {
  LinkParams link;
  std::int32_t peer_switch = -1;  ///< -1 when the peer is a node
  std::int32_t peer_port = -1;
  NodeId peer_node = -1;
  Time busy_until = 0;
};

struct Switch {
  Time latency = 100 * kNanosecond;  ///< fixed crossbar traversal latency
  Bandwidth xbar_bw;                 ///< crossbar serialization bandwidth
  std::vector<Port> ports;
};

struct FabricStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t wire_bytes_delivered = 0;
  std::uint64_t packets_dropped_dead_node = 0;  ///< failure injection
  /// Transit hops resolved from the precomputed static next-hop table
  /// instead of the routing callback (static routing only).
  std::uint64_t route_cache_hits = 0;
  Time max_port_backlog = 0;  ///< worst output-queue depth seen (in time)
};

class Fabric {
 public:
  /// Routes a transit packet at `sw`; returns the output port index.
  using Router = std::function<int(int sw, const Packet&)>;
  /// Per-node delivery callback (installed by the NIC model).
  using Delivery = std::function<void(Packet&&)>;

  /// When `metrics` is non-null the fabric records into that shared
  /// registry (the Cluster's); otherwise it owns a private one so
  /// standalone fabrics (unit tests, topology experiments) keep working.
  explicit Fabric(sim::Engine& engine,
                  obs::MetricsRegistry* metrics = nullptr);

  int add_switch(Time latency, Bandwidth xbar_bw);
  /// Append a port to `sw`; wiring is set later via connect()/attach_node().
  int add_port(int sw, LinkParams link);
  /// Wire two existing switch ports together (bidirectional pair).
  void connect(int sw_a, int port_a, int sw_b, int port_b);
  /// Create a port on `sw` facing `node` and an injection link back.
  /// Returns the switch-side port index.
  int attach_node(int sw, NodeId node, LinkParams link);

  void set_delivery(NodeId node, Delivery fn);
  void set_router(Router fn) { router_ = std::move(fn); }

  /// Install the precomputed next-hop table for deterministic routing:
  /// entry [sw * num_attached_nodes() + dst] is the output port at `sw`
  /// for a transit packet to node `dst` (ejection switches excluded — the
  /// fabric takes the ejection path before consulting routing). While a
  /// table is installed, transit hops bypass the router_ std::function
  /// call entirely; adaptive routing never installs one. Built by
  /// Network after wiring (see Network ctor).
  void set_static_routes(std::vector<std::int32_t> table);
  bool has_static_routes() const { return !static_routes_.empty(); }

  /// Inject a packet from its source node's injection link.
  void inject(Packet&& pkt);

  /// Inject every packet of one message (same src/dst) back to back on the
  /// source node's injection link. Timing, stats, and tie-break order are
  /// identical to calling inject() per packet — the link is charged for the
  /// whole burst immediately and arrival sequence numbers are reserved up
  /// front — but only one chained engine event stays queued per message
  /// instead of one arrival event per packet.
  void inject_burst(std::vector<Packet>&& pkts);

  sim::Engine& engine() { return engine_; }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  int num_attached_nodes() const { return static_cast<int>(node_attach_.size()); }
  const Switch& switch_at(int sw) const { return switches_[sw]; }
  int switch_of_node(NodeId node) const { return node_attach_[node].sw; }

  /// Output-queue backlog of (sw, port) relative to now; the congestion
  /// signal adaptive routing policies compare.
  Time port_backlog(int sw, int port) const;

  /// Backlog (in serialization time) of `node`'s injection link — how far
  /// ahead of the wire the NIC's transmit queue currently runs.
  Time injection_backlog(NodeId node) const;

  /// Compatibility view assembled from the registry instruments (the
  /// counters live in obs::MetricsRegistry now). Returned by value;
  /// callers binding a const reference get lifetime extension.
  FabricStats stats() const;

  /// Registry this fabric records into (shared or privately owned).
  obs::MetricsRegistry& metrics_registry() { return *metrics_; }

  /// Packets currently inside the fabric (injected, not yet delivered or
  /// dropped) — a sampler gauge provider.
  std::int64_t inflight_packets() const { return inflight_; }

  /// Worst output-port or injection-link backlog right now (in time) —
  /// the instantaneous congestion level, for the sampler. O(ports).
  Time current_port_backlog_max() const;

  /// Failure injection: from now on, packets destined to or originating
  /// from `node` are silently dropped (the node has died). Used by the
  /// fault-tolerance experiments (paper §IV-F).
  void fail_node(NodeId node);
  /// Revive a failed node (e.g. restart after recovery).
  void revive_node(NodeId node);
  bool node_failed(NodeId node) const;

  /// Validate that every port is wired and every node has a delivery
  /// callback; aborts with a message otherwise. Call after topology build.
  void check_wired() const;

 private:
  struct NodeAttach {
    std::int32_t sw = -1;
    std::int32_t port = -1;       ///< switch-side (ejection) port
    Port injection;               ///< node -> switch link state
    Delivery delivery;
    bool failed = false;
  };

  /// In-flight state of a multi-packet injection: the packets, their
  /// precomputed switch-arrival times, and the sequence numbers reserved so
  /// execution order matches eager per-packet scheduling.
  struct Burst {
    int sw = -1;
    std::uint64_t seq_base = 0;
    std::size_t next = 0;
    std::vector<Packet> pkts;
    std::vector<Time> arrivals;
  };

  void arrive_at_switch(int sw, Packet&& pkt);
  void deliver(NodeId node, Packet&& pkt);
  void burst_step(std::unique_ptr<Burst> burst);

  sim::Engine& engine_;
  std::vector<Switch> switches_;
  std::vector<NodeAttach> node_attach_;
  Router router_;
  /// Flat (switch, dst) -> port table for static routing; empty when the
  /// routing mode is adaptive (per-packet router_ calls).
  std::vector<std::int32_t> static_routes_;

  /// Shared (Cluster) or privately owned registry, plus the instruments
  /// resolved once at construction — a record is one add through a
  /// cached pointer, no name lookups on the hot path.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_injected_;
  obs::Counter* c_delivered_;
  obs::Counter* c_hops_;
  obs::Counter* c_wire_bytes_;
  obs::Counter* c_drops_dead_node_;
  obs::Counter* c_route_cache_hits_;
  obs::Gauge* g_port_backlog_ps_;
  obs::Histogram* h_pkt_latency_ns_;
  std::int64_t inflight_ = 0;
};

}  // namespace rvma::net
