// Wire-level types shared by the fabric, NIC models, and protocol layers.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace rvma::net {

using NodeId = std::int32_t;
using MsgId = std::uint64_t;

/// Process id within a node — the PID half of the paper's NID/PID
/// addressing ("if remote process space targeting is desirable", §III-C).
using Pid = std::uint16_t;

/// Protocol header carried by every message/packet. The network treats it
/// as opaque; the RDMA / RVMA endpoint models interpret the fields. `kind`
/// encodes (protocol class << 8) | opcode so one NIC can host several
/// protocol endpoints; `dst_pid`/`src_pid` steer between processes
/// sharing a NIC.
struct WireHeader {
  std::uint32_t kind = 0;   ///< (proto << 8) | op
  Pid dst_pid = 0;          ///< target process on the destination node
  Pid src_pid = 0;          ///< originating process (reply address)
  std::uint64_t addr = 0;   ///< RVMA mailbox vaddr or RDMA remote address
  std::uint64_t offset = 0; ///< byte offset into the target buffer/window
  std::uint64_t imm = 0;    ///< immediate data / auxiliary scalar
  std::uint64_t imm2 = 0;   ///< second auxiliary scalar (lengths, epochs)
};

constexpr std::uint32_t proto_of(std::uint32_t kind) { return kind >> 8; }
constexpr std::uint32_t op_of(std::uint32_t kind) { return kind & 0xff; }
constexpr std::uint32_t make_kind(std::uint32_t proto, std::uint32_t op) {
  return (proto << 8) | op;
}

/// A message as handed to the NIC for transmission. The NIC segments it
/// into MTU-sized packets. `data`, when non-null, points at real payload
/// bytes owned by the sender; per RDMA/RVMA semantics the buffer must stay
/// valid until the operation completes. Timing-only workloads leave it
/// null.
struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  MsgId id = 0;
  std::uint64_t bytes = 0;
  WireHeader hdr;
  const std::byte* data = nullptr;
  /// Optional payload ownership: when the sender cannot keep its buffer
  /// alive for the transfer's duration, it hands a copy here and points
  /// `data` into it; the message (and all its packets) keep it alive.
  std::shared_ptr<const std::vector<std::byte>> owned;
  Time created_at = 0;
  /// Intrusive refcount managed by MsgRef; 0 while the Message is a plain
  /// value (not yet handed to a MsgRef). Non-atomic: an engine and every
  /// packet it owns live on one thread (sweep workers isolate engines).
  std::uint32_t pool_rc = 0;
};

/// Pooled, non-atomic refcounted handle to a shared Message descriptor.
///
/// Every packet of a message used to carry a std::shared_ptr<const
/// Message>: an atomic RMW per packet copy/destroy plus a control-block
/// allocation per message. The simulation is single-threaded per engine,
/// so the refcount is a plain integer, and Message slots recycle through a
/// thread_local free list (same pattern as sim::CallbackBlockPool) — zero
/// allocator traffic once the pool is warm. thread_local keeps sweep
/// workers from sharing (and racing on) a pool; a packet never migrates
/// off the thread its engine runs on.
class MsgRef {
 public:
  MsgRef() noexcept = default;
  MsgRef(const MsgRef& o) noexcept : m_(o.m_) {
    if (m_ != nullptr) ++m_->pool_rc;
  }
  MsgRef(MsgRef&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  MsgRef& operator=(const MsgRef& o) noexcept {
    if (this != &o) {
      reset();
      m_ = o.m_;
      if (m_ != nullptr) ++m_->pool_rc;
    }
    return *this;
  }
  MsgRef& operator=(MsgRef&& o) noexcept {
    if (this != &o) {
      reset();
      m_ = o.m_;
      o.m_ = nullptr;
    }
    return *this;
  }
  ~MsgRef() { reset(); }

  /// Move `msg` into a pooled slot and return the first reference to it.
  static MsgRef make(Message&& msg) {
    Message* m = acquire_slot();
    *m = std::move(msg);
    m->pool_rc = 1;
    return MsgRef(m);
  }

  void reset() noexcept {
    if (m_ != nullptr && --m_->pool_rc == 0) release_slot(m_);
    m_ = nullptr;
  }

  const Message* get() const noexcept { return m_; }
  const Message* operator->() const noexcept { return m_; }
  const Message& operator*() const noexcept { return *m_; }
  explicit operator bool() const noexcept { return m_ != nullptr; }

 private:
  explicit MsgRef(Message* m) noexcept : m_(m) {}

  static Message*& free_head() {
    // Free slots thread the list through Message::src (reinterpreted);
    // keep it simple with a parallel pointer stored in-place instead:
    thread_local Message* head = nullptr;
    return head;
  }
  static Message* acquire_slot() {
    Message*& head = free_head();
    if (head != nullptr) {
      Message* m = head;
      head = *reinterpret_cast<Message**>(m);
      return new (m) Message();
    }
    return new Message();
  }
  static void release_slot(Message* m) noexcept {
    m->~Message();  // drops `owned` payload before the slot idles
    Message*& head = free_head();
    *reinterpret_cast<Message**>(m) = head;
    head = m;
  }

  Message* m_ = nullptr;
};

/// Sentinel for Packet::res_seq: no sequence pair was reserved (adaptive
/// routing, or a packet rematerialized out of the express fast path).
inline constexpr std::uint64_t kNoResSeq = ~std::uint64_t{0};

/// Sentinel for Packet::res_seq on a packet handed across a shard
/// boundary: the pair reserved at injection indexes the SOURCE engine's
/// sequence space and is meaningless here, but the serial run would have
/// ordered the delivery and receive events by that pair — i.e. by the
/// injection instant. Delivery/rx therefore schedule with fresh local
/// sequence numbers ranked at Packet::injected_at, reproducing the serial
/// tie-break position (Engine tie-break model, sim/engine.hpp).
inline constexpr std::uint64_t kRemoteResSeq = ~std::uint64_t{0} - 1;

/// One packet on the wire. Packets of a message share the Message
/// descriptor; `offset`/`bytes` delimit this packet's slice of the payload.
struct Packet {
  NodeId src = -1;
  NodeId dst = -1;
  MsgRef msg;
  std::uint64_t offset = 0;  ///< payload offset within the message
  std::uint32_t bytes = 0;   ///< payload bytes in this packet
  std::uint32_t header_bytes = 32;
  std::uint32_t seq = 0;     ///< packet index within the message
  std::uint32_t total = 1;   ///< total packets in the message
  Time injected_at = 0;
  /// Sequence pair reserved at injection when static routes are installed:
  /// res_seq orders the delivery event, res_seq + 1 the NIC receive event.
  /// Reserved identically with the express path on or off, so tie-break
  /// order of all shared events matches between the two modes.
  std::uint64_t res_seq = kNoResSeq;
  std::uint16_t hops = 0;

  // Scratch routing state (e.g. dragonfly Valiant intermediate group).
  std::int32_t rt_aux = -1;
  bool rt_mid_done = false;

  std::uint64_t wire_bytes() const { return std::uint64_t{bytes} + header_bytes; }
};

/// Content tie-break key for packet events (Engine tie-break model,
/// sim/engine.hpp): equal-(time, rank) packet arbitrations order by
/// (source node, per-node message counter, packet index) — a function of
/// packet identity alone, never of scheduling history, so serial and
/// sharded runs arbitrate contending packets identically. Nonzero by
/// construction (src + 1), which keeps packet events distinct from plain
/// callbacks (tie 0) at the same (time, rank). Field widths: 22 bits of
/// node, 26 bits of message counter, 16 bits of packet index — wraps are
/// harmless unless two contenders alias on ALL THREE at one instant.
inline std::uint64_t packet_tie(const Packet& pkt) {
  const std::uint64_t counter =
      pkt.msg ? (pkt.msg->id & ((std::uint64_t{1} << 40) - 1)) : 0;
  return (static_cast<std::uint64_t>(pkt.src + 1) << 42) |
         ((counter & 0x3ffffff) << 16) | (pkt.seq & 0xffff);
}

}  // namespace rvma::net
