// Wire-level types shared by the fabric, NIC models, and protocol layers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"

namespace rvma::net {

using NodeId = std::int32_t;
using MsgId = std::uint64_t;

/// Process id within a node — the PID half of the paper's NID/PID
/// addressing ("if remote process space targeting is desirable", §III-C).
using Pid = std::uint16_t;

/// Protocol header carried by every message/packet. The network treats it
/// as opaque; the RDMA / RVMA endpoint models interpret the fields. `kind`
/// encodes (protocol class << 8) | opcode so one NIC can host several
/// protocol endpoints; `dst_pid`/`src_pid` steer between processes
/// sharing a NIC.
struct WireHeader {
  std::uint32_t kind = 0;   ///< (proto << 8) | op
  Pid dst_pid = 0;          ///< target process on the destination node
  Pid src_pid = 0;          ///< originating process (reply address)
  std::uint64_t addr = 0;   ///< RVMA mailbox vaddr or RDMA remote address
  std::uint64_t offset = 0; ///< byte offset into the target buffer/window
  std::uint64_t imm = 0;    ///< immediate data / auxiliary scalar
  std::uint64_t imm2 = 0;   ///< second auxiliary scalar (lengths, epochs)
};

constexpr std::uint32_t proto_of(std::uint32_t kind) { return kind >> 8; }
constexpr std::uint32_t op_of(std::uint32_t kind) { return kind & 0xff; }
constexpr std::uint32_t make_kind(std::uint32_t proto, std::uint32_t op) {
  return (proto << 8) | op;
}

/// A message as handed to the NIC for transmission. The NIC segments it
/// into MTU-sized packets. `data`, when non-null, points at real payload
/// bytes owned by the sender; per RDMA/RVMA semantics the buffer must stay
/// valid until the operation completes. Timing-only workloads leave it
/// null.
struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  MsgId id = 0;
  std::uint64_t bytes = 0;
  WireHeader hdr;
  const std::byte* data = nullptr;
  /// Optional payload ownership: when the sender cannot keep its buffer
  /// alive for the transfer's duration, it hands a copy here and points
  /// `data` into it; the message (and all its packets) keep it alive.
  std::shared_ptr<const std::vector<std::byte>> owned;
  Time created_at = 0;
};

/// One packet on the wire. Packets of a message share the Message
/// descriptor; `offset`/`bytes` delimit this packet's slice of the payload.
struct Packet {
  NodeId src = -1;
  NodeId dst = -1;
  std::shared_ptr<const Message> msg;
  std::uint64_t offset = 0;  ///< payload offset within the message
  std::uint32_t bytes = 0;   ///< payload bytes in this packet
  std::uint32_t header_bytes = 32;
  std::uint32_t seq = 0;     ///< packet index within the message
  std::uint32_t total = 1;   ///< total packets in the message
  Time injected_at = 0;
  std::uint16_t hops = 0;

  // Scratch routing state (e.g. dragonfly Valiant intermediate group).
  std::int32_t rt_aux = -1;
  bool rt_mid_done = false;

  std::uint64_t wire_bytes() const { return std::uint64_t{bytes} + header_bytes; }
};

}  // namespace rvma::net
