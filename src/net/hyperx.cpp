#include <cmath>

#include "net/topologies.hpp"

namespace rvma::net {

HyperXTopology::HyperXTopology(const NetworkConfig& config)
    : config_(config), conc_(config.concentration < 1 ? 1 : config.concentration) {
  l1_ = config.hx_l1;
  l2_ = config.hx_l2;
  if (l1_ == 0 || l2_ == 0) {
    const int want = (config.nodes_hint + conc_ - 1) / conc_;
    l1_ = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(want))));
    if (l1_ < 2) l1_ = 2;
    l2_ = (want + l1_ - 1) / l1_;
    if (l2_ < 2) l2_ = 2;
  }
  if (l1_ < 2) l1_ = 2;
  if (l2_ < 2) l2_ = 2;
}

void HyperXTopology::build(Fabric& fabric) {
  const Bandwidth xbar = config_.link.bw.scaled(config_.xbar_factor);
  // Long tier: dimension-1 links (the second lattice axis spans racks).
  LinkParams long_link = config_.link;
  if (config_.long_link_latency != 0) {
    long_link.latency = config_.long_link_latency;
  }
  // Pass 1 — one switch at a time, in id order, with ALL of its ports
  // (dim-0 peers, dim-1 peers, then conc_ ejection links): the fabric's
  // SoA port arrays require per-switch contiguous blocks. Local port
  // numbering is unchanged from the pre-SoA builder.
  for (int i = 0; i < l1_; ++i) {
    for (int j = 0; j < l2_; ++j) {
      const int sw = fabric.add_switch(config_.switch_latency, xbar);
      for (int p = 0; p < l1_ - 1; ++p) fabric.add_port(sw, config_.link);
      for (int p = 0; p < l2_ - 1; ++p) fabric.add_port(sw, long_link);
      for (int c = 0; c < conc_; ++c) {
        fabric.attach_node(sw, sw * conc_ + c, config_.link);
      }
    }
  }
  // Pass 2 — wiring only (no port creation).
  // Dimension 0: all-to-all among switches sharing j.
  for (int j = 0; j < l2_; ++j) {
    for (int i = 0; i < l1_; ++i) {
      for (int i2 = i + 1; i2 < l1_; ++i2) {
        fabric.connect(switch_id(i, j), dim0_port(i, i2),
                       switch_id(i2, j), dim0_port(i2, i));
      }
    }
  }
  // Dimension 1: all-to-all among switches sharing i.
  for (int i = 0; i < l1_; ++i) {
    for (int j = 0; j < l2_; ++j) {
      for (int j2 = j + 1; j2 < l2_; ++j2) {
        fabric.connect(switch_id(i, j), dim1_port(j, j2),
                       switch_id(i, j2), dim1_port(j2, j));
      }
    }
  }
}

TopologyFootprint HyperXTopology::footprint() const {
  const int switches = l1_ * l2_;
  return TopologyFootprint{switches, switches * ((l1_ - 1) + (l2_ - 1)),
                           switches * conc_};
}

int HyperXTopology::static_next_hop(int sw, NodeId dst) const {
  // Dimension-order (dim 0 first), as route(kStatic); dst's switch is
  // dst / conc_ (nodes are attached in switch-id order).
  const int dst_sw = static_cast<int>(dst) / conc_;
  const int i = sw / l2_, j = sw % l2_;
  const int di = dst_sw / l2_, dj = dst_sw % l2_;
  if (i != di) return dim0_port(i, di);
  if (j != dj) return dim1_port(j, dj);
  return -1;  // unreachable: dst attached here
}

int HyperXTopology::route(Fabric& fabric, int sw, Packet& pkt, Routing mode,
                          Rng&) {
  const int dst_sw = fabric.switch_of_node(pkt.dst);
  const int i = sw / l2_, j = sw % l2_;
  const int di = dst_sw / l2_, dj = dst_sw % l2_;

  const bool need0 = i != di;
  const bool need1 = j != dj;
  if (need0 && need1 && mode == Routing::kAdaptive) {
    const int p0 = dim0_port(i, di);
    const int p1 = dim1_port(j, dj);
    return fabric.port_backlog(sw, p0) <= fabric.port_backlog(sw, p1) ? p0 : p1;
  }
  if (need0) return dim0_port(i, di);  // static: dimension-order, dim 0 first
  if (need1) return dim1_port(j, dj);
  return -1;  // unreachable: dst attached here
}

}  // namespace rvma::net
