// Parallel executor for independent simulation jobs.
//
// The evaluation suite (Figures 7/8 motif grids, the validation sweep,
// the ablation benches) is a grid of self-contained (config -> result)
// simulations: each job builds its own Cluster/Engine, so nothing is
// shared between jobs but the process-wide trace/log sinks — which are
// now safe to share (Tracer::record emits whole lines atomically) or
// replaceable per engine (sim::Engine::set_tracer). This executor runs
// such grids across all cores with a small work-stealing thread pool and
// returns results indexed by job, so callers print tables in
// deterministic grid order no matter which worker finished what first.
//
// Determinism contract: jobs must not read or write process-global
// mutable state (seed every run from its grid coordinates, never from a
// shared RNG), and results are written to per-index slots — then the
// output is bit-identical to running the same jobs serially.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

namespace rvma::exec {

/// Worker count used for `jobs <= 0`: the hardware concurrency, at least 1.
int hardware_jobs();

class SweepExecutor {
 public:
  /// `jobs <= 0` selects hardware_jobs().
  explicit SweepExecutor(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Run fn(i) for every i in [0, n) across min(jobs, n) workers and block
  /// until all jobs finished. A throwing job stores its exception at its
  /// index and does not affect the other jobs. With one effective worker
  /// (jobs()==1 or n<=1) everything runs inline on the calling thread, in
  /// index order — the serial baseline path spawns no threads at all.
  ///
  /// Returns the per-index exceptions; entry i is null when job i
  /// succeeded. The vector is empty when n == 0.
  std::vector<std::exception_ptr> run(
      std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  int jobs_ = 1;
};

/// Map [0, n) through `fn` with `jobs` workers and return the results in
/// index order. R must be default-constructible and movable. The first
/// job exception (lowest index) is rethrown after all jobs finished.
template <typename R, typename Fn>
std::vector<R> sweep_map(int jobs, std::size_t n, Fn&& fn) {
  std::vector<R> out(n);
  SweepExecutor executor(jobs);
  auto errors =
      executor.run(n, [&](std::size_t i) { out[i] = fn(i); });
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return out;
}

}  // namespace rvma::exec
