#include "exec/sweep_executor.hpp"

#include <deque>
#include <mutex>
#include <thread>

namespace rvma::exec {

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepExecutor::SweepExecutor(int jobs)
    : jobs_(jobs <= 0 ? hardware_jobs() : jobs) {}

namespace {

/// One worker's job queue. Owners pop from the front, thieves steal from
/// the back; simulation jobs are milliseconds to seconds long, so a plain
/// mutex per deque costs nothing measurable next to the work itself.
struct WorkQueue {
  std::mutex mu;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }

  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }
};

}  // namespace

std::vector<std::exception_ptr> SweepExecutor::run(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::exception_ptr> errors(n);
  if (n == 0) return errors;

  auto run_one = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(n, static_cast<std::size_t>(jobs_)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return errors;
  }

  // Deal jobs round-robin so each worker starts with a spread of grid
  // coordinates (neighboring cells have correlated cost); all work is
  // enqueued before any worker starts, so an empty sweep of every queue
  // means the grid is done — no condition variables needed.
  std::vector<WorkQueue> queues(workers);
  for (std::size_t i = 0; i < n; ++i) {
    queues[i % workers].jobs.push_back(i);
  }

  auto worker_loop = [&](int self) {
    std::size_t job;
    for (;;) {
      if (queues[self].pop_front(job)) {
        run_one(job);
        continue;
      }
      bool stole = false;
      for (int k = 1; k < workers; ++k) {
        if (queues[(self + k) % workers].steal_back(job)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;  // every queue drained
      run_one(job);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();
  return errors;
}

}  // namespace rvma::exec
