#include "obs/sampler.hpp"

#include <algorithm>
#include <map>

namespace rvma::obs {

void Sampler::add_gauge(std::string_view name, Provider fn) {
  providers_.emplace_back(std::string(name), std::move(fn));
  column_providers_.clear();  // re-bind on next sample
}

void Sampler::enable(Time period) {
  period_ = period;
  if (period_ == 0) {
    next_due_ = kTimeInfinity;
    return;
  }
  // First boundary strictly after time 0: time-0 state is all zeros and
  // every run has it; sampling starts once the simulation is moving.
  next_due_ = period_;
  series_.period = period_;
}

void Sampler::bind_columns() {
  // Deterministic column order: unique provider names, sorted.
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    by_name[providers_[i].first].push_back(i);
  }
  series_.columns.clear();
  column_providers_.clear();
  for (auto& [name, indices] : by_name) {
    series_.columns.push_back(name);
    column_providers_.push_back(std::move(indices));
  }
}

std::vector<std::int64_t> Sampler::sample_row() {
  if (column_providers_.empty() && !providers_.empty()) bind_columns();
  std::vector<std::int64_t> row;
  row.reserve(column_providers_.size());
  for (std::size_t c = 0; c < column_providers_.size(); ++c) {
    std::int64_t v = 0;
    for (std::size_t i : column_providers_[c]) v += providers_[i].second();
    // Mirror into the registry gauge so snapshots carry the sampled
    // high-water marks alongside the timeseries.
    registry_->gauge(series_.columns[c]).set(v);
    row.push_back(v);
  }
  return row;
}

Time Sampler::on_tick(Time now) {
  if (period_ == 0) return kTimeInfinity;
  if (now < next_due_) return next_due_;
  // The engine was quiescent since the previous event, so every boundary
  // in (last_due, now] observes the same state: compute the row once and
  // stamp it at each crossed boundary.
  const std::vector<std::int64_t> row = sample_row();
  while (next_due_ <= now) {
    series_.times.push_back(next_due_);
    series_.rows.push_back(row);
    next_due_ += period_;
  }
  return next_due_;
}

Timeseries Sampler::take_series() {
  Timeseries out = std::move(series_);
  series_ = Timeseries{};
  series_.period = period_;
  // Rows move out with the series; keep the column binding for reuse.
  if (!column_providers_.empty()) series_.columns = out.columns;
  return out;
}

}  // namespace rvma::obs
