// Binary flight recorder: a fixed-capacity ring of POD span records.
//
// Every message moving through the simulator leaves a trail of lifecycle
// instants — post, tx-queue admission, fabric injection, express commit,
// delivery, rx dispatch, mailbox match, counted completion. The recorder
// captures those instants as 32-byte POD records into a preallocated ring:
// zero steady-state allocations, O(1) per record, and — critically — zero
// feedback into the simulation. Records carry explicit simulated times
// (never wall clock), the recorder never schedules events, and no
// simulation code branches on whether it is armed, so enabling it is
// bit-identity-preserving: table and metrics output are byte-identical
// recorder on vs off, the same discipline as `--no-express` and
// jobs=1-vs-N (enforced by a run_bench.sh gate).
//
// Access pattern mirrors the Tracer (DESIGN §7): each Engine holds an
// optional `FlightRecorder*`, hot paths guard with the `RVMA_FREC` macro
// (one predictable branch when disarmed), and each shard of a sharded
// cluster owns its own recorder so record() is single-threaded per ring.
//
// Binary dump format ("RVFR1", DESIGN §14): a fixed header, then one
// section per shard (shard id, dropped count, record count, records in
// chronological order). Readers merge sections by (t, shard, index),
// which is deterministic because each shard's ring is already sorted by
// simulated time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rvma::obs {

/// Lifecycle instants recorded per message (see DESIGN §14 span model).
enum class SpanKind : std::uint32_t {
  kMsgPost = 1,         ///< host posts the message at the NIC; aux = bytes
  kTxQueue = 2,         ///< admission stalled: message enters the NIC
                        ///  tx queue; aux = queue depth at enqueue
  kTxInject = 3,        ///< packet handed to the injection link; aux = seq
  kExpressCommit = 4,   ///< packet committed to the express cut-through
                        ///  path at injection; aux = seq
  kPktDeliver = 5,      ///< packet delivered at the destination NIC edge;
                        ///  aux = seq
  kRxDispatch = 6,      ///< rx pipeline done, packet dispatched to the
                        ///  protocol handler; aux = seq
  kMbMatch = 7,         ///< last packet of the message matched its
                        ///  mailbox; aux = mailbox vaddr
  kCompletion = 8,      ///< counted completion fired (key = buffer vaddr,
                        ///  not message id); aux = completion latency, ps
};

/// One 32-byte POD record. `key` is the message identity (`Message::id`,
/// i.e. (src_node << 40) | per-sender counter) for all kinds except
/// kCompletion, where it is the completed buffer's vaddr.
struct SpanRecord {
  Time t = 0;                 ///< simulated instant, ps
  std::uint64_t key = 0;      ///< message id (or vaddr for completions)
  std::int64_t aux = 0;       ///< kind-specific payload (see SpanKind)
  std::uint32_t kind = 0;     ///< SpanKind
  std::int32_t node = -1;     ///< node where the instant happened
};
static_assert(sizeof(SpanRecord) == 32, "SpanRecord must stay POD-packed");

/// Fixed-capacity single-writer ring of SpanRecords. One per engine
/// (shard); never shared across threads.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// O(1), no allocation: overwrite-oldest when full.
  void record(Time t, SpanKind kind, std::uint64_t key, std::int32_t node,
              std::int64_t aux) {
    SpanRecord& r = ring_[head_];
    r.t = t;
    r.key = key;
    r.aux = aux;
    r.kind = static_cast<std::uint32_t>(kind);
    r.node = node;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Records oldest-first (chronological: ring order == record order).
  std::vector<SpanRecord> snapshot() const;

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

 private:
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;      ///< next write slot
  std::size_t size_ = 0;      ///< live records (<= capacity)
  std::uint64_t dropped_ = 0; ///< overwritten-oldest count
};

/// One shard's section of a decoded dump.
struct FlightShard {
  std::uint32_t shard = 0;
  std::uint64_t dropped = 0;
  std::vector<SpanRecord> records;  ///< chronological within the shard
};

/// A decoded flight-recorder dump (all shards of one run).
struct FlightDump {
  std::vector<FlightShard> shards;
  std::uint64_t total_records() const;
  /// All records merged deterministically by (t, shard, index).
  std::vector<SpanRecord> merged() const;
};

/// Write a multi-shard dump ("RVFR1" format). Returns false on I/O error.
bool write_flight_file(
    const std::string& path,
    const std::vector<const FlightRecorder*>& shards,
    std::string* error = nullptr);

/// Read a dump written by write_flight_file. Returns false (and sets
/// *error) on missing file, bad magic, or truncated sections.
bool read_flight_file(const std::string& path, FlightDump* out,
                      std::string* error = nullptr);

/// Human-readable name for a span kind ("post", "tx_inject", ...).
const char* span_kind_name(std::uint32_t kind);

}  // namespace rvma::obs
