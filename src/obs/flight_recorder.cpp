#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>

namespace rvma::obs {
namespace {

// "RVFR1" dump layout (all fields little-endian host order, fixed width):
//   char     magic[8]   = "RVFR1\0\0\0"
//   u32      version    = 1
//   u32      shard_count
// then per shard:
//   u32      shard_id
//   u32      reserved   = 0
//   u64      dropped
//   u64      record_count
//   SpanRecord[record_count]   (32 bytes each, chronological)
constexpr char kMagic[8] = {'R', 'V', 'F', 'R', '1', '\0', '\0', '\0'};
constexpr std::uint32_t kVersion = 1;

bool write_all(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool read_all(std::FILE* f, void* p, std::size_t n) {
  return std::fread(p, 1, n, f) == n;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<SpanRecord> FlightRecorder::snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightDump::total_records() const {
  std::uint64_t n = 0;
  for (const FlightShard& s : shards) n += s.records.size();
  return n;
}

std::vector<SpanRecord> FlightDump::merged() const {
  struct Tagged {
    SpanRecord rec;
    std::uint32_t shard;
    std::uint64_t index;
  };
  std::vector<Tagged> all;
  all.reserve(total_records());
  for (const FlightShard& s : shards) {
    for (std::size_t i = 0; i < s.records.size(); ++i) {
      all.push_back({s.records[i], s.shard, i});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.rec.t != b.rec.t) return a.rec.t < b.rec.t;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });
  std::vector<SpanRecord> out;
  out.reserve(all.size());
  for (const Tagged& t : all) out.push_back(t.rec);
  return out;
}

bool write_flight_file(const std::string& path,
                       const std::vector<const FlightRecorder*>& shards,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "flight recorder: cannot open " + path;
    return false;
  }
  bool ok = write_all(f, kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  const std::uint32_t count = static_cast<std::uint32_t>(shards.size());
  ok = ok && write_all(f, &version, sizeof(version));
  ok = ok && write_all(f, &count, sizeof(count));
  for (std::uint32_t k = 0; ok && k < count; ++k) {
    const FlightRecorder& rec = *shards[k];
    const std::uint32_t shard_id = k;
    const std::uint32_t reserved = 0;
    const std::uint64_t dropped = rec.dropped();
    const std::vector<SpanRecord> records = rec.snapshot();
    const std::uint64_t n = records.size();
    ok = ok && write_all(f, &shard_id, sizeof(shard_id));
    ok = ok && write_all(f, &reserved, sizeof(reserved));
    ok = ok && write_all(f, &dropped, sizeof(dropped));
    ok = ok && write_all(f, &n, sizeof(n));
    if (ok && n > 0) {
      ok = write_all(f, records.data(), records.size() * sizeof(SpanRecord));
    }
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "flight recorder: write failed: " + path;
  return ok;
}

bool read_flight_file(const std::string& path, FlightDump* out,
                      std::string* error) {
  out->shards.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "flight recorder: cannot read " + path;
    return false;
  }
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  bool ok = read_all(f, magic, sizeof(magic)) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            read_all(f, &version, sizeof(version)) && version == kVersion &&
            read_all(f, &count, sizeof(count));
  for (std::uint32_t k = 0; ok && k < count; ++k) {
    FlightShard shard;
    std::uint32_t reserved = 0;
    std::uint64_t n = 0;
    ok = read_all(f, &shard.shard, sizeof(shard.shard)) &&
         read_all(f, &reserved, sizeof(reserved)) &&
         read_all(f, &shard.dropped, sizeof(shard.dropped)) &&
         read_all(f, &n, sizeof(n));
    if (ok) {
      shard.records.resize(n);
      ok = n == 0 ||
           read_all(f, shard.records.data(), n * sizeof(SpanRecord));
    }
    if (ok) out->shards.push_back(std::move(shard));
  }
  std::fclose(f);
  if (!ok) {
    out->shards.clear();
    if (error != nullptr) {
      *error = "flight recorder: bad or truncated dump: " + path;
    }
  }
  return ok;
}

const char* span_kind_name(std::uint32_t kind) {
  switch (static_cast<SpanKind>(kind)) {
    case SpanKind::kMsgPost: return "post";
    case SpanKind::kTxQueue: return "tx_queue";
    case SpanKind::kTxInject: return "tx_inject";
    case SpanKind::kExpressCommit: return "express_commit";
    case SpanKind::kPktDeliver: return "pkt_deliver";
    case SpanKind::kRxDispatch: return "rx_dispatch";
    case SpanKind::kMbMatch: return "mb_match";
    case SpanKind::kCompletion: return "completion";
  }
  return "unknown";
}

}  // namespace rvma::obs
