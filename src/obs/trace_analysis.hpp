// Offline analysis of RVMA_TRACE JSONL files.
//
// The engine behind `rvma_metrics trace`. Records are
// grouped by the "eng" field Engine::set_tracer stamps on every line, so
// a trace file collecting several engines through one global sink (e.g. a
// serial grid run) no longer double-counts: latency distributions, drop
// tallies, and completion counts are kept per engine.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace rvma::obs {

/// Aggregates for the records of one engine (one "eng" value).
struct EngineTraceStats {
  std::map<std::string, std::uint64_t> event_counts;
  std::map<std::int64_t, std::uint64_t> deliveries_per_node;
  /// Drop reasons; string-valued "reason" fields verbatim, legacy numeric
  /// codes rendered as "code <N>".
  std::map<std::string, std::uint64_t> drops_per_reason;
  Samples pkt_latency_us;  ///< pkt_deliver lat_ps (exact percentiles)
  RunningStat hops;
  /// Latency breakdown per event type, from any record carrying a lat_ps
  /// field (pkt_deliver network latency, rvma_complete buffer latency...).
  std::map<std::string, Histogram> event_latency_ns;
  std::uint64_t completions = 0;
  std::uint64_t soft_completions = 0;
  Time span = 0;  ///< max record timestamp
};

struct TraceAnalysis {
  /// Keyed by "eng" field; records without one land under engine 0.
  std::map<std::int64_t, EngineTraceStats> engines;
  std::uint64_t lines = 0;
  std::uint64_t skipped = 0;  ///< unparseable / non-record lines

  Time span() const {
    Time s = 0;
    for (const auto& [id, e] : engines) s = std::max(s, e.span);
    return s;
  }
};

/// Parse a JSONL trace file. Returns false only when the file cannot be
/// opened (malformed lines are counted in `skipped`, not fatal).
bool analyze_trace_file(const std::string& path, TraceAnalysis* out,
                        std::string* error);

/// Triage report: per-engine event counts, packet latency distribution,
/// per-event latency breakdown, completions, drops, delivery spread.
void print_trace_analysis(const TraceAnalysis& analysis,
                          const std::string& path, std::FILE* out);

}  // namespace rvma::obs
