#include "obs/metrics.hpp"

#include <algorithm>

namespace rvma::obs {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;

  // Merge the two sorted sparse bucket lists.
  std::vector<std::pair<std::int32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Mass-based rank: the p-th percentile cuts off p% of the recorded
  // values. Interpolating linearly within the containing bucket makes the
  // result monotone in p (bucket boundaries agree from both sides).
  const double target = p / 100.0 * static_cast<double>(count);
  double cum = 0.0;
  for (const auto& [index, n] : buckets) {
    const double c = static_cast<double>(n);
    if (target <= cum + c) {
      const double floor = static_cast<double>(Histogram::bucket_floor(index));
      const double width = static_cast<double>(Histogram::bucket_width(index));
      double v = floor + (target - cum) / c * width;
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    cum += c;
  }
  return static_cast<double>(max);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min();
  snap.max = max_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      snap.buckets.emplace_back(static_cast<std::int32_t>(i), buckets_[i]);
    }
  }
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.high_water();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.snapshot();
  return snap;
}

}  // namespace rvma::obs
