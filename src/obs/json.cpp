#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace rvma::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // \uXXXX: decode BMP code points to UTF-8; enough for the
            // ASCII-only documents this repo writes.
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        if (c == '.' || c == 'e' || c == 'E') is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    // std::from_chars, not strtoll/strtod: locale-independent (a comma-
    // decimal LC_NUMERIC must not change what "2.5" parses to — the
    // byte-stability contract of rvma-metrics-v1 documents) and no errno.
    std::string_view token = text_.substr(start, pos_ - start);
    const char* first = token.data();
    const char* last = token.data() + token.size();
    // JSON proper forbids a leading '+' but this parser has always taken
    // it; from_chars rejects it, so skip it explicitly.
    if (first != last && *first == '+') ++first;
    if (first == last) return fail("bad number");
    out->kind = JsonValue::Kind::kNumber;
    if (is_int) {
      long long v = 0;
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc{} && ptr == last) {
        out->integer = v;
        out->is_integer = true;
        out->number = static_cast<double>(v);
        return true;
      }
      // Fall through to double on overflow.
    }
    auto [ptr, ec] = std::from_chars(first, last, out->number);
    if (ec != std::errc{} || ptr != last) return fail("bad number");
    out->is_integer = false;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).parse(out);
}

void json_append_escaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
        break;
    }
  }
  out->push_back('"');
}

}  // namespace rvma::obs
