// Offline analysis over flight-recorder dumps (tools/rvma_trace).
//
// Takes a decoded FlightDump and reconstructs per-message lifecycle spans
// (post -> tx-queue -> inject/express -> deliver -> rx dispatch -> mailbox
// match), then renders them as:
//   * Chrome trace-event / Perfetto JSON ("X" complete events, one
//     process per shard and one thread track per node), loadable at
//     https://ui.perfetto.dev,
//   * a per-message critical-path breakdown (host vs wire vs rx vs
//     mailbox time) with p50/p99/max and exemplar message ids,
//   * a per-kind / per-shard record summary.
//
// All of this runs offline over the dump; nothing here is linked into
// the simulation hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace rvma::obs {

/// One message's reconstructed lifecycle (all times simulated ps). An
/// instant is meaningful only when its `seen` bit is set — rings may wrap
/// past early spans, and t == 0 is a legitimate simulated time.
struct MessagePath {
  /// Which lifecycle instants the dump actually contained.
  enum Seen : unsigned {
    kSeenPost = 1u << 0,
    kSeenTxQueue = 1u << 1,
    kSeenInject = 1u << 2,
    kSeenDeliver = 1u << 3,
    kSeenRx = 1u << 4,
    kSeenMatch = 1u << 5,
  };

  std::uint64_t key = 0;       ///< Message::id
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::uint32_t src_shard = 0; ///< shard that recorded the tx-side spans
  std::uint32_t dst_shard = 0; ///< shard that recorded the rx-side spans
  std::int64_t bytes = 0;
  std::uint32_t packets = 0;   ///< injected packet count observed
  bool express = false;        ///< any packet took the express path
  unsigned seen = 0;           ///< OR of Seen bits
  Time post_t = 0;
  Time tx_queue_t = 0;
  Time first_inject_t = 0;
  Time last_inject_t = 0;
  Time first_deliver_t = 0;
  Time last_deliver_t = 0;
  Time last_rx_t = 0;
  Time match_t = 0;

  bool has(Seen s) const { return (seen & s) != 0; }

  /// Segment durations (ps); 0 when either endpoint is unobserved.
  Time host_ps() const;   ///< post -> first injection
  Time wire_ps() const;   ///< first injection -> last delivery
  Time rx_ps() const;     ///< last delivery -> last rx dispatch
  Time match_ps() const;  ///< last rx dispatch -> mailbox match
  Time total_ps() const;  ///< post -> mailbox match
  bool complete() const { return has(kSeenPost) && has(kSeenMatch); }
};

/// Messages sorted by post time (ties: key). Incomplete paths (ring
/// wrapped past some instants) are retained with the missing times at 0.
std::vector<MessagePath> build_message_paths(const FlightDump& dump);

/// Percentile summary of one critical-path segment, with the message id
/// that realised each quantile (exemplars for drill-down).
struct SegmentStats {
  std::string name;
  std::uint64_t count = 0;
  Time p50 = 0, p99 = 0, max = 0;
  std::uint64_t p50_msg = 0, p99_msg = 0, max_msg = 0;
};

struct CritPathReport {
  std::uint64_t messages = 0;   ///< complete paths analysed
  std::uint64_t partial = 0;    ///< paths with missing instants (skipped)
  std::vector<SegmentStats> segments;  ///< host, wire, rx, match, total
};

CritPathReport build_critpath(const std::vector<MessagePath>& paths);

/// Render the report as a fixed-width text table.
std::string format_critpath(const CritPathReport& report);

/// Chrome trace-event JSON for the whole dump. One "process" per shard,
/// one "thread" track per node; spans are "X" complete events (ts/dur in
/// microseconds of simulated time), completions are instant events.
std::string perfetto_json(const FlightDump& dump);

/// Per-shard and per-kind record counts, dropped totals, time range.
std::string format_flight_summary(const FlightDump& dump);

}  // namespace rvma::obs
