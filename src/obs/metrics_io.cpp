#include "obs/metrics_io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace rvma::obs {

namespace {

void append_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void append_i64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// %.6g is locale-independent here: the repo never calls setlocale, so the
// C locale's '.' decimal point is guaranteed and output stays byte-stable.
void append_double(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void append_key(std::string* out, std::string_view key) {
  json_append_escaped(out, key);
  out->append(":");
}

void append_histogram(std::string* out, const HistogramSnapshot& h) {
  out->append("{");
  append_key(out, "count");
  append_u64(out, h.count);
  out->append(",");
  append_key(out, "sum");
  append_u64(out, h.sum);
  out->append(",");
  append_key(out, "min");
  append_u64(out, h.min);
  out->append(",");
  append_key(out, "max");
  append_u64(out, h.max);
  out->append(",");
  append_key(out, "mean");
  append_double(out, h.mean());
  out->append(",");
  append_key(out, "p50");
  append_double(out, h.percentile(50.0));
  out->append(",");
  append_key(out, "p90");
  append_double(out, h.percentile(90.0));
  out->append(",");
  append_key(out, "p99");
  append_double(out, h.percentile(99.0));
  out->append(",");
  append_key(out, "buckets");
  out->append("[");
  bool first = true;
  for (const auto& [index, n] : h.buckets) {
    if (!first) out->append(",");
    first = false;
    out->append("[");
    append_i64(out, index);
    out->append(",");
    append_u64(out, n);
    out->append("]");
  }
  out->append("]}");
}

void append_timeseries(std::string* out, const Timeseries& ts) {
  out->append("{");
  append_key(out, "label");
  json_append_escaped(out, ts.label);
  out->append(",");
  append_key(out, "period_ps");
  append_u64(out, ts.period);
  out->append(",");
  append_key(out, "columns");
  out->append("[");
  for (std::size_t c = 0; c < ts.columns.size(); ++c) {
    if (c != 0) out->append(",");
    json_append_escaped(out, ts.columns[c]);
  }
  out->append("],");
  append_key(out, "times");
  out->append("[");
  for (std::size_t i = 0; i < ts.times.size(); ++i) {
    if (i != 0) out->append(",");
    append_u64(out, ts.times[i]);
  }
  out->append("],");
  append_key(out, "rows");
  out->append("[");
  for (std::size_t i = 0; i < ts.rows.size(); ++i) {
    if (i != 0) out->append(",");
    out->append("[");
    for (std::size_t c = 0; c < ts.rows[i].size(); ++c) {
      if (c != 0) out->append(",");
      append_i64(out, ts.rows[i][c]);
    }
    out->append("]");
  }
  out->append("]}");
}

/// a vs b differ beyond the relative tolerance (0 = any difference).
bool differs(double a, double b, double rel_tol) {
  if (a == b) return false;
  const double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom == 0.0) return false;
  return std::fabs(a - b) > rel_tol * denom;
}

}  // namespace

std::string to_json(const MetricsDoc& doc) {
  std::string out;
  out.reserve(4096);
  out.append("{\n");
  out.append("\"schema\":");
  json_append_escaped(&out, doc.schema);
  out.append(",\n\"tool\":");
  json_append_escaped(&out, doc.tool);
  out.append(",\n\"meta\":{");
  {
    bool first = true;
    for (const auto& [k, v] : doc.meta) {
      if (!first) out.append(",");
      first = false;
      append_key(&out, k);
      json_append_escaped(&out, v);
    }
  }
  out.append("},\n\"counters\":{");
  {
    bool first = true;
    for (const auto& [name, v] : doc.totals.counters) {
      if (!first) out.append(",");
      first = false;
      out.append("\n");
      append_key(&out, name);
      append_u64(&out, v);
    }
  }
  out.append("},\n\"gauges\":{");
  {
    bool first = true;
    for (const auto& [name, v] : doc.totals.gauges) {
      if (!first) out.append(",");
      first = false;
      out.append("\n");
      append_key(&out, name);
      append_i64(&out, v);
    }
  }
  out.append("},\n\"histograms\":{");
  {
    bool first = true;
    for (const auto& [name, h] : doc.totals.histograms) {
      if (!first) out.append(",");
      first = false;
      out.append("\n");
      append_key(&out, name);
      append_histogram(&out, h);
    }
  }
  out.append("},\n\"timeseries\":[");
  for (std::size_t i = 0; i < doc.timeseries.size(); ++i) {
    if (i != 0) out.append(",");
    out.append("\n");
    append_timeseries(&out, doc.timeseries[i]);
  }
  out.append("]\n}\n");
  return out;
}

bool write_metrics_file(const MetricsDoc& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                 path.c_str());
    return false;
  }
  const std::string body = to_json(doc);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "error: short write to metrics file '%s'\n",
                 path.c_str());
  }
  return ok;
}

namespace {

bool histogram_from_json(const JsonValue& v, HistogramSnapshot* out) {
  if (!v.is_object()) return false;
  const JsonValue* count = v.find("count");
  if (count == nullptr || !count->is_number()) return false;
  out->count = count->as_u64();
  if (const JsonValue* f = v.find("sum"); f != nullptr) out->sum = f->as_u64();
  if (const JsonValue* f = v.find("min"); f != nullptr) out->min = f->as_u64();
  if (const JsonValue* f = v.find("max"); f != nullptr) out->max = f->as_u64();
  const JsonValue* buckets = v.find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return false;
  for (const JsonValue& b : buckets->array) {
    if (!b.is_array() || b.array.size() != 2) return false;
    out->buckets.emplace_back(static_cast<std::int32_t>(b.array[0].as_i64()),
                              b.array[1].as_u64());
  }
  return true;
}

bool timeseries_from_json(const JsonValue& v, Timeseries* out) {
  if (!v.is_object()) return false;
  if (const JsonValue* f = v.find("label"); f != nullptr && f->is_string()) {
    out->label = f->string;
  }
  if (const JsonValue* f = v.find("period_ps"); f != nullptr) {
    out->period = f->as_u64();
  }
  const JsonValue* columns = v.find("columns");
  const JsonValue* times = v.find("times");
  const JsonValue* rows = v.find("rows");
  if (columns == nullptr || !columns->is_array() || times == nullptr ||
      !times->is_array() || rows == nullptr || !rows->is_array()) {
    return false;
  }
  for (const JsonValue& c : columns->array) {
    if (!c.is_string()) return false;
    out->columns.push_back(c.string);
  }
  for (const JsonValue& t : times->array) out->times.push_back(t.as_u64());
  for (const JsonValue& r : rows->array) {
    if (!r.is_array()) return false;
    std::vector<std::int64_t> row;
    row.reserve(r.array.size());
    for (const JsonValue& cell : r.array) row.push_back(cell.as_i64());
    out->rows.push_back(std::move(row));
  }
  return out->times.size() == out->rows.size();
}

}  // namespace

bool metrics_doc_from_json(const JsonValue& root, MetricsDoc* out,
                           std::string* error) {
  const auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!root.is_object()) return fail("document is not a JSON object");
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return fail("missing \"schema\" field");
  }
  out->schema = schema->string;
  if (const JsonValue* f = root.find("tool"); f != nullptr && f->is_string()) {
    out->tool = f->string;
  }
  if (const JsonValue* f = root.find("meta"); f != nullptr && f->is_object()) {
    for (const auto& [k, v] : f->object) {
      if (v.is_string()) out->meta[k] = v.string;
    }
  }
  if (const JsonValue* f = root.find("counters");
      f != nullptr && f->is_object()) {
    for (const auto& [k, v] : f->object) {
      if (!v.is_number()) return fail("non-numeric counter value");
      out->totals.counters[k] = v.as_u64();
    }
  }
  if (const JsonValue* f = root.find("gauges"); f != nullptr && f->is_object()) {
    for (const auto& [k, v] : f->object) {
      if (!v.is_number()) return fail("non-numeric gauge value");
      out->totals.gauges[k] = v.as_i64();
    }
  }
  if (const JsonValue* f = root.find("histograms");
      f != nullptr && f->is_object()) {
    for (const auto& [k, v] : f->object) {
      HistogramSnapshot h;
      if (!histogram_from_json(v, &h)) return fail("malformed histogram");
      out->totals.histograms[k] = std::move(h);
    }
  }
  if (const JsonValue* f = root.find("timeseries");
      f != nullptr && f->is_array()) {
    for (const JsonValue& v : f->array) {
      Timeseries ts;
      if (!timeseries_from_json(v, &ts)) return fail("malformed timeseries");
      out->timeseries.push_back(std::move(ts));
    }
  }
  return true;
}

bool read_metrics_file(const std::string& path, MetricsDoc* out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::string body;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  JsonValue root;
  if (!json_parse(body, &root, error)) return false;
  return metrics_doc_from_json(root, out, error);
}

void print_metrics_summary(const MetricsDoc& doc, std::FILE* out) {
  std::fprintf(out, "metrics: %s (schema %s)\n", doc.tool.c_str(),
               doc.schema.c_str());
  for (const auto& [k, v] : doc.meta) {
    std::fprintf(out, "  %s = %s\n", k.c_str(), v.c_str());
  }
  if (!doc.totals.counters.empty()) {
    std::fprintf(out, "\ncounters:\n");
    Table t({"name", "value"});
    for (const auto& [name, v] : doc.totals.counters) {
      t.add_row({name, std::to_string(v)});
    }
    t.print(out);
  }
  if (!doc.totals.gauges.empty()) {
    std::fprintf(out, "\ngauges (high-water):\n");
    Table t({"name", "high_water"});
    for (const auto& [name, v] : doc.totals.gauges) {
      t.add_row({name, std::to_string(v)});
    }
    t.print(out);
  }
  if (!doc.totals.histograms.empty()) {
    std::fprintf(out, "\nhistograms:\n");
    Table t({"name", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : doc.totals.histograms) {
      t.add_row({name, std::to_string(h.count),
                 Table::stat_num(h.count, h.mean()),
                 Table::stat_num(h.count, h.percentile(50.0)),
                 Table::stat_num(h.count, h.percentile(90.0)),
                 Table::stat_num(h.count, h.percentile(99.0)),
                 Table::stat_num(h.count, static_cast<double>(h.max))});
    }
    t.print(out);
  }
  if (!doc.timeseries.empty()) {
    std::fprintf(out, "\ntimeseries (%zu runs):\n", doc.timeseries.size());
    Table t({"label", "rows", "period_us", "columns"});
    for (const Timeseries& ts : doc.timeseries) {
      t.add_row({ts.label, std::to_string(ts.rows.size()),
                 Table::num(to_us(ts.period)),
                 std::to_string(ts.columns.size())});
    }
    t.print(out);
  }
}

int print_metrics_diff(const MetricsDoc& a, const MetricsDoc& b,
                       const DiffOptions& opts, std::FILE* out) {
  int flagged = 0;
  const auto flag = [&flagged, out](const char* kind, const std::string& name,
                                    const std::string& va,
                                    const std::string& vb) {
    ++flagged;
    std::fprintf(out, "  %-9s %-40s %16s -> %16s\n", kind, name.c_str(),
                 va.c_str(), vb.c_str());
  };

  std::fprintf(out, "diff: %s vs %s (rel_tol=%g)\n", a.tool.c_str(),
               b.tool.c_str(), opts.rel_tol);

  std::set<std::string> names;
  for (const auto& [k, v] : a.totals.counters) names.insert(k);
  for (const auto& [k, v] : b.totals.counters) names.insert(k);
  for (const std::string& name : names) {
    const auto ia = a.totals.counters.find(name);
    const auto ib = b.totals.counters.find(name);
    if (ia == a.totals.counters.end()) {
      flag("counter", name, "(absent)", std::to_string(ib->second));
    } else if (ib == b.totals.counters.end()) {
      flag("counter", name, std::to_string(ia->second), "(absent)");
    } else if (differs(static_cast<double>(ia->second),
                       static_cast<double>(ib->second), opts.rel_tol)) {
      flag("counter", name, std::to_string(ia->second),
           std::to_string(ib->second));
    }
  }

  names.clear();
  for (const auto& [k, v] : a.totals.gauges) names.insert(k);
  for (const auto& [k, v] : b.totals.gauges) names.insert(k);
  for (const std::string& name : names) {
    const auto ia = a.totals.gauges.find(name);
    const auto ib = b.totals.gauges.find(name);
    if (ia == a.totals.gauges.end()) {
      flag("gauge", name, "(absent)", std::to_string(ib->second));
    } else if (ib == b.totals.gauges.end()) {
      flag("gauge", name, std::to_string(ia->second), "(absent)");
    } else if (differs(static_cast<double>(ia->second),
                       static_cast<double>(ib->second), opts.rel_tol)) {
      flag("gauge", name, std::to_string(ia->second),
           std::to_string(ib->second));
    }
  }

  names.clear();
  for (const auto& [k, v] : a.totals.histograms) names.insert(k);
  for (const auto& [k, v] : b.totals.histograms) names.insert(k);
  for (const std::string& name : names) {
    const auto ia = a.totals.histograms.find(name);
    const auto ib = b.totals.histograms.find(name);
    if (ia == a.totals.histograms.end()) {
      flag("histogram", name, "(absent)",
           std::to_string(ib->second.count) + " samples");
      continue;
    }
    if (ib == b.totals.histograms.end()) {
      flag("histogram", name, std::to_string(ia->second.count) + " samples",
           "(absent)");
      continue;
    }
    const HistogramSnapshot& ha = ia->second;
    const HistogramSnapshot& hb = ib->second;
    if (differs(static_cast<double>(ha.count), static_cast<double>(hb.count),
                opts.rel_tol)) {
      flag("histogram", name + ".count", std::to_string(ha.count),
           std::to_string(hb.count));
    }
    for (const double p : {50.0, 99.0}) {
      const double pa = ha.percentile(p);
      const double pb = hb.percentile(p);
      if (differs(pa, pb, opts.rel_tol)) {
        char label[16];
        std::snprintf(label, sizeof(label), ".p%g", p);
        flag("histogram", name + label, Table::num(pa), Table::num(pb));
      }
    }
  }

  if (a.timeseries.size() != b.timeseries.size()) {
    flag("series", "(run count)", std::to_string(a.timeseries.size()),
         std::to_string(b.timeseries.size()));
  } else {
    for (std::size_t i = 0; i < a.timeseries.size(); ++i) {
      if (!(a.timeseries[i] == b.timeseries[i])) {
        flag("series",
             a.timeseries[i].label.empty() ? ("#" + std::to_string(i))
                                           : a.timeseries[i].label,
             std::to_string(a.timeseries[i].rows.size()) + " rows",
             std::to_string(b.timeseries[i].rows.size()) + " rows");
      }
    }
  }

  if (flagged == 0) {
    std::fprintf(out, "  identical within tolerance\n");
  } else {
    std::fprintf(out, "%d difference(s) flagged\n", flagged);
  }
  return flagged;
}

int check_metrics_doc(const MetricsDoc& doc, const CheckOptions& opts,
                      std::FILE* out) {
  int failures = 0;
  const auto fail = [&failures, out](const std::string& msg) {
    ++failures;
    std::fprintf(out, "check failed: %s\n", msg.c_str());
  };
  if (doc.schema != kMetricsSchema) {
    fail("schema is '" + doc.schema + "', expected '" + kMetricsSchema + "'");
  }
  if (doc.totals.counters.empty()) fail("no counters recorded");
  for (const std::string& name : opts.required) {
    const bool present = doc.totals.counters.count(name) != 0 ||
                         doc.totals.gauges.count(name) != 0 ||
                         doc.totals.histograms.count(name) != 0;
    if (!present) fail("required instrument '" + name + "' missing");
  }
  if (opts.need_histogram) {
    bool found = false;
    for (const auto& [name, h] : doc.totals.histograms) {
      if (h.count > 0) {
        found = true;
        break;
      }
    }
    if (!found) fail("no histogram with samples");
  }
  if (opts.need_timeseries) {
    bool found = false;
    for (const Timeseries& ts : doc.timeseries) {
      if (!ts.empty()) {
        found = true;
        break;
      }
    }
    if (!found) fail("no non-empty timeseries");
  }
  return failures;
}

}  // namespace rvma::obs
