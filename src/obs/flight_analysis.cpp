#include "obs/flight_analysis.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

namespace rvma::obs {
namespace {

void appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

/// ts/dur in microseconds of simulated time; 6 decimals keeps exact ps.
void append_ts(std::string* out, Time ps) {
  appendf(out, "%.6f", static_cast<double>(ps) / 1e6);
}

struct TaggedRecord {
  SpanRecord rec;
  std::uint32_t shard = 0;
};

/// All records merged by (t, shard, index) with their shard retained.
std::vector<TaggedRecord> tagged_merge(const FlightDump& dump) {
  std::vector<TaggedRecord> all;
  all.reserve(dump.total_records());
  for (const FlightShard& s : dump.shards) {
    for (const SpanRecord& r : s.records) all.push_back({r, s.shard});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TaggedRecord& a, const TaggedRecord& b) {
                     if (a.rec.t != b.rec.t) return a.rec.t < b.rec.t;
                     return a.shard < b.shard;
                   });
  return all;
}

}  // namespace

Time MessagePath::host_ps() const {
  return has(kSeenPost) && has(kSeenInject) ? first_inject_t - post_t : 0;
}
Time MessagePath::wire_ps() const {
  return has(kSeenInject) && has(kSeenDeliver)
             ? last_deliver_t - first_inject_t
             : 0;
}
Time MessagePath::rx_ps() const {
  return has(kSeenDeliver) && has(kSeenRx) ? last_rx_t - last_deliver_t : 0;
}
Time MessagePath::match_ps() const {
  return has(kSeenRx) && has(kSeenMatch) ? match_t - last_rx_t : 0;
}
Time MessagePath::total_ps() const {
  return complete() ? match_t - post_t : 0;
}

std::vector<MessagePath> build_message_paths(const FlightDump& dump) {
  std::unordered_map<std::uint64_t, MessagePath> by_key;
  for (const TaggedRecord& tr : tagged_merge(dump)) {
    const SpanRecord& r = tr.rec;
    const auto kind = static_cast<SpanKind>(r.kind);
    if (kind == SpanKind::kCompletion) continue;  // keyed by vaddr, not msg
    MessagePath& p = by_key[r.key];
    p.key = r.key;
    switch (kind) {
      case SpanKind::kMsgPost:
        p.post_t = r.t;
        p.src = r.node;
        p.src_shard = tr.shard;
        p.bytes = r.aux;
        p.seen |= MessagePath::kSeenPost;
        break;
      case SpanKind::kTxQueue:
        if (!p.has(MessagePath::kSeenTxQueue)) p.tx_queue_t = r.t;
        p.seen |= MessagePath::kSeenTxQueue;
        break;
      case SpanKind::kExpressCommit:
        p.express = true;
        [[fallthrough]];
      case SpanKind::kTxInject:
        if (!p.has(MessagePath::kSeenInject)) p.first_inject_t = r.t;
        p.last_inject_t = r.t;
        p.seen |= MessagePath::kSeenInject;
        ++p.packets;
        break;
      case SpanKind::kPktDeliver:
        if (!p.has(MessagePath::kSeenDeliver)) p.first_deliver_t = r.t;
        p.last_deliver_t = r.t;
        p.dst = r.node;
        p.dst_shard = tr.shard;
        p.seen |= MessagePath::kSeenDeliver;
        break;
      case SpanKind::kRxDispatch:
        p.last_rx_t = r.t;
        p.dst = r.node;
        p.dst_shard = tr.shard;
        p.seen |= MessagePath::kSeenRx;
        break;
      case SpanKind::kMbMatch:
        p.match_t = r.t;
        p.dst = r.node;
        p.dst_shard = tr.shard;
        p.seen |= MessagePath::kSeenMatch;
        break;
      case SpanKind::kCompletion:
        break;
    }
  }
  std::vector<MessagePath> out;
  out.reserve(by_key.size());
  for (auto& [key, path] : by_key) out.push_back(path);
  std::sort(out.begin(), out.end(), [](const MessagePath& a, const MessagePath& b) {
    if (a.post_t != b.post_t) return a.post_t < b.post_t;
    return a.key < b.key;
  });
  return out;
}

CritPathReport build_critpath(const std::vector<MessagePath>& paths) {
  struct Sample {
    Time v;
    std::uint64_t msg;
  };
  struct Segment {
    const char* name;
    Time (MessagePath::*value)() const;
    std::vector<Sample> samples;
  };
  Segment segments[] = {
      {"host", &MessagePath::host_ps, {}},
      {"wire", &MessagePath::wire_ps, {}},
      {"rx", &MessagePath::rx_ps, {}},
      {"match", &MessagePath::match_ps, {}},
      {"total", &MessagePath::total_ps, {}},
  };
  CritPathReport report;
  for (const MessagePath& p : paths) {
    if (!p.complete()) {
      ++report.partial;
      continue;
    }
    ++report.messages;
    for (Segment& seg : segments) {
      seg.samples.push_back({(p.*seg.value)(), p.key});
    }
  }
  for (Segment& seg : segments) {
    SegmentStats stats;
    stats.name = seg.name;
    stats.count = seg.samples.size();
    if (!seg.samples.empty()) {
      std::sort(seg.samples.begin(), seg.samples.end(),
                [](const Sample& a, const Sample& b) {
                  if (a.v != b.v) return a.v < b.v;
                  return a.msg < b.msg;
                });
      const std::size_t n = seg.samples.size();
      const Sample& p50 = seg.samples[(n - 1) * 50 / 100];
      const Sample& p99 = seg.samples[(n - 1) * 99 / 100];
      const Sample& max = seg.samples[n - 1];
      stats.p50 = p50.v;
      stats.p50_msg = p50.msg;
      stats.p99 = p99.v;
      stats.p99_msg = p99.msg;
      stats.max = max.v;
      stats.max_msg = max.msg;
    }
    report.segments.push_back(stats);
  }
  return report;
}

std::string format_critpath(const CritPathReport& report) {
  std::string out;
  appendf(&out,
          "critical path over %" PRIu64 " messages (%" PRIu64
          " partial paths skipped)\n",
          report.messages, report.partial);
  appendf(&out, "%-8s %10s %12s %12s %12s  %-18s %-18s\n", "segment", "count",
          "p50", "p99", "max", "p99 msg", "max msg");
  for (const SegmentStats& s : report.segments) {
    appendf(&out,
            "%-8s %10" PRIu64 " %9.1f ns %9.1f ns %9.1f ns  0x%-16" PRIx64
            " 0x%-16" PRIx64 "\n",
            s.name.c_str(), s.count, static_cast<double>(s.p50) / 1e3,
            static_cast<double>(s.p99) / 1e3, static_cast<double>(s.max) / 1e3,
            s.p99_msg, s.max_msg);
  }
  return out;
}

std::string perfetto_json(const FlightDump& dump) {
  const std::vector<TaggedRecord> merged = tagged_merge(dump);
  const std::vector<MessagePath> paths = build_message_paths(dump);

  std::string out;
  out.append("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('\n');
  };

  // Track metadata: one "process" per shard, one "thread" per node.
  std::set<std::uint32_t> shards;
  std::set<std::pair<std::uint32_t, std::int32_t>> tracks;
  for (const TaggedRecord& tr : merged) {
    shards.insert(tr.shard);
    if (tr.rec.node >= 0) tracks.insert({tr.shard, tr.rec.node});
  }
  for (std::uint32_t s : shards) {
    sep();
    appendf(&out,
            "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
            "\"args\":{\"name\":\"shard %u\"}}",
            s, s);
  }
  for (const auto& [shard, node] : tracks) {
    sep();
    appendf(&out,
            "{\"ph\":\"M\",\"pid\":%u,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"node %d\"}}",
            shard, node, node);
  }

  // Host-side tx span per message: post -> first injection.
  for (const MessagePath& p : paths) {
    if (!p.has(MessagePath::kSeenPost) || !p.has(MessagePath::kSeenInject))
      continue;
    sep();
    appendf(&out,
            "{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"name\":\"tx\",\"ts\":",
            p.src_shard, p.src);
    append_ts(&out, p.post_t);
    out.append(",\"dur\":");
    append_ts(&out, p.first_inject_t - p.post_t);
    appendf(&out, ",\"args\":{\"msg\":\"0x%" PRIx64 "\",\"bytes\":%" PRId64 "}}",
            p.key, p.bytes);
  }

  // Per-packet wire and rx spans, paired by (msg, seq) in merged order.
  std::map<std::pair<std::uint64_t, std::int64_t>, Time> inject_at;
  std::map<std::pair<std::uint64_t, std::int64_t>, Time> deliver_at;
  std::map<std::pair<std::uint64_t, std::int64_t>, bool> express_at;
  for (const TaggedRecord& tr : merged) {
    const SpanRecord& r = tr.rec;
    const auto kind = static_cast<SpanKind>(r.kind);
    const std::pair<std::uint64_t, std::int64_t> id{r.key, r.aux};
    switch (kind) {
      case SpanKind::kTxInject:
      case SpanKind::kExpressCommit:
        inject_at[id] = r.t;
        express_at[id] = kind == SpanKind::kExpressCommit;
        break;
      case SpanKind::kPktDeliver: {
        const auto it = inject_at.find(id);
        if (it != inject_at.end()) {
          sep();
          appendf(&out,
                  "{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"name\":\"%s\",\"ts\":",
                  tr.shard, r.node,
                  express_at[id] ? "wire/express" : "wire");
          append_ts(&out, it->second);
          out.append(",\"dur\":");
          append_ts(&out, r.t - it->second);
          appendf(&out, ",\"args\":{\"msg\":\"0x%" PRIx64 "\",\"seq\":%" PRId64
                        "}}",
                  r.key, r.aux);
        }
        deliver_at[id] = r.t;
        break;
      }
      case SpanKind::kRxDispatch: {
        const auto it = deliver_at.find(id);
        if (it != deliver_at.end()) {
          sep();
          appendf(&out,
                  "{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"name\":\"rx\",\"ts\":",
                  tr.shard, r.node);
          append_ts(&out, it->second);
          out.append(",\"dur\":");
          append_ts(&out, r.t - it->second);
          appendf(&out, ",\"args\":{\"msg\":\"0x%" PRIx64 "\",\"seq\":%" PRId64
                        "}}",
                  r.key, r.aux);
        }
        break;
      }
      default:
        break;
    }
  }

  // Mailbox-match spans (last rx dispatch -> match) and completions.
  for (const MessagePath& p : paths) {
    if (!p.has(MessagePath::kSeenRx) || !p.has(MessagePath::kSeenMatch))
      continue;
    sep();
    appendf(&out,
            "{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"name\":\"match\",\"ts\":",
            p.dst_shard, p.dst);
    append_ts(&out, p.last_rx_t);
    out.append(",\"dur\":");
    append_ts(&out, p.match_t - p.last_rx_t);
    appendf(&out, ",\"args\":{\"msg\":\"0x%" PRIx64 "\"}}", p.key);
  }
  for (const TaggedRecord& tr : merged) {
    if (static_cast<SpanKind>(tr.rec.kind) != SpanKind::kCompletion) continue;
    sep();
    appendf(&out,
            "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%d,"
            "\"name\":\"completion\",\"ts\":",
            tr.shard, tr.rec.node);
    append_ts(&out, tr.rec.t);
    appendf(&out, ",\"args\":{\"vaddr\":\"0x%" PRIx64 "\",\"lat_ns\":%.1f}}",
            tr.rec.key, static_cast<double>(tr.rec.aux) / 1e3);
  }

  out.append("\n]}\n");
  return out;
}

std::string format_flight_summary(const FlightDump& dump) {
  std::string out;
  appendf(&out, "flight dump: %zu shard(s), %" PRIu64 " record(s)\n",
          dump.shards.size(), dump.total_records());
  for (const FlightShard& s : dump.shards) {
    Time lo = 0;
    Time hi = 0;
    if (!s.records.empty()) {
      lo = s.records.front().t;
      hi = s.records.back().t;
    }
    appendf(&out,
            "  shard %u: %zu record(s), %" PRIu64
            " dropped, t = [%.3f us, %.3f us]\n",
            s.shard, s.records.size(), s.dropped,
            static_cast<double>(lo) / 1e6, static_cast<double>(hi) / 1e6);
  }
  std::map<std::uint32_t, std::uint64_t> by_kind;
  for (const FlightShard& s : dump.shards) {
    for (const SpanRecord& r : s.records) ++by_kind[r.kind];
  }
  for (const auto& [kind, count] : by_kind) {
    appendf(&out, "  %-14s %12" PRIu64 "\n", span_kind_name(kind), count);
  }
  return out;
}

}  // namespace rvma::obs
