// Metrics document serialization + the analysis operations behind the
// rvma_metrics CLI (summarize / diff / check).
//
// One run (or one merged grid of runs) emits a single self-describing
// JSON document: schema id, tool/config metadata, the merged registry
// snapshot (counters, gauge high-waters, histograms with percentiles),
// and the per-run gauge timeseries. Deliberately excluded: job counts,
// wall-clock times, host identity — anything that would differ between
// --jobs=1 and --jobs=N runs of the same experiment. The document is part
// of the determinism contract: byte-identical at any job count.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace rvma::obs {

struct JsonValue;

inline constexpr const char* kMetricsSchema = "rvma-metrics-v1";

struct MetricsDoc {
  std::string schema = kMetricsSchema;
  std::string tool;  ///< emitting bench, e.g. "fig8_halo3d"
  /// Config key/values (nodes, seed, ...) as strings, sorted by key.
  std::map<std::string, std::string> meta;
  /// Registry dump, merged across the grid in deterministic grid order.
  MetricsSnapshot totals;
  /// One entry per sampled run, in grid order.
  std::vector<Timeseries> timeseries;
};

/// Serialize to the canonical JSON form (stable key order, fixed float
/// formatting) — the byte-identity anchor for the determinism tests.
std::string to_json(const MetricsDoc& doc);

/// Write to_json(doc) to `path`. Returns false (with a message on stderr)
/// if the file cannot be written.
bool write_metrics_file(const MetricsDoc& doc, const std::string& path);

/// Parse a document previously produced by to_json (percentile fields are
/// recomputed from the buckets, not read). Returns false with `*error`
/// set on malformed input.
bool metrics_doc_from_json(const JsonValue& root, MetricsDoc* out,
                           std::string* error);
bool read_metrics_file(const std::string& path, MetricsDoc* out,
                       std::string* error);

/// Human-readable summary: meta, counters, gauges, histogram percentile
/// table, timeseries overview.
void print_metrics_summary(const MetricsDoc& doc, std::FILE* out);

struct DiffOptions {
  /// Relative tolerance below which a numeric difference is not flagged
  /// (0 = flag any difference).
  double rel_tol = 0.0;
};

/// Side-by-side comparison of two documents; prints every differing
/// instrument and returns the number of flagged differences.
int print_metrics_diff(const MetricsDoc& a, const MetricsDoc& b,
                       const DiffOptions& opts, std::FILE* out);

struct CheckOptions {
  /// Instrument names (counter, gauge, or histogram) that must exist.
  std::vector<std::string> required;
  bool need_histogram = false;   ///< require >= 1 histogram with samples
  bool need_timeseries = false;  ///< require >= 1 non-empty timeseries
};

/// Validate a document (schema id, non-empty counters, required
/// instruments present). Prints failures; returns the failure count.
int check_metrics_doc(const MetricsDoc& doc, const CheckOptions& opts,
                      std::FILE* out);

}  // namespace rvma::obs
