// Simulated-time gauge sampling.
//
// A Sampler snapshots a set of named gauge providers into a timeseries on
// a fixed simulated-time period. The Engine drives it from its event loop
// (Engine::set_sampler): before executing the first event at or past a
// period boundary it asks the sampler to record the boundary sample. The
// engine is quiescent between events, so the state observed at that moment
// IS the state at the boundary — sampling needs no events of its own, and
// therefore never perturbs event counts, tie-break order, or makespans.
//
// Wall-clock sampling would break all of that: rows would land at
// nondeterministic simulated times and the jobs=N vs jobs=1 byte-identity
// contract would be lost. Simulated-time periods make the timeseries as
// reproducible as the simulation itself.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace rvma::obs {

/// One run's sampled gauge timeseries: rows[i][c] is column c at times[i].
struct Timeseries {
  std::string label;   ///< run identity, e.g. "torus3d/static@100Gbps/rvma"
  Time period = 0;     ///< sampling period (ps)
  std::vector<std::string> columns;            ///< gauge names, sorted
  std::vector<Time> times;                     ///< period boundaries (ps)
  std::vector<std::vector<std::int64_t>> rows;

  bool empty() const { return times.empty(); }
  bool operator==(const Timeseries&) const = default;
};

class Sampler {
 public:
  using Provider = std::function<std::int64_t()>;

  explicit Sampler(MetricsRegistry& registry) : registry_(&registry) {}

  /// Register a gauge provider. Several providers may share a name; their
  /// values are summed into one column. Register everything before the
  /// simulation starts — columns bind on the first sample.
  void add_gauge(std::string_view name, Provider fn);

  /// Arm sampling with the given simulated-time period (> 0). Until then
  /// (and with period 0) next_due() is kTimeInfinity and the engine hook
  /// costs one branch per event.
  void enable(Time period);
  bool enabled() const { return period_ > 0; }
  Time period() const { return period_; }
  Time next_due() const { return next_due_; }

  /// Engine hook: record one row per period boundary in (last, now] and
  /// return the next due time. Rows are stamped at the boundary, not at
  /// `now` — no event fired in between, so the observed state is the
  /// boundary state.
  Time on_tick(Time now);

  const Timeseries& series() const { return series_; }
  /// Move the accumulated series out (for MotifRunOutput etc.); the
  /// sampler keeps its configuration but starts an empty series.
  Timeseries take_series();

 private:
  void bind_columns();
  std::vector<std::int64_t> sample_row();

  MetricsRegistry* registry_;
  std::vector<std::pair<std::string, Provider>> providers_;
  /// columns_[c] = provider indices summed into column c (bound lazily).
  std::vector<std::vector<std::size_t>> column_providers_;
  Time period_ = 0;
  Time next_due_ = kTimeInfinity;
  Timeseries series_;
};

}  // namespace rvma::obs
