#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <fstream>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace rvma::obs {

bool analyze_trace_file(const std::string& path, TraceAnalysis* out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  for (std::string line; std::getline(in, line);) {
    ++out->lines;
    JsonValue rec;
    if (!json_parse(line, &rec, nullptr) || !rec.is_object()) {
      ++out->skipped;
      continue;
    }
    const JsonValue* ev = rec.find("ev");
    if (ev == nullptr || !ev->is_string()) {
      ++out->skipped;
      continue;
    }
    const std::int64_t eng_id =
        rec.find("eng") != nullptr ? rec.find("eng")->as_i64() : 0;
    EngineTraceStats& eng = out->engines[eng_id];

    const std::string& event = ev->string;
    ++eng.event_counts[event];
    if (const JsonValue* t = rec.find("t"); t != nullptr) {
      eng.span = std::max(eng.span, static_cast<Time>(t->as_u64()));
    }
    const JsonValue* lat = rec.find("lat_ps");
    if (lat != nullptr && lat->is_number()) {
      eng.event_latency_ns[event].record(lat->as_u64() / kNanosecond);
    }

    if (event == "pkt_deliver") {
      if (lat != nullptr && lat->is_number()) {
        eng.pkt_latency_us.add(to_us(static_cast<Time>(lat->as_u64())));
      }
      if (const JsonValue* dst = rec.find("dst"); dst != nullptr) {
        ++eng.deliveries_per_node[dst->as_i64()];
      }
      if (const JsonValue* hop = rec.find("hops"); hop != nullptr) {
        eng.hops.add(hop->as_double());
      }
    } else if (event == "rvma_complete") {
      const JsonValue* soft = rec.find("soft");
      if (soft != nullptr && soft->as_i64() != 0) {
        ++eng.soft_completions;
      } else {
        ++eng.completions;
      }
    } else if (event == "rvma_drop" || event == "rvma_nack") {
      if (const JsonValue* reason = rec.find("reason"); reason != nullptr) {
        if (reason->is_string()) {
          ++eng.drops_per_reason[reason->string];
        } else {
          ++eng.drops_per_reason["code " + std::to_string(reason->as_i64())];
        }
      }
    }
  }
  return true;
}

namespace {

void print_engine(std::int64_t id, const EngineTraceStats& eng,
                  bool show_engine_header, std::FILE* out) {
  if (show_engine_header) {
    std::fprintf(out, "\n== engine %lld ==\n", static_cast<long long>(id));
  }

  Table events({"event", "count"});
  for (const auto& [name, count] : eng.event_counts) {
    events.add_row({name, std::to_string(count)});
  }
  events.print(out);

  if (eng.pkt_latency_us.count() > 0) {
    // Samples sorts lazily on percentile access; work on a copy so the
    // analysis stays const.
    Samples lat = eng.pkt_latency_us;
    std::fprintf(out,
                 "\npacket network latency (us): n=%zu mean=%.3f p50=%.3f "
                 "p99=%.3f max=%.3f; mean hops=%.2f\n",
                 lat.count(), lat.mean(), lat.percentile(50),
                 lat.percentile(99), lat.max(), eng.hops.mean());
  }

  if (!eng.event_latency_ns.empty()) {
    std::fprintf(out, "\nper-event latency (ns):\n");
    Table lat({"event", "count", "mean", "p50", "p99", "max"});
    for (const auto& [name, h] : eng.event_latency_ns) {
      lat.add_row({name, std::to_string(h.count()),
                   Table::stat_num(h.count(), h.mean()),
                   Table::stat_num(h.count(), h.percentile(50.0)),
                   Table::stat_num(h.count(), h.percentile(99.0)),
                   Table::stat_num(h.count(), static_cast<double>(h.max()))});
    }
    lat.print(out);
  }

  std::fprintf(out, "\nRVMA completions: %llu hardware, %llu soft (inc_epoch)\n",
               static_cast<unsigned long long>(eng.completions),
               static_cast<unsigned long long>(eng.soft_completions));
  if (!eng.drops_per_reason.empty()) {
    std::fprintf(out, "drops by reason:\n");
    for (const auto& [reason, count] : eng.drops_per_reason) {
      std::fprintf(out, "  %s: %llu\n", reason.c_str(),
                   static_cast<unsigned long long>(count));
    }
  }
  if (!eng.deliveries_per_node.empty()) {
    std::int64_t busiest = -1;
    std::uint64_t most = 0;
    for (const auto& [node, count] : eng.deliveries_per_node) {
      if (count > most) {
        most = count;
        busiest = node;
      }
    }
    std::fprintf(out, "deliveries to %zu nodes; busiest node %lld (%llu pkts)\n",
                 eng.deliveries_per_node.size(),
                 static_cast<long long>(busiest),
                 static_cast<unsigned long long>(most));
  }
}

}  // namespace

void print_trace_analysis(const TraceAnalysis& analysis,
                          const std::string& path, std::FILE* out) {
  std::fprintf(out, "trace: %s (simulated span %s)\n", path.c_str(),
               format_time(analysis.span()).c_str());
  if (analysis.skipped > 0) {
    std::fprintf(out, "note: skipped %llu unparseable line(s)\n",
                 static_cast<unsigned long long>(analysis.skipped));
  }
  if (analysis.engines.size() > 1) {
    std::fprintf(out, "%zu engines share this trace; stats are per engine\n",
                 analysis.engines.size());
  }
  std::fprintf(out, "\n");
  const bool headers = analysis.engines.size() > 1;
  for (const auto& [id, eng] : analysis.engines) {
    print_engine(id, eng, headers, out);
  }
}

}  // namespace rvma::obs
