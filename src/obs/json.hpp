// Minimal JSON value + recursive-descent parser for the analysis tools.
//
// Scope: exactly what rvma_metrics needs to read the documents this repo
// writes (metrics files, JSONL trace lines) — objects, arrays, strings
// with basic escapes, integer/double numbers, booleans, null. Not a
// general-purpose library; no external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rvma::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;        ///< always set for kNumber
  std::int64_t integer = 0;   ///< exact value when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (the writer emits sorted keys anyway).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  std::int64_t as_i64(std::int64_t fallback = 0) const {
    if (kind != Kind::kNumber) return fallback;
    return is_integer ? integer : static_cast<std::int64_t>(number);
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const {
    return static_cast<std::uint64_t>(as_i64(static_cast<std::int64_t>(fallback)));
  }
  double as_double(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

/// Parse `text` into `*out`. On failure returns false and, if `error` is
/// non-null, stores a short message with the byte offset.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

/// Append `s` to `out` as a quoted JSON string with minimal escaping.
void json_append_escaped(std::string* out, std::string_view s);

}  // namespace rvma::obs
