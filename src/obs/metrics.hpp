// Unified metrics instruments: named counters, gauges, and HDR-style
// log-bucket histograms behind a per-cluster registry.
//
// Design constraints (DESIGN.md §7):
//  * O(1) record on the simulation hot path — a counter increment is one
//    add through a cached pointer; a histogram record is a bit-scan plus
//    two adds.
//  * Mergeable like RunningStat::merge: every instrument's snapshot can be
//    combined associatively, so SweepExecutor grids aggregated in grid
//    order are bit-identical at any --jobs.
//  * Single-threaded by construction: a registry belongs to one Cluster
//    (one Engine), never shared across sweep workers — record paths need
//    no atomics and stay clean under TSan.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rvma::obs {

/// Monotonic event count. Merge rule: sum.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Reconcile a speculative increment that did not happen after all (the
  /// fabric's express path counts route-table hits at commit time and
  /// uncounts the not-yet-taken ones when a packet rematerializes onto the
  /// hop-by-hop path). Never drops the counter below a value an external
  /// reader has observed: callers only retract their own same-run credit.
  void dec(std::uint64_t n = 1) { value_ -= n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, in-flight packets). Remembers its
/// high-water mark; snapshots export the high-water and merge by max —
/// "last value" is meaningless across independent runs.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  std::int64_t value() const { return value_; }
  std::int64_t high_water() const { return high_water_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

/// Frozen histogram state: sparse (bucket index, count) pairs plus the
/// exact count/sum/min/max. The merge/percentile surface used by snapshot
/// aggregation and by the metrics-file reader.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< valid only when count > 0
  std::uint64_t max = 0;
  /// Ascending bucket indices (see Histogram::bucket_floor).
  std::vector<std::pair<std::int32_t, std::uint64_t>> buckets;

  void merge(const HistogramSnapshot& other);
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Percentile (p in [0, 100]) by linear interpolation inside the bucket
  /// the rank falls into, clamped to [min, max]. Monotone in p; relative
  /// error bounded by the sub-bucket width (~3.2%).
  double percentile(double p) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// HDR-style log-linear histogram over uint64 values: power-of-two
/// octaves, each split into 32 linear sub-buckets, so every bucket's width
/// is at most 1/32 of its floor. Values below 32 get exact unit buckets.
/// record() is O(1) (one count-leading-zeros, two indexed adds).
class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;  // 32

  /// Bucket index for a value. Exact (index == v) for v < 64; monotone
  /// non-decreasing everywhere. Max index 1919 (for v near 2^64).
  static int index_of(std::uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBits;
    return ((msb - kSubBits + 1) << kSubBits) +
           static_cast<int>((v >> shift) & (kSubBuckets - 1));
  }

  /// Smallest value mapping to `index` (inverse of index_of).
  static std::uint64_t bucket_floor(int index) {
    const int block = index >> kSubBits;
    const std::uint64_t sub = static_cast<std::uint64_t>(index) & (kSubBuckets - 1);
    if (block == 0) return sub;
    return (kSubBuckets + sub) << (block - 1);
  }

  /// Number of distinct values mapping to `index`. For the topmost bucket
  /// the unsigned wrap of floor(index+1) - floor(index) is exact mod 2^64.
  static std::uint64_t bucket_width(int index) {
    return bucket_floor(index + 1) - bucket_floor(index);
  }

  void record(std::uint64_t v) {
    const auto idx = static_cast<std::size_t>(index_of(v));
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double percentile(double p) const { return snapshot().percentile(p); }

  HistogramSnapshot snapshot() const;

 private:
  std::vector<std::uint64_t> buckets_;  ///< dense up to highest used index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

/// Frozen registry state: every instrument by name, ready to merge with
/// other runs' snapshots and to serialize (obs/metrics_io). Gauge values
/// are high-water marks; see Gauge.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters sum, gauges max, histograms bucket-wise sum. Associative and
  /// commutative, so any aggregation order over a fixed set of runs agrees.
  void merge(const MetricsSnapshot& other);
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Named instruments for one simulation (one Cluster). Lookup is cold —
/// components resolve their instruments once at construction and keep the
/// reference; node-based map storage keeps those references stable.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace rvma::obs
