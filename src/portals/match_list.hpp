// Portals-style list matching — the hardware-matching design RVMA's
// single-lookup LUT is contrasted against (paper §II, §IV-A).
//
// Portals match entries carry source addresses and match/ignore bits;
// wildcards (ignore masks, ANY-source) are allowed, and when several
// entries could match, the one posted earliest wins (MPI ordering
// semantics). Resolution therefore requires walking a posted-order list —
// "significantly more complex message matching hardware than a known
// single lookup resolution in RVMA". This model implements the semantics
// and exposes traversal counts so benches can quantify that difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>

#include "net/types.hpp"

namespace rvma::portals {

using net::NodeId;

inline constexpr NodeId kAnySource = -1;

struct MatchEntry {
  std::uint64_t id = 0;           ///< handle for unlink
  std::uint64_t match_bits = 0;
  std::uint64_t ignore_bits = 0;  ///< 1-bits are wildcards
  NodeId source = kAnySource;     ///< kAnySource matches any initiator
  std::byte* base = nullptr;
  std::uint64_t size = 0;
  bool use_once = true;           ///< unlink on first match (PTL_USE_ONCE)

  bool matches(NodeId src, std::uint64_t bits) const {
    if (source != kAnySource && source != src) return false;
    return ((match_bits ^ bits) & ~ignore_bits) == 0;
  }
};

class MatchList {
 public:
  /// Append an entry (posted order is match priority). Returns its id.
  std::uint64_t append(MatchEntry entry);

  /// Resolve an incoming (source, match bits) pair: first posted entry
  /// that matches. Consumes use_once entries. Returns nullopt on no match
  /// (Portals would then fall to the overflow/unexpected list).
  std::optional<MatchEntry> match(NodeId src, std::uint64_t bits);

  /// Unlink by id; returns false if absent (already consumed).
  bool unlink(std::uint64_t id);

  std::size_t size() const { return entries_.size(); }

  /// Entries traversed by match() calls so far — the "search length" a
  /// matching unit pays that a single-lookup LUT does not.
  std::uint64_t entries_traversed() const { return traversed_; }
  std::uint64_t matches_found() const { return found_; }
  std::uint64_t match_misses() const { return misses_; }

 private:
  std::list<MatchEntry> entries_;
  std::uint64_t next_id_ = 1;
  std::uint64_t traversed_ = 0;
  std::uint64_t found_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rvma::portals
