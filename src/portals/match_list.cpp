#include "portals/match_list.hpp"

namespace rvma::portals {

std::uint64_t MatchList::append(MatchEntry entry) {
  entry.id = next_id_++;
  entries_.push_back(entry);
  return entry.id;
}

std::optional<MatchEntry> MatchList::match(NodeId src, std::uint64_t bits) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    ++traversed_;
    if (it->matches(src, bits)) {
      ++found_;
      MatchEntry hit = *it;
      if (it->use_once) entries_.erase(it);
      return hit;
    }
  }
  ++misses_;
  return std::nullopt;
}

bool MatchList::unlink(std::uint64_t id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace rvma::portals
