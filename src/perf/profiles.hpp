// System calibration profiles for the microbenchmark figures.
//
// The paper measured Figures 4-6 on real hardware:
//  * Verbs on Intel OmniPath 100 Gbps + Skylake (Platinum 8160) — Fig. 4
//  * UCX (UCP) on Mellanox ConnectX-5 EDR + ThunderX2 — Figs. 5 and 6
//
// We do not have that hardware, so each profile sets the simulator's
// software/NIC/link constants to land small-message put latency in the
// band those systems publish (~1 µs class). The figures compare *protocol
// compositions* on a fixed system — put+last-byte vs. put+ack+send/recv
// vs. RVMA threshold completion — so the constants set the scale while the
// composition produces the shape.
#pragma once

#include <string>

#include "core/types.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "rdma/rdma.hpp"

namespace rvma::perf {

struct SystemProfile {
  std::string name;
  net::LinkParams link;
  Time switch_latency = 100 * kNanosecond;
  nic::NicParams nic;
  rdma::RdmaParams rdma;
  core::RvmaParams rvma;
  /// Software cost the communication library charges to post one
  /// application-level operation (protocol selection, request setup).
  /// Paid once per put in every mode — heavier for UCP than raw Verbs.
  Time op_post_overhead = 0;
  /// Software cost to hand a completed operation back to the application
  /// (callback dispatch / request release). Also mode-independent.
  Time op_complete_overhead = 0;
};

/// Verbs on OmniPath 100 Gbps, Skylake host (paper Fig. 4 system).
SystemProfile verbs_opa();

/// UCX/UCP on ConnectX-5 EDR 100 Gbps, ThunderX2 host (Figs. 5-6 system).
/// The UCP protocol layer adds software overhead on both sides.
SystemProfile ucx_cx5();

}  // namespace rvma::perf
