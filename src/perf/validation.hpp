// Model validation (paper §V-B: "The models are validated against
// performance results ...").
//
// Two independent checks of the simulator:
//  1. `predict_put_latency` evaluates the documented store-and-forward
//     pipeline equations (injection serialization, crossbar at 1.5x,
//     output-port serialization, protocol completion costs) analytically —
//     no event queue involved. The simulator must reproduce it exactly;
//     any event-plumbing bug (lost delay, double-charged cost) breaks the
//     match.
//  2. LogGP-style asymptotics: measured large-message latency must
//     approach bytes/bandwidth, and the per-message overhead (latency
//     minus serialization) must be size-independent for single-packet
//     messages.
#pragma once

#include "perf/latency.hpp"
#include "perf/profiles.hpp"

namespace rvma::perf {

/// Closed-form one-way put latency on the two-node star for `mode`,
/// computed from the profile's constants without running the simulator.
Time predict_put_latency(const SystemProfile& profile, Mode mode,
                         std::uint64_t bytes);

/// Measured one-way latency with run-to-run jitter disabled (single run),
/// suitable for exact comparison against predict_put_latency. `seed`
/// feeds the network RNG; the two-node star is routing-deterministic, so
/// it must not change the result (validation asserts exactness anyway).
/// A non-null `metrics_out` receives the run's merged registry snapshot.
Time measure_put_latency_exact(const SystemProfile& profile, Mode mode,
                               std::uint64_t bytes, std::uint64_t seed = 1,
                               obs::MetricsSnapshot* metrics_out = nullptr);

/// Effective bandwidth (payload bits per second of one-way latency) for a
/// large transfer; should approach the link rate as size grows.
double effective_bandwidth_gbps(const SystemProfile& profile, Mode mode,
                                std::uint64_t bytes, std::uint64_t seed = 1);

struct ValidationRow {
  std::uint64_t bytes = 0;
  Time predicted = 0;
  Time simulated = 0;
  double error() const {
    if (predicted == 0) return 0.0;
    const double p = static_cast<double>(predicted);
    const double s = static_cast<double>(simulated);
    return (s - p) / p;
  }
};

/// Run the full validation sweep for one mode.
std::vector<ValidationRow> validate_mode(const SystemProfile& profile,
                                         Mode mode,
                                         const std::vector<std::uint64_t>& sizes,
                                         std::uint64_t seed = 1);

/// One validation point (analytic prediction + one simulation) — the unit
/// of work the parallel validation sweep fans out. A non-null
/// `metrics_out` receives the simulated run's registry snapshot, so the
/// sweep can carry per-point metrics back for grid-order aggregation.
ValidationRow validate_point(const SystemProfile& profile, Mode mode,
                             std::uint64_t bytes, std::uint64_t seed = 1,
                             obs::MetricsSnapshot* metrics_out = nullptr);

}  // namespace rvma::perf
