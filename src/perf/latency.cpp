#include "perf/latency.hpp"

#include <cassert>
#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "rdma/rdma.hpp"

namespace rvma::perf {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kRdmaStatic: return "rdma-static";
    case Mode::kRdmaAdaptive: return "rdma-adaptive";
    case Mode::kRvma: return "rvma";
  }
  return "?";
}

namespace {

net::NetworkConfig two_node_config(const SystemProfile& profile,
                                   std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cfg.link = profile.link;
  cfg.switch_latency = profile.switch_latency;
  cfg.seed = seed;
  return cfg;
}

/// ±2% multiplicative host-overhead variation per run: the run-to-run
/// system noise behind the paper's error bars.
nic::NicParams jittered(const nic::NicParams& base, Rng& rng) {
  nic::NicParams params = base;
  const double factor = 1.0 + 0.02 * (rng.next_double() - 0.5);
  params.host_overhead =
      static_cast<Time>(static_cast<double>(base.host_overhead) * factor);
  return params;
}

std::vector<Time> run_rvma(const SystemProfile& profile,
                           const nic::NicParams& nic_params,
                           std::uint64_t bytes, int iters,
                           std::uint64_t seed,
                           obs::MetricsSnapshot* metrics_out) {
  cluster::Cluster cluster(two_node_config(profile, seed), nic_params);
  core::RvmaEndpoint sender(cluster.nic(0), profile.rvma);
  core::RvmaEndpoint receiver(cluster.nic(1), profile.rvma);

  constexpr std::uint64_t kDataV = 0x100, kBounceV = 0x200;
  receiver.init_window(kDataV, static_cast<std::int64_t>(bytes),
                       core::EpochType::kBytes);
  sender.init_window(kBounceV, 1, core::EpochType::kOps);

  std::vector<Time> lat;
  lat.reserve(iters);
  auto& engine = cluster.engine();
  struct State {
    int remaining;
    Time iter_start = 0;
  } st{iters, 0};

  auto start_iter = [&] {
    receiver.post_buffer_timing_only(kDataV, bytes);
    st.iter_start = engine.now();
    // The communication library's per-operation posting cost.
    engine.schedule(profile.op_post_overhead,
                    [&] { sender.put(1, kDataV, 0, nullptr, bytes); });
  };
  receiver.set_completion_observer(kDataV, [&](void*, std::int64_t) {
    // Completion-callback dispatch back into the application.
    lat.push_back(engine.now() - st.iter_start + profile.op_complete_overhead);
    receiver.put(0, kBounceV, 0, nullptr, 8);  // serialize iterations
  });
  sender.set_completion_observer(kBounceV, [&](void*, std::int64_t) {
    if (--st.remaining > 0) start_iter();
  });
  engine.schedule(0, [&] {
    sender.post_buffer_timing_only(kBounceV, 64);
    // Keep bounce buffers flowing.
    for (int i = 1; i < iters; ++i) {
      sender.post_buffer_timing_only(kBounceV, 64);
    }
    start_iter();
  });
  engine.run();
  assert(st.remaining == 0 || iters == 0);
  if (metrics_out != nullptr) metrics_out->merge(cluster.collect_metrics());
  return lat;
}

std::vector<Time> run_rdma(const SystemProfile& profile,
                           const nic::NicParams& nic_params, bool adaptive,
                           std::uint64_t bytes, int iters,
                           std::uint64_t seed,
                           obs::MetricsSnapshot* metrics_out) {
  cluster::Cluster cluster(two_node_config(profile, seed), nic_params);
  rdma::RdmaEndpoint sender(cluster.nic(0), profile.rdma);
  rdma::RdmaEndpoint receiver(cluster.nic(1), profile.rdma);

  std::vector<Time> lat;
  lat.reserve(iters);
  auto& engine = cluster.engine();
  struct State {
    int remaining;
    Time iter_start = 0;
    rdma::RemoteBuffer remote;
    std::uint64_t region_addr = 0;
  };
  auto st = std::make_shared<State>();
  st->remaining = iters;

  // Completion observation at the target, then a bounce send back to the
  // initiator (outside the measured one-way path) to serialize iterations.
  std::function<void()> start_iter = [&, st] {
    st->iter_start = engine.now();
    if (adaptive) {
      // Spec-compliant: put, wait local completion, trailing send/recv.
      engine.schedule(profile.op_post_overhead, [&, st] {
        sender.put(st->remote, 0, nullptr, bytes,
                   [&, st] { sender.send(1, /*imm=*/1); });
      });
      receiver.post_recv([&, st](const rdma::Completion&) {
        lat.push_back(engine.now() - st->iter_start +
                      profile.op_complete_overhead);
        receiver.send(0, /*imm=*/2);
      });
    } else {
      // Static routing: last-byte polling at the target.
      receiver.arm_last_byte_poll(st->region_addr, bytes,
                                  [&, st](Time, std::uint64_t) {
                                    lat.push_back(engine.now() -
                                                  st->iter_start +
                                                  profile.op_complete_overhead);
                                    receiver.send(0, /*imm=*/2);
                                  });
      engine.schedule(profile.op_post_overhead, [&, st] {
        sender.put(st->remote, 0, nullptr, bytes, {});
      });
    }
    sender.post_recv([&, st](const rdma::Completion&) {
      if (--st->remaining > 0) start_iter();
    });
  };

  // Buffer negotiation happens once and is excluded from the steady-state
  // latency, as in perftest (Fig. 6 studies its amortization separately).
  // The receiver learns its region address from the registration count.
  receiver.serve_buffer_requests(
      [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; },
      [st](std::uint64_t, std::uint64_t addr, std::uint64_t) {
        st->region_addr = addr;
      });
  engine.schedule(0, [&, st] {
    sender.request_buffer(1, bytes, [&, st](rdma::RemoteBuffer rb) {
      st->remote = rb;
      start_iter();
    });
  });
  engine.run();
  assert(st->remaining == 0 || iters == 0);
  if (metrics_out != nullptr) metrics_out->merge(cluster.collect_metrics());
  return lat;
}

double mean_us(const std::vector<Time>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (Time t : samples) sum += to_us(t);
  return sum / static_cast<double>(samples.size());
}

}  // namespace

LatencyResult measure_put_latency(const SystemProfile& profile, Mode mode,
                                  std::uint64_t bytes, int iters, int runs,
                                  std::uint64_t seed,
                                  obs::MetricsSnapshot* metrics_out) {
  Rng rng(seed ^ 0x6c617465ULL);
  Samples run_means;
  for (int run = 0; run < runs; ++run) {
    const nic::NicParams nic_params = jittered(profile.nic, rng);
    const std::uint64_t run_seed = seed * 1000003ULL + run;
    std::vector<Time> samples;
    switch (mode) {
      case Mode::kRvma:
        samples =
            run_rvma(profile, nic_params, bytes, iters, run_seed, metrics_out);
        break;
      case Mode::kRdmaStatic:
        samples = run_rdma(profile, nic_params, false, bytes, iters, run_seed,
                           metrics_out);
        break;
      case Mode::kRdmaAdaptive:
        samples = run_rdma(profile, nic_params, true, bytes, iters, run_seed,
                           metrics_out);
        break;
    }
    run_means.add(mean_us(samples));
  }
  LatencyResult result;
  result.mean_us = run_means.mean();
  result.stddev_us = run_means.stddev();
  result.min_us = run_means.min();
  result.max_us = run_means.max();
  result.runs = runs;
  result.iters_per_run = iters;
  return result;
}

Time measure_one_put(const SystemProfile& profile, Mode mode,
                     std::uint64_t bytes, std::uint64_t seed,
                     obs::MetricsSnapshot* metrics_out) {
  std::vector<Time> samples;
  switch (mode) {
    case Mode::kRvma:
      samples = run_rvma(profile, profile.nic, bytes, 1, seed, metrics_out);
      break;
    case Mode::kRdmaStatic:
      samples =
          run_rdma(profile, profile.nic, false, bytes, 1, seed, metrics_out);
      break;
    case Mode::kRdmaAdaptive:
      samples =
          run_rdma(profile, profile.nic, true, bytes, 1, seed, metrics_out);
      break;
  }
  assert(samples.size() == 1);
  return samples[0];
}

Time measure_setup_time(const SystemProfile& profile, std::uint64_t bytes) {
  cluster::Cluster cluster(two_node_config(profile, 7), profile.nic);
  rdma::RdmaEndpoint sender(cluster.nic(0), profile.rdma);
  rdma::RdmaEndpoint receiver(cluster.nic(1), profile.rdma);
  receiver.serve_buffer_requests(
      [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; });
  Time done_at = 0;
  cluster.engine().schedule(0, [&] {
    sender.request_buffer(1, bytes, [&](rdma::RemoteBuffer) {
      done_at = cluster.engine().now();
    });
  });
  cluster.engine().run();
  assert(done_at > 0);
  return done_at;
}

std::uint64_t amortization_exchanges(Time setup, Time transfer,
                                     double margin) {
  if (transfer == 0) return 0;
  // Smallest n with (setup + n*transfer) / n <= (1 + margin) * transfer,
  // i.e. n >= setup / (margin * transfer).
  const double n = static_cast<double>(setup) /
                   (margin * static_cast<double>(transfer));
  return static_cast<std::uint64_t>(std::ceil(n));
}

}  // namespace rvma::perf
