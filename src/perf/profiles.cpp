#include "perf/profiles.hpp"

namespace rvma::perf {

SystemProfile verbs_opa() {
  SystemProfile p;
  p.name = "verbs-opa";
  p.link.bw = Bandwidth::gbps(100);
  p.link.latency = 100 * kNanosecond;
  p.switch_latency = 110 * kNanosecond;  // OmniPath edge switch class

  p.nic.mtu = 4096;
  p.nic.header_bytes = 32;
  p.nic.host_overhead = 50 * kNanosecond;
  p.nic.pcie_latency = 150 * kNanosecond;
  p.nic.rx_proc = 10 * kNanosecond;

  p.rdma.cq_poll = 150 * kNanosecond;
  p.rdma.reg_base = 1500 * kNanosecond;
  p.rdma.reg_ns_per_kib = 0.25;
  p.rdma.ctrl_proc = 50 * kNanosecond;
  p.rdma.flag_poll = 20 * kNanosecond;

  p.rvma.lut_lookup = 25 * kNanosecond;
  p.rvma.mwait_wake = 5 * kNanosecond;

  // Raw Verbs keeps per-operation software costs small.
  p.op_post_overhead = 120 * kNanosecond;
  p.op_complete_overhead = 120 * kNanosecond;
  return p;
}

SystemProfile ucx_cx5() {
  SystemProfile p;
  p.name = "ucx-cx5";
  p.link.bw = Bandwidth::gbps(100);
  p.link.latency = 130 * kNanosecond;
  p.switch_latency = 90 * kNanosecond;  // EDR switch class

  p.nic.mtu = 4096;
  p.nic.header_bytes = 32;
  // UCP adds a software protocol layer on the (slower, ThunderX2) host.
  p.nic.host_overhead = 120 * kNanosecond;
  p.nic.pcie_latency = 150 * kNanosecond;
  p.nic.rx_proc = 15 * kNanosecond;

  p.rdma.cq_poll = 130 * kNanosecond;
  p.rdma.reg_base = 1800 * kNanosecond;
  p.rdma.reg_ns_per_kib = 0.3;
  p.rdma.ctrl_proc = 80 * kNanosecond;
  p.rdma.flag_poll = 25 * kNanosecond;

  p.rvma.lut_lookup = 25 * kNanosecond;
  p.rvma.mwait_wake = 5 * kNanosecond;

  // UCP's protocol layer (request setup, protocol selection, completion
  // callback dispatch) on slower ThunderX2 cores adds substantial
  // per-operation software time — this is what compresses the relative
  // RVMA gain to the paper's 45.8% on this system (vs 65.8% on Verbs).
  p.op_post_overhead = 650 * kNanosecond;
  p.op_complete_overhead = 650 * kNanosecond;
  return p;
}

}  // namespace rvma::perf
