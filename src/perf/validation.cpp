#include "perf/validation.hpp"

namespace rvma::perf {

namespace {

/// Store-and-forward pipeline for a message segmented into MTU packets,
/// across the two-node star (inject -> switch -> eject), evaluated
/// analytically. Returns the receive-pipeline exit time of the last
/// packet, relative to the initiator's put() call.
Time wire_pipeline(const SystemProfile& profile, std::uint64_t bytes) {
  const Bandwidth link = profile.link.bw;
  const Bandwidth xbar = profile.link.bw.scaled(1.5);
  const Time link_lat = profile.link.latency;
  const Time t_post = profile.nic.host_overhead + profile.nic.pcie_latency;

  const std::uint32_t mtu = profile.nic.mtu;
  const std::uint64_t total_packets =
      bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;

  Time inj_free = t_post;
  Time port_free = 0;
  Time last_rx = 0;
  std::uint64_t remaining = bytes;
  for (std::uint64_t i = 0; i < total_packets; ++i) {
    const std::uint64_t payload = std::min<std::uint64_t>(mtu, remaining);
    remaining -= payload;
    const std::uint64_t wire = payload + profile.nic.header_bytes;

    const Time inj_done = std::max(t_post, inj_free) + link.serialize(wire);
    inj_free = inj_done;
    const Time arr_sw = inj_done + link_lat;
    const Time xbar_done =
        arr_sw + profile.switch_latency + xbar.serialize(wire);
    const Time port_start = std::max(xbar_done, port_free);
    const Time port_done = port_start + link.serialize(wire);
    port_free = port_done;
    last_rx = port_done + link_lat + profile.nic.rx_proc;
  }
  return last_rx;
}

/// One-way time of a control message (send/ack) between the two nodes.
Time ctrl_path(const SystemProfile& profile) {
  return wire_pipeline(profile, profile.rdma.ctrl_bytes);
}

}  // namespace

Time predict_put_latency(const SystemProfile& profile, Mode mode,
                         std::uint64_t bytes) {
  // Library posting + completion-dispatch costs apply in every mode.
  const Time sw = profile.op_post_overhead + profile.op_complete_overhead;
  const Time data_done = sw + wire_pipeline(profile, bytes);
  switch (mode) {
    case Mode::kRvma:
      // LUT lookup, completion-pointer write, Monitor/MWait wake.
      return data_done + profile.rvma.lut_lookup +
             profile.rvma.completion_write + profile.rvma.mwait_wake;

    case Mode::kRdmaStatic:
      // Last-byte polling observes the flag right after placement.
      return data_done + profile.rdma.flag_poll;

    case Mode::kRdmaAdaptive: {
      // Target-NIC ack -> initiator CQE + poll -> trailing send ->
      // target CQE + poll (the InfiniBand-spec completion chain).
      const Time ack = ctrl_path(profile) + profile.nic.pcie_latency +
                       profile.rdma.cq_poll;
      const Time completion_send = ctrl_path(profile) +
                                   profile.nic.pcie_latency +
                                   profile.rdma.cq_poll;
      return data_done + ack + completion_send;
    }
  }
  return 0;
}

Time measure_put_latency_exact(const SystemProfile& profile, Mode mode,
                               std::uint64_t bytes, std::uint64_t seed,
                               obs::MetricsSnapshot* metrics_out) {
  return measure_one_put(profile, mode, bytes, seed, metrics_out);
}

double effective_bandwidth_gbps(const SystemProfile& profile, Mode mode,
                                std::uint64_t bytes, std::uint64_t seed) {
  const Time latency = measure_one_put(profile, mode, bytes, seed);
  if (latency == 0) return 0.0;
  const double seconds =
      static_cast<double>(latency) / static_cast<double>(kSecond);
  return static_cast<double>(bytes) * 8.0 / seconds / 1e9;
}

ValidationRow validate_point(const SystemProfile& profile, Mode mode,
                             std::uint64_t bytes, std::uint64_t seed,
                             obs::MetricsSnapshot* metrics_out) {
  ValidationRow row;
  row.bytes = bytes;
  row.predicted = predict_put_latency(profile, mode, bytes);
  row.simulated =
      measure_put_latency_exact(profile, mode, bytes, seed, metrics_out);
  return row;
}

std::vector<ValidationRow> validate_mode(
    const SystemProfile& profile, Mode mode,
    const std::vector<std::uint64_t>& sizes, std::uint64_t seed) {
  std::vector<ValidationRow> rows;
  rows.reserve(sizes.size());
  for (const std::uint64_t bytes : sizes) {
    rows.push_back(validate_point(profile, mode, bytes, seed));
  }
  return rows;
}

}  // namespace rvma::perf
