// Two-node put-latency and setup-cost measurements (Figures 4-6).
//
// One-way put latency is measured at the *target*: from the initiator
// issuing the put to the target application observing completion —
//  * kRdmaStatic   : last-byte polling (valid: static routing is in-order),
//  * kRdmaAdaptive : put, initiator-side ack/CQ completion, then the
//                    InfiniBand-spec trailing send/recv, recv-CQ poll,
//  * kRvma         : threshold completion + completion-pointer MWait wake.
// Iterations are serialized by a small bounce message outside the measured
// path, mirroring how perftest serializes one-way latency measurements.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "perf/profiles.hpp"

namespace rvma::perf {

enum class Mode { kRdmaStatic, kRdmaAdaptive, kRvma };

const char* to_string(Mode mode);

struct LatencyResult {
  double mean_us = 0.0;
  double stddev_us = 0.0;   ///< across runs (as the paper's error bars)
  double min_us = 0.0;
  double max_us = 0.0;
  int runs = 0;
  int iters_per_run = 0;
};

/// Average one-way put latency for `bytes` payloads; `runs` independent
/// simulations (seeded per run with ±2% host-overhead variation to model
/// run-to-run system noise) of `iters` serialized iterations each.
/// When `metrics_out` is non-null every run's registry snapshot is merged
/// into it (in run order), for --metrics emission.
LatencyResult measure_put_latency(const SystemProfile& profile, Mode mode,
                                  std::uint64_t bytes, int iters, int runs,
                                  std::uint64_t seed,
                                  obs::MetricsSnapshot* metrics_out = nullptr);

/// Exact one-way latency of a single put with no run-to-run jitter — the
/// validation hook compared against the analytic pipeline model.
Time measure_one_put(const SystemProfile& profile, Mode mode,
                     std::uint64_t bytes, std::uint64_t seed = 1,
                     obs::MetricsSnapshot* metrics_out = nullptr);

/// RDMA buffer setup cost: the full negotiation (request, target-side
/// allocation + registration, reply) for a region of `bytes`, measured by
/// simulation (Fig. 1 steps 1-3; amortized in Fig. 6).
Time measure_setup_time(const SystemProfile& profile, std::uint64_t bytes);

/// Fig. 6: number of exchanges after which the per-exchange cost
/// (setup amortized over n transfers) is within `margin` of the steady
/// transfer latency. margin = 0.03 is the paper's 3%.
std::uint64_t amortization_exchanges(Time setup, Time transfer,
                                     double margin = 0.03);

}  // namespace rvma::perf
