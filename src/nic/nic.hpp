// NIC and host-interface model.
//
// The NIC sits between protocol endpoints (RDMA baseline, RVMA core) and
// the switch fabric. Its job here: charge the host-side costs every message
// pays regardless of protocol — send-posting software overhead, the PCIe
// doorbell/descriptor crossing (150 ns in the paper's SST models), MTU
// segmentation on transmit, and per-packet receive processing — then
// dispatch received packets to the protocol endpoint that owns them.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace rvma::nic {

using net::Message;
using net::MsgId;
using net::NodeId;
using net::Packet;

struct NicParams {
  std::uint32_t mtu = 4096;          ///< max payload bytes per packet
  std::uint32_t header_bytes = 32;   ///< per-packet wire header
  Time host_overhead = 50 * kNanosecond;  ///< software cost to post a send
  Time pcie_latency = 150 * kNanosecond;  ///< host <-> NIC crossing (paper)
  Time rx_proc = 10 * kNanosecond;        ///< per-packet receive pipeline
  /// Transmit-queue depth expressed as injection-link backlog time; sends
  /// that would exceed it wait in the host. The default models the paper's
  /// "ample queue depths on the simulated NIC" (never a constraint).
  Time tx_queue_limit = kTimeInfinity;
  /// RDMAbox-style doorbell batching: a descriptor posted while an
  /// earlier doorbell's PCIe crossing is still in flight rides that
  /// crossing instead of ringing again, up to this many descriptors per
  /// doorbell. 1 rings per message — the paper's baseline, and byte-
  /// identical to the model before this knob existed.
  std::uint32_t doorbell_batch = 1;
};

/// Protocol class identifiers used in WireHeader::kind (proto << 8 | op).
inline constexpr std::uint32_t kProtoRdma = 1;
inline constexpr std::uint32_t kProtoRvma = 2;
inline constexpr std::uint32_t kMaxProto = 4;

class Nic {
 public:
  using PacketHandler = std::function<void(const Packet&)>;
  /// Invoked when the last packet of a message has been handed to the
  /// injection link (the send buffer is owned by the NIC from then on).
  using SendDone = std::function<void()>;

  /// `metrics` is the shared Cluster registry; nullptr gives this NIC a
  /// private one (standalone construction in unit tests). Per-instance
  /// accessors below stay exact either way — the registry counters are
  /// fleet-wide aggregates mirrored alongside them.
  Nic(sim::Engine& engine, net::Network& network, NodeId node,
      const NicParams& params, obs::MetricsRegistry* metrics = nullptr);

  NodeId node() const { return node_; }
  const NicParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }
  /// Registry this NIC records into — protocol endpoints layered on the
  /// NIC resolve their instruments here.
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Post a message for transmission. Charges host overhead + PCIe, then
  /// segments into MTU packets and injects them. Assigns msg.id if zero.
  void send(Message msg, SendDone on_sent = {});

  /// Register the handler for a protocol class (kProtoRdma / kProtoRvma)
  /// and process id; packets dispatch on (proto, hdr.dst_pid), so several
  /// endpoints (processes) can share the NIC.
  void register_proto(std::uint32_t proto, PacketHandler handler,
                      net::Pid pid = 0);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t tx_queue_stalls() const { return tx_queue_stalls_; }
  std::uint64_t packets_dropped_no_handler() const {
    return packets_dropped_no_handler_;
  }

  /// Descriptors waiting in the host-side transmit queue right now — a
  /// sampler gauge provider.
  std::int64_t tx_queue_depth() const {
    return static_cast<std::int64_t>(tx_queue_.size());
  }

 private:
  void handle_delivery(Packet&& pkt);
  /// Folded receive hook (Fabric::set_express_rx): runs handle_delivery's
  /// counting and the protocol dispatch directly, at the instant the
  /// unfolded pipeline's dispatch event would have fired.
  void express_rx(Packet&& pkt);
  /// Common tail of both rx paths: records the rx-dispatch span instant
  /// and invokes the protocol handler.
  void dispatch_packet(std::uint32_t proto, net::Pid pid, const Packet& pkt);
  void inject_message(net::MsgRef msg, SendDone on_sent);
  void drain_tx_queue();

  sim::Engine& engine_;
  net::Network& network_;
  NodeId node_;
  NicParams params_;
  // Flat dense dispatch: dispatch_[proto][pid]. Registration is cold and
  // sizes the per-proto vector to the largest pid seen; delivery is two
  // bounds checks and two indexed loads — no hashing on the per-packet path.
  std::array<std::vector<PacketHandler>, kMaxProto> dispatch_;
  std::uint64_t next_msg_seq_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t tx_queue_stalls_ = 0;
  std::uint64_t packets_dropped_no_handler_ = 0;
  std::deque<std::pair<net::MsgRef, SendDone>> tx_queue_;
  bool drain_scheduled_ = false;
  /// Doorbell batching state: when the last rung doorbell's descriptor
  /// fetch completes, and how many descriptors ride it so far.
  Time doorbell_arrival_ = 0;
  std::uint32_t doorbell_count_ = 0;
  /// Segmentation buffer reused across sends; Fabric::inject_burst
  /// consumes the contents but preserves the capacity, so steady-state
  /// multi-packet sends allocate nothing.
  std::vector<Packet> burst_scratch_;

  /// Registry mirrors of the per-instance counters (shared across all
  /// NICs on a Cluster), resolved once at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* c_messages_sent_;
  obs::Counter* c_messages_injected_;
  obs::Counter* c_packets_received_;
  obs::Counter* c_tx_queue_stalls_;
  obs::Counter* c_drops_no_handler_;
  obs::Counter* c_doorbells_;
  obs::Counter* c_doorbells_merged_;
};

}  // namespace rvma::nic
