#include "nic/nic.hpp"

#include <cassert>

#include "common/log.hpp"
#include "common/trace.hpp"
#include <memory>

namespace rvma::nic {

Nic::Nic(sim::Engine& engine, net::Network& network, NodeId node,
         const NicParams& params, obs::MetricsRegistry* metrics)
    : engine_(engine), network_(network), node_(node), params_(params) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_messages_sent_ = &metrics->counter("nic.messages_sent");
  c_messages_injected_ = &metrics->counter("nic.messages_injected");
  c_packets_received_ = &metrics->counter("nic.packets_received");
  c_tx_queue_stalls_ = &metrics->counter("nic.tx_queue_stalls");
  c_drops_no_handler_ = &metrics->counter("nic.drops_no_handler");
  c_doorbells_ = &metrics->counter("nic.doorbells");
  c_doorbells_merged_ = &metrics->counter("nic.doorbells_merged");
  network_.set_delivery(node_, [this](Packet&& pkt) {
    handle_delivery(std::move(pkt));
  });
  network_.fabric().set_express_rx(node_, params_.rx_proc,
                                   [this](Packet&& pkt) {
                                     express_rx(std::move(pkt));
                                   });
}

void Nic::send(Message msg, SendDone on_sent) {
  assert(msg.dst >= 0 && msg.dst < network_.num_nodes() && "bad destination");
  msg.src = node_;
  if (msg.id == 0) {
    msg.id = (static_cast<std::uint64_t>(node_) << 40) | next_msg_seq_++;
  }
  msg.created_at = engine_.now();
  ++messages_sent_;
  c_messages_sent_->inc();
  RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kMsgPost, msg.id, node_,
            static_cast<std::int64_t>(msg.bytes));

  // Move the descriptor into its pooled shared slot now: the closure below
  // captures an 8-byte handle instead of the whole Message, keeping the
  // event inline in its slot (no pooled-block detour).
  net::MsgRef mref = net::MsgRef::make(std::move(msg));

  // Host posts the descriptor, rings the doorbell; the NIC fetches it one
  // PCIe crossing later and runs transmit-queue admission. With doorbell
  // batching (RDMAbox), a descriptor whose post lands while the previous
  // doorbell's crossing is still in flight rides that crossing: its
  // admission fires at the same arrival instant, in post order, and the
  // PCIe latency is paid once per batch. At doorbell_batch == 1 the ride
  // condition is never taken and the schedule is exactly the old one.
  const Time posted = engine_.now() + params_.host_overhead;
  Time arrival;
  if (params_.doorbell_batch > 1 && doorbell_count_ > 0 &&
      doorbell_count_ < params_.doorbell_batch &&
      posted <= doorbell_arrival_) {
    arrival = doorbell_arrival_;
    ++doorbell_count_;
    c_doorbells_merged_->inc();
  } else {
    arrival = posted + params_.pcie_latency;
    doorbell_arrival_ = arrival;
    doorbell_count_ = 1;
    c_doorbells_->inc();
  }
  engine_.schedule(arrival - engine_.now(), [this, mref = std::move(mref),
                           on_sent = std::move(on_sent)]() mutable {
    // Admission: if the injection link already runs further ahead of the
    // wire than the queue depth allows, the descriptor waits its turn.
    if (!tx_queue_.empty() ||
        network_.fabric().injection_backlog(node_) > params_.tx_queue_limit) {
      ++tx_queue_stalls_;
      c_tx_queue_stalls_->inc();
      RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kTxQueue, mref->id,
                node_, static_cast<std::int64_t>(tx_queue_.size()));
      tx_queue_.emplace_back(std::move(mref), std::move(on_sent));
      drain_tx_queue();
      return;
    }
    inject_message(std::move(mref), std::move(on_sent));
  });
}

void Nic::drain_tx_queue() {
  if (drain_scheduled_) return;
  // One backlog lookup per admission decision: recompute only after an
  // injection actually moved the link, and reuse the final value for the
  // re-check delay below.
  Time backlog = network_.fabric().injection_backlog(node_);
  while (!tx_queue_.empty() && backlog <= params_.tx_queue_limit) {
    auto [msg, on_sent] = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    inject_message(std::move(msg), std::move(on_sent));
    backlog = network_.fabric().injection_backlog(node_);
  }
  if (tx_queue_.empty()) return;
  // Re-check when enough backlog has drained to admit the next message.
  const Time wait = backlog - params_.tx_queue_limit;
  drain_scheduled_ = true;
  engine_.schedule(std::max<Time>(wait, kNanosecond), [this] {
    drain_scheduled_ = false;
    drain_tx_queue();
  });
}

void Nic::inject_message(net::MsgRef msg, SendDone on_sent) {
  c_messages_injected_->inc();
  const std::uint64_t bytes = msg->bytes;
  const std::uint32_t total = bytes == 0
      ? 1
      : static_cast<std::uint32_t>((bytes + params_.mtu - 1) / params_.mtu);
  std::uint64_t offset = 0;
  if (total > 1) {
    burst_scratch_.clear();
    burst_scratch_.reserve(total);
  }
  for (std::uint32_t seq = 0; seq < total; ++seq) {
    Packet pkt;
    pkt.src = msg->src;
    pkt.dst = msg->dst;
    pkt.offset = offset;
    pkt.bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(params_.mtu, bytes - offset));
    pkt.header_bytes = params_.header_bytes;
    pkt.seq = seq;
    pkt.total = total;
    offset += pkt.bytes;
    if (total == 1) {
      pkt.msg = std::move(msg);
      network_.inject(std::move(pkt));
    } else {
      pkt.msg = msg;  // non-atomic refcount bump, no allocation
      burst_scratch_.push_back(std::move(pkt));
    }
  }
  // Multi-packet messages go down as one batch: the fabric charges the
  // injection link for every packet up front (so backlog/admission see the
  // whole message, as before) but keeps at most a single chained engine
  // event in flight instead of one queued arrival per packet — and zero
  // when the whole burst commits to the express path.
  if (total > 1) network_.inject_burst(burst_scratch_);
  if (on_sent) on_sent();
}

void Nic::register_proto(std::uint32_t proto, PacketHandler handler,
                         net::Pid pid) {
  assert(proto < kMaxProto);
  std::vector<PacketHandler>& table = dispatch_[proto];
  if (pid >= table.size()) table.resize(std::size_t{pid} + 1);
  table[pid] = std::move(handler);
}

void Nic::handle_delivery(Packet&& pkt) {
  ++packets_received_;
  c_packets_received_->inc();
  const std::uint32_t proto = net::proto_of(pkt.msg->hdr.kind);
  const net::Pid pid = pkt.msg->hdr.dst_pid;
  if (proto >= kMaxProto || pid >= dispatch_[proto].size() ||
      !dispatch_[proto][pid]) {
    // A remote peer targeted a protocol/process this node does not run —
    // a network-visible condition, not a local bug: drop.
    ++packets_dropped_no_handler_;
    c_drops_no_handler_->inc();
    RVMA_LOG_WARN("nic %d: dropping packet for proto %u pid %u", node_,
                  proto, pid);
    return;
  }
  // Receive pipeline: fixed per-packet processing before the protocol
  // engine (lookup, placement, counting) sees it. Packets with a reserved
  // sequence pair use its second half so the dispatch tie-break position
  // is identical whether or not the fabric took the express path; packets
  // that crossed a shard boundary lost their pair but keep the serial
  // position via a fresh sequence ranked at the injection instant.
  const Time rank = pkt.injected_at;
  const std::uint64_t tie = net::packet_tie(pkt);
  if (pkt.res_seq == net::kRemoteResSeq) {
    engine_.schedule_at_ranked(engine_.now() + params_.rx_proc, rank, tie,
                               [this, proto, pid, pkt = std::move(pkt)]() {
                                 dispatch_packet(proto, pid, pkt);
                               });
  } else if (pkt.res_seq != net::kNoResSeq) {
    const std::uint64_t seq = pkt.res_seq + 1;
    engine_.schedule_at_seq(engine_.now() + params_.rx_proc, seq, rank, tie,
                            [this, proto, pid, pkt = std::move(pkt)]() {
                              dispatch_packet(proto, pid, pkt);
                            });
  } else {
    engine_.schedule_at_ranked(engine_.now() + params_.rx_proc, rank, tie,
                               [this, proto, pid, pkt = std::move(pkt)]() {
                                 dispatch_packet(proto, pid, pkt);
                               });
  }
}

void Nic::express_rx(Packet&& pkt) {
  // The fabric folded delivery and receive into one event firing at
  // deliver_at + rx_proc — exactly when the unfolded pipeline's dispatch
  // event would run. Do handle_delivery's counting and the dispatch
  // directly; the fold preconditions (no tracing, no failure injection)
  // guarantee nothing could have observed the counters in between.
  ++packets_received_;
  c_packets_received_->inc();
  const std::uint32_t proto = net::proto_of(pkt.msg->hdr.kind);
  const net::Pid pid = pkt.msg->hdr.dst_pid;
  if (proto >= kMaxProto || pid >= dispatch_[proto].size() ||
      !dispatch_[proto][pid]) {
    ++packets_dropped_no_handler_;
    c_drops_no_handler_->inc();
    RVMA_LOG_WARN("nic %d: dropping packet for proto %u pid %u", node_,
                  proto, pid);
    return;
  }
  dispatch_packet(proto, pid, pkt);
}

void Nic::dispatch_packet(std::uint32_t proto, net::Pid pid,
                          const Packet& pkt) {
  // Fires at the same simulated instant on both rx paths: the unfolded
  // pipeline's dispatch event runs at deliver + rx_proc, and the folded
  // express event is scheduled at exactly that time, so the recorded
  // rx-dispatch span instant is fold-invariant.
  RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kRxDispatch, pkt.msg->id,
            node_, static_cast<std::int64_t>(pkt.seq));
  dispatch_[proto][pid](pkt);
}

}  // namespace rvma::nic
