#include "motifs/incast.hpp"

namespace rvma::motifs {

std::vector<RankProgram> build_incast(const IncastConfig& config) {
  std::vector<RankProgram> programs(config.ranks());

  // Server (rank 0): arm every client's whole stream upfront (a server
  // does not know arrival order), then drain. Upfront posting lets a
  // transport with pipelined receive resources (RVMA buckets, RDMA slot
  // depth) accept bursts without per-message coordination.
  RankProgram& server = programs[0];
  for (int m = 0; m < config.messages_per_client; ++m) {
    for (int c = 1; c <= config.clients; ++c) {
      server.push_back({Op::Kind::kRecvPost, c, 0, config.bytes, 0});
    }
  }
  for (int m = 0; m < config.messages_per_client; ++m) {
    for (int c = 1; c <= config.clients; ++c) {
      server.push_back({Op::Kind::kRecvWait, c, 0, config.bytes, 0});
    }
  }

  for (int c = 1; c <= config.clients; ++c) {
    RankProgram& client = programs[c];
    for (int m = 0; m < config.messages_per_client; ++m) {
      client.push_back({Op::Kind::kCompute, -1, 0, 0, config.client_compute});
      client.push_back({Op::Kind::kSend, 0, 0, config.bytes, 0});
    }
  }
  return programs;
}

}  // namespace rvma::motifs
