// RVMA-backed motif transport.
//
// Setup is purely local: the receiver creates one mailbox per channel and
// posts a bucket of timing-only buffers (threshold = message bytes). No
// address exchange crosses the network. Senders fire RVMA_Puts and
// continue; receivers observe hardware completions via the completion
// pointer (Monitor/MWait wake). The receiver tops its bucket up locally as
// buffers complete — the paper's RVMA_Win_get_epoch "keep N buffers
// posted" pattern — so senders never stall on the receiver.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "core/endpoint.hpp"
#include "motifs/transport.hpp"
#include "cluster/cluster.hpp"

namespace rvma::motifs {

class RvmaTransport final : public Transport {
 public:
  /// `bucket_depth`: buffers kept posted per mailbox at any time.
  RvmaTransport(cluster::Cluster& cluster, const core::RvmaParams& params,
                int bucket_depth = 16);

  std::string name() const override { return "rvma"; }
  void setup(const std::vector<Channel>& channels,
             std::function<void()> ready) override;
  void recv_post(int dst, int src, std::uint64_t tag) override;
  void send(int src, int dst, std::uint64_t tag,
            std::function<void()> done) override;
  void recv_wait(int dst, int src, std::uint64_t tag,
                 std::function<void()> done) override;
  const TransportStats& stats() const override;

  core::RvmaEndpoint& endpoint(int node) { return *endpoints_[node]; }

 private:
  struct ChannelState {
    Channel ch;
    std::uint64_t vaddr = 0;
    std::uint64_t sent = 0;     ///< written only on src's shard thread
    int remaining_posts = 0;    ///< buffers not yet posted
    std::uint64_t completed = 0;
    std::uint64_t consumed = 0;
    std::deque<std::function<void()>> waiters;
  };

  ChannelState& state(int src, int dst, std::uint64_t tag);

  cluster::Cluster& cluster_;
  int bucket_depth_;
  std::vector<std::unique_ptr<core::RvmaEndpoint>> endpoints_;
  std::map<std::tuple<int, int, std::uint64_t>, ChannelState> channels_;
  /// Aggregated from per-channel counters on demand: channel counters are
  /// single-writer on a sharded cluster, a shared total would race.
  mutable TransportStats stats_;
  std::uint64_t next_vaddr_ = 0x11FF0000;  // mailbox namespace
};

}  // namespace rvma::motifs
