#include "motifs/collectives.hpp"

namespace rvma::motifs {

std::vector<RankProgram> build_barrier(const BarrierConfig& config) {
  const int n = config.ranks;
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;

  std::vector<RankProgram> programs(n);
  for (int r = 0; r < n; ++r) {
    RankProgram& prog = programs[r];
    for (int iter = 0; iter < config.iterations; ++iter) {
      for (int k = 0; k < rounds; ++k) {
        const int to = (r + (1 << k)) % n;
        const int from = (r - (1 << k) % n + n) % n;
        // Tag by round only: each (src, dst, round) channel carries one
        // message per iteration.
        const std::uint64_t tag = static_cast<std::uint64_t>(k);
        prog.push_back({Op::Kind::kRecvPost, from, tag, config.bytes, 0});
        prog.push_back({Op::Kind::kSend, to, tag, config.bytes, 0});
        prog.push_back({Op::Kind::kRecvWait, from, tag, config.bytes, 0});
      }
    }
  }
  return programs;
}

std::vector<RankProgram> build_allreduce(const AllReduceConfig& config) {
  const int n = config.ranks;
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, config.bytes / static_cast<std::uint64_t>(n));
  const Time reduce_time = config.reduce_per_byte * chunk;

  std::vector<RankProgram> programs(n);
  for (int r = 0; r < n; ++r) {
    RankProgram& prog = programs[r];
    const int next = (r + 1) % n;
    const int prev = (r - 1 + n) % n;
    for (int iter = 0; iter < config.iterations; ++iter) {
      // Reduce-scatter then allgather: 2(n-1) ring steps.
      for (int step = 0; step < 2 * (n - 1); ++step) {
        const std::uint64_t tag = static_cast<std::uint64_t>(step);
        prog.push_back({Op::Kind::kRecvPost, prev, tag, chunk, 0});
        prog.push_back({Op::Kind::kSend, next, tag, chunk, 0});
        prog.push_back({Op::Kind::kRecvWait, prev, tag, chunk, 0});
        if (step < n - 1 && reduce_time > 0) {
          prog.push_back({Op::Kind::kCompute, -1, 0, 0, reduce_time});
        }
      }
    }
  }
  return programs;
}

std::vector<RankProgram> build_broadcast(const BroadcastConfig& config) {
  const int n = config.ranks;
  std::vector<RankProgram> programs(n);
  for (int r = 0; r < n; ++r) {
    RankProgram& prog = programs[r];
    // Rank relative to root; binomial tree on the relative id.
    const int rel = (r - config.root + n) % n;
    for (int iter = 0; iter < config.iterations; ++iter) {
      // Receive from parent (clear the lowest set bit of rel).
      if (rel != 0) {
        const int parent_rel = rel & (rel - 1);
        const int parent = (parent_rel + config.root) % n;
        prog.push_back({Op::Kind::kRecvPost, parent, 0, config.bytes, 0});
        prog.push_back({Op::Kind::kRecvWait, parent, 0, config.bytes, 0});
      }
      // Send to children: rel + 2^k for k above rel's lowest set bit.
      const int low = rel == 0 ? (1 << 30) : rel & -rel;
      for (int bit = 1; bit < low && rel + bit < n; bit <<= 1) {
        const int child = (rel + bit + config.root) % n;
        prog.push_back({Op::Kind::kSend, child, 0, config.bytes, 0});
      }
    }
  }
  return programs;
}

}  // namespace rvma::motifs
