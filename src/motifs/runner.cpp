#include "cluster/cluster.hpp"
#include "motifs/runner.hpp"

#include <cassert>
#include <map>

namespace rvma::motifs {

MotifRunner::MotifRunner(cluster::Cluster& cluster, Transport& transport,
                         std::vector<RankProgram> programs)
    : cluster_(cluster),
      transport_(transport),
      programs_(std::move(programs)),
      pc_(programs_.size(), 0) {
  assert(static_cast<int>(programs_.size()) <= cluster.num_nodes() &&
         "more ranks than nodes");
}

std::vector<Channel> MotifRunner::derive_channels(
    const std::vector<RankProgram>& programs) {
  std::map<std::tuple<int, int, std::uint64_t>, Channel> map;
  for (int rank = 0; rank < static_cast<int>(programs.size()); ++rank) {
    for (const Op& op : programs[rank]) {
      if (op.kind != Op::Kind::kSend) continue;
      auto key = std::make_tuple(rank, op.peer, op.tag);
      auto [it, inserted] = map.try_emplace(key);
      Channel& ch = it->second;
      if (inserted) {
        ch.src = rank;
        ch.dst = op.peer;
        ch.tag = op.tag;
        ch.bytes = op.bytes;
      }
      assert(ch.bytes == op.bytes &&
             "all messages on a channel must be the same size");
      ++ch.count;
    }
  }
  std::vector<Channel> out;
  out.reserve(map.size());
  for (auto& [key, ch] : map) out.push_back(ch);
  return out;
}

MotifResult MotifRunner::run() {
  auto& engine = cluster_.engine();
  unfinished_ = static_cast<int>(programs_.size());

  transport_.setup(derive_channels(programs_), [this, &engine] {
    result_.setup_done = engine.now();
    for (int rank = 0; rank < static_cast<int>(programs_.size()); ++rank) {
      advance(rank);
    }
  });

  engine.run();
  assert(unfinished_ == 0 && "motif deadlocked (ranks still blocked)");
  result_.engine_events = engine.executed_events();
  result_.transport = transport_.stats();
  return result_;
}

void MotifRunner::advance(int rank) {
  RankProgram& prog = programs_[rank];
  while (pc_[rank] < prog.size()) {
    const Op& op = prog[pc_[rank]];
    ++pc_[rank];
    ++result_.ops_executed;
    switch (op.kind) {
      case Op::Kind::kRecvPost:
        transport_.recv_post(rank, op.peer, op.tag);
        continue;  // non-blocking: keep executing

      case Op::Kind::kSend:
        transport_.send(rank, op.peer, op.tag, [this, rank] { advance(rank); });
        return;

      case Op::Kind::kRecvWait:
        transport_.recv_wait(rank, op.peer, op.tag,
                             [this, rank] { advance(rank); });
        return;

      case Op::Kind::kCompute:
        cluster_.engine().schedule(op.compute, [this, rank] { advance(rank); });
        return;
    }
  }
  finish_rank(rank);
}

void MotifRunner::finish_rank(int) {
  --unfinished_;
  if (cluster_.engine().now() > result_.makespan) {
    result_.makespan = cluster_.engine().now();
  }
}

}  // namespace rvma::motifs
