#include "cluster/cluster.hpp"
#include "motifs/runner.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace rvma::motifs {

MotifRunner::MotifRunner(cluster::Cluster& cluster, Transport& transport,
                         std::vector<RankProgram> programs)
    : cluster_(cluster),
      transport_(transport),
      programs_(std::move(programs)),
      pc_(programs_.size(), 0) {
  assert(static_cast<int>(programs_.size()) <= cluster.num_nodes() &&
         "more ranks than nodes");
}

std::vector<Channel> MotifRunner::derive_channels(
    const std::vector<RankProgram>& programs) {
  std::map<std::tuple<int, int, std::uint64_t>, Channel> map;
  for (int rank = 0; rank < static_cast<int>(programs.size()); ++rank) {
    for (const Op& op : programs[rank]) {
      if (op.kind != Op::Kind::kSend) continue;
      auto key = std::make_tuple(rank, op.peer, op.tag);
      auto [it, inserted] = map.try_emplace(key);
      Channel& ch = it->second;
      if (inserted) {
        ch.src = rank;
        ch.dst = op.peer;
        ch.tag = op.tag;
        ch.bytes = op.bytes;
      }
      assert(ch.bytes == op.bytes &&
             "all messages on a channel must be the same size");
      ++ch.count;
    }
  }
  std::vector<Channel> out;
  out.reserve(map.size());
  for (auto& [key, ch] : map) out.push_back(ch);
  return out;
}

MotifResult MotifRunner::run() {
  const std::size_t ranks = programs_.size();
  rank_ops_.assign(ranks, 0);
  rank_done_.assign(ranks, 0);
  rank_finish_.assign(ranks, 0);

  bool setup_fired = false;
  transport_.setup(derive_channels(programs_), [this, &setup_fired] {
    setup_fired = true;
    result_.setup_done = cluster_.engine().now();
    for (int rank = 0; rank < static_cast<int>(programs_.size()); ++rank) {
      advance(rank);
    }
  });

  if (!cluster_.sharded()) {
    cluster_.engine().run();
  } else {
    // Setup handshakes ping-pong with zero-delay callbacks (below any
    // lookahead), so they run in the merged serial-emulation mode; the
    // steady-state motif then runs windowed in parallel.
    sim::ShardedEngine& se = cluster_.sharded_engine();
    se.run_merged_until([&setup_fired] { return setup_fired; });
    assert(setup_fired && "transport setup never completed");
    se.run_windowed();
  }

  for (std::size_t rank = 0; rank < ranks; ++rank) {
    assert(rank_done_[rank] && "motif deadlocked (rank still blocked)");
    result_.ops_executed += rank_ops_[rank];
    result_.makespan = std::max(result_.makespan, rank_finish_[rank]);
  }
  for (int k = 0; k < cluster_.num_shards(); ++k) {
    result_.engine_events += cluster_.engine_for_shard(k).executed_events();
  }
  result_.transport = transport_.stats();
  return result_;
}

void MotifRunner::advance(int rank) {
  RankProgram& prog = programs_[rank];
  while (pc_[rank] < prog.size()) {
    const Op& op = prog[pc_[rank]];
    ++pc_[rank];
    ++rank_ops_[static_cast<std::size_t>(rank)];
    switch (op.kind) {
      case Op::Kind::kRecvPost:
        transport_.recv_post(rank, op.peer, op.tag);
        continue;  // non-blocking: keep executing

      case Op::Kind::kSend:
        transport_.send(rank, op.peer, op.tag, [this, rank] { advance(rank); });
        return;

      case Op::Kind::kRecvWait:
        transport_.recv_wait(rank, op.peer, op.tag,
                             [this, rank] { advance(rank); });
        return;

      case Op::Kind::kCompute:
        cluster_.engine_for(rank).schedule(op.compute,
                                           [this, rank] { advance(rank); });
        return;
    }
  }
  finish_rank(rank);
}

void MotifRunner::finish_rank(int rank) {
  rank_done_[static_cast<std::size_t>(rank)] = 1;
  rank_finish_[static_cast<std::size_t>(rank)] =
      cluster_.engine_for(rank).now();
}

}  // namespace rvma::motifs
