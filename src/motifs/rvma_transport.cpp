#include "cluster/cluster.hpp"
#include "motifs/rvma_transport.hpp"

#include <cassert>

namespace rvma::motifs {

RvmaTransport::RvmaTransport(cluster::Cluster& cluster,
                             const core::RvmaParams& params, int bucket_depth)
    : cluster_(cluster), bucket_depth_(bucket_depth) {
  endpoints_.reserve(cluster.num_nodes());
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    endpoints_.push_back(
        std::make_unique<core::RvmaEndpoint>(cluster.nic(node), params));
  }
}

RvmaTransport::ChannelState& RvmaTransport::state(int src, int dst,
                                                  std::uint64_t tag) {
  const auto it = channels_.find({src, dst, tag});
  assert(it != channels_.end() && "undeclared channel");
  return it->second;
}

void RvmaTransport::setup(const std::vector<Channel>& channels,
                          std::function<void()> ready) {
  for (const Channel& ch : channels) {
    ChannelState cs;
    cs.ch = ch;
    cs.vaddr = next_vaddr_++;
    cs.remaining_posts = ch.count;
    channels_.emplace(std::make_tuple(ch.src, ch.dst, ch.tag), std::move(cs));
  }
  // Receiver-side, purely local: create windows, fill buckets, install
  // the per-mailbox completion observers.
  for (auto& [key, cs_ref] : channels_) {
    ChannelState& cs = cs_ref;
    core::RvmaEndpoint& ep = *endpoints_[cs.ch.dst];
    ep.init_window(cs.vaddr, static_cast<std::int64_t>(cs.ch.bytes),
                   core::EpochType::kBytes);
    for (int i = 0; i < bucket_depth_ && cs.remaining_posts > 0; ++i) {
      ep.post_buffer_timing_only(cs.vaddr, cs.ch.bytes);
      --cs.remaining_posts;
    }
    ep.set_completion_observer(cs.vaddr, [this, &cs](void*, std::int64_t) {
      ++cs.completed;
      // Top the bucket back up — a local post, no coordination message.
      if (cs.remaining_posts > 0) {
        endpoints_[cs.ch.dst]->post_buffer_timing_only(cs.vaddr, cs.ch.bytes);
        --cs.remaining_posts;
      }
      if (!cs.waiters.empty() && cs.completed > cs.consumed) {
        ++cs.consumed;
        auto done = std::move(cs.waiters.front());
        cs.waiters.pop_front();
        done();
      }
    });
  }
  // No network traffic was required: channels are usable immediately.
  cluster_.engine().schedule(0, std::move(ready));
}

void RvmaTransport::recv_post(int, int, std::uint64_t) {
  // Buffers are managed locally by the bucket top-up in pump(); posting a
  // receive requires no action and, critically, no network message.
}

void RvmaTransport::send(int src, int dst, std::uint64_t tag,
                         std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  ++cs.sent;
  endpoints_[src]->put(dst, cs.vaddr, 0, nullptr, cs.ch.bytes,
                       std::move(done));
}

void RvmaTransport::recv_wait(int dst, int src, std::uint64_t tag,
                              std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  if (cs.completed > cs.consumed) {
    ++cs.consumed;
    cluster_.engine_for(dst).schedule(0, std::move(done));
    return;
  }
  cs.waiters.push_back(std::move(done));
}

const TransportStats& RvmaTransport::stats() const {
  stats_ = TransportStats{};
  for (const auto& [key, cs] : channels_) stats_.data_messages += cs.sent;
  return stats_;
}

}  // namespace rvma::motifs
