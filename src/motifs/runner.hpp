// Motif engine: compiles a communication motif into per-rank op programs
// and executes them over a Transport on the simulated cluster.
//
// This mirrors how SST's ember motifs work: each rank is a state machine
// issuing sends/receives/compute with real dependencies, so wavefront
// stalls, credit waits, and completion latencies show up in the makespan
// exactly as they would at scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "motifs/transport.hpp"
#include "cluster/cluster.hpp"

namespace rvma::motifs {

struct Op {
  enum class Kind {
    kSend,      ///< blocking send on (rank -> peer, tag)
    kRecvPost,  ///< non-blocking: arm the next message on (peer -> rank, tag)
    kRecvWait,  ///< block until that message completes
    kCompute,   ///< local work for `compute` sim-time
  };
  Kind kind = Kind::kCompute;
  int peer = -1;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  Time compute = 0;
};

/// One rank's program (ranks map 1:1 to cluster nodes).
using RankProgram = std::vector<Op>;

struct MotifResult {
  Time setup_done = 0;     ///< when transport setup (handshakes) finished
  Time makespan = 0;       ///< time of the last rank finishing
  std::uint64_t ops_executed = 0;
  std::uint64_t engine_events = 0;
  TransportStats transport;
};

class MotifRunner {
 public:
  MotifRunner(cluster::Cluster& cluster, Transport& transport,
              std::vector<RankProgram> programs);

  /// Derive channels from the programs (sends are the source of truth);
  /// exposed for tests.
  static std::vector<Channel> derive_channels(
      const std::vector<RankProgram>& programs);

  /// Execute to completion; runs the engine.
  MotifResult run();

 private:
  void advance(int rank);
  void finish_rank(int rank);

  cluster::Cluster& cluster_;
  Transport& transport_;
  std::vector<RankProgram> programs_;
  std::vector<std::size_t> pc_;
  // Per-rank aggregates instead of shared accumulators: on a sharded
  // cluster advance(rank) always executes on rank's shard thread (its
  // sends, waits, and computes are anchored on engine_for(rank)), so
  // per-rank elements are single-writer. Merged into MotifResult after
  // the run. rank_done_ is uint8_t, not vector<bool> — bit-packed
  // elements would share bytes across threads.
  std::vector<std::uint64_t> rank_ops_;
  std::vector<std::uint8_t> rank_done_;
  std::vector<Time> rank_finish_;
  MotifResult result_;
};

}  // namespace rvma::motifs
