#include "motifs/api_motifs.hpp"

#include <cassert>
#include <cstring>

namespace rvma::motifs {

namespace {

// Fixed integer virtual addresses (never pointer-derived: results must
// not depend on heap layout). Each family lives in its own range.
constexpr std::uint64_t kPageVaddrBase = 0x21A00000ULL;   // + owner rank
constexpr std::uint64_t kKvReplyBase = 0x22B00000ULL;     // + client rank
constexpr std::uint64_t kA2AVaddrBase = 0x23C00000ULL;    // + r*1024 + iter
/// KV requests target an address no server window claims, so they land
/// in the server's catch-all mailbox (paper §III-C).
constexpr std::uint64_t kKvRequestVaddr = 0x44D0DEADULL;

constexpr int kKeysPerServer = 64;

std::uint64_t splitmix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void write_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void write_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

// ---- RemotePagingMotif ----------------------------------------------

void RemotePagingMotif::setup() {
  const auto n = static_cast<std::size_t>(ranks());
  memory_.resize(n);
  frame_.resize(n);
  remaining_.assign(n, cfg_.faults);
  rng_.resize(n);
  args_.resize(n);
  for (int r = 0; r < ranks(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    args_[i] = Arg{this, r};
    rng_[i] = cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    // The rank's owned slice of distributed memory: one window whose
    // single posted buffer never completes (huge threshold) — it exists
    // to be read by peers' rvma_get()s.
    memory_[i].resize(cfg_.page_bytes *
                      static_cast<std::uint64_t>(cfg_.pages_per_rank));
    for (std::size_t j = 0; j < memory_[i].size(); ++j) {
      memory_[i][j] = static_cast<std::byte>((r * 131 + j * 7) & 0xff);
    }
    frame_[i].resize(cfg_.page_bytes);
    rvma_win win =
        rvma_init_window(ctx(r), kPageVaddrBase + static_cast<unsigned>(r),
                         nullptr, INT64_MAX / 2, RVMA_EPOCH_BYTES);
    assert(win != nullptr);
    rvma_post_buffer(win, memory_[i].data(),
                     static_cast<std::int64_t>(memory_[i].size()), nullptr);
  }
}

void RemotePagingMotif::start(int rank) { next_fault(rank); }

void RemotePagingMotif::next_fault(int rank) {
  if (remaining_[static_cast<std::size_t>(rank)] == 0) {
    finish_rank(rank);
    return;
  }
  engine_for(rank).schedule(cfg_.think, [this, rank] { do_fault(rank); });
}

std::uint64_t RemotePagingMotif::next_rand(int rank) {
  return splitmix64(&rng_[static_cast<std::size_t>(rank)]);
}

void RemotePagingMotif::do_fault(int rank) {
  const auto i = static_cast<std::size_t>(rank);
  --remaining_[i];
  add_ops(rank, 1);
  const std::uint64_t x = next_rand(rank);
  const int owner = static_cast<int>(x % static_cast<unsigned>(ranks()));
  const auto page = static_cast<std::int64_t>(
      (x >> 20) % static_cast<unsigned>(cfg_.pages_per_rank));
  if (owner == rank) {
    counter(rank, "paging.faults_local").inc();
    next_fault(rank);
    return;
  }
  counter(rank, "paging.faults_remote").inc();
  const rvma_status st = rvma_get_ex(
      ctx(rank), owner, kPageVaddrBase + static_cast<unsigned>(owner),
      page * static_cast<std::int64_t>(cfg_.page_bytes),
      static_cast<std::int64_t>(cfg_.page_bytes), frame_[i].data(),
      /*reply_virtual_addr=*/0,
      [](void* arg, void* /*buf*/, std::int64_t len) {
        auto* a = static_cast<Arg*>(arg);
        a->self->on_page(a->rank, len);
      },
      &args_[i]);
  assert(st == RVMA_SUCCESS);
  (void)st;
}

void RemotePagingMotif::on_page(int rank, std::int64_t len) {
  counter(rank, "paging.bytes_fetched")
      .inc(static_cast<std::uint64_t>(len));
  next_fault(rank);
}

// ---- KvStoreMotif ----------------------------------------------------

void KvStoreMotif::setup() {
  const auto n = static_cast<std::size_t>(ranks());
  const std::uint64_t rec = record_bytes();
  req_pool_.resize(n);
  reply_pool_.resize(n);
  reply_next_.assign(n, 0);
  store_.resize(n);
  server_win_.assign(n, nullptr);
  reply_bufs_.resize(n);
  req_slots_.resize(n);
  client_win_.assign(n, nullptr);
  issued_.assign(n, 0);
  done_.assign(n, 0);
  rng_.resize(n);
  args_.resize(n);
  // In-flight bounds size every pool: at most clients*outstanding
  // requests (and as many replies) can be anywhere in the system; the
  // margin covers the completion-write + wake lag before reposting.
  const std::size_t inflight = static_cast<std::size_t>(clients()) *
                               static_cast<std::size_t>(cfg_.outstanding);
  for (int r = 0; r < ranks(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    args_[i] = Arg{this, r};
    rng_[i] = cfg_.seed ^ (0x517cc1b727220a95ULL * (i + 1));
    if (r < cfg_.servers) {
      store_[i].resize(kKeysPerServer * cfg_.value_bytes);
      for (std::size_t j = 0; j < store_[i].size(); ++j) {
        store_[i][j] = static_cast<std::byte>((r * 37 + j) & 0xff);
      }
      server_win_[i] = rvma_init_catch_all(
          ctx(r), static_cast<std::int64_t>(rec), RVMA_EPOCH_BYTES);
      assert(server_win_[i] != nullptr);
      rvma_win_observe(server_win_[i],
                       [](void* arg, void* buf, std::int64_t len) {
                         auto* a = static_cast<Arg*>(arg);
                         a->self->on_request(a->rank, buf, len);
                       },
                       &args_[i]);
      const std::size_t bufs = inflight + 8;
      req_pool_[i].resize(bufs * rec);
      for (std::size_t b = 0; b < bufs; ++b) {
        rvma_post_buffer(server_win_[i], req_pool_[i].data() + b * rec,
                         static_cast<std::int64_t>(rec), nullptr);
      }
      reply_pool_[i].resize((inflight + 8) * rec);
    } else {
      client_win_[i] = rvma_init_window(
          ctx(r), kKvReplyBase + static_cast<unsigned>(r), nullptr,
          static_cast<std::int64_t>(rec), RVMA_EPOCH_BYTES);
      assert(client_win_[i] != nullptr);
      rvma_win_observe(client_win_[i],
                       [](void* arg, void* buf, std::int64_t len) {
                         auto* a = static_cast<Arg*>(arg);
                         a->self->on_reply(a->rank, buf, len);
                       },
                       &args_[i]);
      const auto lanes = static_cast<std::size_t>(cfg_.outstanding);
      reply_bufs_[i].resize((lanes + 2) * rec);
      for (std::size_t b = 0; b < lanes + 2; ++b) {
        rvma_post_buffer(client_win_[i], reply_bufs_[i].data() + b * rec,
                         static_cast<std::int64_t>(rec), nullptr);
      }
      req_slots_[i].resize(lanes * rec);
    }
  }
}

void KvStoreMotif::start(int rank) {
  if (rank < cfg_.servers) {
    // Servers are passive; their finish stamp is t=0 and the makespan
    // comes from the clients (whose last reply postdates every serve).
    finish_rank(rank);
    return;
  }
  if (cfg_.requests == 0) {
    finish_rank(rank);
    return;
  }
  const int lanes = std::min(cfg_.outstanding, cfg_.requests);
  for (int lane = 0; lane < lanes; ++lane) issue(rank, lane);
}

std::uint64_t KvStoreMotif::next_rand(int client) {
  return splitmix64(&rng_[static_cast<std::size_t>(client)]);
}

void KvStoreMotif::issue(int client, int lane) {
  const auto i = static_cast<std::size_t>(client);
  const std::uint64_t rec = record_bytes();
  const std::uint64_t x = next_rand(client);
  const int server =
      static_cast<int>(x % static_cast<unsigned>(cfg_.servers));
  const std::uint64_t key = (x >> 8) % kKeysPerServer;
  const std::uint32_t op = (x >> 16) & 1;  // 0 = get, 1 = put
  std::byte* slot = req_slots_[i].data() + static_cast<std::size_t>(lane) * rec;
  write_u32(slot, static_cast<std::uint32_t>(client));
  write_u32(slot + 4, op | (static_cast<std::uint32_t>(lane) << 8));
  write_u64(slot + 8, key);
  for (std::uint64_t j = 0; j < cfg_.value_bytes; ++j) {
    slot[16 + j] = static_cast<std::byte>((key + j + x) & 0xff);
  }
  ++issued_[i];
  add_ops(client, 1);
  counter(client, "kv.requests").inc();
  counter(client, op == 1 ? "kv.puts" : "kv.gets").inc();
  const rvma_status st =
      rvma_put(ctx(client), slot, server, kKvRequestVaddr,
               static_cast<std::int64_t>(rec));
  assert(st == RVMA_SUCCESS);
  (void)st;
}

void KvStoreMotif::on_request(int server, void* buf, std::int64_t len) {
  const auto i = static_cast<std::size_t>(server);
  const std::uint64_t rec = record_bytes();
  assert(len == static_cast<std::int64_t>(rec));
  auto* req = static_cast<std::byte*>(buf);
  const std::uint32_t client = read_u32(req);
  const std::uint32_t op_lane = read_u32(req + 4);
  const std::uint64_t key = read_u64(req + 8);
  std::byte* value = store_[i].data() + (key % kKeysPerServer) * cfg_.value_bytes;
  if ((op_lane & 0xff) == 1) {
    std::memcpy(value, req + 16, cfg_.value_bytes);
    counter(server, "kv.store_puts").inc();
  } else {
    counter(server, "kv.store_gets").inc();
  }
  // Build the reply (header echo + current value) in the next ring slot,
  // then recycle the request buffer into the catch-all pool. The ring is
  // larger than the in-flight bound, so a slot is never overwritten
  // before the NIC has taken ownership of its bytes.
  const std::size_t slots = reply_pool_[i].size() / rec;
  std::byte* reply = reply_pool_[i].data() + (reply_next_[i] % slots) * rec;
  ++reply_next_[i];
  std::memcpy(reply, req, 16);
  std::memcpy(reply + 16, value, cfg_.value_bytes);
  rvma_post_buffer(server_win_[i], req, static_cast<std::int64_t>(rec),
                   nullptr);
  engine_for(server).schedule(cfg_.server_compute, [this, server, i, client,
                                                    reply, rec] {
    counter(server, "kv.served").inc();
    add_ops(server, 1);
    const rvma_status st = rvma_put(
        ctx(server), reply, static_cast<std::int32_t>(client),
        kKvReplyBase + client, static_cast<std::int64_t>(rec));
    assert(st == RVMA_SUCCESS);
    (void)st;
  });
}

void KvStoreMotif::on_reply(int client, void* buf, std::int64_t len) {
  const auto i = static_cast<std::size_t>(client);
  const std::uint64_t rec = record_bytes();
  assert(len == static_cast<std::int64_t>(rec));
  auto* reply = static_cast<std::byte*>(buf);
  const int lane = static_cast<int>((read_u32(reply + 4) >> 8) & 0xff);
  rvma_post_buffer(client_win_[i], reply, static_cast<std::int64_t>(rec),
                   nullptr);
  ++done_[i];
  counter(client, "kv.replies").inc();
  if (issued_[i] < cfg_.requests) {
    issue(client, lane);
  } else if (done_[i] == cfg_.requests) {
    finish_rank(client);
  }
}

// ---- AllToAllMotif ---------------------------------------------------

namespace {
std::uint64_t a2a_vaddr(int rank, int iter) {
  return kA2AVaddrBase + static_cast<std::uint64_t>(rank) * 1024 +
         static_cast<std::uint64_t>(iter);
}
}  // namespace

void AllToAllMotif::setup() {
  const auto n = static_cast<std::size_t>(ranks());
  const std::uint64_t block = cfg_.bytes;
  const std::uint64_t row = block * static_cast<std::uint64_t>(ranks());
  send_.resize(n);
  recv_.resize(n);
  round_.assign(n, 0);
  recv_done_.resize(n);
  sent_done_.resize(n);
  args_.resize(n);
  for (int r = 0; r < ranks(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    send_[i].resize(block);
    for (std::uint64_t j = 0; j < block; ++j) {
      send_[i][j] = static_cast<std::byte>((r * 17 + j) & 0xff);
    }
    recv_[i].resize(row * static_cast<std::uint64_t>(cfg_.iterations));
    recv_done_[i].assign(static_cast<std::size_t>(cfg_.iterations), 0);
    sent_done_[i].assign(static_cast<std::size_t>(cfg_.iterations), 0);
    args_[i].resize(static_cast<std::size_t>(cfg_.iterations));
    for (int it = 0; it < cfg_.iterations; ++it) {
      args_[i][static_cast<std::size_t>(it)] = Arg{this, r, it};
      // One window per (rank, iteration): a fast peer's round-(it+1)
      // block lands in its own mailbox and can never prematurely fire
      // round it's epoch threshold.
      rvma_win win = rvma_init_window(
          ctx(r), a2a_vaddr(r, it), nullptr,
          static_cast<std::int64_t>(block) * (ranks() - 1),
          RVMA_EPOCH_BYTES);
      assert(win != nullptr);
      rvma_post_buffer(win, recv_[i].data() + static_cast<std::uint64_t>(it) * row,
                       static_cast<std::int64_t>(row), nullptr);
      rvma_win_observe(win,
                       [](void* arg, void* /*buf*/, std::int64_t /*len*/) {
                         auto* a = static_cast<Arg*>(arg);
                         a->self->on_part(a->rank, a->iter, /*recv=*/true);
                       },
                       &args_[i][static_cast<std::size_t>(it)]);
    }
  }
}

void AllToAllMotif::start(int rank) { begin_round(rank, 0); }

void AllToAllMotif::begin_round(int rank, int iter) {
  if (iter == cfg_.iterations) {
    finish_rank(rank);
    return;
  }
  const auto i = static_cast<std::size_t>(rank);
  const std::uint64_t block = cfg_.bytes;
  const std::uint64_t row = block * static_cast<std::uint64_t>(ranks());
  // Own block stays local: copy it straight into this round's row.
  std::memcpy(recv_[i].data() + static_cast<std::uint64_t>(iter) * row +
                  static_cast<std::uint64_t>(rank) * block,
              send_[i].data(), block);
  for (int q = 0; q < ranks(); ++q) {
    if (q == rank) continue;
    const rvma_status st = rvma_put_offset(
        ctx(rank), send_[i].data(), q, a2a_vaddr(q, iter),
        static_cast<std::int64_t>(static_cast<std::uint64_t>(rank) * block),
        static_cast<std::int64_t>(block));
    assert(st == RVMA_SUCCESS);
    (void)st;
  }
  add_ops(rank, static_cast<std::uint64_t>(ranks() - 1));
  rvma_flush_wait(ctx(rank), RVMA_ALL_PROCS,
                  [](void* arg) {
                    auto* a = static_cast<Arg*>(arg);
                    a->self->on_part(a->rank, a->iter, /*recv=*/false);
                  },
                  &args_[i][static_cast<std::size_t>(iter)]);
}

void AllToAllMotif::on_part(int rank, int iter, bool recv) {
  const auto i = static_cast<std::size_t>(rank);
  const auto it = static_cast<std::size_t>(iter);
  (recv ? recv_done_ : sent_done_)[i][it] = 1;
  try_advance(rank);
}

void AllToAllMotif::try_advance(int rank) {
  const auto i = static_cast<std::size_t>(rank);
  const int iter = round_[i];
  if (iter >= cfg_.iterations) return;
  const auto it = static_cast<std::size_t>(iter);
  if (recv_done_[i][it] == 0 || sent_done_[i][it] == 0) return;
  counter(rank, "a2a.rounds").inc();
  round_[i] = iter + 1;
  begin_round(rank, iter + 1);
}

}  // namespace rvma::motifs
