#include "motifs/halo3d.hpp"

namespace rvma::motifs {

std::vector<RankProgram> build_halo3d(const Halo3DConfig& config) {
  const Time iter_compute =
      config.compute_per_cell * static_cast<std::uint64_t>(config.nx) *
      config.ny * config.nz;

  std::vector<RankProgram> programs(config.ranks());
  for (int z = 0; z < config.pz; ++z) {
    for (int y = 0; y < config.py; ++y) {
      for (int x = 0; x < config.px; ++x) {
        const int rank = (z * config.py + y) * config.px + x;
        RankProgram& prog = programs[rank];

        struct Neighbor {
          int rank;
          std::uint64_t tag;
          std::uint64_t bytes;
        };
        std::vector<Neighbor> neighbors;
        auto add = [&](bool exists, int nrank, std::uint64_t tag,
                       std::uint64_t bytes) {
          if (exists) neighbors.push_back({nrank, tag, bytes});
        };
        add(x > 0, rank - 1, 0, config.face_bytes_x());
        add(x < config.px - 1, rank + 1, 1, config.face_bytes_x());
        add(y > 0, rank - config.px, 2, config.face_bytes_y());
        add(y < config.py - 1, rank + config.px, 3, config.face_bytes_y());
        add(z > 0, rank - config.px * config.py, 4, config.face_bytes_z());
        add(z < config.pz - 1, rank + config.px * config.py, 5,
            config.face_bytes_z());

        for (int iter = 0; iter < config.iterations; ++iter) {
          for (const Neighbor& n : neighbors) {
            prog.push_back({Op::Kind::kRecvPost, n.rank, n.tag, n.bytes, 0});
          }
          for (const Neighbor& n : neighbors) {
            // Send tags mirror: my +x face (tag 1 send direction) is the
            // neighbor's -x receive. Use the direction tag of the *flow*:
            // channel tag = direction as seen by the receiver.
            const std::uint64_t send_tag = n.tag ^ 1ULL;
            prog.push_back({Op::Kind::kSend, n.rank, send_tag, n.bytes, 0});
          }
          for (const Neighbor& n : neighbors) {
            prog.push_back({Op::Kind::kRecvWait, n.rank, n.tag, n.bytes, 0});
          }
          prog.push_back({Op::Kind::kCompute, -1, 0, 0, iter_compute});
        }
      }
    }
  }
  return programs;
}

}  // namespace rvma::motifs
