#include "motifs/sweep3d.hpp"

namespace rvma::motifs {

std::vector<RankProgram> build_sweep3d(const Sweep3DConfig& config) {
  const int pex = config.pex;
  const int pey = config.pey;
  const int steps = config.z_steps();
  const std::uint64_t xb = config.x_msg_bytes();
  const std::uint64_t yb = config.y_msg_bytes();
  const Time block_compute =
      config.compute_per_cell *
      static_cast<std::uint64_t>(config.nx) * config.ny * config.kba;

  // Corner directions (sx, sy): the four sweep quadrants; each runs twice
  // (+z and -z halves of the octant pairs).
  static constexpr int kDirs[4][2] = {{1, 1}, {-1, 1}, {1, -1}, {-1, -1}};

  std::vector<RankProgram> programs(config.ranks());
  for (int j = 0; j < pey; ++j) {
    for (int i = 0; i < pex; ++i) {
      const int rank = j * pex + i;
      RankProgram& prog = programs[rank];
      for (int octant = 0; octant < 8; ++octant) {
        const int* dir = kDirs[octant % 4];
        const int sx = dir[0], sy = dir[1];
        // Upstream / downstream neighbors for this sweep direction.
        const int up_x = (sx > 0) ? (i > 0 ? rank - 1 : -1)
                                  : (i < pex - 1 ? rank + 1 : -1);
        const int dn_x = (sx > 0) ? (i < pex - 1 ? rank + 1 : -1)
                                  : (i > 0 ? rank - 1 : -1);
        const int up_y = (sy > 0) ? (j > 0 ? rank - pex : -1)
                                  : (j < pey - 1 ? rank + pex : -1);
        const int dn_y = (sy > 0) ? (j < pey - 1 ? rank + pex : -1)
                                  : (j > 0 ? rank - pex : -1);
        const std::uint64_t tag = static_cast<std::uint64_t>(octant);

        for (int step = 0; step < steps; ++step) {
          if (up_x >= 0) prog.push_back({Op::Kind::kRecvPost, up_x, tag, xb, 0});
          if (up_y >= 0) prog.push_back({Op::Kind::kRecvPost, up_y, tag, yb, 0});
          if (up_x >= 0) prog.push_back({Op::Kind::kRecvWait, up_x, tag, xb, 0});
          if (up_y >= 0) prog.push_back({Op::Kind::kRecvWait, up_y, tag, yb, 0});
          prog.push_back({Op::Kind::kCompute, -1, 0, 0, block_compute});
          if (dn_x >= 0) prog.push_back({Op::Kind::kSend, dn_x, tag, xb, 0});
          if (dn_y >= 0) prog.push_back({Op::Kind::kSend, dn_y, tag, yb, 0});
        }
      }
    }
  }
  return programs;
}

}  // namespace rvma::motifs
