#include "motifs/api_motif.hpp"

#include <algorithm>
#include <cassert>

namespace rvma::motifs {

void ApiMotif::finish_rank(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  rank_done_[r] = 1;
  rank_finish_[r] = cluster_->engine_for(rank).now();
}

ApiMotifResult ApiMotif::run(cluster::Cluster& cluster) {
  cluster_ = &cluster;
  ranks_ = cluster.num_nodes();
  const auto n = static_cast<std::size_t>(ranks_);
  rank_ops_.assign(n, 0);
  rank_done_.assign(n, 0);
  rank_finish_.assign(n, 0);
  ctx_.resize(n);
  for (int r = 0; r < ranks_; ++r) {
    ctx_[static_cast<std::size_t>(r)] = rvma_initialize(&cluster, r);
  }
  setup();
  // Kick every rank off at t=0 on its own shard engine; all cross-rank
  // influence from here on travels through the network, which is what
  // keeps serial and sharded runs bit-identical.
  for (int r = 0; r < ranks_; ++r) {
    cluster.engine_for(r).schedule(0, [this, r] { start(r); });
  }
  if (cluster.sharded()) {
    cluster.sharded_engine().run_windowed();
  } else {
    cluster.engine().run();
  }
  ApiMotifResult res;
  for (int r = 0; r < ranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    assert(rank_done_[i] != 0 && "api motif rank never finished (deadlock)");
    res.ops_executed += rank_ops_[i];
    res.makespan = std::max(res.makespan, rank_finish_[i]);
  }
  for (auto& c : ctx_) {
    rvma_finalize(c);
    c = nullptr;
  }
  return res;
}

}  // namespace rvma::motifs
