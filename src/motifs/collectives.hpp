// Collective-communication motif builders (extension beyond the paper's
// two motifs): dissemination barrier, ring allreduce, binomial broadcast.
// Collectives are chains of small dependent messages, so per-message
// completion latency — exactly what RVMA shortens — dominates their cost.
#pragma once

#include "motifs/runner.hpp"

namespace rvma::motifs {

struct BarrierConfig {
  int ranks = 16;
  int iterations = 8;
  std::uint64_t bytes = 8;  ///< flag payload per signal
};

/// Dissemination barrier: ceil(log2 n) rounds; in round k every rank
/// signals (rank + 2^k) mod n and waits for (rank - 2^k) mod n.
std::vector<RankProgram> build_barrier(const BarrierConfig& config);

struct AllReduceConfig {
  int ranks = 16;
  std::uint64_t bytes = 1 * MiB;  ///< vector length being reduced
  int iterations = 2;
  Time reduce_per_byte = 0;  ///< local combine cost
};

/// Ring allreduce: 2(n-1) steps of size/n chunks around the ring
/// (reduce-scatter then allgather), the bandwidth-optimal algorithm.
std::vector<RankProgram> build_allreduce(const AllReduceConfig& config);

struct BroadcastConfig {
  int ranks = 16;
  int root = 0;
  std::uint64_t bytes = 64 * KiB;
  int iterations = 4;
};

/// Binomial-tree broadcast from `root`.
std::vector<RankProgram> build_broadcast(const BroadcastConfig& config);

}  // namespace rvma::motifs
