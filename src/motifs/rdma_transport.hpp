// RDMA-backed motif transport (the baseline the paper compares against).
//
// Setup: one buffer-negotiation handshake per channel — the initiator asks
// the target to allocate and register a region and ships back its address
// and length (Fig. 1 steps 1-3).
//
// Steady state per message:
//  * the receiver returns a credit (a small send) when it re-arms the
//    channel's buffer slot — RDMA targets must coordinate buffer reuse with
//    initiators because initiators "own" the remote region;
//  * the sender puts the payload once it holds a credit and continues when
//    its CQ reports local completion (target-NIC ack);
//  * completion at the target: under static routing, the last-byte polling
//    cheat; under adaptive routing, the InfiniBand-spec-compliant trailing
//    send/recv, observed through the shared recv CQ with its polling cost.
//
// RVMA removes every one of these control messages; this class exists so
// the benches can measure exactly how much they cost.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "motifs/transport.hpp"
#include "cluster/cluster.hpp"
#include "rdma/rdma.hpp"

namespace rvma::motifs {

class RdmaTransport final : public Transport {
 public:
  /// `ordered_network`: true when the fabric is statically routed (byte
  /// ordering holds), enabling the last-byte completion cheat. `slots`:
  /// registered buffer slots per channel (credit pipeline depth).
  RdmaTransport(cluster::Cluster& cluster, const rdma::RdmaParams& params,
                bool ordered_network, int slots = 1);

  std::string name() const override {
    return ordered_network_ ? "rdma-static" : "rdma-adaptive";
  }
  void setup(const std::vector<Channel>& channels,
             std::function<void()> ready) override;
  void recv_post(int dst, int src, std::uint64_t tag) override;
  void send(int src, int dst, std::uint64_t tag,
            std::function<void()> done) override;
  void recv_wait(int dst, int src, std::uint64_t tag,
                 std::function<void()> done) override;
  const TransportStats& stats() const override;

  rdma::RdmaEndpoint& endpoint(int node) { return *endpoints_[node]; }

 private:
  // The two halves of a ChannelState are touched from two different shard
  // threads on a sharded cluster: sender-side fields only from events on
  // shard_of(src) (send/issue_send and the credit arrivals pumped through
  // src's recv CQ), receiver-side fields only from events on shard_of(dst)
  // (recv_post/recv_wait, last-byte polls, completion sends through dst's
  // CQ). Stats counters are therefore split per side and aggregated in
  // stats(); a shared TransportStats total would race.
  struct ChannelState {
    Channel ch;
    std::uint32_t index = 0;
    // Sender side.
    rdma::RemoteBuffer remote;
    int credits = 0;
    std::uint64_t send_seq = 0;
    std::uint64_t sent = 0;
    std::uint64_t stalls = 0;
    std::uint64_t ctrl_src = 0;  ///< handshakes + trailing completion sends
    std::deque<std::function<void()>> credit_waiters;
    // Receiver side.
    std::uint64_t ctrl_dst = 0;  ///< credit sends
    std::uint64_t region_addr = 0;
    std::uint64_t arm_seq = 0;
    std::uint64_t credits_granted = 0;  ///< credits sent to the initiator
    std::uint64_t pending_posts = 0;    ///< recv_posts waiting for a slot
    std::uint64_t completed = 0;
    std::uint64_t consumed = 0;
    std::deque<std::function<void()>> waiters;
  };

  // Control-message immediate encoding: (type << 32) | channel index.
  static constexpr std::uint64_t kImmCredit = 1;
  static constexpr std::uint64_t kImmComplete = 2;

  ChannelState& state(int src, int dst, std::uint64_t tag);
  void issue_send(ChannelState& cs, std::function<void()> done);
  void on_channel_complete(ChannelState& cs);
  void grant_credit(ChannelState& cs);
  void pump_cq(int node);

  cluster::Cluster& cluster_;
  rdma::RdmaParams params_;
  bool ordered_network_;
  int slots_;
  std::vector<std::unique_ptr<rdma::RdmaEndpoint>> endpoints_;
  std::map<std::tuple<int, int, std::uint64_t>, ChannelState> channels_;
  std::vector<ChannelState*> by_index_;
  mutable TransportStats stats_;  ///< scratch for stats() aggregation
};

}  // namespace rvma::motifs
