// Shared driver for the Figure 7 / Figure 8 motif grids: one motif over
// every (topology, routing, link speed) x (RDMA, RVMA) combination.
//
// Each grid cell is an independent simulation with its own
// Cluster/Engine, seeded from its grid coordinates — so the grid can run
// serially or across all cores (exec::SweepExecutor) with bit-identical
// results, printed in deterministic grid order either way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "motifs/runner.hpp"
#include "net/topology.hpp"
#include "obs/metrics_io.hpp"

namespace rvma::motifs {

struct MotifBenchConfig {
  const char* figure = "";
  const char* motif = "";
  int nodes = 64;
  /// RDMA credit-pipeline depth (registered slots per channel). 2 =
  /// double buffering, the standard tuned-RDMA practice; the remaining
  /// RDMA penalty is then the fixed-latency coordination traffic.
  int rdma_slots = 2;
  /// Builds the per-rank programs for a cluster of exactly `nodes` ranks.
  /// Must be pure (no shared mutable state): parallel grid runs invoke it
  /// concurrently from several worker threads.
  std::function<std::vector<RankProgram>(int nodes)> build;
  std::vector<double> gbps = {100, 200, 400, 2000};
  /// Base experiment seed (--seed); per-run seeds derive from it and the
  /// run's grid coordinates via derive_run_seed().
  std::uint64_t seed = 2021;
  /// Simulated-time gauge sampling period per run; 0 disables sampling.
  /// Sampling observes the engine between events and schedules nothing,
  /// so enabling it changes no simulation result (see obs/sampler.hpp).
  Time sample_period = 0;
  /// Express cut-through ablation (--no-express): disabling it must not
  /// change any simulation result — makespans, stats, and metrics stay
  /// byte-identical, only wall-clock differs (DESIGN.md §8).
  bool express = true;
};

/// One (topology, routing) row of the paper's Figure 7/8 grids.
struct TopoCase {
  const char* name;
  net::TopologyKind kind;
  net::Routing routing;
};

/// The eight (topology, routing) rows the paper evaluates.
const std::vector<TopoCase>& figure_topo_cases();

/// Seed for one grid run, derived from the base seed and the run's grid
/// coordinates. Stable across job counts and execution orders — the heart
/// of the parallel sweep's determinism contract.
std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t case_index,
                              std::uint64_t speed_index, bool use_rvma);

/// Everything observable from one motif simulation, for table printing
/// and for the jobs=N vs jobs=1 determinism checks.
struct MotifRunOutput {
  Time makespan = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t route_cache_hits = 0;
  std::uint64_t engine_events = 0;
  /// Events recorded into the per-run sink; 0 when the run used the
  /// process-default sink (per-run attribution impossible there).
  std::uint64_t trace_events = 0;
  /// Full registry dump for the run (counters, gauge high-waters,
  /// histograms) — mergeable across the grid in grid order.
  obs::MetricsSnapshot metrics;
  /// Sampled gauge timeseries; empty unless bench.sample_period > 0.
  obs::Timeseries series;

  bool operator==(const MotifRunOutput&) const = default;
};

/// Run one (topology, routing, bandwidth, protocol) cell half. When
/// `trace_sink` is non-null it becomes the run's engine sink (per-run
/// isolation); null keeps the process default (Tracer::global()).
/// `eng_id` is stamped into every trace record ("eng" field) so analyses
/// can separate runs sharing one sink; grid runners pass the run index.
MotifRunOutput run_motif_once(const MotifBenchConfig& bench,
                              net::TopologyKind kind, net::Routing routing,
                              Bandwidth bw, bool use_rvma, std::uint64_t seed,
                              Tracer* trace_sink = nullptr,
                              std::int64_t eng_id = 0);

struct MotifCell {
  MotifRunOutput rdma;
  MotifRunOutput rvma;
  double speedup() const {
    return rvma.makespan == 0
               ? 0.0
               : static_cast<double>(rdma.makespan) /
                     static_cast<double>(rvma.makespan);
  }
  bool operator==(const MotifCell&) const = default;
};

/// Run the whole grid — cases x bench.gbps x {RDMA, RVMA} — with `jobs`
/// workers (<= 0: all cores; 1: inline serial). Cells come back in grid
/// order (row-major: case, then speed) regardless of completion order.
std::vector<MotifCell> run_motif_grid(const MotifBenchConfig& bench,
                                      const std::vector<TopoCase>& cases,
                                      int jobs);

/// Merge every grid cell's metrics (in grid order) and collect the
/// per-run timeseries into one self-describing metrics document. The
/// document deliberately carries no job count or wall-clock data, so it
/// is byte-identical at any --jobs (see obs/metrics_io.hpp).
obs::MetricsDoc build_motif_metrics_doc(const MotifBenchConfig& bench,
                                        const std::vector<TopoCase>& cases,
                                        const std::vector<MotifCell>& cells);

/// CLI driver shared by fig7_sweep3d / fig8_halo3d: parses --nodes,
/// --rdma-slots, --quick, --no-express, --jobs, --seed, --json,
/// --metrics, --metrics-period-us, --serial-wall-s; runs the grid and
/// prints the table plus a wall-clock footer.
int run_motif_figure(MotifBenchConfig bench, int argc, char** argv);

}  // namespace rvma::motifs
