// Incast motif: many clients sending to one server — the "many-to-one
// communication models such as those found in public internet client-server
// situations" the paper's abstract motivates. RDMA needs a negotiated
// region + credits per client; RVMA needs one mailbox with a bucket of
// buffers, exercising receiver-side resource management.
#pragma once

#include "motifs/runner.hpp"

namespace rvma::motifs {

struct IncastConfig {
  int clients = 15;              ///< ranks 1..clients send to rank 0
  int messages_per_client = 8;
  std::uint64_t bytes = 16 * KiB;
  Time client_compute = 500 * kNanosecond;  ///< work between sends

  int ranks() const { return clients + 1; }
};

std::vector<RankProgram> build_incast(const IncastConfig& config);

}  // namespace rvma::motifs
