// Transport abstraction the motif engine runs over.
//
// A Channel is a (sender, receiver, tag) stream of equally sized messages
// whose count is known before the motif starts — exactly the "operations
// on a buffer are predictable" condition the paper says makes RVMA's
// threshold completion definable (§III-B). Motifs declare their channels
// up front; the transport performs whatever setup its protocol requires
// (RDMA: buffer-negotiation handshakes; RVMA: local window init + buffer
// posting, no network traffic), then serves sends and receives.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rvma::motifs {

struct Channel {
  int src = -1;
  int dst = -1;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;  ///< per-message payload
  int count = 0;            ///< messages the motif will send on this channel

  bool operator==(const Channel&) const = default;
};

struct TransportStats {
  std::uint64_t data_messages = 0;
  std::uint64_t control_messages = 0;  ///< credits, completions, handshakes
  std::uint64_t credit_stalls = 0;     ///< sends that had to wait for credit
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::string name() const = 0;

  /// Declare every channel and run protocol setup; `ready` fires (in sim
  /// time) when all channels are usable.
  virtual void setup(const std::vector<Channel>& channels,
                     std::function<void()> ready) = 0;

  /// Receiver pre-arms the next incoming message on (src -> dst, tag).
  /// Local and non-blocking; RDMA uses it to return a credit to the sender.
  virtual void recv_post(int dst, int src, std::uint64_t tag) = 0;

  /// Sender transfers one message on the channel. `done` fires when the
  /// sender may continue (local completion semantics of the protocol).
  virtual void send(int src, int dst, std::uint64_t tag,
                    std::function<void()> done) = 0;

  /// Receiver blocks until the next message on the channel has fully
  /// arrived and the protocol's completion notification has been observed.
  virtual void recv_wait(int dst, int src, std::uint64_t tag,
                         std::function<void()> done) = 0;

  virtual const TransportStats& stats() const = 0;
};

}  // namespace rvma::motifs
