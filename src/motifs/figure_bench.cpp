#include "motifs/figure_bench.hpp"

#include <chrono>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/rvma_transport.hpp"

namespace rvma::motifs {

const std::vector<TopoCase>& figure_topo_cases() {
  static const std::vector<TopoCase> cases = {
      {"torus3d-static", net::TopologyKind::kTorus3D, net::Routing::kStatic},
      {"torus3d-adaptive", net::TopologyKind::kTorus3D, net::Routing::kAdaptive},
      {"fattree-static", net::TopologyKind::kFatTree, net::Routing::kStatic},
      {"fattree-adaptive", net::TopologyKind::kFatTree, net::Routing::kAdaptive},
      {"dragonfly-static", net::TopologyKind::kDragonfly, net::Routing::kStatic},
      {"dragonfly-adaptive", net::TopologyKind::kDragonfly,
       net::Routing::kAdaptive},
      {"hyperx-DOR", net::TopologyKind::kHyperX, net::Routing::kStatic},
      {"hyperx-adaptive", net::TopologyKind::kHyperX, net::Routing::kAdaptive},
  };
  return cases;
}

std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              std::uint64_t case_index,
                              std::uint64_t speed_index, bool use_rvma) {
  // Chain the coordinates through splitmix64: neighboring cells get
  // decorrelated streams, and a fixed (base, coordinates) tuple maps to
  // the same seed under any job count or execution order.
  // Each step folds the *mixed* output back into the state — XORing the
  // raw (linear) splitmix state instead would let nearby coordinates
  // cancel and collide.
  std::uint64_t state = base_seed;
  state = splitmix64(state) ^ case_index;
  state = splitmix64(state) ^ speed_index;
  state = splitmix64(state) ^ (use_rvma ? 0x5256ULL : 0x5244ULL);  // 'RV'/'RD'
  return splitmix64(state);
}

MotifRunOutput run_motif_once(const MotifBenchConfig& bench,
                              net::TopologyKind kind, net::Routing routing,
                              Bandwidth bw, bool use_rvma, std::uint64_t seed,
                              Tracer* trace_sink, std::int64_t eng_id) {
  net::NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = routing;
  cfg.nodes_hint = bench.nodes;
  cfg.link.bw = bw;
  cfg.link.latency = 100 * kNanosecond;
  cfg.switch_latency = 100 * kNanosecond;
  cfg.xbar_factor = 1.5;  // crossbar always 50% above link bw (paper §V-B1)
  cfg.seed = seed;
  cfg.express = bench.express;

  nic::Cluster cluster(cfg, nic::NicParams{});
  // Stamp the run id even when keeping the process-default sink: serial
  // grids funnel every run through Tracer::global(), and without distinct
  // "eng" fields trace analyses would mix (and double-count) the runs.
  cluster.engine().set_tracer(
      trace_sink != nullptr ? trace_sink : cluster.engine().tracer(), eng_id);
  if (bench.sample_period > 0) cluster.enable_sampling(bench.sample_period);
  auto programs = bench.build(bench.nodes);
  MotifResult result;
  if (use_rvma) {
    RvmaTransport transport(cluster, core::RvmaParams{});
    result = MotifRunner(cluster, transport, std::move(programs)).run();
  } else {
    RdmaTransport transport(cluster, rdma::RdmaParams{},
                            routing == net::Routing::kStatic, bench.rdma_slots);
    result = MotifRunner(cluster, transport, std::move(programs)).run();
  }

  const net::FabricStats& fabric = cluster.network().fabric().stats();
  MotifRunOutput out;
  out.makespan = result.makespan;
  out.packets_injected = fabric.packets_injected;
  out.packets_delivered = fabric.packets_delivered;
  out.route_cache_hits = fabric.route_cache_hits;
  out.engine_events = result.engine_events;
  out.trace_events =
      trace_sink != nullptr ? trace_sink->events_written() : 0;
  out.metrics = cluster.collect_metrics();
  if (bench.sample_period > 0) out.series = cluster.sampler().take_series();
  return out;
}

std::vector<MotifCell> run_motif_grid(const MotifBenchConfig& bench,
                                      const std::vector<TopoCase>& cases,
                                      int jobs) {
  const std::size_t speeds = bench.gbps.size();
  const std::size_t runs = cases.size() * speeds * 2;
  // Run index -> (case, speed, protocol) in row-major grid order; the
  // executor may finish them in any order, sweep_map restores this one.
  auto outputs = exec::sweep_map<MotifRunOutput>(
      jobs, runs, [&](std::size_t i) {
        const std::size_t case_index = i / (speeds * 2);
        const std::size_t speed_index = (i / 2) % speeds;
        const bool use_rvma = (i % 2) != 0;
        const TopoCase& tc = cases[case_index];
        MotifRunOutput out = run_motif_once(
            bench, tc.kind, tc.routing, Bandwidth::gbps(bench.gbps[speed_index]),
            use_rvma,
            derive_run_seed(bench.seed, case_index, speed_index, use_rvma),
            /*trace_sink=*/nullptr, /*eng_id=*/static_cast<std::int64_t>(i));
        // Label from grid coordinates, not completion order: the same run
        // gets the same label at any job count.
        out.series.label = std::string(tc.name) + "@" +
                           format_bandwidth(Bandwidth::gbps(bench.gbps[speed_index])) +
                           (use_rvma ? "/rvma" : "/rdma");
        return out;
      });

  std::vector<MotifCell> cells(cases.size() * speeds);
  for (std::size_t i = 0; i < runs; i += 2) {
    cells[i / 2].rdma = outputs[i];
    cells[i / 2].rvma = outputs[i + 1];
  }
  return cells;
}

obs::MetricsDoc build_motif_metrics_doc(const MotifBenchConfig& bench,
                                        const std::vector<TopoCase>& cases,
                                        const std::vector<MotifCell>& cells) {
  obs::MetricsDoc doc;
  doc.tool = bench.figure;
  doc.meta["motif"] = bench.motif;
  doc.meta["nodes"] = std::to_string(bench.nodes);
  doc.meta["rdma_slots"] = std::to_string(bench.rdma_slots);
  doc.meta["seed"] = std::to_string(bench.seed);
  doc.meta["grid_cases"] = std::to_string(cases.size());
  doc.meta["grid_speeds"] = std::to_string(bench.gbps.size());
  if (bench.sample_period > 0) {
    doc.meta["sample_period_us"] =
        std::to_string(bench.sample_period / kMicrosecond);
  }
  for (const MotifCell& cell : cells) {
    doc.totals.merge(cell.rdma.metrics);
    doc.totals.merge(cell.rvma.metrics);
    if (!cell.rdma.series.empty()) doc.timeseries.push_back(cell.rdma.series);
    if (!cell.rvma.series.empty()) doc.timeseries.push_back(cell.rvma.series);
  }
  return doc;
}

namespace {

void write_grid_json(const std::string& path, const MotifBenchConfig& bench,
                     const std::vector<TopoCase>& cases,
                     const std::vector<MotifCell>& cells, int jobs,
                     double wall_seconds, double serial_wall_seconds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"figure\": \"%s\",\n"
               "  \"motif\": \"%s\",\n"
               "  \"nodes\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"jobs\": %d,\n"
               "  \"host_cores\": %d,\n"
               "  \"wall_seconds\": %.3f,\n",
               bench.figure, bench.motif, bench.nodes,
               static_cast<unsigned long long>(bench.seed), jobs,
               exec::hardware_jobs(), wall_seconds);
  if (serial_wall_seconds > 0.0) {
    std::fprintf(out, "  \"speedup_vs_serial\": %.2f,\n",
                 serial_wall_seconds / wall_seconds);
  }
  std::fprintf(out, "  \"cells\": [\n");
  const std::size_t speeds = bench.gbps.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MotifCell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"case\": \"%s\", \"gbps\": %g, \"rdma_ms\": %.6f, "
        "\"rvma_ms\": %.6f, \"speedup\": %.4f, \"packets\": %llu}%s\n",
        cases[i / speeds].name, bench.gbps[i % speeds], to_ms(cell.rdma.makespan),
        to_ms(cell.rvma.makespan), cell.speedup(),
        static_cast<unsigned long long>(cell.rdma.packets_delivered +
                                        cell.rvma.packets_delivered),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int run_motif_figure(MotifBenchConfig bench, int argc, char** argv) {
  Cli cli(argc, argv);
  bench.nodes = static_cast<int>(cli.get_int("nodes", bench.nodes));
  bench.rdma_slots =
      static_cast<int>(cli.get_int("rdma-slots", bench.rdma_slots));
  bench.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(bench.seed)));
  const bool quick = cli.get_bool("quick", false);
  bench.express = !cli.get_bool("no-express", false);
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  const std::string json_path = cli.get("json", "");
  const std::string metrics_path = cli.get("metrics", "");
  const std::int64_t metrics_period_us =
      cli.get_int("metrics-period-us", 10);
  if (!metrics_path.empty() && metrics_period_us > 0) {
    bench.sample_period = static_cast<Time>(metrics_period_us) * kMicrosecond;
  }
  // Serial-run wall-clock handed in by tools/run_bench.sh so the parallel
  // run can report its speedup over the serial baseline.
  const double serial_wall_s = cli.get_double("serial-wall-s", 0.0);
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  if (quick) bench.gbps = {100, 2000};

  const std::vector<TopoCase>& cases = figure_topo_cases();
  const int effective_jobs = jobs <= 0 ? exec::hardware_jobs() : jobs;

  std::printf("%s: %s motif, RVMA vs RDMA across topologies, routing, and "
              "link speeds (%d ranks)\n",
              bench.figure, bench.motif, bench.nodes);
  std::printf("crossbar = 1.5x link bw, PCIe 150 ns (paper model "
              "parameters); seed %llu\n\n",
              static_cast<unsigned long long>(bench.seed));

  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<MotifCell> cells = run_motif_grid(bench, cases, jobs);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<std::string> headers = {"topology-routing"};
  for (double g : bench.gbps) {
    headers.push_back(format_bandwidth(Bandwidth::gbps(g)) + " rdma");
    headers.push_back("rvma");
    headers.push_back("speedup");
  }
  Table table(headers);

  RunningStat all_speedups;
  double best = 0.0;
  std::string best_case;
  const std::size_t speeds = bench.gbps.size();
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<std::string> row = {cases[ci].name};
    for (std::size_t si = 0; si < speeds; ++si) {
      const MotifCell& cell = cells[ci * speeds + si];
      const double speedup = cell.speedup();
      all_speedups.add(speedup);
      if (speedup > best) {
        best = speedup;
        best_case = std::string(cases[ci].name) + " @ " +
                    format_bandwidth(Bandwidth::gbps(bench.gbps[si]));
      }
      row.push_back(Table::num(to_ms(cell.rdma.makespan), 3) + " ms");
      row.push_back(Table::num(to_ms(cell.rvma.makespan), 3) + " ms");
      row.push_back(Table::num(speedup, 2) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\naverage RVMA speedup across all topologies/speeds: %.2fx\n",
              all_speedups.mean());
  std::printf("best case: %.2fx (%s)\n", best, best_case.c_str());
  std::printf("min speedup: %.2fx\n", all_speedups.min());
  std::printf("grid wall-clock: %.2f s (jobs=%d, host cores=%d)\n",
              wall_seconds, effective_jobs, exec::hardware_jobs());
  if (serial_wall_s > 0.0) {
    std::printf("speedup vs serial sweep: %.2fx (serial %.2f s)\n",
                serial_wall_s / wall_seconds, serial_wall_s);
  }
  if (!json_path.empty()) {
    write_grid_json(json_path, bench, cases, cells, effective_jobs,
                    wall_seconds, serial_wall_s);
  }
  if (!metrics_path.empty()) {
    const obs::MetricsDoc doc = build_motif_metrics_doc(bench, cases, cells);
    if (!obs::write_metrics_file(doc, metrics_path)) return 1;
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace rvma::motifs
