// Sweep3D motif (paper Fig. 7): a KBA wavefront sweep over a 2-D process
// decomposition, the "wave of communication happening over all of the
// processes". Latency sensitive: each rank's step depends on upstream
// neighbors, so per-message protocol overhead multiplies along the
// wavefront diagonal.
#pragma once

#include "motifs/runner.hpp"

namespace rvma::motifs {

struct Sweep3DConfig {
  int pex = 8;   ///< process grid x extent
  int pey = 8;   ///< process grid y extent
  int nx = 32;   ///< local grid cells per rank, x
  int ny = 32;   ///< local grid cells per rank, y
  int nz = 64;   ///< global z extent
  int kba = 8;   ///< z-block size (KBA pipelining depth)
  int vars = 1;  ///< variables per cell face
  Time compute_per_cell = 2 * kNanosecond;  ///< per-cell work per block

  int ranks() const { return pex * pey; }
  int z_steps() const { return (nz + kba - 1) / kba; }
  std::uint64_t x_msg_bytes() const {
    return static_cast<std::uint64_t>(ny) * kba * vars * sizeof(double);
  }
  std::uint64_t y_msg_bytes() const {
    return static_cast<std::uint64_t>(nx) * kba * vars * sizeof(double);
  }
};

/// Build per-rank programs for the 8-octant sweep (4 distinct corner
/// directions in the 2-D decomposition, each swept twice for +z / -z).
std::vector<RankProgram> build_sweep3d(const Sweep3DConfig& config);

}  // namespace rvma::motifs
