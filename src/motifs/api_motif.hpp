// ApiMotif: base class for application motifs written entirely against
// the public rvma.h surface.
//
// Where MotifRunner interprets per-rank op lists over a Transport,
// ApiMotif subclasses are real programs: each rank owns an rvma_ctx and
// drives windows, puts and gets from callbacks on its node's engine. The
// base class supplies the deterministic scaffolding the runner has — one
// context per rank, per-rank single-writer progress arrays, a t=0
// kickoff on each rank's shard engine, and the serial/sharded run split
// — so a subclass only writes setup() (local window/buffer creation, no
// network traffic) and start(rank) (the first simulated action).
//
// The spec's transport field is ignored for API motifs: the API layer
// *is* the transport, and building a second endpoint stack would hijack
// packet dispatch (Nic::register_proto replaces the handler per pid).
#pragma once

#include <cstdint>
#include <vector>

#include "api/rvma.h"
#include "cluster/cluster.hpp"

namespace rvma::motifs {

struct ApiMotifResult {
  Time makespan = 0;            ///< latest rank finish time
  std::uint64_t ops_executed = 0;  ///< sum of add_ops() across ranks
};

class ApiMotif {
 public:
  virtual ~ApiMotif() = default;

  /// Run the motif over every node of the cluster. Creates one context
  /// per rank, calls setup(), schedules start(rank) at t=0 on each
  /// rank's engine, runs the engine(s) to completion, and finalizes the
  /// contexts (which releases all window handles — see rvma.h lifetime).
  ApiMotifResult run(cluster::Cluster& cluster);

 protected:
  /// Purely local preparation: windows, captures, buffer pools. Runs
  /// before the engines start; must not send network traffic.
  virtual void setup() = 0;
  /// First action of `rank`, fired at t=0 on its shard engine.
  virtual void start(int rank) = 0;

  cluster::Cluster& cluster() { return *cluster_; }
  int ranks() const { return ranks_; }
  rvma_ctx ctx(int rank) { return ctx_[static_cast<std::size_t>(rank)]; }
  sim::Engine& engine_for(int rank) { return cluster_->engine_for(rank); }
  /// Metrics instrument on the rank's NIC registry — per-shard, merged
  /// order-invariantly by Cluster::collect_metrics().
  obs::Counter& counter(int rank, const char* name) {
    return cluster_->nic(rank).metrics().counter(name);
  }

  /// Single-writer per-rank progress (each cell touched only from its
  /// rank's shard thread, the MotifRunner discipline).
  void add_ops(int rank, std::uint64_t n) {
    rank_ops_[static_cast<std::size_t>(rank)] += n;
  }
  void finish_rank(int rank);
  bool finished(int rank) const {
    return rank_done_[static_cast<std::size_t>(rank)] != 0;
  }

 private:
  cluster::Cluster* cluster_ = nullptr;
  int ranks_ = 0;
  std::vector<rvma_ctx> ctx_;
  std::vector<std::uint64_t> rank_ops_;
  std::vector<std::uint8_t> rank_done_;  // not vector<bool>: shard-safe
  std::vector<Time> rank_finish_;
};

}  // namespace rvma::motifs
