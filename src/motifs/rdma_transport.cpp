#include "cluster/cluster.hpp"
#include "motifs/rdma_transport.hpp"

#include <cassert>

namespace rvma::motifs {

RdmaTransport::RdmaTransport(cluster::Cluster& cluster,
                             const rdma::RdmaParams& params,
                             bool ordered_network, int slots)
    : cluster_(cluster),
      params_(params),
      ordered_network_(ordered_network),
      slots_(slots < 1 ? 1 : slots) {
  endpoints_.reserve(cluster.num_nodes());
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    endpoints_.push_back(
        std::make_unique<rdma::RdmaEndpoint>(cluster.nic(node), params));
  }
}

RdmaTransport::ChannelState& RdmaTransport::state(int src, int dst,
                                                  std::uint64_t tag) {
  const auto it = channels_.find({src, dst, tag});
  assert(it != channels_.end() && "undeclared channel");
  return it->second;
}

void RdmaTransport::setup(const std::vector<Channel>& channels,
                          std::function<void()> ready) {
  for (const Channel& ch : channels) {
    ChannelState cs;
    cs.ch = ch;
    cs.index = static_cast<std::uint32_t>(by_index_.size());
    auto [it, inserted] = channels_.emplace(
        std::make_tuple(ch.src, ch.dst, ch.tag), std::move(cs));
    assert(inserted && "duplicate channel");
    by_index_.push_back(&it->second);
  }

  // Target-side middleware: allocate timing-only regions for handshakes and
  // record each channel's region address (needed to arm last-byte polls).
  for (auto& ep : endpoints_) {
    ep->serve_buffer_requests(
        [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; },
        [this](std::uint64_t tag, std::uint64_t addr, std::uint64_t) {
          by_index_[tag]->region_addr = addr;
        });
  }
  // Shared recv-CQ pump per node: credits and completion sends arrive here.
  for (int node = 0; node < cluster_.num_nodes(); ++node) {
    pump_cq(node);
  }

  // One negotiation handshake per channel, all in flight concurrently.
  auto pending = std::make_shared<int>(static_cast<int>(by_index_.size()));
  if (*pending == 0) {
    cluster_.engine().schedule(0, std::move(ready));
    return;
  }
  for (ChannelState* cs : by_index_) {
    cs->ctrl_src += 2;  // request + reply
    endpoints_[cs->ch.src]->request_buffer(
        cs->ch.dst, cs->ch.bytes * static_cast<std::uint64_t>(slots_),
        [cs, pending, ready](rdma::RemoteBuffer rb) {
          cs->remote = rb;
          if (--*pending == 0) ready();
        },
        cs->index);
  }
}

void RdmaTransport::pump_cq(int node) {
  endpoints_[node]->post_recv([this, node](const rdma::Completion& entry) {
    const std::uint64_t type = entry.imm >> 32;
    ChannelState& cs = *by_index_[entry.imm & 0xffffffffULL];
    if (type == kImmCredit) {
      ++cs.credits;
      if (!cs.credit_waiters.empty()) {
        auto resume = std::move(cs.credit_waiters.front());
        cs.credit_waiters.pop_front();
        resume();
      }
    } else if (type == kImmComplete) {
      on_channel_complete(cs);
    }
    pump_cq(node);
  });
}

void RdmaTransport::on_channel_complete(ChannelState& cs) {
  ++cs.completed;
  // A slot just freed up: grant a queued credit, if any.
  if (cs.pending_posts > 0) {
    --cs.pending_posts;
    grant_credit(cs);
  }
  if (!cs.waiters.empty() && cs.completed > cs.consumed) {
    ++cs.consumed;
    auto done = std::move(cs.waiters.front());
    cs.waiters.pop_front();
    done();
  }
}

void RdmaTransport::grant_credit(ChannelState& cs) {
  if (ordered_network_) {
    // Arm the last-byte poll for the slot this message will land in.
    // The credit below is what authorizes the sender, so the poll is
    // always armed before its byte can be written.
    const std::uint64_t slot = cs.arm_seq % static_cast<std::uint64_t>(slots_);
    ++cs.arm_seq;
    endpoints_[cs.ch.dst]->arm_last_byte_poll(
        cs.region_addr, slot * cs.ch.bytes + cs.ch.bytes,
        [this, &cs](Time, std::uint64_t) { on_channel_complete(cs); });
  }
  // Return a credit: the initiator owns the region, so the target must
  // tell it when a slot is safe to overwrite.
  ++cs.credits_granted;
  ++cs.ctrl_dst;
  endpoints_[cs.ch.dst]->send(cs.ch.src, (kImmCredit << 32) | cs.index);
}

void RdmaTransport::recv_post(int dst, int src, std::uint64_t tag) {
  ChannelState& cs = state(src, dst, tag);
  // A credit may only be outstanding while a registered slot is free;
  // posts beyond the slot depth queue until a message completes.
  if (cs.credits_granted - cs.completed <
      static_cast<std::uint64_t>(slots_)) {
    grant_credit(cs);
  } else {
    ++cs.pending_posts;
  }
}

void RdmaTransport::send(int src, int dst, std::uint64_t tag,
                         std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  if (cs.credits == 0) {
    ++cs.stalls;
    cs.credit_waiters.push_back([this, &cs, done = std::move(done)]() mutable {
      issue_send(cs, std::move(done));
    });
    return;
  }
  issue_send(cs, std::move(done));
}

void RdmaTransport::issue_send(ChannelState& cs, std::function<void()> done) {
  assert(cs.credits > 0);
  --cs.credits;
  ++cs.sent;
  const std::uint64_t slot = cs.send_seq % static_cast<std::uint64_t>(slots_);
  ++cs.send_seq;
  const int src = cs.ch.src;
  const int dst = cs.ch.dst;
  // The sender pipelines: it continues as soon as the put is handed to the
  // wire (multiple outstanding WRs, as a tuned RDMA application would).
  // The spec-compliant trailing completion send on adaptively routed
  // fabrics still waits for the put's local completion (target-NIC ack),
  // preserving the data-before-notification ordering guarantee.
  endpoints_[src]->put(
      cs.remote, slot * cs.ch.bytes, nullptr, cs.ch.bytes,
      [this, src, dst, idx = cs.index] {
        if (!ordered_network_) {
          // Local completion fires on src's shard thread: src-side counter.
          ++by_index_[idx]->ctrl_src;
          endpoints_[src]->send(dst, (kImmComplete << 32) | idx);
        }
      },
      std::move(done));
}

void RdmaTransport::recv_wait(int dst, int src, std::uint64_t tag,
                              std::function<void()> done) {
  ChannelState& cs = state(src, dst, tag);
  if (cs.completed > cs.consumed) {
    ++cs.consumed;
    cluster_.engine_for(dst).schedule(0, std::move(done));
    return;
  }
  cs.waiters.push_back(std::move(done));
}

const TransportStats& RdmaTransport::stats() const {
  stats_ = TransportStats{};
  for (const ChannelState* cs : by_index_) {
    stats_.data_messages += cs->sent;
    stats_.control_messages += cs->ctrl_src + cs->ctrl_dst;
    stats_.credit_stalls += cs->stalls;
  }
  return stats_;
}

}  // namespace rvma::motifs
