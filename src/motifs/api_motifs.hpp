// Application motifs written against the public rvma.h surface.
//
// Three programs exercising three corners of the API:
//  - RemotePagingMotif: page-fault handling by remote fetch — every rank
//    owns a slice of distributed memory in a captured window; a fault
//    picks a random (owner, page) and rvma_get()s the 4 KiB page into a
//    local frame (after Pilevisor's vsm_fetch_page).
//  - KvStoreMotif: N closed-loop clients hammer M servers with small
//    get/put records through the servers' catch-all mailboxes; replies
//    return as puts into per-client reply windows. The interesting NIC
//    ablation is nic::NicParams::doorbell_batch (RDMAbox request
//    merging), reached via the scenario's --doorbell-batch.
//  - AllToAllMotif: iterations of a full personalized exchange, one
//    receive window per (rank, iteration) so a fast peer's next-round
//    block can never inflate the current round's epoch threshold.
//
// Every vaddr is a fixed integer constant — results must never depend on
// heap layout — and all payloads are real bytes, deterministically
// filled, so data integrity is checkable end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "motifs/api_motif.hpp"

namespace rvma::motifs {

struct RemotePagingConfig {
  std::uint64_t page_bytes = 4096;  ///< one paper-MTU page per fetch
  int pages_per_rank = 64;          ///< owned slice of distributed memory
  int faults = 32;                  ///< faults injected per rank
  Time think = 200 * kNanosecond;   ///< compute between faults
  std::uint64_t seed = 2021;
};

class RemotePagingMotif : public ApiMotif {
 public:
  explicit RemotePagingMotif(const RemotePagingConfig& cfg) : cfg_(cfg) {}

 protected:
  void setup() override;
  void start(int rank) override;

 private:
  struct Arg {
    RemotePagingMotif* self;
    int rank;
  };
  void next_fault(int rank);
  void do_fault(int rank);
  void on_page(int rank, std::int64_t len);
  std::uint64_t next_rand(int rank);

  RemotePagingConfig cfg_;
  std::vector<std::vector<std::byte>> memory_;  ///< owned pages, read-only
  std::vector<std::vector<std::byte>> frame_;   ///< per-rank fetch frame
  std::vector<int> remaining_;
  std::vector<std::uint64_t> rng_;
  std::vector<Arg> args_;
};

struct KvStoreConfig {
  int servers = 1;
  int requests = 8;                ///< per client, closed loop
  std::uint64_t value_bytes = 64;  ///< record = 16-byte header + value
  int outstanding = 1;             ///< pipeline lanes per client
  Time server_compute = 100 * kNanosecond;
  std::uint64_t seed = 2021;
};

class KvStoreMotif : public ApiMotif {
 public:
  explicit KvStoreMotif(const KvStoreConfig& cfg) : cfg_(cfg) {}

 protected:
  void setup() override;
  void start(int rank) override;

 private:
  struct Arg {
    KvStoreMotif* self;
    int rank;
  };
  int clients() const { return ranks() - cfg_.servers; }
  std::uint64_t record_bytes() const { return 16 + cfg_.value_bytes; }
  void issue(int client, int lane);
  void on_request(int server, void* buf, std::int64_t len);
  void on_reply(int client, void* buf, std::int64_t len);
  std::uint64_t next_rand(int client);

  KvStoreConfig cfg_;
  // Server state (indexed by server rank).
  std::vector<std::vector<std::byte>> req_pool_;   ///< posted request bufs
  std::vector<std::vector<std::byte>> reply_pool_; ///< reply send ring
  std::vector<std::size_t> reply_next_;
  std::vector<std::vector<std::byte>> store_;      ///< the actual KV data
  std::vector<rvma_win> server_win_;
  // Client state (indexed by rank; only client ranks used).
  std::vector<std::vector<std::byte>> reply_bufs_; ///< posted reply bufs
  std::vector<std::vector<std::byte>> req_slots_;  ///< one slot per lane
  std::vector<rvma_win> client_win_;
  std::vector<int> issued_;
  std::vector<int> done_;
  std::vector<std::uint64_t> rng_;
  std::vector<Arg> args_;
};

struct AllToAllConfig {
  std::uint64_t bytes = 4096;  ///< block per (source, destination) pair
  int iterations = 1;
};

class AllToAllMotif : public ApiMotif {
 public:
  explicit AllToAllMotif(const AllToAllConfig& cfg) : cfg_(cfg) {}

 protected:
  void setup() override;
  void start(int rank) override;

 private:
  struct Arg {
    AllToAllMotif* self;
    int rank;
    int iter;
  };
  void begin_round(int rank, int iter);
  void on_part(int rank, int iter, bool recv);
  void try_advance(int rank);

  AllToAllConfig cfg_;
  std::vector<std::vector<std::byte>> send_;  ///< per-rank block, read-only
  std::vector<std::vector<std::byte>> recv_;  ///< iterations*ranks*bytes
  std::vector<int> round_;
  std::vector<std::vector<std::uint8_t>> recv_done_;
  std::vector<std::vector<std::uint8_t>> sent_done_;
  std::vector<std::vector<Arg>> args_;  ///< [rank][iter]
};

}  // namespace rvma::motifs
