// Halo3D motif (paper Fig. 8): 3-D domain decomposition; every iteration
// each rank exchanges its six block faces with its neighbors and computes.
// Bandwidth sensitive — face messages are large, so topology and link
// speed matter more than per-message control latency (which is exactly
// what Figure 8 shows relative to Figure 7).
#pragma once

#include "motifs/runner.hpp"

namespace rvma::motifs {

struct Halo3DConfig {
  int px = 4, py = 4, pz = 4;   ///< process grid extents
  int nx = 64, ny = 64, nz = 64;  ///< local cells per rank
  int vars = 4;                 ///< variables exchanged per cell
  int iterations = 4;
  Time compute_per_cell = kNanosecond / 2;

  int ranks() const { return px * py * pz; }
  std::uint64_t face_bytes_x() const {
    return static_cast<std::uint64_t>(ny) * nz * vars * sizeof(double);
  }
  std::uint64_t face_bytes_y() const {
    return static_cast<std::uint64_t>(nx) * nz * vars * sizeof(double);
  }
  std::uint64_t face_bytes_z() const {
    return static_cast<std::uint64_t>(nx) * ny * vars * sizeof(double);
  }
};

/// Build per-rank programs (non-periodic boundaries, like ember's halo3d).
std::vector<RankProgram> build_halo3d(const Halo3DConfig& config);

}  // namespace rvma::motifs
