#include "sockets/socket_stack.hpp"

#include <cassert>
#include <cstring>

namespace rvma::sockets {

using core::EpochType;
using core::Placement;

SocketStack::SocketStack(core::RvmaEndpoint& ep, const SocketParams& params)
    : ep_(ep), params_(params) {
  // Control mailbox: one SYN/ACK record per posted buffer (ops-threshold 1).
  ep_.init_window(kCtrlVaddr, 1, EpochType::kOps);
  for (int i = 0; i < params_.ctrl_ring; ++i) post_ctrl_buffer();
  ep_.set_completion_observer(
      kCtrlVaddr, [this](void* buf, std::int64_t len) {
        assert(len >= static_cast<std::int64_t>(sizeof(CtrlRecord)));
        (void)len;
        CtrlRecord record;
        std::memcpy(&record, buf, sizeof record);
        // Recycle the slot before handling (handling may send replies).
        ep_.post_buffer(kCtrlVaddr,
                        std::span<std::byte>(static_cast<std::byte*>(buf),
                                             sizeof(CtrlRecord)),
                        nullptr, nullptr);
        handle_ctrl(record);
      });
}

void SocketStack::post_ctrl_buffer() {
  ctrl_slots_.push_back(std::make_unique<CtrlRecord>());
  const Status st = ep_.post_buffer(
      kCtrlVaddr,
      std::span<std::byte>(
          reinterpret_cast<std::byte*>(ctrl_slots_.back().get()),
          sizeof(CtrlRecord)),
      nullptr, nullptr);
  assert(ok(st));
  (void)st;
}

void SocketStack::send_ctrl(NodeId to, const CtrlRecord& record) {
  std::vector<std::byte> payload(sizeof(CtrlRecord));
  std::memcpy(payload.data(), &record, sizeof record);
  ep_.put_owned(to, kCtrlVaddr, 0, std::move(payload));
}

void SocketStack::listen(std::uint16_t port,
                         std::function<void(ConnId)> on_accept) {
  listeners_[port] = std::move(on_accept);
}

void SocketStack::post_segment(Connection& conn) {
  auto& slot = conn.ring[conn.next_slot];
  conn.next_slot = (conn.next_slot + 1) % static_cast<int>(conn.ring.size());
  const Status st = ep_.post_buffer(
      conn.rx_vaddr, std::span<std::byte>(slot.data(), slot.size()), nullptr,
      nullptr);
  assert(ok(st));
  (void)st;
}

void SocketStack::setup_rx(ConnId id, Connection& conn) {
  conn.rx_vaddr = data_vaddr(id);
  conn.ring.assign(params_.ring_depth,
                   std::vector<std::byte>(params_.segment_bytes));
  ep_.init_window(conn.rx_vaddr,
                  static_cast<std::int64_t>(params_.segment_bytes),
                  EpochType::kBytes, Placement::kManaged);
  for (int i = 0; i < params_.ring_depth; ++i) post_segment(conn);
  ep_.set_completion_observer(conn.rx_vaddr,
                              [this, id](void* buf, std::int64_t len) {
                                on_segment_complete(id, buf, len);
                              });
  // Interrupt-driven receive: if an application is blocked in recv_wait
  // when data lands in a not-yet-full segment, claim the partial segment
  // immediately (the paper's inc_epoch stream-semantics use case).
  ep_.set_op_observer(conn.rx_vaddr,
                      [this, id](std::int64_t, std::uint64_t bytes) {
                        const auto it = conns_.find(id);
                        if (it == conns_.end()) return;
                        if (!it->second.waiters.empty() && bytes > 0) {
                          ++stats_.partial_claims;
                          ep_.inc_epoch(it->second.rx_vaddr);
                        }
                      });
}

void SocketStack::connect(NodeId server, std::uint16_t port,
                          std::function<void(ConnId)> on_connected) {
  const ConnId id = next_conn_++;
  Connection& conn = conns_[id];
  conn.peer_node = server;
  conn.on_connected = std::move(on_connected);
  setup_rx(id, conn);

  CtrlRecord syn;
  syn.kind = 1;
  syn.port = port;
  syn.peer_node = ep_.node();
  syn.peer_conn = id;
  send_ctrl(server, syn);
}

void SocketStack::handle_ctrl(const CtrlRecord& record) {
  if (record.kind == 1) {  // SYN
    const auto it = listeners_.find(static_cast<std::uint16_t>(record.port));
    if (it == listeners_.end()) return;  // no listener: connection refused

    const ConnId id = next_conn_++;
    Connection& conn = conns_[id];
    conn.peer_node = record.peer_node;
    conn.peer_conn = record.peer_conn;
    conn.established = true;
    setup_rx(id, conn);
    ++stats_.connections_accepted;

    CtrlRecord ack;
    ack.kind = 2;
    ack.peer_node = ep_.node();
    ack.peer_conn = id;
    ack.dst_conn = record.peer_conn;
    send_ctrl(record.peer_node, ack);
    it->second(id);
    return;
  }
  if (record.kind == 2) {  // ACK
    const auto it = conns_.find(record.dst_conn);
    if (it == conns_.end()) return;
    Connection& conn = it->second;
    conn.peer_conn = record.peer_conn;
    conn.established = true;
    ++stats_.connections_opened;
    if (conn.on_connected) {
      auto fn = std::move(conn.on_connected);
      fn(record.dst_conn);
    }
  }
}

Status SocketStack::send(ConnId conn_id, const std::byte* data,
                         std::uint64_t bytes) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return Status::kInvalidArg;
  Connection& conn = it->second;
  if (!conn.established) return Status::kNotReady;
  // A plain put: the receiver appends wherever its stream cursor is.
  std::vector<std::byte> copy(data, data + bytes);
  ep_.put_owned(conn.peer_node, data_vaddr(conn.peer_conn), 0,
                std::move(copy));
  stats_.bytes_sent += bytes;
  return Status::kOk;
}

void SocketStack::on_segment_complete(ConnId id, void* buf,
                                      std::int64_t len) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  ++stats_.segments_completed;
  stats_.bytes_received += static_cast<std::uint64_t>(len);
  if (len > 0) {
    conn.completed.emplace_back(static_cast<const std::byte*>(buf),
                                static_cast<std::uint64_t>(len));
  } else {
    // Empty claim: recycle the slot immediately.
    post_segment(conn);
  }
  if (!conn.waiters.empty() && available(id) > 0) {
    auto waiters = std::move(conn.waiters);
    conn.waiters.clear();
    for (auto& fn : waiters) fn();
  }
}

std::uint64_t SocketStack::available(ConnId conn_id) const {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& [ptr, len] : it->second.completed) total += len;
  return total - it->second.read_cursor;
}

std::uint64_t SocketStack::recv(ConnId conn_id, std::byte* dst,
                                std::uint64_t max) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return 0;
  Connection& conn = it->second;
  std::uint64_t copied = 0;
  while (copied < max && !conn.completed.empty()) {
    auto& [ptr, len] = conn.completed.front();
    const std::uint64_t take =
        std::min(max - copied, len - conn.read_cursor);
    std::memcpy(dst + copied, ptr + conn.read_cursor, take);
    copied += take;
    conn.read_cursor += take;
    if (conn.read_cursor == len) {
      // Segment fully drained: hand its memory back to the ring. The
      // pointer identifies the slot (posting order is ring order).
      conn.completed.pop_front();
      conn.read_cursor = 0;
      post_segment(conn);
    }
  }
  return copied;
}

void SocketStack::recv_wait(ConnId conn_id, std::function<void()> fn) {
  if (available(conn_id) > 0) {
    ep_.engine().schedule(0, std::move(fn));
    return;
  }
  Connection& conn = conns_[conn_id];
  conn.waiters.push_back(std::move(fn));
  // Data may already be sitting in a partial segment: claim it now.
  const core::Mailbox* mb = ep_.find_mailbox(conn.rx_vaddr);
  if (mb != nullptr && mb->has_active() && mb->active().bytes_received > 0) {
    ++stats_.partial_claims;
    ep_.inc_epoch(conn.rx_vaddr);
  }
}

Status SocketStack::claim_partial(ConnId conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return Status::kInvalidArg;
  const core::Mailbox* mb = ep_.find_mailbox(it->second.rx_vaddr);
  if (mb == nullptr || !mb->has_active()) return Status::kNoBuffer;
  if (mb->active().bytes_received == 0) return Status::kNotReady;
  ++stats_.partial_claims;
  return ep_.inc_epoch(it->second.rx_vaddr);
}

Status SocketStack::close(ConnId conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return Status::kInvalidArg;
  return ep_.close_window(it->second.rx_vaddr);
}

}  // namespace rvma::sockets
