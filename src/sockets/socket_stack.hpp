// Stream sockets over Receiver-Managed RVMA (paper §IV-B).
//
// The paper's alternative placement mode — the NIC counts received bytes
// and places them consecutively, ignoring offsets — exists to "efficiently
// support sockets-based network code with very minimal middleware
// support". This is that middleware:
//
//  * a connection is a pair of receiver-managed mailboxes, one per
//    direction, each holding a ring of segment buffers;
//  * send() is a plain RVMA put; bytes append at the receiver in arrival
//    order and spill across segment boundaries in hardware;
//  * a segment completes (byte threshold = segment size) and surfaces to
//    recv() with no per-message coordination; partially filled segments
//    can be claimed immediately with RVMA_Win_inc_epoch — the paper's
//    stream-semantics use case for that call;
//  * connection setup is one SYN/ACK exchange over a per-node control
//    mailbox (ops-threshold 1 per control record).
//
// One SocketStack instance runs per simulated node.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/endpoint.hpp"

namespace rvma::sockets {

using net::NodeId;

struct SocketParams {
  std::uint64_t segment_bytes = 16 * KiB;  ///< receive segment size
  int ring_depth = 8;                      ///< posted segments per conn
  int ctrl_ring = 16;                      ///< posted control records
};

using ConnId = std::uint32_t;

struct SocketStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t segments_completed = 0;
  std::uint64_t partial_claims = 0;  ///< inc_epoch pre-emptions
};

class SocketStack {
 public:
  SocketStack(core::RvmaEndpoint& ep, const SocketParams& params);

  NodeId node() const { return ep_.node(); }
  const SocketStats& stats() const { return stats_; }

  /// Accept connections on `port`; `on_accept` fires per new connection.
  void listen(std::uint16_t port, std::function<void(ConnId)> on_accept);

  /// Open a connection to `server`:`port`; `on_connected` fires when the
  /// ACK arrives and both directions are usable.
  void connect(NodeId server, std::uint16_t port,
               std::function<void(ConnId)> on_connected);

  /// Stream `bytes` to the peer. Fire-and-forget: the receiver manages
  /// its own segment ring; no credits, no rendezvous.
  Status send(ConnId conn, const std::byte* data, std::uint64_t bytes);

  /// Bytes currently consumable (completed segments + claimed partials).
  std::uint64_t available(ConnId conn) const;

  /// Consume up to `max` bytes into `dst`; returns the byte count.
  std::uint64_t recv(ConnId conn, std::byte* dst, std::uint64_t max);

  /// Invoke `fn` once available() becomes non-zero (immediately if it is).
  void recv_wait(ConnId conn, std::function<void()> fn);

  /// Claim whatever has arrived in the partially filled current segment
  /// (RVMA_Win_inc_epoch). Returns kNotReady if the segment is empty.
  Status claim_partial(ConnId conn);

  /// Close the receive direction: further peer traffic is NACKed.
  Status close(ConnId conn);

 private:
  struct CtrlRecord {
    std::uint32_t kind = 0;  // 1 = SYN, 2 = ACK
    std::uint32_t port = 0;
    std::int32_t peer_node = -1;
    std::uint32_t peer_conn = 0;
    std::uint32_t dst_conn = 0;  // meaningful for ACK
  };

  struct Connection {
    NodeId peer_node = -1;
    std::uint32_t peer_conn = 0;     ///< peer's ConnId (data mailbox key)
    bool established = false;
    std::uint64_t rx_vaddr = 0;
    // Receive side: ring of segments; completed ones queue for recv().
    std::vector<std::vector<std::byte>> ring;
    int next_slot = 0;
    std::deque<std::pair<const std::byte*, std::uint64_t>> completed;
    std::uint64_t read_cursor = 0;  ///< within completed.front()
    std::vector<std::function<void()>> waiters;
    std::function<void(ConnId)> on_connected;
  };

  static constexpr std::uint64_t kCtrlVaddr = 0x50C7C700;
  std::uint64_t data_vaddr(ConnId conn) const {
    return 0x50DA7A00ULL + conn;
  }

  void post_ctrl_buffer();
  void post_segment(Connection& conn);
  void setup_rx(ConnId id, Connection& conn);
  void handle_ctrl(const CtrlRecord& record);
  void send_ctrl(NodeId to, const CtrlRecord& record);
  void on_segment_complete(ConnId id, void* buf, std::int64_t len);

  core::RvmaEndpoint& ep_;
  SocketParams params_;
  SocketStats stats_;
  std::unordered_map<ConnId, Connection> conns_;
  std::unordered_map<std::uint16_t, std::function<void(ConnId)>> listeners_;
  ConnId next_conn_ = 1;
  std::vector<std::unique_ptr<CtrlRecord>> ctrl_slots_;
  std::deque<std::unique_ptr<std::vector<std::byte>>> tx_staging_;
};

}  // namespace rvma::sockets
