// MPI-style RMA windows over RVMA (paper §IV-E "Multi-Epoch RDMA" and
// §IV-F "Fault Tolerant RDMA").
//
// An RmaWindow exposes, on every rank, a fixed-size memory region that
// remote ranks access with put/get between fences. The mapping onto RVMA:
//
//  * each rank's window memory is a bucket of epoch buffers posted to one
//    mailbox; the *current* epoch's buffer is the active one;
//  * an access epoch closes with fence(): ranks exchange tiny op-count
//    records (puts into a dedicated fence mailbox whose ops-threshold is
//    the rank count), each target then waits — via the RVMA op counter,
//    no NIC polling — until every expected operation has landed, and
//    retires the epoch with inc_epoch;
//  * retired epoch buffers stay in the mailbox's ring, so MPIX_Rewind
//    (paper's sketch) is a direct read of the previous epoch's buffer.
//
// One RmaWindow object manages all ranks of the simulated job, mirroring
// how the motif transports are structured.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/endpoint.hpp"

namespace rvma::rma {

class RmaWindow {
 public:
  struct Config {
    std::uint64_t size = 0;       ///< window bytes per rank
    int epochs_retained = 4;      ///< rewind ring depth
    /// Start each new epoch as a copy of the previous epoch's contents
    /// (MPI window semantics: memory persists across epochs).
    bool copy_forward = true;
  };

  /// `endpoints[r]` is rank r's RVMA endpoint; `win_id` must be unique per
  /// window across the job (it seeds the mailbox vaddrs).
  RmaWindow(std::vector<core::RvmaEndpoint*> endpoints, std::uint64_t win_id,
            const Config& config);

  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  std::uint64_t size() const { return config_.size; }

  /// Current epoch buffer of `rank` (valid until the next fence).
  std::byte* data(int rank);
  const std::byte* data(int rank) const;

  /// Current epoch number (same on every rank between fences).
  std::int64_t epoch() const { return epoch_; }

  /// MPI_Put analog: one-sided write into `target`'s window.
  Status put(int origin, int target, std::uint64_t target_offset,
             const std::byte* src, std::uint64_t bytes);

  /// MPI_Get analog: one-sided read from `target`'s window. Completes via
  /// `done` (gets do not count toward the target's epoch).
  Status get(int origin, int target, std::uint64_t target_offset,
             std::byte* dst, std::uint64_t bytes, std::function<void()> done);

  /// Collective fence: every rank participates; `on_rank_done(rank)` fires
  /// as each rank's epoch closes (all expected ops landed + all peers'
  /// fence records arrived). Call once per epoch, then engine.run().
  void fence(std::function<void(int rank)> on_rank_done = {});

  /// MPIX_Rewind (paper §IV-F): the window contents as they were
  /// `epochs_back` completed epochs ago (1 = the last fenced epoch).
  Status rewind(int rank, int epochs_back, const std::byte** buffer,
                std::int64_t* bytes) const;

  /// Ops this rank has issued to `target` in the current epoch.
  std::int64_t pending_ops(int origin, int target) const;

 private:
  struct RankState {
    core::RvmaEndpoint* ep = nullptr;
    std::vector<std::vector<std::byte>> epoch_buffers;  // ring storage
    int next_buffer = 0;
    // Fence bookkeeping.
    std::vector<std::int64_t> ops_to_target;   // per-target, this epoch
    std::vector<std::int64_t> fence_records;   // recv area, one per origin
    std::vector<std::vector<std::int64_t>> record_payloads;  // send staging
    bool fence_msgs_done = false;
    std::int64_t expected_ops = -1;            // -1 until records complete
    std::int64_t ops_at_epoch_start = 0;
    std::int64_t ops_seen = 0;
    bool epoch_closed = false;
    std::uint64_t gets_in_flight = 0;
  };

  std::uint64_t data_vaddr(int rank) const { return win_id_ + 2u * rank; }
  std::uint64_t fence_vaddr(int rank) const { return win_id_ + 2u * rank + 1; }

  void post_epoch_buffer(int rank, const std::byte* copy_from);
  void try_close_epoch(int rank);

  Config config_;
  std::uint64_t win_id_;
  std::vector<RankState> ranks_;
  std::int64_t epoch_ = 0;
  int fences_outstanding_ = 0;
  std::function<void(int)> on_rank_done_;
  std::uint64_t next_get_ = 0;  ///< allocates unique get-reply mailboxes
};

}  // namespace rvma::rma
