#include "rma/rma_window.hpp"

#include <cassert>
#include <cstring>
#include <limits>

namespace rvma::rma {

using core::EpochType;

RmaWindow::RmaWindow(std::vector<core::RvmaEndpoint*> endpoints,
                     std::uint64_t win_id, const Config& config)
    : config_(config), win_id_(win_id) {
  assert(!endpoints.empty());
  assert(config.size > 0);
  const int n = static_cast<int>(endpoints.size());
  ranks_.resize(n);
  for (int r = 0; r < n; ++r) {
    RankState& rank = ranks_[r];
    rank.ep = endpoints[r];
    assert(config.epochs_retained <= rank.ep->params().retire_depth &&
           "rewind depth exceeds the endpoint's retire ring");

    // Epoch buffer ring: one per retained retired epoch plus the active
    // one, so rewind never aliases a reused buffer.
    const int ring = rank.ep->params().retire_depth + 1;
    rank.epoch_buffers.assign(
        ring, std::vector<std::byte>(config.size, std::byte{0}));
    rank.ops_to_target.assign(n, 0);
    rank.fence_records.assign(n, 0);
    rank.record_payloads.assign(n, std::vector<std::int64_t>(1, 0));

    // Data mailbox: completion only via inc_epoch at fence time.
    rank.ep->init_window(data_vaddr(r),
                         std::numeric_limits<std::int64_t>::max(),
                         EpochType::kBytes);
    post_epoch_buffer(r, nullptr);
    rank.ep->set_op_observer(
        data_vaddr(r), [this, r](std::int64_t ops, std::uint64_t) {
          ranks_[r].ops_seen = ops;
          try_close_epoch(r);
        });

    // Fence mailbox: one 8-byte op-count record per peer closes it.
    if (n > 1) {
      rank.ep->init_window(fence_vaddr(r), n - 1, EpochType::kOps);
      rank.ep->post_buffer(
          fence_vaddr(r),
          std::span<std::byte>(
              reinterpret_cast<std::byte*>(rank.fence_records.data()),
              rank.fence_records.size() * sizeof(std::int64_t)),
          nullptr, nullptr);
      rank.ep->set_completion_observer(
          fence_vaddr(r), [this, r](void*, std::int64_t) {
            RankState& rk = ranks_[r];
            std::int64_t expected = 0;
            for (std::int64_t c : rk.fence_records) expected += c;
            rk.expected_ops = expected;
            rk.fence_msgs_done = true;
            // Re-arm the fence mailbox for the next epoch.
            std::fill(rk.fence_records.begin(), rk.fence_records.end(), 0);
            rk.ep->post_buffer(
                fence_vaddr(r),
                std::span<std::byte>(
                    reinterpret_cast<std::byte*>(rk.fence_records.data()),
                    rk.fence_records.size() * sizeof(std::int64_t)),
                nullptr, nullptr);
            try_close_epoch(r);
          });
    }
  }
}

void RmaWindow::post_epoch_buffer(int rank, const std::byte* copy_from) {
  RankState& rk = ranks_[rank];
  auto& buf = rk.epoch_buffers[rk.next_buffer];
  rk.next_buffer = (rk.next_buffer + 1) % static_cast<int>(rk.epoch_buffers.size());
  if (copy_from != nullptr && config_.copy_forward) {
    std::memcpy(buf.data(), copy_from, config_.size);
  }
  const Status st = rk.ep->post_buffer(
      data_vaddr(rank), std::span<std::byte>(buf.data(), buf.size()), nullptr,
      nullptr);
  assert(ok(st));
  (void)st;
}

std::byte* RmaWindow::data(int rank) {
  const core::Mailbox* mb = ranks_[rank].ep->find_mailbox(data_vaddr(rank));
  assert(mb != nullptr && mb->has_active());
  return mb->active().base;
}

const std::byte* RmaWindow::data(int rank) const {
  return const_cast<RmaWindow*>(this)->data(rank);
}

Status RmaWindow::put(int origin, int target, std::uint64_t target_offset,
                      const std::byte* src, std::uint64_t bytes) {
  if (origin < 0 || origin >= num_ranks() || target < 0 ||
      target >= num_ranks()) {
    return Status::kInvalidArg;
  }
  if (target_offset + bytes > config_.size) return Status::kOverflow;
  if (fences_outstanding_ != 0) return Status::kNotReady;  // inside a fence
  ++ranks_[origin].ops_to_target[target];
  ranks_[origin].ep->put(ranks_[target].ep->node(), data_vaddr(target),
                         target_offset, src, bytes);
  return Status::kOk;
}

Status RmaWindow::get(int origin, int target, std::uint64_t target_offset,
                      std::byte* dst, std::uint64_t bytes,
                      std::function<void()> done) {
  if (origin < 0 || origin >= num_ranks() || target < 0 ||
      target >= num_ranks()) {
    return Status::kInvalidArg;
  }
  if (target_offset + bytes > config_.size) return Status::kOverflow;

  // Ephemeral reply mailbox: the get response is an ordinary RVMA put
  // landing directly in the caller's destination memory.
  core::RvmaEndpoint& ep = *ranks_[origin].ep;
  const std::uint64_t reply = win_id_ + 0x100000u + next_get_++;
  ep.init_window(reply, static_cast<std::int64_t>(bytes), EpochType::kBytes);
  const Status st = ep.post_buffer(
      reply, std::span<std::byte>(dst, bytes), nullptr, nullptr);
  if (!ok(st)) return st;
  ep.set_completion_observer(reply,
                             [&ep, reply, done = std::move(done)](
                                 void*, std::int64_t) {
                               ep.free_window(reply);
                               if (done) done();
                             });
  ep.get(ranks_[target].ep->node(), data_vaddr(target), target_offset, bytes,
         reply);
  return Status::kOk;
}

void RmaWindow::fence(std::function<void(int rank)> on_rank_done) {
  assert(fences_outstanding_ == 0 && "fence already in progress");
  on_rank_done_ = std::move(on_rank_done);
  fences_outstanding_ = num_ranks();

  const int n = num_ranks();
  if (n == 1) {
    ranks_[0].expected_ops = 0;
    ranks_[0].fence_msgs_done = true;
    try_close_epoch(0);
    return;
  }
  for (int r = 0; r < n; ++r) {
    RankState& rk = ranks_[r];
    for (int t = 0; t < n; ++t) {
      if (t == r) continue;
      // 8-byte op-count record, steered to slot `r` of t's fence buffer.
      rk.record_payloads[t][0] = rk.ops_to_target[t];
      rk.ep->put(ranks_[t].ep->node(), fence_vaddr(t),
                 static_cast<std::uint64_t>(r) * sizeof(std::int64_t),
                 reinterpret_cast<const std::byte*>(rk.record_payloads[t].data()),
                 sizeof(std::int64_t));
    }
  }
}

void RmaWindow::try_close_epoch(int rank) {
  RankState& rk = ranks_[rank];
  if (fences_outstanding_ == 0 || rk.epoch_closed) return;
  if (!rk.fence_msgs_done || rk.ops_seen < rk.expected_ops) return;

  // All expected operations have landed: retire the epoch buffer into the
  // rewind ring and surface the next one.
  const std::byte* old_data = data(rank);
  post_epoch_buffer(rank, old_data);
  const Status st = rk.ep->inc_epoch(data_vaddr(rank));
  assert(ok(st));
  (void)st;

  rk.epoch_closed = true;
  rk.ops_seen = 0;
  rk.expected_ops = -1;
  rk.fence_msgs_done = false;
  std::fill(rk.ops_to_target.begin(), rk.ops_to_target.end(), 0);

  if (on_rank_done_) on_rank_done_(rank);
  if (--fences_outstanding_ == 0) {
    ++epoch_;
    for (RankState& each : ranks_) each.epoch_closed = false;
  }
}

Status RmaWindow::rewind(int rank, int epochs_back, const std::byte** buffer,
                         std::int64_t* bytes) const {
  if (rank < 0 || rank >= num_ranks()) return Status::kInvalidArg;
  void* buf = nullptr;
  const Status st =
      ranks_[rank].ep->rewind(data_vaddr(rank), epochs_back, &buf, nullptr);
  if (!ok(st)) return st;
  if (buffer != nullptr) *buffer = static_cast<const std::byte*>(buf);
  // The retired buffer holds the rank's full window image for that epoch.
  if (bytes != nullptr) *bytes = static_cast<std::int64_t>(config_.size);
  return Status::kOk;
}

std::int64_t RmaWindow::pending_ops(int origin, int target) const {
  return ranks_[origin].ops_to_target[target];
}

}  // namespace rvma::rma
