/*
 * rvma_c_api.h — the paper's RVMA API (§III-C), C spelling. DEPRECATED.
 *
 * This header is now a thin compatibility wrapper over the public
 * handle-based surface in api/rvma.h; every call below delegates to the
 * rvma_* equivalent. New code should include api/rvma.h directly.
 *
 * Why deprecated: the paper's calls carry no endpoint/context argument,
 * so this shim selects a "current endpoint" per OS thread with
 * RVMA_Set_endpoint(). That thread-local breaks under the sharded engine
 * (--par-shards), where one worker thread drives the endpoints of many
 * nodes inside a single event window — "current endpoint" is a property
 * of the call, not the thread. api/rvma.h fixes this by making every
 * call take an explicit rvma_ctx (or a window handle bound to one).
 *
 * Compatibility notes:
 *  - RVMA_Set_endpoint(ep) wraps `ep` in a borrowing rvma_ctx the first
 *    time it is seen on the calling thread and caches it for the thread's
 *    lifetime (the contexts are intentionally never freed — same handle
 *    lifetime the original shim had).
 *  - RVMA_Get error behavior is tightened: a NULL `reply_virtual_addr`
 *    returns RVMA_ERR_INVALID and an address that does not name an
 *    already-initialized, posted local mailbox returns
 *    RVMA_ERR_NO_MAILBOX — both rejected at call time. The old shim
 *    issued the get anyway and silently dropped the reply; callers that
 *    ignore the returned status now perform no operation at all instead
 *    of a get whose reply vanished.
 *
 * Notification convention (paper §III-B): `notification_ptr` names the
 * first word of a cache-line-aligned, two-word region. On completion the
 * NIC writes the completed buffer's head address to word 0 and the
 * received length (int64_t) to word 1.
 */
#pragma once

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef int RVMA_Status;
/* Shared with api/rvma.h; identical values, guarded for coexistence. */
#ifndef RVMA_SUCCESS
#define RVMA_SUCCESS 0
#define RVMA_ERROR 1
#define RVMA_ERR_INVALID 2
#define RVMA_ERR_CLOSED 3
#define RVMA_ERR_NO_BUFFER 4
#define RVMA_ERR_NO_MAILBOX 5
#define RVMA_ERR_OVERFLOW 7
#endif

typedef enum { EPOCH_BYTES = 0, EPOCH_OPS = 1 } epoch_type;

/* Opaque window handle (wraps an api/rvma.h rvma_win). */
typedef struct RVMA_Win_s* RVMA_Win;

/* Destination: physical/logical network address for a node. The paper
 * passes `struct addr_in*`; node id stands in for NID/PID here. */
typedef struct rvma_addr_in {
  int32_t node;
} rvma_addr_in;

typedef uint64_t rvma_key_t;

/* DEPRECATED: bind the calling thread to an endpoint created by the C++
 * API (rvma::core::RvmaEndpoint). Pass NULL to unbind. Prefer
 * rvma_initialize()/rvma_wrap_endpoint() from api/rvma.h. */
void RVMA_Set_endpoint(void* endpoint);

/* Paper API ---------------------------------------------------------- */

RVMA_Win RVMA_Init_window(void* virtual_addr, rvma_key_t* key,
                          int64_t epoch_threshold, epoch_type type);

RVMA_Status RVMA_Post_buffer(void* buffer, int64_t size,
                             void** notification_ptr, RVMA_Win win);

RVMA_Status RVMA_Close_Win(RVMA_Win win);

RVMA_Status RVMA_Win_inc_epoch(RVMA_Win win);

int64_t RVMA_Win_get_epoch(RVMA_Win win);

int RVMA_Win_get_buf_ptrs(RVMA_Win win, void* notification_ptrs[], int count);

RVMA_Status RVMA_Put(void* send_buffer, int64_t size,
                     rvma_addr_in* dest_addr, void* virtual_addr);

/* Extensions the paper describes in prose ----------------------------- */

/* §IV-F hardware rewind: address/length of the buffer completed
 * `epochs_back` epochs ago (1 = most recent). */
RVMA_Status RVMA_Win_rewind(RVMA_Win win, int epochs_back, void** buffer,
                            int64_t* length);

/* Put at an explicit offset into the active buffer (§III-B example of
 * assembling a contiguous payload with offsets 0 and 32). */
RVMA_Status RVMA_Put_offset(void* send_buffer, int64_t size, int64_t offset,
                            rvma_addr_in* dest_addr, void* virtual_addr);

/* Get: fetch `size` bytes at `offset` from the remote mailbox's active
 * buffer; the response arrives as an ordinary put into the local
 * `reply_virtual_addr` mailbox, which must already be initialized and
 * posted — NULL is rejected with RVMA_ERR_INVALID and an unknown
 * address with RVMA_ERR_NO_MAILBOX, both before any request is sent
 * (the old implementation issued the get and dropped the reply). */
RVMA_Status RVMA_Get(int64_t size, int64_t offset, rvma_addr_in* src_addr,
                     void* virtual_addr, void* reply_virtual_addr);

/* Catch-all mailbox (§III-C): receives puts whose virtual address has no
 * mailbox. Placement is receiver-managed (append). */
RVMA_Win RVMA_Init_catch_all(int64_t epoch_threshold, epoch_type type);

/* Release the handle (does not close the window). */
void RVMA_Win_free(RVMA_Win win);

#ifdef __cplusplus
}
#endif
