// Core RVMA types: epoch semantics, placement modes, NIC parameters.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace rvma::core {

/// How the NIC interprets a window's epoch threshold (paper §III-C):
/// a count of bytes written, or of completed put operations. `kInherit` is
/// only meaningful on a PostedBuffer handed to Mailbox::post: it means "use
/// the window's configured type" and never survives a successful post.
enum class EpochType { kBytes, kOps, kInherit };

/// How incoming payload is placed into the active buffer (paper §IV-B):
///  * kSteered  — initiator-supplied offsets; packets land wherever their
///                offset says, independent of arrival order (HPC mode; the
///                mode the paper's evaluation uses).
///  * kManaged  — receiver-managed: offsets are ignored and bytes are
///                appended in arrival order (sockets-like streaming mode).
enum class Placement { kSteered, kManaged };

/// RVMA opcodes (protocol class nic::kProtoRvma).
enum RvmaOp : std::uint32_t {
  kRvmaPut = 1,   ///< data; hdr.addr = mailbox vaddr, hdr.offset = offset
  kRvmaNack = 2,  ///< control; hdr.addr = vaddr, hdr.imm = Status reason
  kRvmaGet = 3,   ///< control; reply is a kRvmaPut to hdr.imm2 (reply vaddr)
};

/// Hardware-model parameters for the RVMA NIC (paper §III-A, §IV).
struct RvmaParams {
  /// Single-lookup mailbox LUT access (no wildcards, one resolution).
  Time lut_lookup = 25 * kNanosecond;
  /// Monitor/MWait-style wakeup after the completion-pointer write lands.
  Time mwait_wake = 5 * kNanosecond;
  /// Marginal cost of the completion-pointer cache-line write becoming
  /// visible in host memory. The write is one more DMA pipelined directly
  /// behind the payload's data writes (which both RDMA and RVMA models
  /// treat as part of packet processing), so only the serialization of one
  /// extra line is charged, not a full PCIe round trip.
  Time completion_write = 40 * kNanosecond;
  /// On-NIC completion counters available before spilling to host memory.
  int nic_counters = 1024;
  /// Extra per-packet cost when a buffer's counter lives in host memory
  /// (paper: ~200 ns on today's PCIe, tens of ns on Gen 6+).
  Time host_counter_penalty = 200 * kNanosecond;
  /// Retired buffers retained per mailbox for multi-epoch rewind (§IV-F).
  int retire_depth = 8;
  /// NACK initiators whose puts were discarded (closed/missing mailbox).
  /// Paper: "NACKs may be disabled to handle DoS attacks".
  bool nacks_enabled = true;
  /// Control message size for NACK / get-request traffic.
  std::uint32_t ctrl_bytes = 64;
  /// Enforce per-window protection keys: puts carrying the wrong key for a
  /// keyed window are discarded (and NACKed). Windows initialized without
  /// a key accept any traffic. Models the key_t the paper's
  /// RVMA_Init_window hands back.
  bool enforce_keys = true;
};

/// Mailbox vaddr reserved for the catch-all window (paper §III-C mentions
/// catch-all mailboxes for messages whose vaddr has no posted buffers).
inline constexpr std::uint64_t kCatchAllVaddr = ~std::uint64_t{0};

struct RvmaStats {
  std::uint64_t puts_received = 0;        ///< fully arrived put operations
  std::uint64_t packets_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t completions = 0;          ///< hardware epoch completions
  std::uint64_t soft_completions = 0;     ///< inc_epoch pre-emptions
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t drops_no_mailbox = 0;
  std::uint64_t drops_closed = 0;
  std::uint64_t drops_no_buffer = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_bad_key = 0;
  std::uint64_t catch_all_packets = 0;
  std::uint64_t host_counter_packets = 0; ///< packets counted via host spill
};

}  // namespace rvma::core
