// RvmaEndpoint — the RVMA NIC protocol engine plus the host-side API from
// the paper (§III-C), and the Window convenience handle.
//
// Target side: mailbox LUT (single-lookup, no wildcards), per-buffer
// byte/op counters with a bounded on-NIC pool, the completion unit that
// writes (buffer head, length) to the completion pointer across PCIe, epoch
// advance with buffer switching, the retire ring for rewind, close/NACK,
// and an optional catch-all mailbox.
//
// Initiator side: RVMA_Put — no handshake, no stored remote buffer state;
// the destination is (node, mailbox vaddr, offset). And an RVMA get whose
// response arrives as an ordinary put into a local reply mailbox.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/mailbox.hpp"
#include "core/types.hpp"
#include "nic/nic.hpp"

namespace rvma::core {

using net::NodeId;

class RvmaEndpoint;

/// Host-side handle to one mailbox (the paper's RVMA_Win). Thin wrapper
/// over the endpoint API; copyable.
class Window {
 public:
  Window() = default;
  Window(RvmaEndpoint* ep, std::uint64_t vaddr) : ep_(ep), vaddr_(vaddr) {}

  bool valid() const { return ep_ != nullptr; }
  std::uint64_t vaddr() const { return vaddr_; }

  Status post(std::span<std::byte> buffer, void** notif_ptr,
              std::int64_t* len_ptr = nullptr);
  /// Timing-only post: models a buffer of `size` bytes without memory.
  Status post_timing_only(std::uint64_t size);
  Status close();
  Status inc_epoch();
  std::int64_t epoch() const;
  int get_buf_ptrs(void** out, int count) const;
  Status rewind(int epochs_back, void** buf, std::int64_t* len) const;
  /// Monitor/MWait-style wait for the next completion on this mailbox.
  void notify_wait(std::function<void(void* buf, std::int64_t len)> fn);
  std::uint64_t completions() const;

 private:
  RvmaEndpoint* ep_ = nullptr;
  std::uint64_t vaddr_ = 0;
};

class RvmaEndpoint {
 public:
  using NotifyFn = std::function<void(void* buf, std::int64_t len)>;
  using NackFn = std::function<void(std::uint64_t vaddr, Status reason)>;

  /// `pid` identifies this endpoint's process on the node (paper §III-C:
  /// NID/PID addressing); several endpoints with distinct pids can share
  /// one NIC.
  RvmaEndpoint(nic::Nic& nic, const RvmaParams& params, net::Pid pid = 0);

  NodeId node() const { return nic_.node(); }
  net::Pid pid() const { return pid_; }
  const RvmaParams& params() const { return params_; }
  const RvmaStats& stats() const { return stats_; }
  const CounterPool& counter_pool() const { return counters_; }
  sim::Engine& engine() { return engine_; }

  // ----------------------------------------------------------- target side
  /// RVMA_Init_window: create the mailbox for `vaddr` in the LUT.
  /// `threshold` is interpreted per `type` (bytes or operations).
  /// A non-zero `key` makes the window keyed: incoming puts must carry it
  /// (the paper's key_t, enforced when RvmaParams::enforce_keys is set).
  Window init_window(std::uint64_t vaddr, std::int64_t threshold,
                     EpochType type, Placement placement = Placement::kSteered,
                     std::uint64_t key = 0);

  /// RVMA_Post_buffer: append a buffer to the mailbox's bucket.
  /// On hardware completion the NIC writes the buffer head to *notif_ptr
  /// and the received length to *len_ptr (both may be null).
  Status post_buffer(std::uint64_t vaddr, std::span<std::byte> buffer,
                     void** notif_ptr, std::int64_t* len_ptr);
  Status post_buffer_timing_only(std::uint64_t vaddr, std::uint64_t size);

  /// RVMA_Close_win: further operations are discarded (and NACKed if
  /// enabled).
  Status close_window(std::uint64_t vaddr);

  /// Remove a mailbox from the LUT entirely, releasing its NIC counter and
  /// observers. Traffic to the vaddr afterwards behaves as "no mailbox"
  /// (catch-all or NACK). Used by middleware that creates ephemeral
  /// mailboxes (e.g. per-get reply windows).
  Status free_window(std::uint64_t vaddr);

  /// RVMA_Win_inc_epoch: software pre-empts hardware completion, handing
  /// the partially filled active buffer to the application now.
  Status inc_epoch(std::uint64_t vaddr);

  /// RVMA_Win_get_epoch.
  std::int64_t get_epoch(std::uint64_t vaddr) const;

  /// RVMA_Win_get_buf_ptrs: notification pointers of posted buffers.
  int get_buf_ptrs(std::uint64_t vaddr, void** out, int count) const;

  /// Hardware rewind (§IV-F): address/length of the buffer completed
  /// `epochs_back` epochs ago, from the mailbox's retire ring.
  Status rewind(std::uint64_t vaddr, int epochs_back, void** buf,
                std::int64_t* len) const;

  /// Wait for the next completion on `vaddr`; fires mwait_wake after the
  /// completion-pointer write lands in host memory. One-shot.
  void notify_wait(std::uint64_t vaddr, NotifyFn fn);

  /// Persistent observer invoked for *every* completion on `vaddr` (same
  /// timing as notify_wait). Middleware (e.g. the motif transport) uses
  /// this to avoid re-arm races between back-to-back completions.
  /// A null fn clears the observer.
  void set_completion_observer(std::uint64_t vaddr, NotifyFn fn);

  /// Null out the completion-pointer locations of buffers posted to
  /// `vaddr` that equal exactly (notif_ptr, len_ptr). api/rvma.h uses
  /// this when a context whose memory holds those words is finalized
  /// while the window — on a borrowed endpoint — stays live.
  void detach_notification(std::uint64_t vaddr, void** notif_ptr,
                           std::int64_t* len_ptr);

  /// Persistent observer invoked whenever a put *operation* fully arrives
  /// on `vaddr` (every packet placed), with the active buffer's operation
  /// and byte counters. This is host-side middleware state, not NIC
  /// hardware: the RMA layer uses it to detect "all expected ops arrived"
  /// without polling (paper §IV-E).
  using OpObserver = std::function<void(std::int64_t ops_received,
                                        std::uint64_t bytes_received)>;
  void set_op_observer(std::uint64_t vaddr, OpObserver fn);

  std::uint64_t completions(std::uint64_t vaddr) const;

  /// Install a catch-all window receiving traffic for unknown mailboxes.
  Window init_catch_all(std::int64_t threshold, EpochType type);

  // -------------------------------------------------------- initiator side
  /// RVMA_Put: one-sided transfer to (dst node, mailbox vaddr, offset).
  /// `on_sent` fires when the message has been handed to the wire (local
  /// buffer reusable).
  void put(NodeId dst, std::uint64_t vaddr, std::uint64_t offset,
           const std::byte* data, std::uint64_t bytes,
           std::function<void()> on_sent = {}, std::uint64_t key = 0,
           net::Pid dst_pid = 0);

  /// Put that takes ownership of a payload copy — for callers that reuse
  /// their buffer immediately (e.g. the sockets layer's stream sends).
  void put_owned(NodeId dst, std::uint64_t vaddr, std::uint64_t offset,
                 std::vector<std::byte> data,
                 std::function<void()> on_sent = {});

  /// RVMA get: ask `dst` to put `bytes` from its active buffer at `vaddr`
  /// (from `offset`) into this node's `reply_vaddr` mailbox. `on_sent`
  /// fires when the request has been handed to the wire (the initiator's
  /// local-completion point, mirroring put's).
  void get(NodeId dst, std::uint64_t vaddr, std::uint64_t offset,
           std::uint64_t bytes, std::uint64_t reply_vaddr,
           net::Pid dst_pid = 0, std::function<void()> on_sent = {});

  /// Observe NACKs for puts this node initiated.
  void on_nack(NackFn fn) { nack_fn_ = std::move(fn); }

  /// Test/diagnostic surface.
  const Mailbox* find_mailbox(std::uint64_t vaddr) const;

 private:
  void handle_packet(const net::Packet& pkt);
  void process_put(const net::Packet& pkt, Mailbox& mb, bool via_catch_all);
  void complete_active(Mailbox& mb, bool soft);
  void send_nack(NodeId to, net::Pid to_pid, std::uint64_t vaddr,
                 Status reason);
  void assign_counter(PostedBuffer& buf);

  nic::Nic& nic_;
  sim::Engine& engine_;
  RvmaParams params_;
  net::Pid pid_ = 0;
  RvmaStats stats_;
  CounterPool counters_;

  /// Registry mirrors of stats_ (shared across endpoints on one Cluster),
  /// resolved once from the NIC's registry at construction. The stats_
  /// accessors above stay per-instance and exact.
  obs::Counter* c_puts_;
  obs::Counter* c_packets_;
  obs::Counter* c_bytes_;
  obs::Counter* c_completions_;
  obs::Counter* c_soft_completions_;
  obs::Counter* c_nacks_sent_;
  obs::Counter* c_nacks_received_;
  obs::Counter* c_drops_no_mailbox_;
  obs::Counter* c_drops_closed_;
  obs::Counter* c_drops_no_buffer_;
  obs::Counter* c_drops_overflow_;
  obs::Counter* c_drops_bad_key_;
  obs::Counter* c_catch_all_;
  obs::Counter* c_host_counter_packets_;
  obs::Counter* c_buffers_posted_;
  obs::Counter* c_buffers_retired_;
  obs::Counter* c_counters_acquired_;
  obs::Counter* c_counters_released_;
  obs::Histogram* h_completion_latency_ns_;
  obs::Histogram* h_mailbox_ooo_degree_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Mailbox>> lut_;
  std::unordered_map<std::uint64_t, std::vector<NotifyFn>> waiters_;
  std::unordered_map<std::uint64_t, NotifyFn> observers_;
  std::unordered_map<std::uint64_t, OpObserver> op_observers_;
  // Per-message packet tracking for op counting (multi-packet puts count
  // as one operation when fully arrived).
  std::unordered_map<net::MsgId, std::uint32_t> msg_arrived_;
  NackFn nack_fn_;
};

}  // namespace rvma::core
