#include "core/rvma_c_api.h"

#include "core/endpoint.hpp"

using rvma::Status;
using rvma::core::EpochType;
using rvma::core::RvmaEndpoint;

struct RVMA_Win_s {
  RvmaEndpoint* ep;
  std::uint64_t vaddr;
};

namespace {

thread_local RvmaEndpoint* g_endpoint = nullptr;

RVMA_Status to_c(Status st) {
  switch (st) {
    case Status::kOk: return RVMA_SUCCESS;
    case Status::kInvalidArg: return RVMA_ERR_INVALID;
    case Status::kClosed: return RVMA_ERR_CLOSED;
    case Status::kNoBuffer: return RVMA_ERR_NO_BUFFER;
    case Status::kNoMailbox: return RVMA_ERR_NO_MAILBOX;
    case Status::kOverflow: return RVMA_ERR_OVERFLOW;
    default: return RVMA_ERROR;
  }
}

std::uint64_t vaddr_of(void* virtual_addr) {
  return reinterpret_cast<std::uint64_t>(virtual_addr);
}

}  // namespace

extern "C" {

void RVMA_Set_endpoint(void* endpoint) {
  g_endpoint = static_cast<RvmaEndpoint*>(endpoint);
}

RVMA_Win RVMA_Init_window(void* virtual_addr, rvma_key_t* key,
                          int64_t epoch_threshold, epoch_type type) {
  if (g_endpoint == nullptr || epoch_threshold <= 0) return nullptr;
  const std::uint64_t vaddr = vaddr_of(virtual_addr);
  g_endpoint->init_window(vaddr, epoch_threshold,
                          type == EPOCH_BYTES ? EpochType::kBytes
                                              : EpochType::kOps);
  // Protection key: derived from the vaddr; a hardware implementation
  // would randomize and verify it on incoming operations.
  if (key != nullptr) *key = vaddr * 0x9e3779b97f4a7c15ULL;
  return new RVMA_Win_s{g_endpoint, vaddr};
}

RVMA_Status RVMA_Post_buffer(void* buffer, int64_t size,
                             void** notification_ptr, RVMA_Win win) {
  if (win == nullptr || buffer == nullptr || size <= 0) {
    return RVMA_ERR_INVALID;
  }
  // Word 1 of the notification cache line receives the completed length.
  auto* len_ptr = notification_ptr == nullptr
                      ? nullptr
                      : reinterpret_cast<int64_t*>(notification_ptr + 1);
  return to_c(win->ep->post_buffer(
      win->vaddr,
      std::span<std::byte>(static_cast<std::byte*>(buffer),
                           static_cast<std::size_t>(size)),
      notification_ptr, len_ptr));
}

RVMA_Status RVMA_Close_Win(RVMA_Win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ep->close_window(win->vaddr));
}

RVMA_Status RVMA_Win_inc_epoch(RVMA_Win win) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ep->inc_epoch(win->vaddr));
}

int64_t RVMA_Win_get_epoch(RVMA_Win win) {
  if (win == nullptr) return -1;
  return win->ep->get_epoch(win->vaddr);
}

int RVMA_Win_get_buf_ptrs(RVMA_Win win, void* notification_ptrs[], int count) {
  if (win == nullptr || notification_ptrs == nullptr || count <= 0) return 0;
  return win->ep->get_buf_ptrs(win->vaddr, notification_ptrs, count);
}

RVMA_Status RVMA_Put(void* send_buffer, int64_t size, rvma_addr_in* dest_addr,
                     void* virtual_addr) {
  return RVMA_Put_offset(send_buffer, size, 0, dest_addr, virtual_addr);
}

RVMA_Status RVMA_Put_offset(void* send_buffer, int64_t size, int64_t offset,
                            rvma_addr_in* dest_addr, void* virtual_addr) {
  if (g_endpoint == nullptr || dest_addr == nullptr || size < 0 ||
      offset < 0) {
    return RVMA_ERR_INVALID;
  }
  g_endpoint->put(dest_addr->node, vaddr_of(virtual_addr),
                  static_cast<std::uint64_t>(offset),
                  static_cast<const std::byte*>(send_buffer),
                  static_cast<std::uint64_t>(size));
  return RVMA_SUCCESS;
}

RVMA_Status RVMA_Get(int64_t size, int64_t offset, rvma_addr_in* src_addr,
                     void* virtual_addr, void* reply_virtual_addr) {
  if (g_endpoint == nullptr || src_addr == nullptr || size <= 0 ||
      offset < 0) {
    return RVMA_ERR_INVALID;
  }
  g_endpoint->get(src_addr->node, vaddr_of(virtual_addr),
                  static_cast<std::uint64_t>(offset),
                  static_cast<std::uint64_t>(size),
                  vaddr_of(reply_virtual_addr));
  return RVMA_SUCCESS;
}

RVMA_Win RVMA_Init_catch_all(int64_t epoch_threshold, epoch_type type) {
  if (g_endpoint == nullptr || epoch_threshold <= 0) return nullptr;
  g_endpoint->init_catch_all(epoch_threshold,
                             type == EPOCH_BYTES ? EpochType::kBytes
                                                 : EpochType::kOps);
  return new RVMA_Win_s{g_endpoint, rvma::core::kCatchAllVaddr};
}

RVMA_Status RVMA_Win_rewind(RVMA_Win win, int epochs_back, void** buffer,
                            int64_t* length) {
  if (win == nullptr) return RVMA_ERR_INVALID;
  return to_c(win->ep->rewind(win->vaddr, epochs_back, buffer, length));
}

void RVMA_Win_free(RVMA_Win win) { delete win; }

}  // extern "C"
