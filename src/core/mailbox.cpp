#include "core/mailbox.hpp"

namespace rvma::core {

Status Mailbox::post(PostedBuffer buf) {
  if (closed_) return Status::kClosed;
  if (buf.size == 0) return Status::kInvalidArg;
  // 0 is the "unset" descriptor default; a negative count is a caller bug.
  if (buf.threshold < 0) return Status::kInvalidArg;
  if (buf.threshold == 0) {
    // Defaults path: inherit the window threshold. A caller-specified epoch
    // type is only consistent here if it matches the window's — the default
    // threshold is counted in the window's units — so reject mismatches
    // instead of silently overwriting the caller's choice.
    if (buf.type != EpochType::kInherit && buf.type != type_) {
      return Status::kInvalidArg;
    }
    buf.threshold = threshold_;
    buf.type = type_;
    if (buf.threshold <= 0) return Status::kInvalidArg;  // window has no default
  } else if (buf.type == EpochType::kInherit) {
    // Explicit threshold, inherited units.
    buf.type = type_;
  }
  // A window misconfigured with kInherit can never resolve a concrete type.
  if (buf.type == EpochType::kInherit) return Status::kInvalidArg;
  buf.bytes_received = 0;
  buf.ops_received = 0;
  buf.write_cursor = 0;
  queue_.push_back(buf);
  return Status::kOk;
}

std::optional<RetiredBuffer> Mailbox::retire_active(bool soft) {
  if (queue_.empty()) return std::nullopt;
  PostedBuffer& buf = queue_.front();
  RetiredBuffer retired{buf.base, buf.size, buf.bytes_received, epoch_, soft};
  queue_.pop_front();
  retired_.push_back(retired);
  if (static_cast<int>(retired_.size()) > retire_depth_) {
    retired_.erase(retired_.begin());
  }
  ++epoch_;
  ++completed_count_;
  return retired;
}

Status Mailbox::rewind(int epochs_back, RetiredBuffer* out) const {
  if (epochs_back < 1 || out == nullptr) return Status::kInvalidArg;
  if (static_cast<std::size_t>(epochs_back) > retired_.size()) {
    return Status::kNoBuffer;  // aged out of the retire ring
  }
  *out = retired_[retired_.size() - static_cast<std::size_t>(epochs_back)];
  return Status::kOk;
}

int Mailbox::collect_notif_ptrs(void** out, int count) const {
  int n = 0;
  for (const PostedBuffer& buf : queue_) {
    if (n >= count) break;
    out[n++] = static_cast<void*>(buf.notif_ptr);
  }
  return n;
}

}  // namespace rvma::core
