#include "core/endpoint.hpp"

#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace rvma::core {

namespace {
constexpr std::uint32_t kind_of(RvmaOp op) {
  return net::make_kind(nic::kProtoRvma, op);
}
}  // namespace

// ----------------------------------------------------------------- Window

Status Window::post(std::span<std::byte> buffer, void** notif_ptr,
                    std::int64_t* len_ptr) {
  return ep_->post_buffer(vaddr_, buffer, notif_ptr, len_ptr);
}
Status Window::post_timing_only(std::uint64_t size) {
  return ep_->post_buffer_timing_only(vaddr_, size);
}
Status Window::close() { return ep_->close_window(vaddr_); }
Status Window::inc_epoch() { return ep_->inc_epoch(vaddr_); }
std::int64_t Window::epoch() const { return ep_->get_epoch(vaddr_); }
int Window::get_buf_ptrs(void** out, int count) const {
  return ep_->get_buf_ptrs(vaddr_, out, count);
}
Status Window::rewind(int epochs_back, void** buf, std::int64_t* len) const {
  return ep_->rewind(vaddr_, epochs_back, buf, len);
}
void Window::notify_wait(std::function<void(void*, std::int64_t)> fn) {
  ep_->notify_wait(vaddr_, std::move(fn));
}
std::uint64_t Window::completions() const { return ep_->completions(vaddr_); }

// ----------------------------------------------------------- RvmaEndpoint

RvmaEndpoint::RvmaEndpoint(nic::Nic& nic, const RvmaParams& params,
                           net::Pid pid)
    : nic_(nic),
      engine_(nic.engine()),
      params_(params),
      pid_(pid),
      counters_(params.nic_counters) {
  obs::MetricsRegistry& m = nic_.metrics();
  c_puts_ = &m.counter("rvma.puts_received");
  c_packets_ = &m.counter("rvma.packets_received");
  c_bytes_ = &m.counter("rvma.bytes_received");
  c_completions_ = &m.counter("rvma.completions");
  c_soft_completions_ = &m.counter("rvma.soft_completions");
  c_nacks_sent_ = &m.counter("rvma.nacks_sent");
  c_nacks_received_ = &m.counter("rvma.nacks_received");
  c_drops_no_mailbox_ = &m.counter("rvma.drops_no_mailbox");
  c_drops_closed_ = &m.counter("rvma.drops_closed");
  c_drops_no_buffer_ = &m.counter("rvma.drops_no_buffer");
  c_drops_overflow_ = &m.counter("rvma.drops_overflow");
  c_drops_bad_key_ = &m.counter("rvma.drops_bad_key");
  c_catch_all_ = &m.counter("rvma.catch_all_packets");
  c_host_counter_packets_ = &m.counter("rvma.host_counter_packets");
  c_buffers_posted_ = &m.counter("rvma.buffers_posted");
  c_buffers_retired_ = &m.counter("rvma.buffers_retired");
  c_counters_acquired_ = &m.counter("rvma.nic_counters_acquired");
  c_counters_released_ = &m.counter("rvma.nic_counters_released");
  h_completion_latency_ns_ = &m.histogram("rvma.completion_latency_ns");
  h_mailbox_ooo_degree_ = &m.histogram("rvma.mailbox_ooo_degree");
  nic_.register_proto(
      nic::kProtoRvma,
      [this](const net::Packet& pkt) { handle_packet(pkt); }, pid_);
}

Window RvmaEndpoint::init_window(std::uint64_t vaddr, std::int64_t threshold,
                                 EpochType type, Placement placement,
                                 std::uint64_t key) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) {
    lut_.emplace(vaddr,
                 std::make_unique<Mailbox>(vaddr, threshold, type, placement,
                                           params_.retire_depth, key));
  }
  return Window(this, vaddr);
}

Window RvmaEndpoint::init_catch_all(std::int64_t threshold, EpochType type) {
  // Catch-all traffic has unpredictable offsets, so it always appends.
  return init_window(kCatchAllVaddr, threshold, type, Placement::kManaged);
}

Status RvmaEndpoint::post_buffer(std::uint64_t vaddr,
                                 std::span<std::byte> buffer, void** notif_ptr,
                                 std::int64_t* len_ptr) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  Mailbox& mb = *it->second;
  PostedBuffer buf;
  buf.base = buffer.data();
  buf.size = buffer.size();
  buf.notif_ptr = notif_ptr;
  buf.len_ptr = len_ptr;
  const Status st = mb.post(buf);
  if (ok(st)) {
    c_buffers_posted_->inc();
    if (mb.posted_count() == 1) assign_counter(mb.active());
  }
  return st;
}

Status RvmaEndpoint::post_buffer_timing_only(std::uint64_t vaddr,
                                             std::uint64_t size) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  Mailbox& mb = *it->second;
  PostedBuffer buf;
  buf.size = size;
  const Status st = mb.post(buf);
  if (ok(st)) {
    c_buffers_posted_->inc();
    if (mb.posted_count() == 1) assign_counter(mb.active());
  }
  return st;
}

Status RvmaEndpoint::close_window(std::uint64_t vaddr) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  it->second->close();
  return Status::kOk;
}

Status RvmaEndpoint::free_window(std::uint64_t vaddr) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  Mailbox& mb = *it->second;
  // Release the active buffer's on-NIC counter, if it holds one.
  if (mb.has_active() && mb.active().counter_on_nic) {
    counters_.release();
    c_counters_released_->inc();
  }
  // The mailbox's still-posted buffers are discarded with it; account them
  // as retired so the posted-buffers level (posted - retired) returns to 0.
  c_buffers_retired_->inc(mb.posted_count());
  lut_.erase(it);
  waiters_.erase(vaddr);
  observers_.erase(vaddr);
  op_observers_.erase(vaddr);
  return Status::kOk;
}

Status RvmaEndpoint::inc_epoch(std::uint64_t vaddr) {
  auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  Mailbox& mb = *it->second;
  if (!mb.has_active()) return Status::kNoBuffer;
  complete_active(mb, /*soft=*/true);
  return Status::kOk;
}

std::int64_t RvmaEndpoint::get_epoch(std::uint64_t vaddr) const {
  const auto it = lut_.find(vaddr);
  return it == lut_.end() ? -1 : it->second->epoch();
}

int RvmaEndpoint::get_buf_ptrs(std::uint64_t vaddr, void** out,
                               int count) const {
  const auto it = lut_.find(vaddr);
  if (it == lut_.end()) return 0;
  return it->second->collect_notif_ptrs(out, count);
}

Status RvmaEndpoint::rewind(std::uint64_t vaddr, int epochs_back, void** buf,
                            std::int64_t* len) const {
  const auto it = lut_.find(vaddr);
  if (it == lut_.end()) return Status::kNoMailbox;
  RetiredBuffer retired;
  const Status st = it->second->rewind(epochs_back, &retired);
  if (!ok(st)) return st;
  if (buf != nullptr) *buf = retired.base;
  if (len != nullptr) *len = static_cast<std::int64_t>(retired.bytes_received);
  return Status::kOk;
}

void RvmaEndpoint::notify_wait(std::uint64_t vaddr, NotifyFn fn) {
  waiters_[vaddr].push_back(std::move(fn));
}

void RvmaEndpoint::set_completion_observer(std::uint64_t vaddr, NotifyFn fn) {
  // A null fn clears the observer (erase, never store an empty function:
  // the completion unit invokes whatever it finds).
  if (fn) {
    observers_[vaddr] = std::move(fn);
  } else {
    observers_.erase(vaddr);
  }
}

void RvmaEndpoint::detach_notification(std::uint64_t vaddr, void** notif_ptr,
                                       std::int64_t* len_ptr) {
  const auto it = lut_.find(vaddr);
  if (it != lut_.end()) it->second->detach_notifications(notif_ptr, len_ptr);
}

void RvmaEndpoint::set_op_observer(std::uint64_t vaddr, OpObserver fn) {
  op_observers_[vaddr] = std::move(fn);
}

std::uint64_t RvmaEndpoint::completions(std::uint64_t vaddr) const {
  const auto it = lut_.find(vaddr);
  return it == lut_.end() ? 0 : it->second->completed_count();
}

const Mailbox* RvmaEndpoint::find_mailbox(std::uint64_t vaddr) const {
  const auto it = lut_.find(vaddr);
  return it == lut_.end() ? nullptr : it->second.get();
}

void RvmaEndpoint::put(NodeId dst, std::uint64_t vaddr, std::uint64_t offset,
                       const std::byte* data, std::uint64_t bytes,
                       std::function<void()> on_sent, std::uint64_t key,
                       net::Pid dst_pid) {
  net::Message msg;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.data = data;
  msg.hdr.kind = kind_of(kRvmaPut);
  msg.hdr.dst_pid = dst_pid;
  msg.hdr.src_pid = pid_;
  msg.hdr.addr = vaddr;
  msg.hdr.offset = offset;
  msg.hdr.imm = key;
  nic_.send(std::move(msg), std::move(on_sent));
}

void RvmaEndpoint::put_owned(NodeId dst, std::uint64_t vaddr,
                             std::uint64_t offset, std::vector<std::byte> data,
                             std::function<void()> on_sent) {
  net::Message msg;
  msg.dst = dst;
  msg.bytes = data.size();
  msg.owned = std::make_shared<const std::vector<std::byte>>(std::move(data));
  msg.data = msg.owned->data();
  msg.hdr.kind = kind_of(kRvmaPut);
  msg.hdr.src_pid = pid_;
  msg.hdr.addr = vaddr;
  msg.hdr.offset = offset;
  nic_.send(std::move(msg), std::move(on_sent));
}

void RvmaEndpoint::get(NodeId dst, std::uint64_t vaddr, std::uint64_t offset,
                       std::uint64_t bytes, std::uint64_t reply_vaddr,
                       net::Pid dst_pid, std::function<void()> on_sent) {
  net::Message msg;
  msg.dst = dst;
  msg.bytes = params_.ctrl_bytes;
  msg.hdr.kind = kind_of(kRvmaGet);
  msg.hdr.dst_pid = dst_pid;
  msg.hdr.src_pid = pid_;
  msg.hdr.addr = vaddr;
  msg.hdr.offset = offset;
  msg.hdr.imm = bytes;
  msg.hdr.imm2 = reply_vaddr;
  nic_.send(std::move(msg), std::move(on_sent));
}

void RvmaEndpoint::send_nack(NodeId to, net::Pid to_pid, std::uint64_t vaddr,
                             Status reason) {
  RVMA_ETRACE(engine_, "rvma_drop",
              {{"node", node()},
               {"vaddr", static_cast<std::int64_t>(vaddr)},
               {"reason", to_string(reason)}});
  if (!params_.nacks_enabled) return;
  ++stats_.nacks_sent;
  c_nacks_sent_->inc();
  net::Message msg;
  msg.dst = to;
  msg.bytes = params_.ctrl_bytes;
  msg.hdr.kind = kind_of(kRvmaNack);
  msg.hdr.dst_pid = to_pid;
  msg.hdr.src_pid = pid_;
  msg.hdr.addr = vaddr;
  msg.hdr.imm = static_cast<std::uint64_t>(reason);
  nic_.send(std::move(msg));
}

void RvmaEndpoint::assign_counter(PostedBuffer& buf) {
  buf.counter_on_nic = counters_.try_acquire();
  if (buf.counter_on_nic) c_counters_acquired_->inc();
}

void RvmaEndpoint::handle_packet(const net::Packet& pkt) {
  const auto op = static_cast<RvmaOp>(net::op_of(pkt.msg->hdr.kind));
  switch (op) {
    case kRvmaPut: {
      // Single LUT lookup (no wildcards: hit or miss, one resolution).
      net::Packet copy = pkt;
      engine_.schedule(params_.lut_lookup, [this, copy = std::move(copy)] {
        const std::uint64_t vaddr = copy.msg->hdr.addr;
        auto it = lut_.find(vaddr);
        bool via_catch_all = false;
        if (it == lut_.end()) {
          it = lut_.find(kCatchAllVaddr);
          via_catch_all = true;
          if (it == lut_.end()) {
            ++stats_.drops_no_mailbox;
            c_drops_no_mailbox_->inc();
            send_nack(copy.src, copy.msg->hdr.src_pid, vaddr, Status::kNoMailbox);
            return;
          }
        }
        Mailbox& mb = *it->second;
        if (mb.closed()) {
          ++stats_.drops_closed;
          c_drops_closed_->inc();
          send_nack(copy.src, copy.msg->hdr.src_pid, vaddr, Status::kClosed);
          return;
        }
        if (!via_catch_all && params_.enforce_keys && mb.key() != 0 &&
            copy.msg->hdr.imm != mb.key()) {
          ++stats_.drops_bad_key;
          c_drops_bad_key_->inc();
          send_nack(copy.src, copy.msg->hdr.src_pid, vaddr, Status::kError);
          return;
        }
        if (!mb.has_active()) {
          ++stats_.drops_no_buffer;
          c_drops_no_buffer_->inc();
          send_nack(copy.src, copy.msg->hdr.src_pid, vaddr, Status::kNoBuffer);
          return;
        }
        // Counter update cost: free when the buffer's counter lives on the
        // NIC; one extra host-memory round trip otherwise.
        if (mb.active().counter_on_nic) {
          process_put(copy, mb, via_catch_all);
        } else {
          ++stats_.host_counter_packets;
          c_host_counter_packets_->inc();
          engine_.schedule(params_.host_counter_penalty,
                           [this, copy, &mb, via_catch_all] {
                             if (!mb.has_active() || mb.closed()) {
                               ++stats_.drops_no_buffer;
                               c_drops_no_buffer_->inc();
                               return;
                             }
                             process_put(copy, mb, via_catch_all);
                           });
        }
      });
      return;
    }

    case kRvmaNack: {
      ++stats_.nacks_received;
      c_nacks_received_->inc();
      if (nack_fn_) {
        nack_fn_(pkt.msg->hdr.addr, static_cast<Status>(pkt.msg->hdr.imm));
      }
      return;
    }

    case kRvmaGet: {
      const NodeId requester = pkt.src;
      const net::Pid requester_pid = pkt.msg->hdr.src_pid;
      const std::uint64_t vaddr = pkt.msg->hdr.addr;
      const std::uint64_t offset = pkt.msg->hdr.offset;
      const std::uint64_t bytes = pkt.msg->hdr.imm;
      const std::uint64_t reply_vaddr = pkt.msg->hdr.imm2;
      engine_.schedule(params_.lut_lookup, [this, requester, requester_pid,
                                            vaddr, offset, bytes,
                                            reply_vaddr] {
        const auto it = lut_.find(vaddr);
        if (it == lut_.end() || it->second->closed() ||
            !it->second->has_active()) {
          send_nack(requester, requester_pid, vaddr, Status::kNoBuffer);
          return;
        }
        const PostedBuffer& buf = it->second->active();
        const std::byte* data = nullptr;
        if (buf.base != nullptr && offset + bytes <= buf.size) {
          data = buf.base + offset;
        }
        // The get response is an ordinary RVMA put into the requester's
        // reply mailbox — gets reuse the whole put machinery.
        put(requester, reply_vaddr, 0, data, bytes, {}, 0, requester_pid);
      });
      return;
    }
  }
  RVMA_LOG_WARN("rvma: unknown opcode %u", net::op_of(pkt.msg->hdr.kind));
}

void RvmaEndpoint::process_put(const net::Packet& pkt, Mailbox& mb,
                               bool via_catch_all) {
  const bool managed =
      mb.placement() == Placement::kManaged || via_catch_all;
  ++stats_.packets_received;
  c_packets_->inc();
  if (via_catch_all) {
    ++stats_.catch_all_packets;
    c_catch_all_->inc();
  }

  // Place the packet's payload. Steered mode lands at the initiator's
  // offset within the active buffer; receiver-managed (stream) mode
  // appends in arrival order and spills across buffer boundaries — the
  // NIC switches to the next posted buffer mid-packet if needed.
  std::uint64_t src_off = pkt.offset;
  std::uint64_t remaining = pkt.bytes;
  bool completed_any = false;
  while (remaining > 0) {
    if (!mb.has_active()) {
      ++stats_.drops_no_buffer;
      c_drops_no_buffer_->inc();
      send_nack(pkt.src, pkt.msg->hdr.src_pid, pkt.msg->hdr.addr, Status::kNoBuffer);
      return;
    }
    PostedBuffer& buf = mb.active();
    if (buf.first_rx_at == kTimeInfinity) buf.first_rx_at = engine_.now();
    const std::uint64_t place_at =
        managed ? buf.write_cursor : pkt.msg->hdr.offset + src_off;
    if (place_at + remaining > buf.size && !managed) {
      ++stats_.drops_overflow;
      c_drops_overflow_->inc();
      send_nack(pkt.src, pkt.msg->hdr.src_pid, pkt.msg->hdr.addr, Status::kOverflow);
      return;
    }
    const std::uint64_t chunk =
        managed ? std::min(remaining, buf.size - place_at) : remaining;
    if (buf.base != nullptr && pkt.msg->data != nullptr) {
      std::memcpy(buf.base + place_at, pkt.msg->data + src_off, chunk);
    }
    buf.write_cursor = place_at + chunk;
    buf.bytes_received += chunk;
    stats_.bytes_received += chunk;
    c_bytes_->inc(chunk);
    src_off += chunk;
    remaining -= chunk;

    if (buf.threshold_reached() ||
        (managed && remaining > 0 && buf.write_cursor == buf.size)) {
      complete_active(mb, /*soft=*/false);
      completed_any = true;
    }
  }

  // Operation counting: a put counts once, when its last packet arrives.
  const std::uint32_t arrived = ++msg_arrived_[pkt.msg->id];
  if (arrived == pkt.total) {
    msg_arrived_.erase(pkt.msg->id);
    ++stats_.puts_received;
    c_puts_->inc();
    // Message::id packs (src_node << 40) | per-sender post counter, so the
    // low 40 bits order this sender's posts; the mailbox turns them into
    // an arrival-vs-post out-of-order degree.
    h_mailbox_ooo_degree_->record(
        mb.ooo_degree(pkt.src, pkt.msg->id & ((std::uint64_t{1} << 40) - 1)));
    RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kMbMatch, pkt.msg->id,
              node(), static_cast<std::int64_t>(mb.vaddr()));
    if (mb.has_active()) {
      PostedBuffer& buf = mb.active();
      ++buf.ops_received;
      if (buf.threshold_reached()) {
        complete_active(mb, /*soft=*/false);
      } else if (!completed_any) {
        const auto it = op_observers_.find(mb.vaddr());
        if (it != op_observers_.end() && it->second) {
          it->second(buf.ops_received, buf.bytes_received);
        }
      }
    }
  }
}

void RvmaEndpoint::complete_active(Mailbox& mb, bool soft) {
  // A completion can race a mailbox drained by free/close paths; an empty
  // bucket means there is nothing to retire.
  if (!mb.has_active()) return;
  PostedBuffer& buf = mb.active();
  if (buf.counter_on_nic) {
    counters_.release();
    c_counters_released_->inc();
  }

  void** notif_ptr = buf.notif_ptr;
  std::int64_t* len_ptr = buf.len_ptr;
  void* head = static_cast<void*>(buf.base);
  const auto len = static_cast<std::int64_t>(buf.bytes_received);
  const std::uint64_t vaddr = mb.vaddr();
  // Buffer latency: first payload byte in -> completion-pointer write
  // visible in host memory. Zero when the buffer completed without ever
  // receiving payload (e.g. inc_epoch on an untouched buffer).
  const Time lat = buf.first_rx_at == kTimeInfinity
                       ? 0
                       : engine_.now() - buf.first_rx_at +
                             params_.completion_write;
  if (lat != 0) h_completion_latency_ns_->record(lat / kNanosecond);

  mb.retire_active(soft);  // non-empty: checked above, cannot fail
  c_buffers_retired_->inc();
  if (soft) {
    ++stats_.soft_completions;
    c_soft_completions_->inc();
  } else {
    ++stats_.completions;
    c_completions_->inc();
  }
  RVMA_ETRACE(engine_, "rvma_complete",
              {{"node", node()},
               {"vaddr", static_cast<std::int64_t>(vaddr)},
               {"len", len},
               {"epoch", mb.epoch()},
               {"soft", soft ? 1 : 0},
               {"lat_ps", static_cast<std::int64_t>(lat)}});
  RVMA_FREC(engine_, engine_.now(), obs::SpanKind::kCompletion, vaddr, node(),
            static_cast<std::int64_t>(lat));
  if (mb.has_active()) {
    assign_counter(mb.active());
  }

  // Completion unit: one cache-line write of (head, length) to the
  // completion pointer, pipelined behind the payload DMA into host memory;
  // Monitor/MWait waiters wake a few cycles after the line is modified.
  engine_.schedule(params_.completion_write, [this, notif_ptr, len_ptr, head,
                                              len, vaddr] {
    if (notif_ptr != nullptr) *notif_ptr = head;
    if (len_ptr != nullptr) *len_ptr = len;

    std::vector<NotifyFn> fns;
    auto wit = waiters_.find(vaddr);
    if (wit != waiters_.end() && !wit->second.empty()) {
      fns = std::move(wit->second);
      wit->second.clear();
    }
    const auto oit = observers_.find(vaddr);
    const bool observed = oit != observers_.end();
    if (fns.empty() && !observed) return;
    engine_.schedule(params_.mwait_wake,
                     [this, fns = std::move(fns), head, len, vaddr, observed] {
                       if (observed) {
                         // Re-look-up: the observer may have been replaced.
                         const auto it = observers_.find(vaddr);
                         if (it != observers_.end()) it->second(head, len);
                       }
                       for (const NotifyFn& fn : fns) fn(head, len);
                     });
  });
}

}  // namespace rvma::core
