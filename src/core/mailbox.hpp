// Mailbox, posted-buffer, and counter-pool state — the contents of the
// RVMA NIC's lookup table (paper Fig. 2).
//
// These are plain data structures with no simulator dependencies so their
// semantics (bucket-of-buffers, epoch thresholds, retire ring, counter
// spill) are unit-testable in isolation; RvmaEndpoint drives them with
// simulated timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "core/types.hpp"

namespace rvma::core {

/// One buffer posted to a mailbox, plus the completion state the NIC keeps
/// for it while it is queued/active.
struct PostedBuffer {
  std::byte* base = nullptr;   ///< null for timing-only buffers
  std::uint64_t size = 0;
  void** notif_ptr = nullptr;  ///< completion pointer location (may be null)
  std::int64_t* len_ptr = nullptr;  ///< completed-length location

  /// 0 means "inherit the window's default threshold" at post time;
  /// negative values are rejected as kInvalidArg.
  std::int64_t threshold = 0;
  /// kInherit means "use the window's epoch type" at post time; a buffer
  /// that reached a mailbox always carries a concrete kBytes/kOps.
  EpochType type = EpochType::kInherit;

  std::uint64_t bytes_received = 0;
  std::int64_t ops_received = 0;
  std::uint64_t write_cursor = 0;  ///< kManaged append point
  bool counter_on_nic = true;
  /// When the first payload byte landed in this buffer while active;
  /// kTimeInfinity until then. Feeds the completion-latency histogram
  /// (first byte in -> completion-pointer write visible).
  Time first_rx_at = kTimeInfinity;

  bool threshold_reached() const {
    if (type == EpochType::kBytes) {
      return static_cast<std::int64_t>(bytes_received) >= threshold;
    }
    return ops_received >= threshold;
  }
};

/// A completed buffer retained in the mailbox's retire ring; the raw
/// material for hardware rewind (paper §IV-F).
struct RetiredBuffer {
  std::byte* base = nullptr;
  std::uint64_t size = 0;
  std::uint64_t bytes_received = 0;
  std::int64_t epoch = 0;   ///< the epoch this buffer served
  bool soft = false;        ///< completed via inc_epoch rather than threshold
};

/// Bounded pool of on-NIC completion counters. When exhausted, new active
/// buffers fall back to host-memory counters (slower per-packet updates).
class CounterPool {
 public:
  explicit CounterPool(int capacity) : capacity_(capacity) {}

  bool try_acquire() {
    if (in_use_ >= capacity_) return false;
    ++in_use_;
    return true;
  }
  void release() {
    if (in_use_ > 0) --in_use_;
  }

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  int available() const { return capacity_ - in_use_; }

 private:
  int capacity_;
  int in_use_ = 0;
};

/// One entry in the RVMA LUT: a virtual mailbox address mapped to a bucket
/// of posted buffers, the epoch counter, and the retire ring.
class Mailbox {
 public:
  Mailbox(std::uint64_t vaddr, std::int64_t threshold, EpochType type,
          Placement placement, int retire_depth, std::uint64_t key = 0)
      : vaddr_(vaddr),
        threshold_(threshold),
        type_(type),
        placement_(placement),
        retire_depth_(retire_depth),
        key_(key) {}

  std::uint64_t vaddr() const { return vaddr_; }
  Placement placement() const { return placement_; }
  EpochType epoch_type() const { return type_; }
  std::int64_t default_threshold() const { return threshold_; }
  /// Protection key; 0 means unkeyed (accept any initiator).
  std::uint64_t key() const { return key_; }

  std::int64_t epoch() const { return epoch_; }
  bool closed() const { return closed_; }
  void close() { closed_ = true; }

  bool has_active() const { return !queue_.empty(); }
  PostedBuffer& active() { return queue_.front(); }
  const PostedBuffer& active() const { return queue_.front(); }
  std::size_t posted_count() const { return queue_.size(); }

  /// Append a buffer to the bucket.
  ///
  /// Defaults path: `buf.threshold == 0` inherits the window's default
  /// threshold and `buf.type == kInherit` inherits the window's epoch type;
  /// negative thresholds are rejected outright.
  /// Validation path: a caller-specified type is preserved, but a post that
  /// asks for the default threshold while naming a type different from the
  /// window's is inconsistent (the default threshold is counted in the
  /// window's units) and is rejected with kInvalidArg, never silently
  /// rewritten.
  Status post(PostedBuffer buf);

  /// Retire the active buffer (threshold reached or inc_epoch), advance the
  /// epoch, and surface the next posted buffer. Returns the retired entry,
  /// or nullopt — without touching any state — if no buffer is posted
  /// (a completion racing an already-drained mailbox).
  std::optional<RetiredBuffer> retire_active(bool soft);

  /// Retrieve the buffer completed `epochs_back` epochs ago (1 = most
  /// recently completed). Fails if the retire ring no longer holds it.
  Status rewind(int epochs_back, RetiredBuffer* out) const;

  /// Notification pointers of currently queued buffers, oldest first.
  int collect_notif_ptrs(void** out, int count) const;

  /// Null the completion-pointer locations of queued buffers that point
  /// at exactly (notif_ptr, len_ptr) — for middleware tearing down its
  /// completion storage while the window stays live. Buffers registered
  /// with other locations are untouched.
  void detach_notifications(void** notif_ptr, std::int64_t* len_ptr) {
    for (PostedBuffer& b : queue_) {
      if (b.notif_ptr == notif_ptr) b.notif_ptr = nullptr;
      if (b.len_ptr == len_ptr) b.len_ptr = nullptr;
    }
  }

  const std::deque<PostedBuffer>& queue() const { return queue_; }
  const std::vector<RetiredBuffer>& retired() const { return retired_; }
  std::uint64_t completed_count() const { return completed_count_; }

  /// Out-of-order degree of an arriving message (the Eunomia metric,
  /// ROADMAP item 3): how far behind the highest per-sender post counter
  /// already seen at this mailbox the message is. `counter` is the
  /// sender's monotone message counter (the low bits of Message::id). A
  /// message overtaken by k later-posted messages from the same sender
  /// reports degree k; in-order arrivals — including arrival with gaps,
  /// when intervening posts targeted other mailboxes — report 0.
  /// Deterministic: arrival order is a pure function of the simulation.
  std::uint64_t ooo_degree(std::int32_t src, std::uint64_t counter) {
    std::uint64_t& high = ooo_high_[src];
    if (counter >= high) {
      high = counter;
      return 0;
    }
    return high - counter;
  }

 private:
  std::uint64_t vaddr_;
  std::int64_t threshold_;
  EpochType type_;
  Placement placement_;
  int retire_depth_;
  std::uint64_t key_;

  std::deque<PostedBuffer> queue_;
  std::vector<RetiredBuffer> retired_;  // ring, newest at back
  std::int64_t epoch_ = 0;
  std::uint64_t completed_count_ = 0;
  bool closed_ = false;
  /// Highest per-sender post counter seen so far, for ooo_degree().
  std::unordered_map<std::int32_t, std::uint64_t> ooo_high_;
};

}  // namespace rvma::core
