#include "sim/engine.hpp"

#include <cassert>
#include <utility>

#include "obs/sampler.hpp"

namespace rvma::sim {

void Engine::set_sampler(obs::Sampler* sampler) {
  sampler_ = sampler;
  sampler_due_ =
      sampler_ != nullptr ? sampler_->next_due() : kTimeInfinity;
}

Engine::HeapEntry Engine::heap_pop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Sift `last` down from the root.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_pop();
  now_ = top.time;
  ++executed_;
  // Sampling hook: the callback for `top` has not run yet, so the state
  // visible here is exactly the state at every period boundary in
  // (previous event, now] — the sampler stamps those rows without adding
  // engine events. One comparison when no sampler is armed.
  if (now_ >= sampler_due_) {
    sampler_due_ = sampler_->on_tick(now_);
  }
  Slot& s = slot(top.slot());
  // Invoke in place: slot pages never move, so callbacks scheduled during
  // fn() (which may grow the pool) cannot invalidate the running callable.
  // The slot is released only after fn() returns, so a nested schedule can
  // never reuse the storage of the callback currently executing.
  s.fn.invoke_and_reset();
  release_slot(top.slot());
  return true;
}

Time Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.front().time <= deadline) {
    step();
  }
  // Advance the clock to the deadline unconditionally (unless stopped):
  // callers treat run_until as "simulate this span", so relative schedules
  // issued afterwards must be anchored at the deadline even when events
  // remain queued beyond it.
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace rvma::sim
