#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace rvma::sim {

void Engine::schedule_at(Time t, Callback fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the callback must be moved out
  // before pop, so const_cast the owned element (safe: we pop immediately).
  Event& top = const_cast<Event&>(queue_.top());
  now_ = top.time;
  Callback fn = std::move(top.fn);
  queue_.pop();
  ++executed_;
  fn();
  return true;
}

Time Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= deadline) {
    step();
  }
  if (now_ < deadline && queue_.empty()) {
    // Advance the clock even if nothing happened up to the deadline.
    now_ = deadline;
  }
  return now_;
}

}  // namespace rvma::sim
