#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <thread>

namespace rvma::sim {

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::attach(Engine* e) {
  assert(!windowed_ && "cannot attach a shard while windows are running");
  engines_.push_back(e);
  channels_.clear();
  channels_.resize(static_cast<std::size_t>(engines_.size()) *
                   static_cast<std::size_t>(engines_.size()));
}

void ShardedEngine::post(int src, int dst, Time when, Callback fn) {
  assert(src >= 0 && src < num_shards() && dst >= 0 && dst < num_shards());
  if (!windowed_) {
    // Merged mode: every engine's clock is synced at or before the global
    // time, and `when` is in the (possibly immediate) future — the hook
    // can schedule on the destination engine right now.
    assert(engines_[static_cast<std::size_t>(dst)]->now() <= when);
    fn();
    return;
  }
  Channel& ch = channels_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_shards()) +
                          static_cast<std::size_t>(dst)];
  ch.items.push_back(Item{when, src, ch.next_fifo++, std::move(fn)});
}

void ShardedEngine::run_merged_until(const std::function<bool()>& stop_pred) {
  assert(!windowed_);
  while (!stop_pred()) {
    Time t = kTimeInfinity;
    int best = -1;
    for (int k = 0; k < num_shards(); ++k) {
      const Time nt = engines_[static_cast<std::size_t>(k)]->next_time();
      if (nt < t) {
        t = nt;
        best = k;
      }
    }
    if (best < 0) return;  // every queue drained before the predicate fired
    // Sync every idle engine to the global frontier first, so anything the
    // stepped event schedules on a *different* engine (via a transport's
    // engine_for(...).schedule(delay, ...)) anchors at the same absolute
    // time a single serial engine would have used.
    for (auto& e : engines_) e->sync_clock(t);
    engines_[static_cast<std::size_t>(best)]->step();
  }
}

void ShardedEngine::drain_incoming(int k, std::vector<Item>& scratch) {
  scratch.clear();
  const std::size_t ks = static_cast<std::size_t>(num_shards());
  for (std::size_t src = 0; src < ks; ++src) {
    Channel& ch = channels_[src * ks + static_cast<std::size_t>(k)];
    for (Item& it : ch.items) scratch.push_back(std::move(it));
    ch.items.clear();
  }
  // Deterministic admission order: by event time, then source shard, then
  // the per-channel FIFO index. Each hook immediately schedules its real
  // event(s) on this shard's engine, so equal-time arrivals tie-break in
  // this (run-invariant) order regardless of thread timing.
  std::sort(scratch.begin(), scratch.end(), [](const Item& a, const Item& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.fifo < b.fifo;
  });
  for (Item& it : scratch) it.fn();
}

void ShardedEngine::compute_window() {
  Time tmin = kTimeInfinity;
  for (auto& e : engines_) tmin = std::min(tmin, e->next_time());
  if (tmin == kTimeInfinity) {
    done_ = true;
    return;
  }
  // Conservative window: nothing executed in [tmin, tmin + lookahead - 1]
  // can produce a cross-shard arrival before tmin + lookahead.
  window_end_ = tmin + lookahead_;
}

Time ShardedEngine::run_windowed() {
  assert(lookahead_ >= 1 && "windowed execution requires lookahead >= 1ps");
  done_ = false;
  windowed_ = true;

  // Two barriers per window. `pre` orders last window's channel writes
  // before this window's drains; `win` runs compute_window() on one
  // thread while every worker is parked, then releases them with the new
  // window edge (or the done flag) visible.
  std::barrier pre(num_shards());
  std::barrier win(num_shards(), [this]() noexcept { compute_window(); });

  auto body = [&](int k) {
    Engine& eng = *engines_[static_cast<std::size_t>(k)];
    std::vector<Item> scratch;
    for (;;) {
      pre.arrive_and_wait();
      drain_incoming(k, scratch);
      win.arrive_and_wait();
      if (done_) return;
      // Strictly-exclusive window: every cross-shard arrival generated in
      // it lands at >= window_end_, which this deadline never reaches.
      eng.run_until(window_end_ - 1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_shards()));
  for (int k = 0; k < num_shards(); ++k) {
    threads.emplace_back(body, k);
  }
  for (std::thread& t : threads) t.join();

  windowed_ = false;
  Time max_now = 0;
  for (auto& e : engines_) max_now = std::max(max_now, e->now());
  return max_now;
}

}  // namespace rvma::sim
