#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace rvma::sim {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Sense-reversing spin barrier with a completion step. Windows are short
/// (often microseconds of wall time), so a bounded spin beats
/// std::barrier's futex sleep for the common case; past the bound the
/// waiters yield so oversubscribed hosts still make progress. The last
/// arriver runs the completion while the others spin — arrive_and_wait()
/// returns whether the caller was that thread, which is how the profiled
/// loop attributes the completion step's wall time.
///
/// Memory ordering: every arriver's prior writes happen-before the
/// completion (the acq_rel RMW chain on arrived_), and the completion's
/// writes happen-before every waiter's return (generation_ release store /
/// acquire load) — the edges the unsynchronized channel buffers and round
/// state rely on.
class SpinBarrier {
 public:
  SpinBarrier(int n, std::function<void()> completion)
      : n_(n), completion_(std::move(completion)) {}

  bool arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      completion_();
      // Reset before release: a waiter cannot re-arrive until it observes
      // the new generation, which orders this store before its increment.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return true;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins < kSpinIters) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    return false;
  }

 private:
  static constexpr std::uint32_t kSpinIters = 1u << 12;
  const int n_;
  std::function<void()> completion_;
  alignas(64) std::atomic<int> arrived_{0};
  alignas(64) std::atomic<std::uint64_t> generation_{0};
};

}  // namespace

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::attach(Engine* e) {
  assert(!windowed_ && "cannot attach a shard while windows are running");
  engines_.push_back(e);
  const std::size_t ks = engines_.size();
  channels_.clear();
  channels_.resize(2 * ks * ks);
  window_end_.assign(ks, PaddedTime{});
  eff_.assign(ks, kTimeInfinity);
  earliest_ = std::make_unique<PaddedAtomicTime[]>(ks);
}

void ShardedEngine::set_lookahead(Time la) {
  scalar_lookahead_ = la;
  matrix_mode_ = false;
  la_.clear();
}

void ShardedEngine::set_lookahead_matrix(std::vector<Time> la) {
  const std::size_t ks = static_cast<std::size_t>(num_shards());
  assert(la.size() == ks * ks &&
         "lookahead matrix must be K x K (attach all shards first)");
  la_ = std::move(la);
  matrix_mode_ = true;
  // Minimum round trip per shard: the cheapest way an event can leave
  // shard s, touch any other shard, and come back. This bounds s's window
  // against its OWN pending events — without it a shard whose peers are
  // all idle would run unboundedly ahead, and a peer woken by its posts
  // could answer into its already-executed past (see compute_windows).
  cycle_.assign(ks, kTimeInfinity);
  for (std::size_t s = 0; s < ks; ++s) {
    for (std::size_t m = 0; m < ks; ++m) {
      if (m == s) continue;
      const Time out = la_[s * ks + m], back = la_[m * ks + s];
      if (out == kTimeInfinity || back == kTimeInfinity) continue;
      const Time rt =
          (kTimeInfinity - out < back) ? kTimeInfinity : out + back;
      cycle_[s] = std::min(cycle_[s], rt);
    }
  }
}

Time ShardedEngine::lookahead(int src, int dst) const {
  if (!matrix_mode_) return scalar_lookahead_;
  return la_[static_cast<std::size_t>(src) *
                 static_cast<std::size_t>(num_shards()) +
             static_cast<std::size_t>(dst)];
}

void ShardedEngine::post(int src, int dst, Time when, Callback fn) {
  assert(src >= 0 && src < num_shards() && dst >= 0 && dst < num_shards());
  if (!windowed_) {
    // Merged mode: every engine's clock is synced at or before the global
    // time, and `when` is in the (possibly immediate) future — the hook
    // can schedule on the destination engine right now.
    assert(engines_[static_cast<std::size_t>(dst)]->now() <= when);
    fn();
    return;
  }
  Channel& ch = channel(write_parity_, src, dst);
  ch.descs.push_back(Desc{when, static_cast<std::uint32_t>(ch.fns.size())});
  ch.fns.push_back(std::move(fn));
  if (when < ch.min_when) ch.min_when = when;
}

void ShardedEngine::run_merged_until(const std::function<bool()>& stop_pred) {
  assert(!windowed_);
  while (!stop_pred()) {
    Time t = kTimeInfinity;
    int best = -1;
    for (int k = 0; k < num_shards(); ++k) {
      const Time nt = engines_[static_cast<std::size_t>(k)]->next_time();
      if (nt < t) {
        t = nt;
        best = k;
      }
    }
    if (best < 0) return;  // every queue drained before the predicate fired
    // Sync every idle engine to the global frontier first, so anything the
    // stepped event schedules on a *different* engine (via a transport's
    // engine_for(...).schedule(delay, ...)) anchors at the same absolute
    // time a single serial engine would have used.
    for (auto& e : engines_) e->sync_clock(t);
    engines_[static_cast<std::size_t>(best)]->step();
  }
}

std::size_t ShardedEngine::drain_incoming(int k,
                                          std::vector<std::uint32_t>& heads) {
  const int K = num_shards();
  std::size_t total = 0;
  int active_channels = 0;
  for (int src = 0; src < K; ++src) {
    Channel& ch = channel(drain_parity_, src, k);
    if (ch.descs.empty()) continue;
    // Per-channel sort of the POD descriptors: (when, fifo). `idx` is the
    // append position, i.e. the FIFO index.
    std::sort(ch.descs.begin(), ch.descs.end(),
              [](const Desc& a, const Desc& b) {
                return a.when != b.when ? a.when < b.when : a.idx < b.idx;
              });
    total += ch.descs.size();
    ++active_channels;
  }
  if (total == 0) return 0;
  // Deterministic admission order across channels: by event time, then
  // source shard, then the per-channel FIFO index — the exact order one
  // big sort of all items would give, so equal-time arrivals tie-break
  // run-invariantly regardless of thread timing. Each hook immediately
  // schedules its real event(s) on this shard's engine.
  if (active_channels == 1) {
    for (int src = 0; src < K; ++src) {
      Channel& ch = channel(drain_parity_, src, k);
      for (const Desc& d : ch.descs) ch.fns[d.idx]();
    }
  } else {
    // K-way merge over the sorted channels; K is small (<= hardware
    // threads), so a linear scan of the head cursors beats a heap.
    heads.assign(static_cast<std::size_t>(K), 0);
    for (std::size_t admitted = 0; admitted < total; ++admitted) {
      int best = -1;
      Time best_when = kTimeInfinity;
      for (int src = 0; src < K; ++src) {
        Channel& ch = channel(drain_parity_, src, k);
        const std::uint32_t h = heads[static_cast<std::size_t>(src)];
        if (h >= ch.descs.size()) continue;
        const Time when = ch.descs[h].when;
        if (best < 0 || when < best_when) {  // ties: lowest src wins
          best = src;
          best_when = when;
        }
      }
      Channel& ch = channel(drain_parity_, best, k);
      const Desc& d = ch.descs[heads[static_cast<std::size_t>(best)]++];
      ch.fns[d.idx]();
    }
  }
  for (int src = 0; src < K; ++src) {
    Channel& ch = channel(drain_parity_, src, k);
    ch.descs.clear();  // keeps capacity: reserve-ahead scratch across rounds
    ch.fns.clear();
    ch.min_when = kTimeInfinity;
  }
  return total;
}

void ShardedEngine::compute_windows() {
  const int K = num_shards();
  // The buffers written during the round that just ended become this
  // round's drain set; posts made during the upcoming round go to the
  // other buffer, so drains never race writes.
  drain_parity_ = write_parity_;
  write_parity_ ^= 1;
  // Effective earliest time per shard: its engine's earliest pending
  // event, or an undrained queued arrival destined to it, whichever is
  // sooner. Drains happen after this barrier, so the channel backlog is
  // not yet visible in the published next_time().
  bool any_pending = false;
  for (int s = 0; s < K; ++s) {
    Time e = earliest_[s].v.load(std::memory_order_relaxed);
    for (int src = 0; src < K; ++src) {
      e = std::min(e, channel(drain_parity_, src, s).min_when);
    }
    eff_[static_cast<std::size_t>(s)] = e;
    any_pending = any_pending || e != kTimeInfinity;
  }
  if (!any_pending) {
    done_ = true;
    return;
  }
  Time frontier = kTimeInfinity;
  if (!matrix_mode_) {
    // Scalar baseline: one global window [t_min, t_min + la) for every
    // shard — including the shard holding t_min itself, which is what
    // pins the old behavior to the global minimum and what the matrix
    // ablation gates measure against.
    Time tmin = kTimeInfinity;
    for (int s = 0; s < K; ++s) {
      tmin = std::min(tmin, eff_[static_cast<std::size_t>(s)]);
    }
    const Time w = tmin + scalar_lookahead_;
    for (int dst = 0; dst < K; ++dst) {
      window_end_[static_cast<std::size_t>(dst)].v = w;
    }
    frontier = w;
  } else {
    // Per-destination window: bounded by every OTHER shard's effective
    // earliest plus the (path-closed) pair lookahead, and by the shard's
    // own effective earliest plus its minimum round trip (cycle_). The
    // self term replaces the scalar mode's blanket self-inclusion: a
    // shard's own event at t can re-enter it no earlier than t + cycle —
    // at least twice the pair minimum — so the globally-last shard
    // catches up at double the scalar stride instead of creeping at the
    // global minimum, and a shard whose peers are all idle still cannot
    // outrun its own echoes. Unreachable sources (la == inf) and
    // drained-dry sources (eff == inf) drop out entirely.
    const std::size_t ks = static_cast<std::size_t>(K);
    for (int dst = 0; dst < K; ++dst) {
      Time w = kTimeInfinity;
      for (int src = 0; src < K; ++src) {
        const Time la = src == dst
                            ? cycle_[static_cast<std::size_t>(dst)]
                            : la_[static_cast<std::size_t>(src) * ks +
                                  static_cast<std::size_t>(dst)];
        const Time e = eff_[static_cast<std::size_t>(src)];
        if (la == kTimeInfinity || e == kTimeInfinity) continue;
        const Time cand = (kTimeInfinity - e < la) ? kTimeInfinity : e + la;
        if (cand < w) w = cand;
      }
      window_end_[static_cast<std::size_t>(dst)].v = w;
      if (w < frontier) frontier = w;
    }
  }
  ++windows_;
  // Stride = simulated time a barrier round bought, measured at the
  // frontier (minimum window edge): deterministic, a pure function of the
  // event timeline and the lookahead, unlike the wall clocks. The closure
  // property makes the frontier monotone, so the stride is well-defined.
  if (frontier != kTimeInfinity) {
    if (prev_frontier_ != 0 && frontier > prev_frontier_) {
      window_stride_ps_.record(frontier - prev_frontier_);
    }
    prev_frontier_ = frontier;
  }
}

void ShardedEngine::run_window(Engine& eng, Time window_end) {
  if (window_end == kTimeInfinity) {
    // No other shard can ever influence this one (every pair lookahead
    // into it is infinite, or every other shard drained dry): run the
    // queue dry. Engine::run() leaves the clock on the last executed
    // event instead of forcing it to the sentinel.
    eng.run();
  } else {
    // Strictly-exclusive window: every cross-shard arrival generated in
    // it lands at >= window_end, which this deadline never reaches.
    eng.run_until(window_end - 1);
  }
}

void ShardedEngine::enable_profiling(bool on) {
  assert(!windowed_ && "cannot toggle profiling while windows are running");
  profiling_ = on;
  profiles_.assign(static_cast<std::size_t>(num_shards()), ShardProfile{});
  last_completion_wall_ns_ = 0;
  windows_ = 0;
  prev_frontier_ = 0;
  window_stride_ps_ = obs::Histogram{};
}

Time ShardedEngine::run_windowed() {
  const int K = num_shards();
  if (matrix_mode_) {
    assert(la_.size() == static_cast<std::size_t>(K) *
                             static_cast<std::size_t>(K) &&
           "lookahead matrix size mismatch (attach all shards first)");
#ifndef NDEBUG
    for (int src = 0; src < K; ++src) {
      for (int dst = 0; dst < K; ++dst) {
        if (src == dst) continue;
        const Time la = lookahead(src, dst);
        assert((la >= 1 || la == kTimeInfinity) &&
               "windowed execution requires pair lookahead >= 1ps");
      }
    }
#endif
  } else {
    assert(scalar_lookahead_ >= 1 &&
           "windowed execution requires lookahead >= 1ps");
  }
  done_ = false;
  windowed_ = true;
  write_parity_ = 0;
  drain_parity_ = 1;
  if (profiling_ && profiles_.size() != static_cast<std::size_t>(K)) {
    profiles_.assign(static_cast<std::size_t>(K), ShardProfile{});
  }

  using Clock = std::chrono::steady_clock;
  SpinBarrier barrier(K, [this]() noexcept {
    if (profiling_) {
      const auto c0 = Clock::now();
      compute_windows();
      last_completion_wall_ns_ = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               c0)
              .count());
    } else {
      compute_windows();
    }
  });

  // One barrier round per window: publish earliest -> arrive (completion
  // computes every shard's window edge, or the done flag) -> drain the
  // previous round's incoming posts -> run the window.
  auto body = [&](int k) {
    Engine& eng = *engines_[static_cast<std::size_t>(k)];
    std::vector<std::uint32_t> heads;  // k-way merge cursors, reused
    if (profiling_) {
      // Profiled variant of the loop below: identical publish/barrier/
      // drain/run structure, plus wall-clock attribution (barrier wait vs
      // completion step vs drain vs useful work) and per-drain depth
      // accounting. Wall clocks are observation only — they never
      // influence event execution.
      auto ns_between = [](Clock::time_point a, Clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
      };
      ShardProfile& prof = profiles_[static_cast<std::size_t>(k)];
      for (;;) {
        earliest_[k].v.store(eng.next_time(), std::memory_order_relaxed);
        const auto t0 = Clock::now();
        const bool ran_completion = barrier.arrive_and_wait();
        const auto t1 = Clock::now();
        std::uint64_t wait_ns = ns_between(t0, t1);
        if (ran_completion) {
          // The completion ran inside this thread's arrive: split its
          // cost out of the wait.
          prof.completion_wall_ns += last_completion_wall_ns_;
          wait_ns -= std::min(wait_ns, last_completion_wall_ns_);
        }
        prof.barrier_wait_wall_ns += wait_ns;
        if (done_) return;
        const auto t2 = Clock::now();
        const std::size_t n = drain_incoming(k, heads);
        const auto t3 = Clock::now();
        prof.drain_wall_ns += ns_between(t2, t3);
        prof.items_drained += n;
        prof.drain_depth.record(n);
        run_window(eng, window_end_[static_cast<std::size_t>(k)].v);
        prof.busy_wall_ns += ns_between(t3, Clock::now());
      }
    }
    for (;;) {
      earliest_[k].v.store(eng.next_time(), std::memory_order_relaxed);
      barrier.arrive_and_wait();
      if (done_) return;
      drain_incoming(k, heads);
      run_window(eng, window_end_[static_cast<std::size_t>(k)].v);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    threads.emplace_back(body, k);
  }
  for (std::thread& t : threads) t.join();

  windowed_ = false;
  Time max_now = 0;
  for (auto& e : engines_) max_now = std::max(max_now, e->now());
  return max_now;
}

}  // namespace rvma::sim
