#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <chrono>
#include <thread>

namespace rvma::sim {

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::attach(Engine* e) {
  assert(!windowed_ && "cannot attach a shard while windows are running");
  engines_.push_back(e);
  channels_.clear();
  channels_.resize(static_cast<std::size_t>(engines_.size()) *
                   static_cast<std::size_t>(engines_.size()));
}

void ShardedEngine::post(int src, int dst, Time when, Callback fn) {
  assert(src >= 0 && src < num_shards() && dst >= 0 && dst < num_shards());
  if (!windowed_) {
    // Merged mode: every engine's clock is synced at or before the global
    // time, and `when` is in the (possibly immediate) future — the hook
    // can schedule on the destination engine right now.
    assert(engines_[static_cast<std::size_t>(dst)]->now() <= when);
    fn();
    return;
  }
  Channel& ch = channels_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_shards()) +
                          static_cast<std::size_t>(dst)];
  ch.items.push_back(Item{when, src, ch.next_fifo++, std::move(fn)});
}

void ShardedEngine::run_merged_until(const std::function<bool()>& stop_pred) {
  assert(!windowed_);
  while (!stop_pred()) {
    Time t = kTimeInfinity;
    int best = -1;
    for (int k = 0; k < num_shards(); ++k) {
      const Time nt = engines_[static_cast<std::size_t>(k)]->next_time();
      if (nt < t) {
        t = nt;
        best = k;
      }
    }
    if (best < 0) return;  // every queue drained before the predicate fired
    // Sync every idle engine to the global frontier first, so anything the
    // stepped event schedules on a *different* engine (via a transport's
    // engine_for(...).schedule(delay, ...)) anchors at the same absolute
    // time a single serial engine would have used.
    for (auto& e : engines_) e->sync_clock(t);
    engines_[static_cast<std::size_t>(best)]->step();
  }
}

void ShardedEngine::drain_incoming(int k, std::vector<Item>& scratch) {
  scratch.clear();
  const std::size_t ks = static_cast<std::size_t>(num_shards());
  for (std::size_t src = 0; src < ks; ++src) {
    Channel& ch = channels_[src * ks + static_cast<std::size_t>(k)];
    for (Item& it : ch.items) scratch.push_back(std::move(it));
    ch.items.clear();
  }
  // Deterministic admission order: by event time, then source shard, then
  // the per-channel FIFO index. Each hook immediately schedules its real
  // event(s) on this shard's engine, so equal-time arrivals tie-break in
  // this (run-invariant) order regardless of thread timing.
  std::sort(scratch.begin(), scratch.end(), [](const Item& a, const Item& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.fifo < b.fifo;
  });
  for (Item& it : scratch) it.fn();
}

void ShardedEngine::compute_window() {
  Time tmin = kTimeInfinity;
  for (auto& e : engines_) tmin = std::min(tmin, e->next_time());
  if (tmin == kTimeInfinity) {
    done_ = true;
    return;
  }
  // Conservative window: nothing executed in [tmin, tmin + lookahead - 1]
  // can produce a cross-shard arrival before tmin + lookahead.
  window_end_ = tmin + lookahead_;
  if (profiling_) {
    ++windows_;
    // Stride = simulated time a barrier round bought. Deterministic: a
    // pure function of the event timeline, unlike the wall clocks.
    if (prev_window_end_ != 0) {
      window_stride_ps_.record(window_end_ - prev_window_end_);
    }
    prev_window_end_ = window_end_;
  }
}

void ShardedEngine::enable_profiling(bool on) {
  assert(!windowed_ && "cannot toggle profiling while windows are running");
  profiling_ = on;
  profiles_.assign(static_cast<std::size_t>(num_shards()), ShardProfile{});
  windows_ = 0;
  prev_window_end_ = 0;
  window_stride_ps_ = obs::Histogram{};
}

Time ShardedEngine::run_windowed() {
  assert(lookahead_ >= 1 && "windowed execution requires lookahead >= 1ps");
  done_ = false;
  windowed_ = true;
  if (profiling_ &&
      profiles_.size() != static_cast<std::size_t>(num_shards())) {
    profiles_.assign(static_cast<std::size_t>(num_shards()), ShardProfile{});
  }

  // Two barriers per window. `pre` orders last window's channel writes
  // before this window's drains; `win` runs compute_window() on one
  // thread while every worker is parked, then releases them with the new
  // window edge (or the done flag) visible.
  std::barrier pre(num_shards());
  std::barrier win(num_shards(), [this]() noexcept { compute_window(); });

  auto body = [&](int k) {
    Engine& eng = *engines_[static_cast<std::size_t>(k)];
    std::vector<Item> scratch;
    if (profiling_) {
      // Profiled variant of the loop below: identical barrier/drain/run
      // structure, plus wall-clock attribution (barrier wait vs useful
      // work) and per-drain channel-depth accounting. Wall clocks are
      // observation only — they never influence event execution.
      using Clock = std::chrono::steady_clock;
      auto ns_between = [](Clock::time_point a, Clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
      };
      ShardProfile& prof = profiles_[static_cast<std::size_t>(k)];
      for (;;) {
        const auto t0 = Clock::now();
        pre.arrive_and_wait();
        const auto t1 = Clock::now();
        prof.barrier_wall_ns += ns_between(t0, t1);
        drain_incoming(k, scratch);
        prof.items_drained += scratch.size();
        prof.drain_depth.record(scratch.size());
        const auto t2 = Clock::now();
        win.arrive_and_wait();
        const auto t3 = Clock::now();
        prof.barrier_wall_ns += ns_between(t2, t3);
        if (done_) return;
        eng.run_until(window_end_ - 1);
        prof.busy_wall_ns += ns_between(t3, Clock::now());
      }
    }
    for (;;) {
      pre.arrive_and_wait();
      drain_incoming(k, scratch);
      win.arrive_and_wait();
      if (done_) return;
      // Strictly-exclusive window: every cross-shard arrival generated in
      // it lands at >= window_end_, which this deadline never reaches.
      eng.run_until(window_end_ - 1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_shards()));
  for (int k = 0; k < num_shards(); ++k) {
    threads.emplace_back(body, k);
  }
  for (std::thread& t : threads) t.join();

  windowed_ = false;
  Time max_now = 0;
  for (auto& e : engines_) max_now = std::max(max_now, e->now());
  return max_now;
}

}  // namespace rvma::sim
