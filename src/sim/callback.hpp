// Small-buffer-optimized, move-only callback for the event engine.
//
// Every simulated action — packet hops, NIC pipeline stages, completion
// writes — is one of these. std::function heap-allocates any capture
// larger than ~2 pointers, which put an allocate/free pair on every hot
// event; this type stores captures up to kInlineCapacity (sized to fit a
// `[this, int, Packet]` fabric-hop closure) inline in the event slot.
// Oversized captures fall back to a pooled free list of fixed-size blocks,
// so even they stop hitting the allocator once the pool is warm.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rvma::sim {

namespace detail {

/// Intrusive free list of fixed-size blocks for callables that do not fit
/// inline. Blocks are never returned to the OS while the process runs —
/// steady-state simulation reuses them with zero allocator traffic. The
/// simulator is single-threaded per engine; thread_local keeps engines on
/// different threads from sharing (and racing on) a pool.
class CallbackBlockPool {
 public:
  static constexpr std::size_t kBlockSize = 256;

  static void* acquire() {
    void*& head = free_head();
    if (head != nullptr) {
      void* block = head;
      head = *static_cast<void**>(block);
      return block;
    }
    return ::operator new(kBlockSize);
  }

  static void release(void* block) noexcept {
    void*& head = free_head();
    *static_cast<void**>(block) = head;
    head = block;
  }

 private:
  static void*& free_head() {
    thread_local void* head = nullptr;
    return head;
  }
};

}  // namespace detail

class Callback {
 public:
  /// Inline capture capacity. A fabric/NIC packet closure — `this` pointer,
  /// a couple of ints, and a ~80-byte Packet (pooled MsgRef handle plus the
  /// reserved delivery sequence pair) — is ~96 bytes; 112 keeps every
  /// per-packet closure inline with slack for one more captured word.
  static constexpr std::size_t kInlineCapacity = 112;

  Callback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    construct_from(std::forward<F>(f));
  }

  /// Construct a callable directly in this object's storage, replacing any
  /// held callable. The hot-path alternative to `cb = Callback(fn)`, which
  /// would build a temporary and relocate its (up to 96-byte) capture.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    if constexpr (std::is_same_v<D, Callback>) {
      *this = std::forward<F>(f);
    } else {
      static_assert(std::is_invocable_r_v<void, D&>);
      reset();
      construct_from(std::forward<F>(f));
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  /// Invoke the callable, then destroy it and return to the empty state —
  /// one indirection instead of invoke + destroy. The empty state is
  /// entered before the call, so the callable may safely re-arm this
  /// Callback (e.g. an event slot) from inside its own execution only after
  /// the engine releases the slot.
  void invoke_and_reset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroy the held callable (if any) and return to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Invoke, then destroy the callable (the event-execution fast path).
    void (*invoke_destroy)(void* buf);
    /// Move the callable from `src_buf` into `dst_buf` and leave the source
    /// empty (heap modes just transfer the block pointer).
    void (*relocate)(void* dst_buf, void* src_buf) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename D>
  static D& inline_obj(void* buf) {
    return *std::launder(reinterpret_cast<D*>(buf));
  }
  template <typename D>
  static D& heap_obj(void* buf) {
    return *static_cast<D*>(*reinterpret_cast<void**>(buf));
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* buf) { inline_obj<D>(buf)(); },
      [](void* buf) {
        inline_obj<D>(buf)();
        inline_obj<D>(buf).~D();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(inline_obj<D>(src)));
        inline_obj<D>(src).~D();
      },
      [](void* buf) noexcept { inline_obj<D>(buf).~D(); },
  };

  template <typename D>
  static constexpr Ops pooled_ops = {
      [](void* buf) { heap_obj<D>(buf)(); },
      [](void* buf) {
        void* block = *reinterpret_cast<void**>(buf);
        (*static_cast<D*>(block))();
        static_cast<D*>(block)->~D();
        detail::CallbackBlockPool::release(block);
      },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* buf) noexcept {
        void* block = *reinterpret_cast<void**>(buf);
        static_cast<D*>(block)->~D();
        detail::CallbackBlockPool::release(block);
      },
  };

  template <typename D>
  static constexpr Ops oversized_ops = {
      [](void* buf) { heap_obj<D>(buf)(); },
      [](void* buf) {
        void* block = *reinterpret_cast<void**>(buf);
        (*static_cast<D*>(block))();
        static_cast<D*>(block)->~D();
        ::operator delete(block, std::align_val_t{alignof(D)});
      },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* buf) noexcept {
        void* block = *reinterpret_cast<void**>(buf);
        static_cast<D*>(block)->~D();
        ::operator delete(block, std::align_val_t{alignof(D)});
      },
  };

  template <typename F, typename D = std::decay_t<F>>
  void construct_from(F&& f) {
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else if constexpr (sizeof(D) <= detail::CallbackBlockPool::kBlockSize &&
                         alignof(D) <= alignof(std::max_align_t)) {
      void* block = detail::CallbackBlockPool::acquire();
      ::new (block) D(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = block;
      ops_ = &pooled_ops<D>;
    } else {
      void* block = ::operator new(sizeof(D), std::align_val_t{alignof(D)});
      ::new (block) D(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = block;
      ops_ = &oversized_ops<D>;
    }
  }

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace rvma::sim
