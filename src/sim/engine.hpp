// Discrete-event simulation engine.
//
// The whole reproduction rests on this: switches, NICs, protocol state
// machines, and motifs all advance by scheduling callbacks at future
// simulated times. Event execution order is fully deterministic — ties in
// timestamp break by sequence number, assigned at schedule (or reservation)
// time — so identical configs and seeds replay identically.
//
// Hot-path layout (see DESIGN.md "Hot path & allocation discipline"):
// the priority queue holds 32-byte POD entries {time, rank, tie, seq|slot};
// the callbacks themselves live in page-stable slots threaded on an
// intrusive free list. Sift operations move only PODs, callbacks are
// invoked in place, and steady-state scheduling performs zero heap
// allocations.
//
// Tie-break model: equal-time events order by (rank, tie, seq).
//  - `rank` is the simulated instant the event was produced (its sequence
//    number allocated or reserved). Within one engine seq allocation is
//    monotone in simulated time, so rank refines — never contradicts —
//    seq order.
//  - `tie` is a content key: 0 for plain callbacks, a packet-identity key
//    (net::packet_tie — source node, per-node message counter, packet
//    index) for packet events. It makes equal-(time, rank) arbitration a
//    function of WHAT is contending, not of the order the contenders were
//    scheduled.
//  - `seq` (the per-engine allocation counter) breaks whatever remains:
//    same-producer callbacks run FIFO.
// The content key is what lets the sharded scheduler
// (sharded_engine.hpp) reproduce serial output byte for byte: a
// cross-shard packet enters the destination engine with a fresh (large)
// seq, but its (rank, tie) — both properties of the packet, not of the
// schedule — land it in exactly the heap position the serial run gave
// it. Events whose relative order still falls to seq are callback chains
// of a single producer, and those are scheduled in the same relative
// order in serial and sharded runs (the producers themselves execute in
// identical order, inductively).
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string_view>
#include <vector>

#include "common/trace.hpp"
#include "common/units.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/callback.hpp"

namespace rvma::obs {
class Sampler;
}

namespace rvma::sim {

class Engine {
 public:
  using Callback = sim::Callback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Trace sink for everything simulated on this engine. Defaults to the
  /// process-wide Tracer::global() so single-run binaries keep the
  /// RVMA_TRACE behavior; concurrent runs (SweepExecutor jobs) give each
  /// engine its own sink — or nullptr to disable — so no unsynchronized
  /// shared state remains on the event hot path.
  Tracer* tracer() const { return tracer_; }

  /// Set the trace sink, stamping `eng_id` into every record's "eng"
  /// field so analyses can separate engines sharing one sink (a serial
  /// sweep writing through the global tracer). Grid runners pass the run
  /// index; the default 0 keeps single-run traces deterministic.
  void set_tracer(Tracer* tracer, std::int64_t eng_id = 0) {
    tracer_ = tracer;
    eng_id_ = eng_id;
  }
  std::int64_t eng_id() const { return eng_id_; }

  /// True when trace records would actually be written. Hot paths guard
  /// with this (via RVMA_ETRACE) *before* building the field array, so a
  /// disabled tracer costs one predictable branch — the initializer list
  /// and every field expression are never evaluated.
  bool tracing_enabled() const {
    return tracer_ != nullptr && tracer_->enabled();
  }

  /// Record a trace event at now() into this engine's sink, if enabled.
  void trace(std::string_view event,
             std::initializer_list<Tracer::Field> fields) {
    if (tracing_enabled()) {
      tracer_->record(now_, event, eng_id_, fields);
    }
  }

  /// Attach a metrics sampler (obs/sampler.hpp). The engine consults it
  /// before executing the first event at or past each period boundary —
  /// the engine is quiescent between events, so the boundary state is
  /// observed exactly, without scheduling any events of its own (event
  /// counts and tie-break order are untouched). Pass nullptr to detach.
  void set_sampler(obs::Sampler* sampler);
  obs::Sampler* sampler() const { return sampler_; }

  /// Attach a flight recorder (obs/flight_recorder.hpp): a per-engine
  /// ring of POD span records capturing each message's lifecycle
  /// instants. Unlike the tracer, the recorder is purely passive — it
  /// never schedules events, and NO simulation code may branch on
  /// recording_enabled() (in particular the express fold decision stays
  /// keyed off tracing_enabled() only) — so arming it is bit-identity-
  /// preserving: tables and metrics are byte-identical on vs off.
  /// Pass nullptr to detach. Each shard of a sharded cluster attaches
  /// its own recorder, keeping record() single-threaded per ring.
  void set_flight_recorder(obs::FlightRecorder* rec) { frec_ = rec; }
  obs::FlightRecorder* flight_recorder() const { return frec_; }

  /// Hot paths guard with this (via RVMA_FREC) before evaluating any
  /// record arguments: a detached recorder costs one predictable branch.
  bool recording_enabled() const { return frec_ != nullptr; }

  /// Record a span instant. `t` is explicit (not now()) so paths that
  /// know a delivery instant ahead of execution — the express fold's
  /// stored per-packet times — record the true simulated instant.
  void frecord(Time t, obs::SpanKind kind, std::uint64_t key,
               std::int32_t node, std::int64_t aux) {
    frec_->record(t, kind, key, node, aux);
  }

  /// Sequence numbers handed out so far == events ever scheduled or
  /// reserved on this engine.
  std::uint64_t scheduled_events() const { return next_seq_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  /// Templated so the callable is constructed directly in its event slot —
  /// no intermediate Callback move of the capture bytes.
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    schedule_at_seq(t, next_seq_++, now_, 0, std::forward<F>(fn));
  }

  /// Schedule `fn` to run `delay` after now().
  template <typename F>
  void schedule(Time delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at time `t` with an explicit tie-break rank (instead
  /// of the default now()) and content key (instead of the default 0):
  /// among equal-time events the engine executes lower (rank, tie, seq)
  /// first. Packet events pass rank = the instant the packet was produced
  /// for this hop and tie = net::packet_tie, making their arbitration
  /// order schedule-independent (see the tie-break model above).
  template <typename F>
  void schedule_at_ranked(Time t, Time rank, std::uint64_t tie, F&& fn) {
    assert(rank <= t && "tie-break rank cannot postdate the event");
    schedule_at_seq(t, next_seq_++, rank, tie, std::forward<F>(fn));
  }

  /// Reserve `count` consecutive sequence numbers and return the first.
  /// Lets a caller that will schedule events lazily (e.g. the fabric's
  /// chained packet bursts) pin their tie-break order now, so execution
  /// order is identical to scheduling them all eagerly.
  std::uint64_t reserve_sequence(std::uint64_t count) {
    const std::uint64_t first = next_seq_;
    next_seq_ += count;
    return first;
  }

  /// Schedule `fn` at time `t` with an explicitly reserved sequence number
  /// (from reserve_sequence), the simulated instant that reservation was
  /// made, and the event's content key. Each reserved number must be used
  /// at most once; ties at equal `t` execute in (rank, tie, seq) order
  /// (see the tie-break model in the header comment).
  template <typename F>
  void schedule_at_seq(Time t, std::uint64_t seq, Time rank,
                       std::uint64_t tie, F&& fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    assert(rank <= t && "tie-break rank cannot postdate the event");
    assert(seq < next_seq_ && "sequence number was never reserved");
    assert(seq < (std::uint64_t{1} << (64 - kSlotBits)) &&
           "sequence number overflows the packed heap key");
    const std::uint32_t idx = acquire_slot();
    assert(idx <= kSlotMask && "pending-event count overflows the slot field");
    slot(idx).fn.emplace(std::forward<F>(fn));
    heap_push(HeapEntry{t, rank, tie, (seq << kSlotBits) | idx});
  }

  /// Run until the event queue drains or stop() is called.
  /// Returns the time of the last executed event.
  Time run();

  /// Run until simulated time reaches `deadline`: events at times
  /// <= `deadline` (inclusive) are executed, later events stay queued.
  /// Contract: unless stop() fired, now() == max(now, deadline) on return
  /// — the clock advances to the deadline even with pending future events,
  /// so subsequent relative schedule(delay, ...) calls are anchored at the
  /// deadline, never before it.
  ///
  /// If stop() fires mid-window, the clock is left at the last executed
  /// event's time — NOT advanced to the deadline — and the stop is
  /// consumed (the next run/run_until clears it). The sharded windowing
  /// loop (ShardedEngine) relies on both halves: an un-stopped window
  /// always lands every shard's clock exactly on the window edge, while a
  /// stop leaves now() on a real event so the caller can inspect where
  /// execution halted. Covered by Engine.RunUntilStoppedMidWindow.
  Time run_until(Time deadline);

  /// Timestamp of the earliest pending event, or kTimeInfinity when the
  /// queue is empty. The sharded scheduler's window computation reads this
  /// across engines between windows (quiescent, single-threaded).
  Time next_time() const {
    return heap_.empty() ? kTimeInfinity : heap_.front().time;
  }

  /// Advance the clock of an idle span to `t` without executing anything.
  /// Only legal when no pending event precedes `t`; used by the sharded
  /// scheduler's merged (serial-emulation) phase to keep every shard's
  /// relative schedule(delay, ...) calls anchored at the global time.
  /// Forward-only: `t` earlier than now() is ignored.
  void sync_clock(Time t) {
    assert((heap_.empty() || heap_.front().time >= t) &&
           "sync_clock would skip a pending event");
    if (t > now_) now_ = t;
  }

  /// Execute at most one pending event. Returns false if queue was empty.
  bool step();

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  /// Priority-queue entry: 32 bytes, so the four children of a 4-ary node
  /// span exactly two cache lines (shallower than a binary heap, and sift
  /// levels touch at most two lines). `rank` is the event's production
  /// instant and `tie` its content key — see the tie-break model in the
  /// header comment. `key` packs the FIFO tie-break sequence above the
  /// callback slot index: seq is unique per entry, so comparing keys
  /// orders equal (time, rank, tie) tuples exactly like comparing
  /// sequence numbers.
  struct HeapEntry {
    Time time;
    Time rank;
    std::uint64_t tie;  ///< content key; 0 for plain callbacks
    std::uint64_t key;  ///< (seq << kSlotBits) | slot

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
  };

  /// 24 bits of slot index bound concurrent pending events at ~16.7M;
  /// 40 bits of sequence bound events ever scheduled per engine at ~1.1e12.
  /// Both are asserted where handed out.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotsPerPage = 256;

  /// Callback storage cell; `next_free` threads the intrusive free list
  /// through slots not currently holding a queued event.
  struct Slot {
    Callback fn;
    std::uint32_t next_free = kNoSlot;
  };
  struct Page {
    Slot slots[kSlotsPerPage];
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.key < b.key;
  }

  Slot& slot(std::uint32_t idx) {
    return pages_[idx / kSlotsPerPage]->slots[idx % kSlotsPerPage];
  }

  // Schedule-side helpers live in the header so they inline into the
  // templated schedule paths.
  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot(idx).next_free;
      return idx;
    }
    if (slots_used_ == pages_.size() * kSlotsPerPage) {
      pages_.push_back(std::make_unique<Page>());
    }
    return slots_used_++;
  }

  void release_slot(std::uint32_t idx) {
    slot(idx).next_free = free_head_;
    free_head_ = idx;
  }

  void heap_push(HeapEntry e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  HeapEntry heap_pop();

  // 4-ary min-heap ordered by (time, rank, tie, seq): shallower than
  // binary, and the four-child scan stays within two cache lines of
  // 32-byte entries.
  std::vector<HeapEntry> heap_;
  // Slot pages are allocated once and never move, so callbacks can be
  // invoked in place while the pool grows underneath them.
  std::vector<std::unique_ptr<Page>> pages_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slots_used_ = 0;  ///< high-water mark across all pages

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  Tracer* tracer_ = &Tracer::global();
  std::int64_t eng_id_ = 0;
  obs::Sampler* sampler_ = nullptr;
  obs::FlightRecorder* frec_ = nullptr;
  /// Next sampling boundary; kTimeInfinity keeps the step() hook to one
  /// always-false comparison when no sampler is armed.
  Time sampler_due_ = kTimeInfinity;
};

}  // namespace rvma::sim

/// Zero-cost trace guard: expands to a branch on Engine::tracing_enabled()
/// *around* the trace call, so when tracing is off the brace-initialized
/// field list — and every argument expression inside it — is never built.
/// Variadic so the field list's top-level commas pass through intact.
#define RVMA_ETRACE(eng, ...)                              \
  do {                                                     \
    if ((eng).tracing_enabled()) (eng).trace(__VA_ARGS__); \
  } while (0)

/// Flight-recorder guard, same shape as RVMA_ETRACE: argument expressions
/// are only evaluated when a recorder is attached. The recorder must stay
/// write-only with respect to the simulation — never branch simulation
/// behavior on recording_enabled().
#define RVMA_FREC(eng, ...)                                  \
  do {                                                       \
    if ((eng).recording_enabled()) (eng).frecord(__VA_ARGS__); \
  } while (0)
