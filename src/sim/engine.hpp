// Discrete-event simulation engine.
//
// The whole reproduction rests on this: switches, NICs, protocol state
// machines, and motifs all advance by scheduling callbacks at future
// simulated times. Event execution order is fully deterministic — ties in
// timestamp break by insertion sequence number — so identical configs and
// seeds replay identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace rvma::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Callback fn);

  /// Schedule `fn` to run `delay` after now().
  void schedule(Time delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the event queue drains or stop() is called.
  /// Returns the time of the last executed event.
  Time run();

  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). Remaining events stay queued.
  Time run_until(Time deadline);

  /// Execute at most one pending event. Returns false if queue was empty.
  bool step();

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace rvma::sim
