// Sharded parallel discrete-event scheduler (conservative PDES).
//
// K worker Engines advance in lock-step windows whose width is the
// minimum cross-shard link latency (the lookahead): no event executed
// inside a window can schedule a cross-shard event that lands inside the
// same window, so each shard may run its slice independently and the
// inter-shard queues only need draining at window boundaries. The window
// is half-open — workers run_until(window_end - 1), strictly before the
// earliest possible cross-shard arrival — which removes the tie hazard of
// an arrival landing exactly on an edge a shard already executed past.
// See DESIGN.md §12 for the model and its bit-identity argument.
//
// Two execution modes:
//  * merged (serial emulation) — one thread steps the globally earliest
//    event across all shards while keeping every engine's clock synced to
//    the global time, so cross-engine schedule(delay, ...) calls anchor
//    exactly as a single serial engine would. Used for transport setup,
//    whose handshakes ping-pong between shards with sub-lookahead logical
//    latencies (zero-delay ready callbacks).
//  * windowed — K threads, two barriers per window: sync, drain incoming
//    cross-shard posts (sorted by (time, source shard, FIFO index) for
//    determinism), then a completion step — running while all workers are
//    blocked — computes the next window from every engine's earliest
//    pending event. std::barrier's release sequence gives the unsynchronized
//    single-producer/single-consumer channels their happens-before edges.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace rvma::sim {

class ShardedEngine {
 public:
  /// Non-owning: the caller (cluster::Cluster) owns the worker Engines —
  /// their count depends on the topology, which is only known after the
  /// first engine's network is built. Attach all engines before any run.
  ShardedEngine() = default;
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void attach(Engine* e);

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Engine& shard(int k) { return *engines_[static_cast<std::size_t>(k)]; }

  /// Conservative lookahead: the minimum latency of any cross-shard link.
  /// Must be >= 1 (one picosecond) before run_windowed(); a topology with
  /// zero cross-shard latency cannot be sharded conservatively.
  void set_lookahead(Time la) { lookahead_ = la; }
  Time lookahead() const { return lookahead_; }

  /// Post work onto shard `dst` from shard `src`. `fn` runs on the
  /// destination shard's thread with its engine clock <= `when` and must
  /// itself schedule the real event(s) at `when` (e.g. by calling
  /// Fabric::receive_remote). In merged mode fn runs immediately — every
  /// clock is already synced at or before `when`. In windowed mode it is
  /// queued and runs at the next window boundary; the conservative window
  /// guarantees `when` >= the destination's clock at that point.
  void post(int src, int dst, Time when, Callback fn);

  /// Merged (serial-emulation) phase: repeatedly execute the globally
  /// earliest pending event (ties broken by lowest shard index), keeping
  /// every engine's clock synced to the global time, until `stop_pred`
  /// returns true or every queue drains. Single-threaded.
  void run_merged_until(const std::function<bool()>& stop_pred);

  /// Windowed parallel phase: run all shards to completion on
  /// num_shards() threads. Requires set_lookahead() >= 1. Returns the
  /// maximum engine time across shards.
  Time run_windowed();

  bool windowed() const { return windowed_; }

 private:
  struct Item {
    Time when = 0;
    std::int32_t src = -1;
    std::uint64_t fifo = 0;
    Callback fn;
  };
  /// One single-producer/single-consumer queue per (src, dst) shard pair.
  /// Written only by src's worker during its window, read only by dst's
  /// worker during drain; the window barriers order the two. Padded so
  /// producers on different shards never share a cache line.
  struct alignas(64) Channel {
    std::vector<Item> items;
    std::uint64_t next_fifo = 0;
  };

  void worker(int k);
  void drain_incoming(int k, std::vector<Item>& scratch);
  /// Barrier completion: runs on exactly one thread while all workers are
  /// blocked. Computes the next window edge or flags completion.
  void compute_window();

  std::vector<Engine*> engines_;   ///< non-owning, attach() order = shard id
  std::vector<Channel> channels_;  ///< [src * K + dst]
  Time lookahead_ = 0;
  bool windowed_ = false;

  // Written only by compute_window() (single thread, all others blocked
  // in the barrier); the barrier's release gives readers happens-before.
  Time window_end_ = 0;
  bool done_ = false;
};

}  // namespace rvma::sim
