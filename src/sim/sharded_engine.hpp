// Sharded parallel discrete-event scheduler (conservative PDES).
//
// K worker Engines advance in lock-step windows. Each shard has its own
// window edge, derived from a per-shard-pair lookahead matrix la[src][dst]
// — the minimum simulated latency for an event on shard src to influence
// shard dst over ANY shard path (a min-plus closed matrix, see
// set_lookahead_matrix): no event executed inside shard dst's window can
// be affected by anything another shard has not yet committed, so each
// shard may run its slice independently and the inter-shard queues only
// need draining at window boundaries. Windows are half-open — workers
// run_until(window_end - 1), strictly before the earliest possible
// cross-shard arrival — which removes the tie hazard of an arrival landing
// exactly on an edge a shard already executed past. See DESIGN.md §12 for
// the model, the closure requirement, and the bit-identity argument.
//
// Two execution modes:
//  * merged (serial emulation) — one thread steps the globally earliest
//    event across all shards while keeping every engine's clock synced to
//    the global time, so cross-engine schedule(delay, ...) calls anchor
//    exactly as a single serial engine would. Used for transport setup,
//    whose handshakes ping-pong between shards with sub-lookahead logical
//    latencies (zero-delay ready callbacks).
//  * windowed — K threads, ONE barrier round per window: each worker
//    publishes its engine's earliest pending event time to a cache-line-
//    padded atomic and arrives at a spin-then-yield barrier; the last
//    arriver runs the completion step (the per-destination window
//    min-reduction) while the others spin; then every worker drains its
//    incoming cross-shard posts (k-way merged by (time, source shard,
//    FIFO index) for determinism) and runs its window. Channels are
//    double-buffered by round parity so a source's writes during round n
//    never race a destination's drain of round n-1 items; the barrier's
//    release sequence gives the unsynchronized single-producer/
//    single-consumer buffers their happens-before edges.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace rvma::sim {

class ShardedEngine {
 public:
  /// Non-owning: the caller (cluster::Cluster) owns the worker Engines —
  /// their count depends on the topology, which is only known after the
  /// first engine's network is built. Attach all engines before any run.
  ShardedEngine() = default;
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void attach(Engine* e);

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Engine& shard(int k) { return *engines_[static_cast<std::size_t>(k)]; }

  /// Scalar (global-minimum) lookahead: every shard's window is
  /// [t_min, t_min + la) where t_min is the globally earliest pending
  /// event. This is the pre-matrix behavior, kept as the ablation baseline
  /// the windows_executed regression gates compare against. `la` must be
  /// >= 1 (one picosecond) before run_windowed().
  void set_lookahead(Time la);

  /// Per-shard-pair lookahead, row-major [src * K + dst]: a lower bound on
  /// the simulated latency for any event on shard src to influence shard
  /// dst, with kTimeInfinity meaning src can never influence dst (the pair
  /// then never constrains dst's window). Entries MUST be closed under
  /// paths — la[i][j] <= la[i][m] + la[m][j] for all m — or a multi-round
  /// influence chain can outrun a window (DESIGN.md §12 has the
  /// counterexample); cluster::Cluster guarantees this by min-plus closing
  /// the direct crossing-link matrix (net::close_min_latency_matrix).
  /// Finite off-diagonal entries must be >= 1. Diagonal entries are
  /// ignored: the self bound is derived instead as the minimum round trip
  /// min over m != s of la[s][m] + la[m][s] — the earliest a shard's own
  /// event can echo back into it through any peer.
  void set_lookahead_matrix(std::vector<Time> la);

  /// Active per-pair lookahead (kTimeInfinity when src can never reach
  /// dst). Under scalar mode, the scalar for every pair.
  Time lookahead(int src, int dst) const;

  /// True when a per-pair matrix (not the scalar baseline) is active.
  bool lookahead_is_matrix() const { return matrix_mode_; }

  /// Post work onto shard `dst` from shard `src`. `fn` runs on the
  /// destination shard's thread with its engine clock <= `when` and must
  /// itself schedule the real event(s) at `when` (e.g. by calling
  /// Fabric::receive_remote). In merged mode fn runs immediately — every
  /// clock is already synced at or before `when`. In windowed mode it is
  /// queued and runs at the next window boundary; the conservative window
  /// guarantees `when` >= the destination's clock at that point.
  void post(int src, int dst, Time when, Callback fn);

  /// Merged (serial-emulation) phase: repeatedly execute the globally
  /// earliest pending event (ties broken by lowest shard index), keeping
  /// every engine's clock synced to the global time, until `stop_pred`
  /// returns true or every queue drains. Single-threaded.
  void run_merged_until(const std::function<bool()>& stop_pred);

  /// Windowed parallel phase: run all shards to completion on
  /// num_shards() threads. Requires set_lookahead() or
  /// set_lookahead_matrix() first. Returns the maximum engine time across
  /// shards.
  Time run_windowed();

  bool windowed() const { return windowed_; }

  /// Per-shard runtime profile of the windowed loop (ISSUE: PDES runtime
  /// profiling). Wall-clock numbers are measurement, not simulation: they
  /// never feed back into event order, so profiling cannot perturb
  /// results — but they do differ run to run, which is why they live in a
  /// separate profile document, never in the run's metrics registry
  /// (the jobs=1-vs-N and serial-vs-sharded byte-identity gates).
  struct alignas(64) ShardProfile {
    std::uint64_t busy_wall_ns = 0;     ///< inside run_until (working)
    /// Blocked in the window barrier waiting for other shards (for the
    /// last arriver: arrival cost minus its completion-step time).
    std::uint64_t barrier_wait_wall_ns = 0;
    /// Sorting + merging + admitting incoming cross-shard posts.
    std::uint64_t drain_wall_ns = 0;
    /// Running the window min-reduction (only the rounds where this
    /// shard's worker happened to be the last arriver).
    std::uint64_t completion_wall_ns = 0;
    std::uint64_t items_drained = 0;    ///< cross-shard arrivals admitted
    obs::Histogram drain_depth;         ///< arrivals per window drain
    /// busy / (busy + wait + drain + completion) in percent; 100 when
    /// nothing ran.
    double utilization_pct() const {
      const std::uint64_t total = busy_wall_ns + barrier_wait_wall_ns +
                                  drain_wall_ns + completion_wall_ns;
      return total == 0 ? 100.0
                        : 100.0 * static_cast<double>(busy_wall_ns) /
                              static_cast<double>(total);
    }
  };

  /// Arm (or disarm) windowed-loop profiling. Call before run_windowed();
  /// costs a few clock reads per shard per window when on, nothing when
  /// off. Arming resets previously accumulated profile state.
  void enable_profiling(bool on);
  bool profiling() const { return profiling_; }

  /// Windows executed (barrier rounds that ran a window) and the
  /// simulated-time stride between consecutive window frontiers (the
  /// minimum window edge across shards) — how much simulated time each
  /// barrier round buys. Both are deterministic (functions of the event
  /// timeline and the lookahead, not of thread timing), so the bench
  /// regression gates can compare them across lookahead modes exactly.
  std::uint64_t windows_executed() const { return windows_; }
  const obs::Histogram& window_stride_ps() const { return window_stride_ps_; }

  const ShardProfile& profile(int k) const {
    return profiles_[static_cast<std::size_t>(k)];
  }

 private:
  /// POD descriptor of one queued cross-shard post. `idx` doubles as the
  /// per-channel FIFO index (posts are appended, so position == arrival
  /// order) and as the subscript of the matching Callback in Channel::fns
  /// — sorting moves 16-byte PODs, never Callbacks.
  struct Desc {
    Time when = 0;
    std::uint32_t idx = 0;
  };
  /// One single-producer/single-consumer queue per (round parity, src,
  /// dst) triple. Written only by src's worker during its window, read
  /// only by dst's worker (and the completion step, for min_when) in the
  /// NEXT round — the parity flip keeps a round's writes and drains in
  /// disjoint buffers, which is what lets one barrier replace two. Padded
  /// so producers on different shards never share a cache line. The
  /// vectors keep their capacity across rounds (reserve-ahead scratch).
  struct alignas(64) Channel {
    std::vector<Desc> descs;
    std::vector<Callback> fns;
    /// Earliest queued `when`; maintained on push, reset on drain. The
    /// completion step folds it into the source's effective earliest time
    /// (drains happen after the barrier, so queued arrivals are not yet
    /// visible in engine next_time()).
    Time min_when = kTimeInfinity;
  };
  /// Cache-line-padded per-shard slots the workers publish their earliest
  /// pending event time into right before arriving at the barrier.
  struct alignas(64) PaddedAtomicTime {
    std::atomic<Time> v{kTimeInfinity};
  };
  struct alignas(64) PaddedTime {
    Time v = 0;
  };

  Channel& channel(int parity, int src, int dst) {
    const std::size_t ks = static_cast<std::size_t>(num_shards());
    return channels_[(static_cast<std::size_t>(parity) * ks +
                      static_cast<std::size_t>(src)) *
                         ks +
                     static_cast<std::size_t>(dst)];
  }

  /// Admit all queued posts for shard k from the drain-parity buffers:
  /// per-channel sort of the POD descriptors by (when, fifo), then a
  /// k-way merge across source channels by (when, src, fifo). Returns the
  /// number of items admitted. `heads` is caller-owned scratch (one merge
  /// cursor per source shard), reused across rounds.
  std::size_t drain_incoming(int k, std::vector<std::uint32_t>& heads);

  /// Barrier completion: runs on exactly one thread (the last arriver)
  /// while all others spin. Flips the channel parity, folds published
  /// engine times with queued channel arrivals into per-shard effective
  /// earliest times, and computes every shard's next window edge — or
  /// flags completion when nothing is pending anywhere.
  void compute_windows();

  /// Run shard k's engine up to its window edge (exclusive). An infinite
  /// edge (no other shard can ever influence k) runs the engine dry
  /// without forcing its clock to the sentinel.
  static void run_window(Engine& eng, Time window_end);

  std::vector<Engine*> engines_;   ///< non-owning, attach() order = shard id
  std::vector<Channel> channels_;  ///< [parity][src][dst], 2 * K * K
  std::vector<Time> la_;           ///< [src * K + dst]; scalar mode fills
  /// Per-shard minimum round trip through any peer (matrix mode): the
  /// self bound in compute_windows(). kTimeInfinity when no peer can both
  /// receive from and send back to the shard.
  std::vector<Time> cycle_;
  Time scalar_lookahead_ = 0;      ///< scalar-mode window width
  bool matrix_mode_ = false;
  bool windowed_ = false;

  // Round state. Written only by compute_windows() (single thread, all
  // others spinning in the barrier); the barrier release gives readers
  // happens-before. write_parity_ is read by workers mid-window (their
  // post() calls), which the same release edge orders.
  std::vector<PaddedTime> window_end_;  ///< per-destination window edge
  /// Worker-published next_time slots (unique_ptr array: atomics are not
  /// movable, so a std::vector cannot hold them across attach() resizes).
  std::unique_ptr<PaddedAtomicTime[]> earliest_;
  std::vector<Time> eff_;  ///< completion scratch: effective earliest
  int write_parity_ = 0;   ///< buffer post() appends to this round
  int drain_parity_ = 1;   ///< buffer drained (and min_when-scanned)
  bool done_ = false;

  // Profiling state. profiles_ elements are single-writer (each shard's
  // worker touches only its own, cache-line padded); the globals below
  // are written only by compute_windows() / its runner thread.
  bool profiling_ = false;
  std::vector<ShardProfile> profiles_;
  std::uint64_t last_completion_wall_ns_ = 0;
  std::uint64_t windows_ = 0;
  Time prev_frontier_ = 0;
  obs::Histogram window_stride_ps_;
};

}  // namespace rvma::sim
