// Sharded parallel discrete-event scheduler (conservative PDES).
//
// K worker Engines advance in lock-step windows whose width is the
// minimum cross-shard link latency (the lookahead): no event executed
// inside a window can schedule a cross-shard event that lands inside the
// same window, so each shard may run its slice independently and the
// inter-shard queues only need draining at window boundaries. The window
// is half-open — workers run_until(window_end - 1), strictly before the
// earliest possible cross-shard arrival — which removes the tie hazard of
// an arrival landing exactly on an edge a shard already executed past.
// See DESIGN.md §12 for the model and its bit-identity argument.
//
// Two execution modes:
//  * merged (serial emulation) — one thread steps the globally earliest
//    event across all shards while keeping every engine's clock synced to
//    the global time, so cross-engine schedule(delay, ...) calls anchor
//    exactly as a single serial engine would. Used for transport setup,
//    whose handshakes ping-pong between shards with sub-lookahead logical
//    latencies (zero-delay ready callbacks).
//  * windowed — K threads, two barriers per window: sync, drain incoming
//    cross-shard posts (sorted by (time, source shard, FIFO index) for
//    determinism), then a completion step — running while all workers are
//    blocked — computes the next window from every engine's earliest
//    pending event. std::barrier's release sequence gives the unsynchronized
//    single-producer/single-consumer channels their happens-before edges.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace rvma::sim {

class ShardedEngine {
 public:
  /// Non-owning: the caller (cluster::Cluster) owns the worker Engines —
  /// their count depends on the topology, which is only known after the
  /// first engine's network is built. Attach all engines before any run.
  ShardedEngine() = default;
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void attach(Engine* e);

  int num_shards() const { return static_cast<int>(engines_.size()); }
  Engine& shard(int k) { return *engines_[static_cast<std::size_t>(k)]; }

  /// Conservative lookahead: the minimum latency of any cross-shard link.
  /// Must be >= 1 (one picosecond) before run_windowed(); a topology with
  /// zero cross-shard latency cannot be sharded conservatively.
  void set_lookahead(Time la) { lookahead_ = la; }
  Time lookahead() const { return lookahead_; }

  /// Post work onto shard `dst` from shard `src`. `fn` runs on the
  /// destination shard's thread with its engine clock <= `when` and must
  /// itself schedule the real event(s) at `when` (e.g. by calling
  /// Fabric::receive_remote). In merged mode fn runs immediately — every
  /// clock is already synced at or before `when`. In windowed mode it is
  /// queued and runs at the next window boundary; the conservative window
  /// guarantees `when` >= the destination's clock at that point.
  void post(int src, int dst, Time when, Callback fn);

  /// Merged (serial-emulation) phase: repeatedly execute the globally
  /// earliest pending event (ties broken by lowest shard index), keeping
  /// every engine's clock synced to the global time, until `stop_pred`
  /// returns true or every queue drains. Single-threaded.
  void run_merged_until(const std::function<bool()>& stop_pred);

  /// Windowed parallel phase: run all shards to completion on
  /// num_shards() threads. Requires set_lookahead() >= 1. Returns the
  /// maximum engine time across shards.
  Time run_windowed();

  bool windowed() const { return windowed_; }

  /// Per-shard runtime profile of the windowed loop (ISSUE: PDES runtime
  /// profiling). Wall-clock numbers are measurement, not simulation: they
  /// never feed back into event order, so profiling cannot perturb
  /// results — but they do differ run to run, which is why they live in a
  /// separate profile document, never in the run's metrics registry
  /// (the jobs=1-vs-N and serial-vs-sharded byte-identity gates).
  struct alignas(64) ShardProfile {
    std::uint64_t busy_wall_ns = 0;     ///< inside run_until (working)
    std::uint64_t barrier_wall_ns = 0;  ///< blocked on either barrier
    std::uint64_t items_drained = 0;    ///< cross-shard arrivals admitted
    obs::Histogram drain_depth;         ///< arrivals per window drain
    /// busy / (busy + barrier) in percent; 100 when nothing ran.
    double utilization_pct() const {
      const std::uint64_t total = busy_wall_ns + barrier_wall_ns;
      return total == 0 ? 100.0
                        : 100.0 * static_cast<double>(busy_wall_ns) /
                              static_cast<double>(total);
    }
  };

  /// Arm (or disarm) windowed-loop profiling. Call before run_windowed();
  /// costs four clock reads per shard per window when on, nothing when
  /// off. Arming resets previously accumulated profile state.
  void enable_profiling(bool on);
  bool profiling() const { return profiling_; }

  /// Windows executed (barrier rounds that ran a window) and the
  /// simulated-time stride between consecutive window edges — how much
  /// simulated time each barrier round buys. Both are deterministic
  /// (functions of the event timeline, not of thread timing).
  std::uint64_t windows_executed() const { return windows_; }
  const obs::Histogram& window_stride_ps() const { return window_stride_ps_; }

  const ShardProfile& profile(int k) const {
    return profiles_[static_cast<std::size_t>(k)];
  }

 private:
  struct Item {
    Time when = 0;
    std::int32_t src = -1;
    std::uint64_t fifo = 0;
    Callback fn;
  };
  /// One single-producer/single-consumer queue per (src, dst) shard pair.
  /// Written only by src's worker during its window, read only by dst's
  /// worker during drain; the window barriers order the two. Padded so
  /// producers on different shards never share a cache line.
  struct alignas(64) Channel {
    std::vector<Item> items;
    std::uint64_t next_fifo = 0;
  };

  void worker(int k);
  void drain_incoming(int k, std::vector<Item>& scratch);
  /// Barrier completion: runs on exactly one thread while all workers are
  /// blocked. Computes the next window edge or flags completion.
  void compute_window();

  std::vector<Engine*> engines_;   ///< non-owning, attach() order = shard id
  std::vector<Channel> channels_;  ///< [src * K + dst]
  Time lookahead_ = 0;
  bool windowed_ = false;

  // Written only by compute_window() (single thread, all others blocked
  // in the barrier); the barrier's release gives readers happens-before.
  Time window_end_ = 0;
  bool done_ = false;

  // Profiling state. profiles_ elements are single-writer (each shard's
  // worker touches only its own, cache-line padded); the globals below
  // are written only by compute_window().
  bool profiling_ = false;
  std::vector<ShardProfile> profiles_;
  std::uint64_t windows_ = 0;
  Time prev_window_end_ = 0;
  obs::Histogram window_stride_ps_;
};

}  // namespace rvma::sim
