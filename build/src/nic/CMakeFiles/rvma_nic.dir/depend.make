# Empty dependencies file for rvma_nic.
# This may be replaced when dependencies are built.
