file(REMOVE_RECURSE
  "CMakeFiles/rvma_nic.dir/nic.cpp.o"
  "CMakeFiles/rvma_nic.dir/nic.cpp.o.d"
  "librvma_nic.a"
  "librvma_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
