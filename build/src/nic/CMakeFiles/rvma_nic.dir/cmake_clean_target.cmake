file(REMOVE_RECURSE
  "librvma_nic.a"
)
