file(REMOVE_RECURSE
  "CMakeFiles/rvma_motifs.dir/collectives.cpp.o"
  "CMakeFiles/rvma_motifs.dir/collectives.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/halo3d.cpp.o"
  "CMakeFiles/rvma_motifs.dir/halo3d.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/incast.cpp.o"
  "CMakeFiles/rvma_motifs.dir/incast.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/rdma_transport.cpp.o"
  "CMakeFiles/rvma_motifs.dir/rdma_transport.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/runner.cpp.o"
  "CMakeFiles/rvma_motifs.dir/runner.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/rvma_transport.cpp.o"
  "CMakeFiles/rvma_motifs.dir/rvma_transport.cpp.o.d"
  "CMakeFiles/rvma_motifs.dir/sweep3d.cpp.o"
  "CMakeFiles/rvma_motifs.dir/sweep3d.cpp.o.d"
  "librvma_motifs.a"
  "librvma_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
