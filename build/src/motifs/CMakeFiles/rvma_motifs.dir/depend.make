# Empty dependencies file for rvma_motifs.
# This may be replaced when dependencies are built.
