file(REMOVE_RECURSE
  "librvma_motifs.a"
)
