
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motifs/collectives.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/collectives.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/collectives.cpp.o.d"
  "/root/repo/src/motifs/halo3d.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/halo3d.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/halo3d.cpp.o.d"
  "/root/repo/src/motifs/incast.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/incast.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/incast.cpp.o.d"
  "/root/repo/src/motifs/rdma_transport.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/rdma_transport.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/rdma_transport.cpp.o.d"
  "/root/repo/src/motifs/runner.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/runner.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/runner.cpp.o.d"
  "/root/repo/src/motifs/rvma_transport.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/rvma_transport.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/rvma_transport.cpp.o.d"
  "/root/repo/src/motifs/sweep3d.cpp" "src/motifs/CMakeFiles/rvma_motifs.dir/sweep3d.cpp.o" "gcc" "src/motifs/CMakeFiles/rvma_motifs.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rvma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rvma_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/rvma_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rvma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
