file(REMOVE_RECURSE
  "CMakeFiles/rvma_sim.dir/engine.cpp.o"
  "CMakeFiles/rvma_sim.dir/engine.cpp.o.d"
  "librvma_sim.a"
  "librvma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
