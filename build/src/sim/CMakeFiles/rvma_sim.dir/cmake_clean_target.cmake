file(REMOVE_RECURSE
  "librvma_sim.a"
)
