# Empty dependencies file for rvma_sim.
# This may be replaced when dependencies are built.
