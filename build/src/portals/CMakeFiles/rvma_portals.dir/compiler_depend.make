# Empty compiler generated dependencies file for rvma_portals.
# This may be replaced when dependencies are built.
