file(REMOVE_RECURSE
  "librvma_portals.a"
)
