file(REMOVE_RECURSE
  "CMakeFiles/rvma_portals.dir/match_list.cpp.o"
  "CMakeFiles/rvma_portals.dir/match_list.cpp.o.d"
  "librvma_portals.a"
  "librvma_portals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_portals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
