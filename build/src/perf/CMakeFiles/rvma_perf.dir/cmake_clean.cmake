file(REMOVE_RECURSE
  "CMakeFiles/rvma_perf.dir/latency.cpp.o"
  "CMakeFiles/rvma_perf.dir/latency.cpp.o.d"
  "CMakeFiles/rvma_perf.dir/profiles.cpp.o"
  "CMakeFiles/rvma_perf.dir/profiles.cpp.o.d"
  "CMakeFiles/rvma_perf.dir/validation.cpp.o"
  "CMakeFiles/rvma_perf.dir/validation.cpp.o.d"
  "librvma_perf.a"
  "librvma_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
