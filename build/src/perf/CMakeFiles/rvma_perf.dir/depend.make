# Empty dependencies file for rvma_perf.
# This may be replaced when dependencies are built.
