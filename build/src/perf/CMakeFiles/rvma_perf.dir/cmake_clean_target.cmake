file(REMOVE_RECURSE
  "librvma_perf.a"
)
