# Empty dependencies file for rvma_net.
# This may be replaced when dependencies are built.
