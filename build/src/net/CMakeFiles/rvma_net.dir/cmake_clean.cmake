file(REMOVE_RECURSE
  "CMakeFiles/rvma_net.dir/dragonfly.cpp.o"
  "CMakeFiles/rvma_net.dir/dragonfly.cpp.o.d"
  "CMakeFiles/rvma_net.dir/fabric.cpp.o"
  "CMakeFiles/rvma_net.dir/fabric.cpp.o.d"
  "CMakeFiles/rvma_net.dir/fattree.cpp.o"
  "CMakeFiles/rvma_net.dir/fattree.cpp.o.d"
  "CMakeFiles/rvma_net.dir/hyperx.cpp.o"
  "CMakeFiles/rvma_net.dir/hyperx.cpp.o.d"
  "CMakeFiles/rvma_net.dir/star.cpp.o"
  "CMakeFiles/rvma_net.dir/star.cpp.o.d"
  "CMakeFiles/rvma_net.dir/topology.cpp.o"
  "CMakeFiles/rvma_net.dir/topology.cpp.o.d"
  "CMakeFiles/rvma_net.dir/torus.cpp.o"
  "CMakeFiles/rvma_net.dir/torus.cpp.o.d"
  "librvma_net.a"
  "librvma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
