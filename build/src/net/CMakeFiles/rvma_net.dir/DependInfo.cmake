
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dragonfly.cpp" "src/net/CMakeFiles/rvma_net.dir/dragonfly.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/dragonfly.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/rvma_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/fattree.cpp" "src/net/CMakeFiles/rvma_net.dir/fattree.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/fattree.cpp.o.d"
  "/root/repo/src/net/hyperx.cpp" "src/net/CMakeFiles/rvma_net.dir/hyperx.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/hyperx.cpp.o.d"
  "/root/repo/src/net/star.cpp" "src/net/CMakeFiles/rvma_net.dir/star.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/star.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/rvma_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/torus.cpp" "src/net/CMakeFiles/rvma_net.dir/torus.cpp.o" "gcc" "src/net/CMakeFiles/rvma_net.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rvma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
