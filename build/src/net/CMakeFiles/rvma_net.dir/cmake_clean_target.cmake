file(REMOVE_RECURSE
  "librvma_net.a"
)
