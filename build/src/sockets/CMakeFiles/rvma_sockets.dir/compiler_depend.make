# Empty compiler generated dependencies file for rvma_sockets.
# This may be replaced when dependencies are built.
