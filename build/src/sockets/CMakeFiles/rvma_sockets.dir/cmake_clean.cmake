file(REMOVE_RECURSE
  "CMakeFiles/rvma_sockets.dir/socket_stack.cpp.o"
  "CMakeFiles/rvma_sockets.dir/socket_stack.cpp.o.d"
  "librvma_sockets.a"
  "librvma_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
