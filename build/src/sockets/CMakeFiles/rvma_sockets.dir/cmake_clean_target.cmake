file(REMOVE_RECURSE
  "librvma_sockets.a"
)
