file(REMOVE_RECURSE
  "librvma_rma.a"
)
