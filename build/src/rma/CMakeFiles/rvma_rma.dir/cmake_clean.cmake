file(REMOVE_RECURSE
  "CMakeFiles/rvma_rma.dir/rma_window.cpp.o"
  "CMakeFiles/rvma_rma.dir/rma_window.cpp.o.d"
  "librvma_rma.a"
  "librvma_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
