# Empty dependencies file for rvma_rma.
# This may be replaced when dependencies are built.
