# Empty dependencies file for rvma_common.
# This may be replaced when dependencies are built.
