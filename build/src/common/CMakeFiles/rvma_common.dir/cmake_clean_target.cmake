file(REMOVE_RECURSE
  "librvma_common.a"
)
