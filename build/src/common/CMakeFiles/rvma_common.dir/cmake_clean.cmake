file(REMOVE_RECURSE
  "CMakeFiles/rvma_common.dir/cli.cpp.o"
  "CMakeFiles/rvma_common.dir/cli.cpp.o.d"
  "CMakeFiles/rvma_common.dir/log.cpp.o"
  "CMakeFiles/rvma_common.dir/log.cpp.o.d"
  "CMakeFiles/rvma_common.dir/table.cpp.o"
  "CMakeFiles/rvma_common.dir/table.cpp.o.d"
  "CMakeFiles/rvma_common.dir/trace.cpp.o"
  "CMakeFiles/rvma_common.dir/trace.cpp.o.d"
  "CMakeFiles/rvma_common.dir/units.cpp.o"
  "CMakeFiles/rvma_common.dir/units.cpp.o.d"
  "librvma_common.a"
  "librvma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
