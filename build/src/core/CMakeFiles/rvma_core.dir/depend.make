# Empty dependencies file for rvma_core.
# This may be replaced when dependencies are built.
