file(REMOVE_RECURSE
  "CMakeFiles/rvma_core.dir/endpoint.cpp.o"
  "CMakeFiles/rvma_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/rvma_core.dir/mailbox.cpp.o"
  "CMakeFiles/rvma_core.dir/mailbox.cpp.o.d"
  "CMakeFiles/rvma_core.dir/rvma_c_api.cpp.o"
  "CMakeFiles/rvma_core.dir/rvma_c_api.cpp.o.d"
  "librvma_core.a"
  "librvma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
