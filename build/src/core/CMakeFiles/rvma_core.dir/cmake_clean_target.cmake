file(REMOVE_RECURSE
  "librvma_core.a"
)
