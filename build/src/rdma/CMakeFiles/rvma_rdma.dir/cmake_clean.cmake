file(REMOVE_RECURSE
  "CMakeFiles/rvma_rdma.dir/rdma.cpp.o"
  "CMakeFiles/rvma_rdma.dir/rdma.cpp.o.d"
  "librvma_rdma.a"
  "librvma_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvma_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
