# Empty compiler generated dependencies file for rvma_rdma.
# This may be replaced when dependencies are built.
