file(REMOVE_RECURSE
  "librvma_rdma.a"
)
