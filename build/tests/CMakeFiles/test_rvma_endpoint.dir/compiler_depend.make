# Empty compiler generated dependencies file for test_rvma_endpoint.
# This may be replaced when dependencies are built.
