file(REMOVE_RECURSE
  "CMakeFiles/test_rvma_endpoint.dir/test_rvma_endpoint.cpp.o"
  "CMakeFiles/test_rvma_endpoint.dir/test_rvma_endpoint.cpp.o.d"
  "test_rvma_endpoint"
  "test_rvma_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvma_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
