# Empty dependencies file for test_endpoint_features.
# This may be replaced when dependencies are built.
