file(REMOVE_RECURSE
  "CMakeFiles/test_endpoint_features.dir/test_endpoint_features.cpp.o"
  "CMakeFiles/test_endpoint_features.dir/test_endpoint_features.cpp.o.d"
  "test_endpoint_features"
  "test_endpoint_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endpoint_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
