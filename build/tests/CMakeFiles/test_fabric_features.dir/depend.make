# Empty dependencies file for test_fabric_features.
# This may be replaced when dependencies are built.
