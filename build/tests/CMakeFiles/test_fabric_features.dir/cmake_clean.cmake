file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_features.dir/test_fabric_features.cpp.o"
  "CMakeFiles/test_fabric_features.dir/test_fabric_features.cpp.o.d"
  "test_fabric_features"
  "test_fabric_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
