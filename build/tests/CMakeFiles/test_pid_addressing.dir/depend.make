# Empty dependencies file for test_pid_addressing.
# This may be replaced when dependencies are built.
