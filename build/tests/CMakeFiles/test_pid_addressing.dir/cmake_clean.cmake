file(REMOVE_RECURSE
  "CMakeFiles/test_pid_addressing.dir/test_pid_addressing.cpp.o"
  "CMakeFiles/test_pid_addressing.dir/test_pid_addressing.cpp.o.d"
  "test_pid_addressing"
  "test_pid_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pid_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
