file(REMOVE_RECURSE
  "CMakeFiles/test_rdma.dir/test_rdma.cpp.o"
  "CMakeFiles/test_rdma.dir/test_rdma.cpp.o.d"
  "test_rdma"
  "test_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
