file(REMOVE_RECURSE
  "CMakeFiles/test_scale_determinism.dir/test_scale_determinism.cpp.o"
  "CMakeFiles/test_scale_determinism.dir/test_scale_determinism.cpp.o.d"
  "test_scale_determinism"
  "test_scale_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
