file(REMOVE_RECURSE
  "../bench/ablation_pcie"
  "../bench/ablation_pcie.pdb"
  "CMakeFiles/ablation_pcie.dir/ablation_pcie.cpp.o"
  "CMakeFiles/ablation_pcie.dir/ablation_pcie.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
