# Empty compiler generated dependencies file for ablation_pcie.
# This may be replaced when dependencies are built.
