file(REMOVE_RECURSE
  "../bench/ablation_counters"
  "../bench/ablation_counters.pdb"
  "CMakeFiles/ablation_counters.dir/ablation_counters.cpp.o"
  "CMakeFiles/ablation_counters.dir/ablation_counters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
