file(REMOVE_RECURSE
  "../bench/fig7_sweep3d"
  "../bench/fig7_sweep3d.pdb"
  "CMakeFiles/fig7_sweep3d.dir/fig7_sweep3d.cpp.o"
  "CMakeFiles/fig7_sweep3d.dir/fig7_sweep3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sweep3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
