# Empty compiler generated dependencies file for validation_report.
# This may be replaced when dependencies are built.
