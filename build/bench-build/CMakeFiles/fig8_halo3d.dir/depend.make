# Empty dependencies file for fig8_halo3d.
# This may be replaced when dependencies are built.
