file(REMOVE_RECURSE
  "../bench/fig8_halo3d"
  "../bench/fig8_halo3d.pdb"
  "CMakeFiles/fig8_halo3d.dir/fig8_halo3d.cpp.o"
  "CMakeFiles/fig8_halo3d.dir/fig8_halo3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_halo3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
