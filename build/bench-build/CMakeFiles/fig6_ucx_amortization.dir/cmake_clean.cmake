file(REMOVE_RECURSE
  "../bench/fig6_ucx_amortization"
  "../bench/fig6_ucx_amortization.pdb"
  "CMakeFiles/fig6_ucx_amortization.dir/fig6_ucx_amortization.cpp.o"
  "CMakeFiles/fig6_ucx_amortization.dir/fig6_ucx_amortization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ucx_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
