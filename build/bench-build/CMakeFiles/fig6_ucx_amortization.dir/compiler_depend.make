# Empty compiler generated dependencies file for fig6_ucx_amortization.
# This may be replaced when dependencies are built.
