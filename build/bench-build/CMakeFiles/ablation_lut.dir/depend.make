# Empty dependencies file for ablation_lut.
# This may be replaced when dependencies are built.
