file(REMOVE_RECURSE
  "../bench/ablation_lut"
  "../bench/ablation_lut.pdb"
  "CMakeFiles/ablation_lut.dir/ablation_lut.cpp.o"
  "CMakeFiles/ablation_lut.dir/ablation_lut.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
