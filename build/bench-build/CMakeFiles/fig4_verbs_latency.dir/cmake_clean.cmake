file(REMOVE_RECURSE
  "../bench/fig4_verbs_latency"
  "../bench/fig4_verbs_latency.pdb"
  "CMakeFiles/fig4_verbs_latency.dir/fig4_verbs_latency.cpp.o"
  "CMakeFiles/fig4_verbs_latency.dir/fig4_verbs_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_verbs_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
