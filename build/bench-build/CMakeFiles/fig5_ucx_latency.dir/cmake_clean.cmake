file(REMOVE_RECURSE
  "../bench/fig5_ucx_latency"
  "../bench/fig5_ucx_latency.pdb"
  "CMakeFiles/fig5_ucx_latency.dir/fig5_ucx_latency.cpp.o"
  "CMakeFiles/fig5_ucx_latency.dir/fig5_ucx_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ucx_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
