# Empty dependencies file for ablation_rdma_slots.
# This may be replaced when dependencies are built.
