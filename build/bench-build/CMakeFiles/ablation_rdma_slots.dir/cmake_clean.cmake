file(REMOVE_RECURSE
  "../bench/ablation_rdma_slots"
  "../bench/ablation_rdma_slots.pdb"
  "CMakeFiles/ablation_rdma_slots.dir/ablation_rdma_slots.cpp.o"
  "CMakeFiles/ablation_rdma_slots.dir/ablation_rdma_slots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rdma_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
