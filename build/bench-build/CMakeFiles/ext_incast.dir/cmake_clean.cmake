file(REMOVE_RECURSE
  "../bench/ext_incast"
  "../bench/ext_incast.pdb"
  "CMakeFiles/ext_incast.dir/ext_incast.cpp.o"
  "CMakeFiles/ext_incast.dir/ext_incast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
