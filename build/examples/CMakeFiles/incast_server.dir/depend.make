# Empty dependencies file for incast_server.
# This may be replaced when dependencies are built.
