file(REMOVE_RECURSE
  "CMakeFiles/incast_server.dir/incast_server.cpp.o"
  "CMakeFiles/incast_server.dir/incast_server.cpp.o.d"
  "incast_server"
  "incast_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
