# Empty dependencies file for sockets_kv.
# This may be replaced when dependencies are built.
