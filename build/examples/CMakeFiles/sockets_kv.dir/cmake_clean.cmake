file(REMOVE_RECURSE
  "CMakeFiles/sockets_kv.dir/sockets_kv.cpp.o"
  "CMakeFiles/sockets_kv.dir/sockets_kv.cpp.o.d"
  "sockets_kv"
  "sockets_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sockets_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
