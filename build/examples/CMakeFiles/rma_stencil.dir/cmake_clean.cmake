file(REMOVE_RECURSE
  "CMakeFiles/rma_stencil.dir/rma_stencil.cpp.o"
  "CMakeFiles/rma_stencil.dir/rma_stencil.cpp.o.d"
  "rma_stencil"
  "rma_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
