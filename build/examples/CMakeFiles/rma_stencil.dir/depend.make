# Empty dependencies file for rma_stencil.
# This may be replaced when dependencies are built.
