// Algebraic-routing equivalence: the O(1) coordinate arithmetic in
// static_next_hop must agree with route(kStatic) — the oracle that builds
// the materialized LUT — for every topology, every switch, and every
// destination. Exhaustive up to 256 nodes, splitmix64-sampled at the
// 4,096- and 8,192-node paper scales, plus the end-to-end gate: a fig8
// mini-grid is bit-identical under algebraic and materialized route
// tables at jobs=1, jobs=4, and par_shards=2.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/topologies.hpp"
#include "net/topology.hpp"
#include "scenario/figure_grid.hpp"
#include "scenario/spec.hpp"
#include "sim/engine.hpp"

namespace rvma::net {
namespace {

NetworkConfig config_for(TopologyKind kind, int nodes, int concentration) {
  NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = Routing::kStatic;
  cfg.nodes_hint = nodes;
  cfg.concentration = concentration;
  cfg.seed = 99;
  return cfg;
}

/// A built topology + fabric pair the oracle route() can run against.
struct BuiltTopo {
  sim::Engine engine;
  Fabric fabric;
  std::unique_ptr<Topology> topo;

  explicit BuiltTopo(const NetworkConfig& cfg) : fabric(engine, nullptr) {
    topo = make_topology(cfg);
    const TopologyFootprint fp = topo->footprint();
    fabric.reserve(fp.switches, fp.ports, fp.nodes);
    topo->build(fabric);
    fabric.check_wired();
  }
};

void expect_hop_matches(BuiltTopo& bt, Rng& rng, int sw, NodeId dst) {
  Packet probe;
  probe.dst = dst;
  const int oracle =
      bt.topo->route(bt.fabric, sw, probe, Routing::kStatic, rng);
  const int algebraic = bt.topo->static_next_hop(sw, dst);
  ASSERT_EQ(oracle, algebraic)
      << bt.topo->num_nodes() << " nodes, sw=" << sw << " dst=" << dst;
}

void check_exhaustive(const NetworkConfig& cfg) {
  BuiltTopo bt(cfg);
  Rng rng(cfg.seed);
  const int nodes = bt.topo->num_nodes();
  const int switches = bt.fabric.num_switches();
  ASSERT_LE(nodes, 256) << "exhaustive check meant for small machines";
  for (NodeId dst = 0; dst < nodes; ++dst) {
    const int dst_sw = bt.fabric.switch_of_node(dst);
    for (int sw = 0; sw < switches; ++sw) {
      if (sw == dst_sw) continue;  // ejection precedes routing
      expect_hop_matches(bt, rng, sw, dst);
    }
  }
}

void check_sampled(const NetworkConfig& cfg, int samples) {
  BuiltTopo bt(cfg);
  Rng rng(cfg.seed);
  const int nodes = bt.topo->num_nodes();
  const int switches = bt.fabric.num_switches();
  std::uint64_t state = cfg.seed ^ 0xa1beb7a1ULL;
  for (int i = 0; i < samples; ++i) {
    const int sw = static_cast<int>(splitmix64(state) %
                                    static_cast<std::uint64_t>(switches));
    const NodeId dst = static_cast<NodeId>(
        splitmix64(state) % static_cast<std::uint64_t>(nodes));
    if (sw == bt.fabric.switch_of_node(dst)) continue;
    expect_hop_matches(bt, rng, sw, dst);
  }
}

TEST(RoutingAlgebra, ExhaustiveSmallMachines) {
  // Torus 4x4x4 at two concentrations (node->switch division changes).
  check_exhaustive(config_for(TopologyKind::kTorus3D, 64, 1));
  check_exhaustive(config_for(TopologyKind::kTorus3D, 256, 4));
  // Fat-tree k=8: 128 nodes, 80 switches, all three levels exercised.
  check_exhaustive(config_for(TopologyKind::kFatTree, 128, 1));
  // Dragonfly h=2 (p=2, a=4, g=9): 72 nodes.
  check_exhaustive(config_for(TopologyKind::kDragonfly, 72, 1));
  // HyperX 8x8 with 4 nodes per switch.
  check_exhaustive(config_for(TopologyKind::kHyperX, 256, 4));
}

TEST(RoutingAlgebra, SampledPaperScale) {
  const int kSamples = 20000;
  // 4,096 nodes: torus 16x16x16, hyperx 64x64, fat-tree k=26 -> 4394.
  check_sampled(config_for(TopologyKind::kTorus3D, 4096, 1), kSamples);
  check_sampled(config_for(TopologyKind::kHyperX, 4096, 1), kSamples);
  check_sampled(config_for(TopologyKind::kFatTree, 4096, 1), kSamples);
  check_sampled(config_for(TopologyKind::kDragonfly, 4096, 1), kSamples);
  // 8,192 nodes (the Fig 7/8 paper scale), concentrated variants too.
  check_sampled(config_for(TopologyKind::kTorus3D, 8192, 2), kSamples);
  check_sampled(config_for(TopologyKind::kHyperX, 8192, 2), kSamples);
  check_sampled(config_for(TopologyKind::kFatTree, 8192, 1), kSamples);
  check_sampled(config_for(TopologyKind::kDragonfly, 8192, 1), kSamples);
}

TEST(RoutingAlgebra, RouteTableBytes) {
  // Algebraic mode keeps zero resident route-table bytes; the materialized
  // ablation pays the full S*N*4. Both build the same wiring.
  sim::Engine e1, e2;
  NetworkConfig cfg = config_for(TopologyKind::kTorus3D, 512, 1);
  Network algebraic(e1, cfg);
  EXPECT_EQ(algebraic.fabric().route_table_bytes(), 0u);
  EXPECT_TRUE(algebraic.fabric().has_static_routes());

  cfg.route_table = RouteTable::kMaterialized;
  Network materialized(e2, cfg);
  const std::size_t switches =
      static_cast<std::size_t>(materialized.fabric().num_switches());
  const std::size_t nodes =
      static_cast<std::size_t>(materialized.num_nodes());
  EXPECT_EQ(materialized.fabric().route_table_bytes(),
            switches * nodes * sizeof(std::int32_t));
  EXPECT_TRUE(materialized.fabric().has_static_routes());
}

}  // namespace
}  // namespace rvma::net

namespace rvma::scenario {
namespace {

GridSpec mini_grid(const std::string& route_table, int par_shards) {
  GridSpec grid;
  grid.figure = "test";
  grid.motif_label = "Halo3D";
  grid.base.nodes = 8;
  grid.base.motif = "halo3d";
  grid.base.motif_params = {{"nx", "8"},    {"ny", "8"},
                            {"nz", "8"},    {"vars", "2"},
                            {"iterations", "2"}, {"compute_per_cell", "50ps"}};
  grid.base.route_table = route_table;
  grid.base.par_shards = par_shards;
  grid.gbps = {100, 400};
  grid.cases = {"torus3d-static", "torus3d-adaptive", "fattree-static"};
  return grid;
}

void expect_grids_equal(const GridSpec& a, int jobs_a, const GridSpec& b,
                        int jobs_b) {
  std::vector<GridCell> cells_a, cells_b;
  std::string error;
  ASSERT_TRUE(run_grid(a, jobs_a, &cells_a, &error)) << error;
  ASSERT_TRUE(run_grid(b, jobs_b, &cells_b, &error)) << error;
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (std::size_t i = 0; i < cells_a.size(); ++i) {
    EXPECT_EQ(cells_a[i], cells_b[i]) << "cell " << i;
    EXPECT_GT(cells_a[i].rvma.packets_delivered, 0u) << "cell " << i;
  }
}

TEST(RoutingAlgebra, Fig8GridIdenticalUnderMaterializedLut) {
  // The ablation axis: algebraic vs materialized must not move a single
  // simulated quantity, serial or fanned out.
  expect_grids_equal(mini_grid("algebraic", 1), 1, mini_grid("materialized", 1),
                     1);
  expect_grids_equal(mini_grid("algebraic", 1), 4, mini_grid("materialized", 1),
                     4);
}

TEST(RoutingAlgebra, Fig8GridIdenticalUnderShardedMaterializedLut) {
  // Cross the ablation with PDES sharding: materialized shards replicate
  // the LUT per shard, algebraic shards share nothing — same bytes out.
  expect_grids_equal(mini_grid("algebraic", 2), 1, mini_grid("materialized", 2),
                     1);
}

}  // namespace
}  // namespace rvma::scenario
