// Tests for the MPI-style RMA layer over RVMA (paper §IV-E/F): fence
// epochs, put/get between fences, op-count completion without polling, and
// MPIX_Rewind recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "rma/rma_window.hpp"

namespace rvma::rma {
namespace {

using core::RvmaEndpoint;
using core::RvmaParams;

class RmaTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  static constexpr std::uint64_t kSize = 4096;

  RmaTest() : cluster_(config(), nic::NicParams{}) {
    for (int r = 0; r < kRanks; ++r) {
      eps_.push_back(
          std::make_unique<RvmaEndpoint>(cluster_.nic(r), RvmaParams{}));
      raw_.push_back(eps_.back().get());
    }
    window_ = std::make_unique<RmaWindow>(raw_, 0x1000,
                                          RmaWindow::Config{kSize, 4, true});
  }

  static net::NetworkConfig config() {
    net::NetworkConfig cfg;
    cfg.topology = net::TopologyKind::kStar;
    cfg.nodes_hint = kRanks;
    return cfg;
  }

  /// Collective fence + drain the engine; returns ranks completed.
  int run_fence() {
    int done = 0;
    window_->fence([&](int) { ++done; });
    cluster_.engine().run();
    return done;
  }

  cluster::Cluster cluster_;
  std::vector<std::unique_ptr<RvmaEndpoint>> eps_;
  std::vector<RvmaEndpoint*> raw_;
  std::unique_ptr<RmaWindow> window_;
};

TEST_F(RmaTest, ConstructsWithZeroedWindows) {
  EXPECT_EQ(window_->num_ranks(), kRanks);
  EXPECT_EQ(window_->epoch(), 0);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_NE(window_->data(r), nullptr);
    EXPECT_EQ(window_->data(r)[0], std::byte{0});
  }
}

TEST_F(RmaTest, PutVisibleAfterFence) {
  std::vector<std::byte> payload(256, std::byte{0x5A});
  ASSERT_EQ(window_->put(0, 2, 128, payload.data(), payload.size()),
            Status::kOk);
  EXPECT_EQ(run_fence(), kRanks);
  EXPECT_EQ(window_->epoch(), 1);
  EXPECT_EQ(std::memcmp(window_->data(2) + 128, payload.data(), 256), 0);
}

TEST_F(RmaTest, EmptyFenceAdvancesEpoch) {
  EXPECT_EQ(run_fence(), kRanks);
  EXPECT_EQ(run_fence(), kRanks);
  EXPECT_EQ(window_->epoch(), 2);
}

TEST_F(RmaTest, AllToAllPutsCompleteInOneFence) {
  // Every rank writes its id into every other rank's slot.
  std::vector<std::vector<std::byte>> payloads(kRanks);
  for (int origin = 0; origin < kRanks; ++origin) {
    payloads[origin].assign(64, static_cast<std::byte>(0x10 + origin));
    for (int target = 0; target < kRanks; ++target) {
      if (target == origin) continue;
      ASSERT_EQ(window_->put(origin, target,
                             static_cast<std::uint64_t>(origin) * 64,
                             payloads[origin].data(), 64),
                Status::kOk);
    }
  }
  EXPECT_EQ(run_fence(), kRanks);
  for (int target = 0; target < kRanks; ++target) {
    for (int origin = 0; origin < kRanks; ++origin) {
      if (target == origin) continue;
      EXPECT_EQ(window_->data(target)[origin * 64],
                static_cast<std::byte>(0x10 + origin))
          << "target " << target << " origin " << origin;
    }
  }
}

TEST_F(RmaTest, CopyForwardPreservesContentsAcrossEpochs) {
  std::vector<std::byte> payload(16, std::byte{0x77});
  ASSERT_EQ(window_->put(1, 0, 0, payload.data(), 16), Status::kOk);
  run_fence();
  run_fence();  // an epoch with no traffic
  EXPECT_EQ(window_->data(0)[0], std::byte{0x77});  // still visible
}

TEST_F(RmaTest, MultiEpochPutsLandInCurrentEpoch) {
  for (int e = 0; e < 3; ++e) {
    std::vector<std::byte> payload(8, static_cast<std::byte>(0x40 + e));
    ASSERT_EQ(window_->put(0, 1, static_cast<std::uint64_t>(e) * 8,
                           payload.data(), 8),
              Status::kOk);
    run_fence();
  }
  EXPECT_EQ(window_->epoch(), 3);
  EXPECT_EQ(window_->data(1)[0], std::byte{0x40});
  EXPECT_EQ(window_->data(1)[8], std::byte{0x41});
  EXPECT_EQ(window_->data(1)[16], std::byte{0x42});
}

TEST_F(RmaTest, GetReadsRemoteWindow) {
  std::vector<std::byte> payload(128);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  ASSERT_EQ(window_->put(0, 3, 256, payload.data(), 128), Status::kOk);
  run_fence();

  std::vector<std::byte> dst(128, std::byte{0});
  bool done = false;
  ASSERT_EQ(window_->get(1, 3, 256, dst.data(), 128, [&] { done = true; }),
            Status::kOk);
  cluster_.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(std::memcmp(dst.data(), payload.data(), 128), 0);
}

TEST_F(RmaTest, RewindRecoversPreviousEpochImage) {
  for (int e = 0; e < 3; ++e) {
    std::vector<std::byte> payload(kSize, static_cast<std::byte>(0x60 + e));
    ASSERT_EQ(window_->put(0, 1, 0, payload.data(), kSize), Status::kOk);
    run_fence();
  }
  // Current epoch shows the last write; rewind walks history.
  EXPECT_EQ(window_->data(1)[0], std::byte{0x62});
  const std::byte* buf = nullptr;
  std::int64_t bytes = 0;
  ASSERT_EQ(window_->rewind(1, 1, &buf, &bytes), Status::kOk);
  EXPECT_EQ(bytes, static_cast<std::int64_t>(kSize));
  EXPECT_EQ(buf[0], std::byte{0x62});  // epoch 2's image (just retired)
  ASSERT_EQ(window_->rewind(1, 2, &buf, &bytes), Status::kOk);
  EXPECT_EQ(buf[0], std::byte{0x61});
  ASSERT_EQ(window_->rewind(1, 3, &buf, &bytes), Status::kOk);
  EXPECT_EQ(buf[0], std::byte{0x60});
}

TEST_F(RmaTest, RewindAfterFailedEpochGivesConsistentState) {
  // Epoch 0: a good state.
  std::vector<std::byte> good(kSize, std::byte{0xAB});
  ASSERT_EQ(window_->put(0, 1, 0, good.data(), kSize), Status::kOk);
  run_fence();

  // Epoch 1: a partial write lands (the writer then dies before fencing).
  std::vector<std::byte> partial(kSize / 2, std::byte{0xEE});
  ASSERT_EQ(window_->put(0, 1, 0, partial.data(), kSize / 2), Status::kOk);
  cluster_.engine().run();  // data arrives, but no fence happens

  // The current buffer is tainted; the previous epoch's image is intact.
  const std::byte* buf = nullptr;
  std::int64_t bytes = 0;
  ASSERT_EQ(window_->rewind(1, 1, &buf, &bytes), Status::kOk);
  for (std::uint64_t i = 0; i < kSize; ++i) {
    ASSERT_EQ(buf[i], std::byte{0xAB}) << "offset " << i;
  }
}

TEST_F(RmaTest, PutValidatesArguments) {
  std::byte b{};
  EXPECT_EQ(window_->put(-1, 0, 0, &b, 1), Status::kInvalidArg);
  EXPECT_EQ(window_->put(0, kRanks, 0, &b, 1), Status::kInvalidArg);
  EXPECT_EQ(window_->put(0, 1, kSize, &b, 1), Status::kOverflow);
  EXPECT_EQ(window_->get(0, 1, kSize - 1, &b, 2, {}), Status::kOverflow);
}

TEST_F(RmaTest, PendingOpsTracksAndResets) {
  std::vector<std::byte> payload(8, std::byte{1});
  window_->put(0, 1, 0, payload.data(), 8);
  window_->put(0, 1, 8, payload.data(), 8);
  EXPECT_EQ(window_->pending_ops(0, 1), 2);
  run_fence();
  EXPECT_EQ(window_->pending_ops(0, 1), 0);
}

TEST(RmaSingleRank, FenceTriviallyCompletes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  RvmaEndpoint ep(cluster.nic(0), RvmaParams{});
  RmaWindow window({&ep}, 0x9000, RmaWindow::Config{1024, 2, true});
  int done = 0;
  window.fence([&](int) { ++done; });
  cluster.engine().run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(window.epoch(), 1);
}

// Fences over an adaptively routed multi-hop network: op counts make the
// epoch close correctly regardless of data/record arrival order.
TEST(RmaAdaptive, FenceCorrectUnderAdaptiveRouting) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = net::Routing::kAdaptive;
  cfg.df_p = 2;
  cfg.df_a = 4;
  cfg.df_h = 2;
  nic::NicParams nic_params;
  nic_params.mtu = 512;
  cluster::Cluster cluster(cfg, nic_params);

  constexpr int kRanks = 8;
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  std::vector<RvmaEndpoint*> raw;
  for (int r = 0; r < kRanks; ++r) {
    // Spread ranks across the machine (every 9th node).
    eps.push_back(
        std::make_unique<RvmaEndpoint>(cluster.nic(r * 9), RvmaParams{}));
    raw.push_back(eps.back().get());
  }
  RmaWindow window(raw, 0x2000, RmaWindow::Config{8192, 2, true});

  std::vector<std::vector<std::byte>> payloads(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    payloads[r].assign(2048, static_cast<std::byte>(r + 1));
    window.put(r, (r + 1) % kRanks, 0, payloads[r].data(), 2048);
    window.put(r, (r + 3) % kRanks, 2048, payloads[r].data(), 2048);
  }
  int done = 0;
  window.fence([&](int) { ++done; });
  cluster.engine().run();
  EXPECT_EQ(done, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const int from_a = (r + kRanks - 1) % kRanks;
    const int from_b = (r + kRanks - 3) % kRanks;
    EXPECT_EQ(window.data(r)[0], static_cast<std::byte>(from_a + 1));
    EXPECT_EQ(window.data(r)[2048], static_cast<std::byte>(from_b + 1));
  }
}

}  // namespace
}  // namespace rvma::rma
