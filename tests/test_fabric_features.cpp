// Fabric feature tests: injection backlog accounting, port-backlog stats,
// node failure injection at the network level, endpoint concentration,
// and adaptive load spreading in the fat-tree.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/topologies.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace rvma::net {
namespace {

NetworkConfig base(TopologyKind kind, Routing routing, int nodes) {
  NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = routing;
  cfg.nodes_hint = nodes;
  cfg.seed = 77;
  return cfg;
}

Packet make_packet(NodeId src, NodeId dst, std::uint32_t bytes, MsgId id) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = id;
  msg.bytes = bytes;
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.msg = net::MsgRef::make(std::move(msg));
  pkt.bytes = bytes;
  return pkt;
}

TEST(InjectionBacklog, GrowsWithQueuedBytesAndDrains) {
  sim::Engine engine;
  Network net(engine, base(TopologyKind::kStar, Routing::kStatic, 2));
  net.set_delivery(0, [](Packet&&) {});
  net.set_delivery(1, [](Packet&&) {});

  EXPECT_EQ(net.fabric().injection_backlog(0), 0u);
  // 12500-byte wire packets at 100 Gbps = 1 us serialization each.
  for (int i = 0; i < 4; ++i) {
    net.inject(make_packet(0, 1, 12500 - 32, static_cast<MsgId>(i + 1)));
  }
  const Time backlog = net.fabric().injection_backlog(0);
  EXPECT_NEAR(static_cast<double>(backlog), 4.0 * kMicrosecond,
              0.01 * kMicrosecond);
  engine.run();
  EXPECT_EQ(net.fabric().injection_backlog(0), 0u);
}

TEST(PortBacklogStat, RecordsWorstQueueDepth) {
  sim::Engine engine;
  Network net(engine, base(TopologyKind::kStar, Routing::kStatic, 3));
  for (NodeId n = 0; n < 3; ++n) net.set_delivery(n, [](Packet&&) {});
  // Two senders target node 2: its ejection port queues.
  for (int i = 0; i < 8; ++i) {
    net.inject(make_packet(0, 2, 12500 - 32, static_cast<MsgId>(100 + i)));
    net.inject(make_packet(1, 2, 12500 - 32, static_cast<MsgId>(200 + i)));
  }
  engine.run();
  EXPECT_GT(net.fabric().stats().max_port_backlog, kMicrosecond);
}

TEST(FailureInjection, DeadDestinationDropsInFlightDelivery) {
  sim::Engine engine;
  Network net(engine, base(TopologyKind::kStar, Routing::kStatic, 2));
  int delivered = 0;
  net.set_delivery(0, [&](Packet&&) { ++delivered; });
  net.set_delivery(1, [&](Packet&&) { ++delivered; });

  net.inject(make_packet(0, 1, 4096, 1));
  // Kill the destination while the packet is on the wire.
  engine.schedule(100 * kNanosecond, [&] { net.fabric().fail_node(1); });
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.fabric().stats().packets_dropped_dead_node, 1u);
}

TEST(FailureInjection, DeadSourceCannotInject) {
  sim::Engine engine;
  Network net(engine, base(TopologyKind::kStar, Routing::kStatic, 2));
  net.set_delivery(0, [](Packet&&) {});
  net.set_delivery(1, [](Packet&&) {});
  net.fabric().fail_node(0);
  net.inject(make_packet(0, 1, 64, 1));
  engine.run();
  EXPECT_EQ(net.fabric().stats().packets_injected, 0u);
  EXPECT_EQ(net.fabric().stats().packets_dropped_dead_node, 1u);
}

TEST(Concentration, MultipleNodesPerTorusSwitch) {
  NetworkConfig cfg = base(TopologyKind::kTorus3D, Routing::kStatic, 0);
  cfg.torus_x = cfg.torus_y = cfg.torus_z = 2;
  cfg.concentration = 4;
  sim::Engine engine;
  Network net(engine, cfg);
  ASSERT_EQ(net.num_nodes(), 32);
  // Nodes 0..3 share switch 0; 4..7 share switch 1; etc.
  EXPECT_EQ(net.fabric().switch_of_node(0), net.fabric().switch_of_node(3));
  EXPECT_NE(net.fabric().switch_of_node(3), net.fabric().switch_of_node(4));

  // Same-switch traffic works (one switch hop).
  int hops = -1;
  for (NodeId n = 0; n < 32; ++n) {
    net.set_delivery(n, [&](Packet&& pkt) { hops = pkt.hops; });
  }
  net.inject(make_packet(0, 3, 64, 1));
  engine.run();
  EXPECT_EQ(hops, 1);
}

TEST(FatTreeAdaptive, SpreadsFlowsAcrossUplinks) {
  // With static routing all packets of one (src,dst) flow use one core;
  // with adaptive routing under self-congestion they spread. Compare the
  // total wire time: adaptive must finish a burst strictly faster.
  Time static_done = 0, adaptive_done = 0;
  for (const Routing routing : {Routing::kStatic, Routing::kAdaptive}) {
    NetworkConfig cfg = base(TopologyKind::kFatTree, routing, 0);
    cfg.fat_k = 4;
    sim::Engine engine;
    Network net(engine, cfg);
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      net.set_delivery(n, [](Packet&&) {});
    }
    // A cross-pod burst from node 0 to node 15: 32 x 8 KiB packets.
    for (int i = 0; i < 32; ++i) {
      net.inject(make_packet(0, 15, 8 * 1024, static_cast<MsgId>(i + 1)));
    }
    const Time done = engine.run();
    (routing == Routing::kStatic ? static_done : adaptive_done) = done;
  }
  // The single-path static flow is injection-serialized end to end; the
  // adaptive flow can overlap across two uplinks beyond the edge switch.
  EXPECT_LE(adaptive_done, static_done);
}

TEST(ReviveMidRun, TrafficResumesAfterRevive) {
  sim::Engine engine;
  Network net(engine, base(TopologyKind::kStar, Routing::kStatic, 2));
  int delivered = 0;
  net.set_delivery(0, [](Packet&&) {});
  net.set_delivery(1, [&](Packet&&) { ++delivered; });

  net.fabric().fail_node(1);
  net.inject(make_packet(0, 1, 64, 1));  // dropped
  engine.run();
  net.fabric().revive_node(1);
  net.inject(make_packet(0, 1, 64, 2));  // delivered
  engine.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace rvma::net
