// Model validation tests (paper §V-B): the simulator must match the
// analytic pipeline composition exactly, and obey LogGP-style asymptotics.
#include <gtest/gtest.h>

#include "perf/validation.hpp"

namespace rvma::perf {
namespace {

class ValidationTest
    : public ::testing::TestWithParam<std::tuple<Mode, std::uint64_t>> {};

TEST_P(ValidationTest, SimulatorMatchesAnalyticModel) {
  const auto [mode, bytes] = GetParam();
  for (const SystemProfile& profile : {verbs_opa(), ucx_cx5()}) {
    const Time predicted = predict_put_latency(profile, mode, bytes);
    const Time simulated = measure_put_latency_exact(profile, mode, bytes);
    // The analytic model IS the documented pipeline; the event-driven
    // implementation must reproduce it to the picosecond.
    EXPECT_EQ(simulated, predicted)
        << profile.name << " " << to_string(mode) << " " << bytes << " B";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ValidationTest,
    ::testing::Combine(::testing::Values(Mode::kRvma, Mode::kRdmaStatic,
                                         Mode::kRdmaAdaptive),
                       ::testing::Values(1ull, 64ull, 4096ull, 65536ull,
                                         1ull << 20)),
    [](const ::testing::TestParamInfo<std::tuple<Mode, std::uint64_t>>& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + std::to_string(std::get<1>(info.param)) + "B";
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Asymptotics, LargeTransfersApproachLineRate) {
  const SystemProfile profile = verbs_opa();
  // 64 MiB at 100 Gbps: serialization dominates all fixed overheads.
  const double gbps =
      effective_bandwidth_gbps(profile, Mode::kRvma, 64ull * MiB);
  EXPECT_GT(gbps, 90.0);
  EXPECT_LT(gbps, 100.0);  // headers + pipeline can't exceed line rate
}

TEST(Asymptotics, OverheadIsSizeIndependentForSmallMessages) {
  const SystemProfile profile = ucx_cx5();
  // For single-packet messages, latency(bytes) - ser(bytes) is constant.
  const auto overhead = [&](std::uint64_t bytes) {
    const Time lat = measure_put_latency_exact(profile, Mode::kRvma, bytes);
    const std::uint64_t wire = bytes + profile.nic.header_bytes;
    // Three serialization stages: injection, crossbar (1.5x), ejection.
    const Time ser = profile.link.bw.serialize(wire) * 2 +
                     profile.link.bw.scaled(1.5).serialize(wire);
    return lat - ser;
  };
  const Time o1 = overhead(8);
  const Time o2 = overhead(512);
  const Time o3 = overhead(4000);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(o2, o3);
}

TEST(Asymptotics, AdaptivePenaltyIsSizeIndependent) {
  // The spec-compliant completion adds a fixed cost: the gap between
  // adaptive and static RDMA must not grow with message size.
  const SystemProfile profile = verbs_opa();
  const Time gap_small =
      measure_put_latency_exact(profile, Mode::kRdmaAdaptive, 64) -
      measure_put_latency_exact(profile, Mode::kRdmaStatic, 64);
  const Time gap_large =
      measure_put_latency_exact(profile, Mode::kRdmaAdaptive, 1 << 20) -
      measure_put_latency_exact(profile, Mode::kRdmaStatic, 1 << 20);
  EXPECT_EQ(gap_small, gap_large);
}

TEST(ValidationSweep, AllErrorsZero) {
  const std::vector<std::uint64_t> sizes = {2, 128, 8192, 262144};
  for (Mode mode :
       {Mode::kRvma, Mode::kRdmaStatic, Mode::kRdmaAdaptive}) {
    const auto rows = validate_mode(verbs_opa(), mode, sizes);
    ASSERT_EQ(rows.size(), sizes.size());
    for (const ValidationRow& row : rows) {
      EXPECT_DOUBLE_EQ(row.error(), 0.0)
          << to_string(mode) << " " << row.bytes;
    }
  }
}

}  // namespace
}  // namespace rvma::perf
