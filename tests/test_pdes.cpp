// Sharded parallel engine (PDES) tests: ShardedEngine window mechanics,
// the Cluster's exactness clamps, and the headline guarantee — a windowed
// K-shard run reproduces the serial run's observable results exactly, for
// both transports (DESIGN.md §12).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"

namespace rvma {
namespace {

using motifs::build_halo3d;
using motifs::Halo3DConfig;
using motifs::MotifResult;
using motifs::MotifRunner;
using motifs::RdmaTransport;
using motifs::RvmaTransport;

// ----------------------------------------------------------- ShardedEngine

TEST(ShardedEngine, MergedModeStepsGloballyEarliestAndSyncsClocks) {
  sim::Engine a, b;
  sim::ShardedEngine se;
  se.attach(&a);
  se.attach(&b);

  std::vector<int> order;
  a.schedule_at(10, [&] { order.push_back(1); });
  b.schedule_at(5, [&] { order.push_back(2); });
  // Scheduled from b's event at t=5 with a relative delay: the merged
  // phase keeps a's clock synced to the global time, so a cross-engine
  // schedule() anchors at 5, not at a's last local event time.
  b.schedule_at(5, [&] {
    a.schedule(2, [&] { order.push_back(3); });
  });
  a.schedule_at(20, [&] { order.push_back(4); });

  se.run_merged_until([] { return false; });  // drain everything
  // Global order: b@5, then the cross-scheduled a@7, then a@10, a@20.
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1, 4}));
  EXPECT_EQ(a.now(), 20u);
}

TEST(ShardedEngine, WindowedRunDrainsCrossShardPostsInOrder) {
  sim::Engine a, b;
  sim::ShardedEngine se;
  se.attach(&a);
  se.attach(&b);
  se.set_lookahead(100);

  // Each shard fires local work, then posts an event into the other
  // shard at now + lookahead — the canonical conservative handoff.
  std::atomic<int> fired{0};
  a.schedule_at(10, [&] {
    se.post(0, 1, 110, sim::Callback([&, when = Time{110}] {
              b.schedule_at_ranked(when, 10, 0, [&] { ++fired; });
            }));
  });
  b.schedule_at(30, [&] {
    se.post(1, 0, 130, sim::Callback([&, when = Time{130}] {
              a.schedule_at_ranked(when, 30, 0, [&] { ++fired; });
            }));
  });

  const Time end = se.run_windowed();
  EXPECT_EQ(fired.load(), 2);
  // Clocks land on window edges, so the final time is at or past the
  // last real event, never before it.
  EXPECT_GE(end, 130u);
  EXPECT_GE(a.now(), 130u);
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(b.pending(), 0u);
}

// ----------------------------------------------------- Cluster shard clamps

net::NetworkConfig torus27(net::Routing routing) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = routing;
  cfg.nodes_hint = 27;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.seed = 7;
  return cfg;
}

TEST(ClusterSharding, SerialByDefault) {
  cluster::Cluster c(torus27(net::Routing::kStatic), nic::NicParams{});
  EXPECT_FALSE(c.sharded());
  EXPECT_EQ(c.num_shards(), 1);
}

TEST(ClusterSharding, AdaptiveRoutingClampsToSerial) {
  // Adaptive routing consults per-network RNG streams; replicated
  // networks would diverge, so exact sharding is impossible.
  cluster::Cluster c(torus27(net::Routing::kAdaptive), nic::NicParams{}, 4);
  EXPECT_EQ(c.num_shards(), 1);
}

TEST(ClusterSharding, ShardCountClampsToSwitchCount) {
  // 27 switches cannot feed 64 shards; the cluster clamps rather than
  // spinning empty workers.
  cluster::Cluster c(torus27(net::Routing::kStatic), nic::NicParams{}, 64);
  EXPECT_LE(c.num_shards(), 27);
  EXPECT_GT(c.num_shards(), 1);
}

TEST(ClusterSharding, ShardedClusterPartitionsNodes) {
  cluster::Cluster c(torus27(net::Routing::kStatic), nic::NicParams{}, 3);
  ASSERT_EQ(c.num_shards(), 3);
  EXPECT_GT(c.lookahead(), 0u);
  int counts[3] = {0, 0, 0};
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    const int s = c.shard_of_node(n);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 3);
    ++counts[s];
    // engine_for must agree with the shard map.
    EXPECT_EQ(&c.engine_for(n), &c.engine_for_shard(s));
  }
  for (int s = 0; s < 3; ++s) EXPECT_GT(counts[s], 0);
}

// ------------------------------------------- windowed == serial, bit-exact

Halo3DConfig halo27() {
  Halo3DConfig cfg;
  cfg.px = cfg.py = cfg.pz = 3;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.iterations = 2;
  cfg.compute_per_cell = 0;
  return cfg;
}

/// Everything a motif run observes, minus engine_events (sharded runs
/// execute extra window-boundary bookkeeping events; DESIGN.md §12).
struct Observed {
  MotifResult result;
  net::FabricStats fabric;
};

template <typename MakeTransport>
Observed run_halo(int par_shards, MakeTransport make) {
  cluster::Cluster cluster(torus27(net::Routing::kStatic), nic::NicParams{},
                           par_shards);
  auto transport = make(cluster);
  Observed obs;
  obs.result = MotifRunner(cluster, *transport, build_halo3d(halo27())).run();
  obs.fabric = cluster.fabric_stats();
  return obs;
}

auto make_rvma = [](cluster::Cluster& c) {
  return std::make_unique<RvmaTransport>(c, core::RvmaParams{});
};
auto make_rdma = [](cluster::Cluster& c) {
  // ordered_network: the test fabric is statically routed.
  return std::make_unique<RdmaTransport>(c, rdma::RdmaParams{}, true);
};

void expect_identical(const Observed& serial, const Observed& sharded) {
  EXPECT_EQ(serial.result.makespan, sharded.result.makespan);
  EXPECT_EQ(serial.result.setup_done, sharded.result.setup_done);
  EXPECT_EQ(serial.result.ops_executed, sharded.result.ops_executed);
  EXPECT_EQ(serial.result.transport.data_messages,
            sharded.result.transport.data_messages);
  EXPECT_EQ(serial.result.transport.control_messages,
            sharded.result.transport.control_messages);
  EXPECT_EQ(serial.result.transport.credit_stalls,
            sharded.result.transport.credit_stalls);
  EXPECT_EQ(serial.fabric.packets_injected, sharded.fabric.packets_injected);
  EXPECT_EQ(serial.fabric.packets_delivered, sharded.fabric.packets_delivered);
  EXPECT_EQ(serial.fabric.total_hops, sharded.fabric.total_hops);
  EXPECT_EQ(serial.fabric.wire_bytes_delivered,
            sharded.fabric.wire_bytes_delivered);
  EXPECT_EQ(serial.fabric.max_port_backlog, sharded.fabric.max_port_backlog);
}

TEST(PdesExactness, RvmaWindowedMatchesSerial) {
  const Observed serial = run_halo(1, make_rvma);
  for (int k : {2, 3}) {
    SCOPED_TRACE(k);
    const Observed sharded = run_halo(k, make_rvma);
    expect_identical(serial, sharded);
  }
}

TEST(PdesExactness, RdmaWindowedMatchesSerial) {
  // RDMA's small credit/control messages create dense equal-time
  // collisions between cross-shard and local events — the content
  // tie-break's hardest case.
  const Observed serial = run_halo(1, make_rdma);
  for (int k : {2, 3}) {
    SCOPED_TRACE(k);
    const Observed sharded = run_halo(k, make_rdma);
    expect_identical(serial, sharded);
  }
}

TEST(PdesExactness, ShardedRunsReplayIdentically) {
  const Observed a = run_halo(3, make_rvma);
  const Observed b = run_halo(3, make_rvma);
  EXPECT_EQ(a.result.makespan, b.result.makespan);
  EXPECT_EQ(a.result.engine_events, b.result.engine_events);
  EXPECT_EQ(a.fabric.total_hops, b.fabric.total_hops);
}

}  // namespace
}  // namespace rvma
