// Property-based tests: randomized workloads checked against invariants.
// Seeds are fixed per test-case instantiation, so failures reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/endpoint.hpp"
#include "net/topology.hpp"
#include "cluster/cluster.hpp"

namespace rvma {
namespace {

using core::EpochType;
using core::RvmaEndpoint;
using core::RvmaParams;
using core::Window;

// Property: a buffer covered by randomly-sized, randomly-ordered,
// non-overlapping puts over an adaptively routed network completes exactly
// once with every byte intact, regardless of arrival order. This is the
// paper's central correctness claim (§IV-D).
class RandomCoverageTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCoverageTest, OutOfOrderCoverageCompletesIntact) {
  Rng rng(GetParam());

  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kHyperX;
  cfg.routing = net::Routing::kAdaptive;
  cfg.hx_l1 = 3;
  cfg.hx_l2 = 3;
  cfg.seed = GetParam();
  nic::NicParams nic_params;
  nic_params.mtu = 512;  // force multi-packet puts
  cluster::Cluster cluster(cfg, nic_params);

  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint receiver(cluster.nic(8), RvmaParams{});  // far corner

  const std::uint64_t total =
      1024 + rng.next_below(16 * KiB);  // 1 KiB .. 17 KiB
  std::vector<std::byte> buf(total, std::byte{0});
  std::vector<std::byte> reference(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    reference[i] = static_cast<std::byte>(rng() & 0xff);
  }

  void* notif = nullptr;
  std::int64_t len = -1;
  Window win = receiver.init_window(0xC0FFEE, static_cast<std::int64_t>(total),
                                    EpochType::kBytes);
  ASSERT_EQ(win.post(buf, &notif, &len), Status::kOk);

  // Random partition of [0, total) into chunks, issued in shuffled order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
  std::uint64_t off = 0;
  while (off < total) {
    const std::uint64_t sz = std::min<std::uint64_t>(
        total - off, 1 + rng.next_below(3 * KiB));
    chunks.emplace_back(off, sz);
    off += sz;
  }
  for (std::size_t i = chunks.size(); i > 1; --i) {
    std::swap(chunks[i - 1], chunks[rng.next_below(i)]);
  }
  int completions = 0;
  receiver.set_completion_observer(0xC0FFEE,
                                   [&](void*, std::int64_t) { ++completions; });
  for (const auto& [chunk_off, chunk_sz] : chunks) {
    sender.put(8, 0xC0FFEE, chunk_off, reference.data() + chunk_off, chunk_sz);
  }
  cluster.engine().run();

  EXPECT_EQ(completions, 1) << "threshold completion must fire exactly once";
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(len, static_cast<std::int64_t>(total));
  EXPECT_EQ(std::memcmp(buf.data(), reference.data(), total), 0)
      << "payload corrupted despite out-of-order delivery";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoverageTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// Property: NIC segmentation partitions any message exactly: packet
// payloads are contiguous, non-overlapping, and sum to the message size.
class SegmentationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentationTest, ExactPartition) {
  Rng rng(GetParam() * 977);
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  nic::NicParams params;
  params.mtu = static_cast<std::uint32_t>(64 + rng.next_below(8192));
  cluster::Cluster cluster(cfg, params);

  const std::uint64_t bytes = rng.next_below(100 * KiB) + 1;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  cluster.nic(1).register_proto(nic::kProtoRvma, [&](const net::Packet& pkt) {
    got.emplace_back(pkt.offset, pkt.bytes);
    EXPECT_LE(pkt.bytes, params.mtu);
  });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = bytes;
  msg.hdr.kind = net::make_kind(nic::kProtoRvma, 1);
  cluster.nic(0).send(std::move(msg));
  cluster.engine().run();

  std::sort(got.begin(), got.end());
  std::uint64_t expect_off = 0;
  for (const auto& [o, b] : got) {
    EXPECT_EQ(o, expect_off);
    expect_off += b;
  }
  EXPECT_EQ(expect_off, bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentationTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// Property: on any topology x routing, a random batch of messages is
// delivered exactly once to the right node with no losses.
struct FuzzCase {
  net::TopologyKind kind;
  net::Routing routing;
  std::uint64_t seed;
};

class DeliveryFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DeliveryFuzzTest, EveryMessageDeliveredExactlyOnce) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed);
  net::NetworkConfig cfg;
  cfg.topology = fc.kind;
  cfg.routing = fc.routing;
  cfg.nodes_hint = 60;
  cfg.seed = fc.seed;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  const int n = cluster.num_nodes();

  // One catch-all RVMA endpoint per node counts arriving puts.
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  std::vector<std::uint64_t> received(n, 0);
  for (int node = 0; node < n; ++node) {
    eps.push_back(std::make_unique<RvmaEndpoint>(cluster.nic(node),
                                                 RvmaParams{}));
    eps[node]->init_window(0x1, 1, EpochType::kOps);
    for (int i = 0; i < 40; ++i) eps[node]->post_buffer_timing_only(0x1, 1 * MiB);
    eps[node]->set_completion_observer(
        0x1, [&received, node](void*, std::int64_t) { ++received[node]; });
  }

  std::vector<std::uint64_t> expected(n, 0);
  const int messages = 150;
  for (int m = 0; m < messages; ++m) {
    const int src = static_cast<int>(rng.next_below(n));
    int dst = static_cast<int>(rng.next_below(n - 1));
    if (dst >= src) ++dst;
    ++expected[dst];
    eps[src]->put(dst, 0x1, 0, nullptr, 1 + rng.next_below(8 * KiB));
  }
  cluster.engine().run();
  EXPECT_EQ(received, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DeliveryFuzzTest,
    ::testing::Values(
        FuzzCase{net::TopologyKind::kTorus3D, net::Routing::kStatic, 1},
        FuzzCase{net::TopologyKind::kTorus3D, net::Routing::kAdaptive, 2},
        FuzzCase{net::TopologyKind::kFatTree, net::Routing::kStatic, 3},
        FuzzCase{net::TopologyKind::kFatTree, net::Routing::kAdaptive, 4},
        FuzzCase{net::TopologyKind::kDragonfly, net::Routing::kStatic, 5},
        FuzzCase{net::TopologyKind::kDragonfly, net::Routing::kAdaptive, 6},
        FuzzCase{net::TopologyKind::kHyperX, net::Routing::kStatic, 7},
        FuzzCase{net::TopologyKind::kHyperX, net::Routing::kAdaptive, 8}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return net::to_string(info.param.kind) + "_" +
             net::to_string(info.param.routing);
    });

// Property: epoch count always equals hardware + software completions, and
// the retire ring never exceeds its depth, for random op interleavings.
class EpochInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochInvariantTest, EpochEqualsCompletions) {
  Rng rng(GetParam() * 31);
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  RvmaParams params;
  params.retire_depth = 3;
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  Window win = receiver.init_window(0x9, 256, EpochType::kBytes);
  int posted = 0;
  for (int step = 0; step < 40; ++step) {
    switch (rng.next_below(3)) {
      case 0:
        if (win.post_timing_only(256) == Status::kOk) ++posted;
        break;
      case 1:
        sender.put(1, 0x9, 0, nullptr, 256);
        break;
      case 2:
        win.inc_epoch();  // may fail with kNoBuffer; that's fine
        break;
    }
    cluster.engine().run();
  }
  const auto& stats = receiver.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(win.epoch()),
            stats.completions + stats.soft_completions);
  const core::Mailbox* mb = receiver.find_mailbox(0x9);
  ASSERT_NE(mb, nullptr);
  EXPECT_LE(mb->retired().size(), 3u);
  EXPECT_EQ(mb->posted_count() + static_cast<std::size_t>(win.epoch()),
            static_cast<std::size_t>(posted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochInvariantTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rvma
