// Sockets-over-Receiver-Managed-RVMA tests (paper §IV-B): connection
// setup, streaming with segment completion, boundary spilling, partial
// claims via inc_epoch, receiver-side resource exhaustion, and close.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"
#include "sockets/socket_stack.hpp"

namespace rvma::sockets {
namespace {

using core::RvmaEndpoint;
using core::RvmaParams;

net::NetworkConfig star(int nodes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = nodes;
  return cfg;
}

class SocketsTest : public ::testing::Test {
 protected:
  SocketsTest()
      : cluster_(star(2), nic::NicParams{}),
        client_ep_(cluster_.nic(0), RvmaParams{}),
        server_ep_(cluster_.nic(1), RvmaParams{}),
        client_(client_ep_, SocketParams{}),
        server_(server_ep_, SocketParams{}) {}

  /// Connect client -> server:port; returns (client conn, server conn).
  std::pair<ConnId, ConnId> establish(std::uint16_t port = 80) {
    ConnId client_conn = 0, server_conn = 0;
    server_.listen(port, [&](ConnId id) { server_conn = id; });
    client_.connect(1, port, [&](ConnId id) { client_conn = id; });
    cluster_.engine().run();
    EXPECT_NE(client_conn, 0u);
    EXPECT_NE(server_conn, 0u);
    return {client_conn, server_conn};
  }

  cluster::Cluster cluster_;
  RvmaEndpoint client_ep_;
  RvmaEndpoint server_ep_;
  SocketStack client_;
  SocketStack server_;
};

TEST_F(SocketsTest, ConnectAcceptHandshake) {
  const auto [c, s] = establish();
  EXPECT_EQ(client_.stats().connections_opened, 1u);
  EXPECT_EQ(server_.stats().connections_accepted, 1u);
  (void)c;
  (void)s;
}

TEST_F(SocketsTest, ConnectionRefusedWithoutListener) {
  bool connected = false;
  client_.connect(1, 9999, [&](ConnId) { connected = true; });
  cluster_.engine().run();
  EXPECT_FALSE(connected);
  EXPECT_EQ(server_.stats().connections_accepted, 0u);
}

TEST_F(SocketsTest, SendFullSegmentIsReceivable) {
  const auto [c, s] = establish();
  const std::uint64_t seg = SocketParams{}.segment_bytes;
  std::vector<std::byte> data(seg);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  ASSERT_EQ(client_.send(c, data.data(), data.size()), Status::kOk);
  cluster_.engine().run();

  EXPECT_EQ(server_.available(s), seg);
  std::vector<std::byte> out(seg, std::byte{0});
  EXPECT_EQ(server_.recv(s, out.data(), out.size()), seg);
  EXPECT_EQ(out, data);
  EXPECT_EQ(server_.available(s), 0u);
}

TEST_F(SocketsTest, StreamSpillsAcrossSegments) {
  const auto [c, s] = establish();
  const std::uint64_t seg = SocketParams{}.segment_bytes;
  // 2.5 segments in a single send: hardware splits it across buffers.
  const std::uint64_t total = seg * 5 / 2;
  std::vector<std::byte> data(total);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 13) % 251);
  }
  ASSERT_EQ(client_.send(c, data.data(), total), Status::kOk);
  cluster_.engine().run();

  // Two full segments completed; the final half segment is still pending.
  EXPECT_EQ(server_.available(s), seg * 2);
  // Claim the partial tail (the paper's inc_epoch streaming use case).
  ASSERT_EQ(server_.claim_partial(s), Status::kOk);
  cluster_.engine().run();
  EXPECT_EQ(server_.available(s), total);

  std::vector<std::byte> out(total, std::byte{0});
  EXPECT_EQ(server_.recv(s, out.data(), total), total);
  EXPECT_EQ(out, data);
  EXPECT_EQ(server_.stats().partial_claims, 1u);
}

TEST_F(SocketsTest, ManySmallSendsCoalesceIntoSegments) {
  const auto [c, s] = establish();
  std::vector<std::byte> expected;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::byte> chunk(100, static_cast<std::byte>(i));
    expected.insert(expected.end(), chunk.begin(), chunk.end());
    ASSERT_EQ(client_.send(c, chunk.data(), chunk.size()), Status::kOk);
  }
  cluster_.engine().run();
  ASSERT_EQ(server_.claim_partial(s), Status::kOk);
  cluster_.engine().run();

  ASSERT_EQ(server_.available(s), expected.size());
  std::vector<std::byte> out(expected.size());
  EXPECT_EQ(server_.recv(s, out.data(), out.size()), expected.size());
  EXPECT_EQ(out, expected);  // stream order preserved (static routing)
}

TEST_F(SocketsTest, RecvInSmallPieces) {
  const auto [c, s] = establish();
  std::vector<std::byte> data(1000);
  std::iota(reinterpret_cast<std::uint8_t*>(data.data()),
            reinterpret_cast<std::uint8_t*>(data.data()) + 1000, 0);
  ASSERT_EQ(client_.send(c, data.data(), data.size()), Status::kOk);
  cluster_.engine().run();
  ASSERT_EQ(server_.claim_partial(s), Status::kOk);
  cluster_.engine().run();

  std::vector<std::byte> out(1000);
  std::uint64_t off = 0;
  while (off < 1000) {
    const std::uint64_t got = server_.recv(s, out.data() + off, 64);
    ASSERT_GT(got, 0u);
    off += got;
  }
  EXPECT_EQ(out, data);
}

TEST_F(SocketsTest, RecvWaitFiresOnArrival) {
  const auto [c, s] = establish();
  bool woke = false;
  server_.recv_wait(s, [&] { woke = true; });
  cluster_.engine().run();
  EXPECT_FALSE(woke);  // nothing sent yet

  const std::uint64_t seg = SocketParams{}.segment_bytes;
  std::vector<std::byte> data(seg, std::byte{1});
  client_.send(c, data.data(), seg);
  cluster_.engine().run();
  EXPECT_TRUE(woke);
}

TEST_F(SocketsTest, BidirectionalStreams) {
  const auto [c, s] = establish();
  const char* ping = "ping from client";
  const char* pong = "pong from server";
  client_.send(c, reinterpret_cast<const std::byte*>(ping),
               std::strlen(ping) + 1);
  server_.send(s, reinterpret_cast<const std::byte*>(pong),
               std::strlen(pong) + 1);
  cluster_.engine().run();
  ASSERT_EQ(server_.claim_partial(s), Status::kOk);
  ASSERT_EQ(client_.claim_partial(c), Status::kOk);
  cluster_.engine().run();

  char server_in[64] = {}, client_in[64] = {};
  server_.recv(s, reinterpret_cast<std::byte*>(server_in), sizeof server_in);
  client_.recv(c, reinterpret_cast<std::byte*>(client_in), sizeof client_in);
  EXPECT_STREQ(server_in, ping);
  EXPECT_STREQ(client_in, pong);
}

TEST_F(SocketsTest, RingExhaustionDropsAndNacks) {
  // A sender overrunning the receiver's ring is refused, not buffered
  // indefinitely: receiver-side resource management (paper §I).
  const auto [c, s] = establish();
  (void)s;
  const SocketParams params;
  const std::uint64_t seg = params.segment_bytes;
  std::vector<std::byte> data(seg, std::byte{1});
  // ring_depth segments fit; the ring is not drained, so further segments
  // find no posted buffer.
  for (int i = 0; i < params.ring_depth + 3; ++i) {
    ASSERT_EQ(client_.send(c, data.data(), seg), Status::kOk);
  }
  cluster_.engine().run();
  EXPECT_GT(server_ep_.stats().drops_no_buffer, 0u);
  EXPECT_GT(client_ep_.stats().nacks_received, 0u);
}

TEST_F(SocketsTest, CloseRefusesFurtherTraffic) {
  const auto [c, s] = establish();
  ASSERT_EQ(server_.close(s), Status::kOk);
  std::vector<std::byte> data(64, std::byte{1});
  ASSERT_EQ(client_.send(c, data.data(), data.size()), Status::kOk);
  cluster_.engine().run();
  EXPECT_GT(server_ep_.stats().drops_closed, 0u);
  EXPECT_EQ(server_.available(s), 0u);
}

TEST_F(SocketsTest, SendOnUnknownConnFails) {
  std::byte b{};
  EXPECT_EQ(client_.send(999, &b, 1), Status::kInvalidArg);
  EXPECT_EQ(client_.claim_partial(999), Status::kInvalidArg);
  EXPECT_EQ(client_.close(999), Status::kInvalidArg);
  EXPECT_EQ(client_.recv(999, &b, 1), 0u);
}

TEST_F(SocketsTest, SendBeforeEstablishedFails) {
  ConnId pending = 0;
  // No listener reply will ever come for port 7 (no listen): conn stays
  // half-open.
  client_.connect(1, 7, [&](ConnId id) { pending = id; });
  std::byte b{};
  EXPECT_EQ(client_.send(1, &b, 1), Status::kNotReady);
  cluster_.engine().run();
  EXPECT_EQ(pending, 0u);
}

TEST(SocketsMultiNode, ThreeClientsOneServer) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 4;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  std::vector<std::unique_ptr<SocketStack>> stacks;
  for (int n = 0; n < 4; ++n) {
    eps.push_back(std::make_unique<RvmaEndpoint>(cluster.nic(n), RvmaParams{}));
    stacks.push_back(std::make_unique<SocketStack>(*eps.back(), SocketParams{}));
  }
  SocketStack& server = *stacks[0];
  std::vector<ConnId> server_conns;
  server.listen(80, [&](ConnId id) { server_conns.push_back(id); });

  std::vector<ConnId> client_conns(4, 0);
  for (int n = 1; n < 4; ++n) {
    stacks[n]->connect(0, 80, [&, n](ConnId id) {
      client_conns[n] = id;
      std::vector<std::byte> hello(32, static_cast<std::byte>(n));
      stacks[n]->send(id, hello.data(), hello.size());
    });
  }
  cluster.engine().run();
  ASSERT_EQ(server_conns.size(), 3u);
  for (ConnId sc : server_conns) {
    ASSERT_EQ(server.claim_partial(sc), Status::kOk);
  }
  cluster.engine().run();
  // Each connection's stream holds exactly its client's 32 bytes.
  int total = 0;
  for (ConnId sc : server_conns) {
    std::byte out[64];
    const auto got = server.recv(sc, out, sizeof out);
    EXPECT_EQ(got, 32u);
    for (std::uint64_t i = 1; i < got; ++i) EXPECT_EQ(out[i], out[0]);
    total += static_cast<int>(got);
  }
  EXPECT_EQ(total, 96);
}

}  // namespace
}  // namespace rvma::sockets
