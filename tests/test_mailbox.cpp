// Pure unit tests for the RVMA NIC data structures: Mailbox buckets,
// posted-buffer thresholds, the retire ring / rewind, and the counter pool.
#include <gtest/gtest.h>

#include <array>

#include "core/mailbox.hpp"

namespace rvma::core {
namespace {

Mailbox make_mailbox(std::int64_t threshold = 1024,
                     EpochType type = EpochType::kBytes, int retire_depth = 4) {
  return Mailbox(0x11FF0011, threshold, type, Placement::kSteered,
                 retire_depth);
}

TEST(PostedBuffer, ByteThreshold) {
  PostedBuffer buf;
  buf.threshold = 100;
  buf.type = EpochType::kBytes;
  buf.bytes_received = 99;
  EXPECT_FALSE(buf.threshold_reached());
  buf.bytes_received = 100;
  EXPECT_TRUE(buf.threshold_reached());
  buf.bytes_received = 150;  // overshoot still complete
  EXPECT_TRUE(buf.threshold_reached());
}

TEST(PostedBuffer, OpsThreshold) {
  PostedBuffer buf;
  buf.threshold = 3;
  buf.type = EpochType::kOps;
  buf.bytes_received = 1 << 20;  // bytes irrelevant in ops mode
  buf.ops_received = 2;
  EXPECT_FALSE(buf.threshold_reached());
  buf.ops_received = 3;
  EXPECT_TRUE(buf.threshold_reached());
}

TEST(Mailbox, PostInheritsWindowThreshold) {
  Mailbox mb = make_mailbox(512, EpochType::kOps);
  PostedBuffer buf;
  buf.size = 4096;
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_EQ(mb.active().threshold, 512);
  EXPECT_EQ(mb.active().type, EpochType::kOps);
}

TEST(Mailbox, PostKeepsExplicitThreshold) {
  Mailbox mb = make_mailbox(512, EpochType::kOps);
  PostedBuffer buf;
  buf.size = 4096;
  buf.threshold = 7;
  buf.type = EpochType::kBytes;
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_EQ(mb.active().threshold, 7);
  EXPECT_EQ(mb.active().type, EpochType::kBytes);
}

TEST(Mailbox, PostWithDefaultThresholdPreservesMatchingType) {
  // Regression: post() used to overwrite a caller-specified epoch type with
  // the window default whenever threshold <= 0, silently discarding it.
  Mailbox mb = make_mailbox(512, EpochType::kOps);
  PostedBuffer buf;
  buf.size = 4096;
  buf.type = EpochType::kOps;  // explicit, consistent with the window
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_EQ(mb.active().threshold, 512);
  EXPECT_EQ(mb.active().type, EpochType::kOps);
}

TEST(Mailbox, PostWithDefaultThresholdRejectsMismatchedType) {
  // The window default threshold is counted in the window's units, so a
  // default-threshold post naming a different type is inconsistent.
  Mailbox mb = make_mailbox(512, EpochType::kOps);
  PostedBuffer buf;
  buf.size = 4096;
  buf.type = EpochType::kBytes;  // explicit, conflicts with kOps window
  EXPECT_EQ(mb.post(buf), Status::kInvalidArg);
  EXPECT_EQ(mb.posted_count(), 0u);
}

TEST(Mailbox, PostExplicitThresholdInheritsWindowType) {
  Mailbox mb = make_mailbox(512, EpochType::kOps);
  PostedBuffer buf;
  buf.size = 4096;
  buf.threshold = 9;  // explicit count, type left as kInherit
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_EQ(mb.active().threshold, 9);
  EXPECT_EQ(mb.active().type, EpochType::kOps);
}

TEST(Mailbox, PostNegativeThresholdRejected) {
  Mailbox mb = make_mailbox();
  PostedBuffer buf;
  buf.size = 64;
  buf.threshold = -5;
  EXPECT_EQ(mb.post(buf), Status::kInvalidArg);
}

TEST(Mailbox, RejectsInvalidPosts) {
  Mailbox mb = make_mailbox();
  PostedBuffer empty;  // size 0
  EXPECT_EQ(mb.post(empty), Status::kInvalidArg);

  Mailbox no_threshold(1, 0, EpochType::kBytes, Placement::kSteered, 4);
  PostedBuffer buf;
  buf.size = 64;
  EXPECT_EQ(no_threshold.post(buf), Status::kInvalidArg);
}

TEST(Mailbox, ClosedRejectsPosts) {
  Mailbox mb = make_mailbox();
  mb.close();
  PostedBuffer buf;
  buf.size = 64;
  EXPECT_EQ(mb.post(buf), Status::kClosed);
  EXPECT_TRUE(mb.closed());
}

TEST(Mailbox, BucketIsFifo) {
  Mailbox mb = make_mailbox();
  std::array<std::byte, 3> marks{};
  for (int i = 0; i < 3; ++i) {
    PostedBuffer buf;
    buf.base = &marks[i];
    buf.size = 64;
    ASSERT_EQ(mb.post(buf), Status::kOk);
  }
  EXPECT_EQ(mb.posted_count(), 3u);
  EXPECT_EQ(mb.active().base, &marks[0]);
  mb.retire_active(false);
  EXPECT_EQ(mb.active().base, &marks[1]);
  mb.retire_active(false);
  EXPECT_EQ(mb.active().base, &marks[2]);
}

TEST(Mailbox, RetireAdvancesEpochAndCount) {
  Mailbox mb = make_mailbox();
  for (int i = 0; i < 3; ++i) {
    PostedBuffer buf;
    buf.size = 64;
    ASSERT_EQ(mb.post(buf), Status::kOk);
  }
  EXPECT_EQ(mb.epoch(), 0);
  mb.retire_active(false);
  EXPECT_EQ(mb.epoch(), 1);
  EXPECT_EQ(mb.completed_count(), 1u);
  mb.retire_active(true);  // soft (inc_epoch) also advances
  EXPECT_EQ(mb.epoch(), 2);
}

TEST(Mailbox, RetiredBufferRecordsReceivedBytesAndEpoch) {
  Mailbox mb = make_mailbox();
  PostedBuffer buf;
  buf.size = 256;
  ASSERT_EQ(mb.post(buf), Status::kOk);
  mb.active().bytes_received = 200;
  const std::optional<RetiredBuffer> r = mb.retire_active(true);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->bytes_received, 200u);
  EXPECT_EQ(r->epoch, 0);
  EXPECT_TRUE(r->soft);
}

TEST(Mailbox, RetireOnEmptyMailboxFailsWithoutStateChange) {
  // Regression: retire_active used to dereference queue_.front() with an
  // empty bucket (a completion racing an already-drained mailbox) — UB.
  Mailbox mb = make_mailbox();
  EXPECT_FALSE(mb.retire_active(false).has_value());
  EXPECT_FALSE(mb.retire_active(true).has_value());
  EXPECT_EQ(mb.epoch(), 0);
  EXPECT_EQ(mb.completed_count(), 0u);
  EXPECT_TRUE(mb.retired().empty());

  // A drained mailbox behaves the same as a never-filled one.
  PostedBuffer buf;
  buf.size = 64;
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_TRUE(mb.retire_active(false).has_value());
  EXPECT_FALSE(mb.retire_active(false).has_value());
  EXPECT_EQ(mb.epoch(), 1);
  EXPECT_EQ(mb.completed_count(), 1u);
}

TEST(Mailbox, RewindReturnsPreviousEpochs) {
  Mailbox mb = make_mailbox();
  std::array<std::array<std::byte, 8>, 3> bufs{};
  for (auto& b : bufs) {
    PostedBuffer pb;
    pb.base = b.data();
    pb.size = b.size();
    ASSERT_EQ(mb.post(pb), Status::kOk);
  }
  for (int i = 0; i < 3; ++i) {
    mb.active().bytes_received = static_cast<std::uint64_t>(i + 1);
    mb.retire_active(false);
  }
  RetiredBuffer r;
  ASSERT_EQ(mb.rewind(1, &r), Status::kOk);  // most recent epoch
  EXPECT_EQ(r.base, bufs[2].data());
  EXPECT_EQ(r.bytes_received, 3u);
  ASSERT_EQ(mb.rewind(3, &r), Status::kOk);  // oldest retained
  EXPECT_EQ(r.base, bufs[0].data());
  EXPECT_EQ(r.bytes_received, 1u);
}

TEST(Mailbox, RewindBeyondRingFails) {
  Mailbox mb = make_mailbox(1024, EpochType::kBytes, /*retire_depth=*/2);
  for (int i = 0; i < 5; ++i) {
    PostedBuffer buf;
    buf.size = 64;
    ASSERT_EQ(mb.post(buf), Status::kOk);
    mb.retire_active(false);
  }
  RetiredBuffer r;
  EXPECT_EQ(mb.rewind(1, &r), Status::kOk);
  EXPECT_EQ(mb.rewind(2, &r), Status::kOk);
  EXPECT_EQ(mb.rewind(3, &r), Status::kNoBuffer);  // aged out (depth 2)
  EXPECT_EQ(mb.rewind(0, &r), Status::kInvalidArg);
  EXPECT_EQ(mb.rewind(1, nullptr), Status::kInvalidArg);
}

TEST(Mailbox, RetireRingBounded) {
  Mailbox mb = make_mailbox(1024, EpochType::kBytes, /*retire_depth=*/3);
  for (int i = 0; i < 10; ++i) {
    PostedBuffer buf;
    buf.size = 64;
    ASSERT_EQ(mb.post(buf), Status::kOk);
    mb.retire_active(false);
  }
  EXPECT_EQ(mb.retired().size(), 3u);
  EXPECT_EQ(mb.epoch(), 10);
}

TEST(Mailbox, CollectNotifPtrs) {
  Mailbox mb = make_mailbox();
  void* slots[4] = {};
  void** notif_a = &slots[0];
  void** notif_b = &slots[1];
  PostedBuffer a;
  a.size = 64;
  a.notif_ptr = notif_a;
  PostedBuffer b;
  b.size = 64;
  b.notif_ptr = notif_b;
  ASSERT_EQ(mb.post(a), Status::kOk);
  ASSERT_EQ(mb.post(b), Status::kOk);

  void* out[4] = {};
  EXPECT_EQ(mb.collect_notif_ptrs(out, 4), 2);
  EXPECT_EQ(out[0], static_cast<void*>(notif_a));
  EXPECT_EQ(out[1], static_cast<void*>(notif_b));
  EXPECT_EQ(mb.collect_notif_ptrs(out, 1), 1);  // count-limited
}

TEST(Mailbox, PostResetsCountersOnReusedDescriptor) {
  Mailbox mb = make_mailbox();
  PostedBuffer buf;
  buf.size = 64;
  buf.bytes_received = 42;  // stale state from a prior use
  buf.ops_received = 3;
  buf.write_cursor = 17;
  ASSERT_EQ(mb.post(buf), Status::kOk);
  EXPECT_EQ(mb.active().bytes_received, 0u);
  EXPECT_EQ(mb.active().ops_received, 0);
  EXPECT_EQ(mb.active().write_cursor, 0u);
}

TEST(CounterPool, AcquireRelease) {
  CounterPool pool(2);
  EXPECT_EQ(pool.capacity(), 2);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());  // exhausted -> host-memory counters
  EXPECT_EQ(pool.in_use(), 2);
  pool.release();
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_EQ(pool.available(), 0);
}

TEST(CounterPool, ReleaseNeverUnderflows) {
  CounterPool pool(1);
  pool.release();
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_TRUE(pool.try_acquire());
}

}  // namespace
}  // namespace rvma::core
