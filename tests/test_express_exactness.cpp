// Express cut-through exactness (DESIGN.md §8): the fast path must be a
// pure wall-clock optimization. Under adversarial contention — an incast
// hammering one ejection port plus bidirectional neighbor traffic on a
// torus — every observable (makespan, fabric stats, metrics snapshot,
// trace bytes) must be identical with the express path on and off, and
// the fig8 mini-grid's metrics JSON must stay byte-identical across both
// modes and any job count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "net/topology.hpp"
#include "cluster/cluster.hpp"
#include "obs/metrics_io.hpp"
#include "scenario/figure_grid.hpp"
#include "scenario/spec.hpp"

namespace rvma {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Drop the one legitimate difference between express and hop-by-hop
/// runs: the engine event counters (the express path exists to execute
/// fewer events). Everything else must match exactly.
obs::MetricsSnapshot scrub_engine_counters(obs::MetricsSnapshot snap) {
  snap.counters.erase("engine.events_executed");
  snap.counters.erase("engine.events_scheduled");
  return snap;
}

struct ContentionResult {
  net::FabricStats fabric;
  obs::MetricsSnapshot metrics;
  Time makespan = 0;
  std::uint64_t received = 0;
};

/// Adversarial contention on a 2x2x2 torus with static routes: every
/// node floods node 0 (ejection-port incast — express commits early,
/// then conflicts and falls back) while also exchanging messages with
/// both ring neighbors (bidirectional transit traffic crossing the
/// incast paths mid-route). Multi-packet messages exercise the burst
/// path; staggered completion-driven sends keep open express records
/// around for later injections to conflict with.
ContentionResult run_contention(bool express, Tracer* sink) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 8;
  cfg.express = express;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  if (sink != nullptr) cluster.engine().set_tracer(sink);
  const int n = cluster.num_nodes();

  ContentionResult out;
  std::vector<int> rounds_left(static_cast<std::size_t>(n), 3);
  std::function<void(int)> send_round = [&](int node) {
    if (rounds_left[static_cast<std::size_t>(node)]-- <= 0) return;
    auto send_to = [&](int dst, std::uint64_t bytes) {
      if (dst == node) return;
      net::Message msg;
      msg.src = node;
      msg.dst = dst;
      msg.bytes = bytes;
      msg.hdr.kind = net::make_kind(nic::kProtoRdma, 1);
      cluster.nic(node).send(std::move(msg), [] {});
    };
    send_to(0, 20'000);                // incast: 5 packets at node 0
    send_to((node + 1) % n, 10'000);   // ring neighbor, forward
    send_to((node + n - 1) % n, 6'000);  // ring neighbor, backward
  };
  for (int node = 0; node < n; ++node) {
    cluster.nic(node).register_proto(
        nic::kProtoRdma, [&, node](const net::Packet& pkt) {
          ++out.received;
          // Next round when a full message lands: keeps traffic (and open
          // express records) alive across many injection instants.
          if (pkt.seq + 1 == pkt.total) send_round(node);
        });
  }
  // Kick off in descending node order: the far corner (3 hops from node
  // 0) injects — and express-commits — first, so the near nodes' incast
  // packets, injected the same instant but processed after, can reach the
  // shared ejection port before the committed packets' virtual
  // arbitration times. That is exactly the eager-charge conflict that
  // forces a rematerialize.
  for (int node = n - 1; node >= 0; --node) send_round(node);
  out.makespan = cluster.engine().run();
  out.fabric = cluster.network().fabric().stats();
  out.metrics = scrub_engine_counters(cluster.collect_metrics());
  return out;
}

TEST(ExpressExactness, ContentionStatsAndMetricsIdentical) {
  const ContentionResult fast = run_contention(true, nullptr);
  const ContentionResult slow = run_contention(false, nullptr);

  // The fast path must actually engage AND be contested in this workload,
  // including the conflict unwind — otherwise the test proves nothing.
  EXPECT_GT(fast.fabric.express_commits, 0u);
  EXPECT_GT(fast.fabric.express_fallbacks, 0u);
  EXPECT_GT(fast.fabric.express_remats, 0u);
  EXPECT_EQ(slow.fabric.express_commits, 0u);

  EXPECT_EQ(fast.makespan, slow.makespan);
  EXPECT_EQ(fast.received, slow.received);
  EXPECT_GT(fast.received, 0u);
  EXPECT_EQ(fast.fabric.packets_injected, slow.fabric.packets_injected);
  EXPECT_EQ(fast.fabric.packets_delivered, slow.fabric.packets_delivered);
  EXPECT_EQ(fast.fabric.total_hops, slow.fabric.total_hops);
  EXPECT_EQ(fast.fabric.wire_bytes_delivered, slow.fabric.wire_bytes_delivered);
  EXPECT_EQ(fast.fabric.route_cache_hits, slow.fabric.route_cache_hits);
  EXPECT_EQ(fast.fabric.max_port_backlog, slow.fabric.max_port_backlog);
  EXPECT_EQ(fast.metrics, slow.metrics);
}

TEST(ExpressExactness, ContentionTraceByteIdentical) {
  const std::string path_fast = ::testing::TempDir() + "express_fast.jsonl";
  const std::string path_slow = ::testing::TempDir() + "express_slow.jsonl";
  Tracer sink_fast, sink_slow;
  ASSERT_TRUE(sink_fast.open(path_fast));
  ASSERT_TRUE(sink_slow.open(path_slow));

  const ContentionResult fast = run_contention(true, &sink_fast);
  const ContentionResult slow = run_contention(false, &sink_slow);
  sink_fast.close();
  sink_slow.close();

  // Tracing disables event folding but not the express path itself: the
  // per-packet pkt_inject/pkt_deliver records — timestamps included —
  // must come out byte-for-byte identical.
  EXPECT_GT(fast.fabric.express_commits, 0u);
  EXPECT_EQ(slow.fabric.express_commits, 0u);
  const std::string bytes_fast = read_file(path_fast);
  EXPECT_FALSE(bytes_fast.empty());
  EXPECT_EQ(bytes_fast, read_file(path_slow));
  std::remove(path_fast.c_str());
  std::remove(path_slow.c_str());
}

scenario::GridSpec mini_grid() {
  scenario::GridSpec grid;
  grid.figure = "test";
  grid.motif_label = "Halo3D";
  grid.base.nodes = 8;
  grid.base.motif = "halo3d";
  grid.base.motif_params = {{"px", "2"},  {"py", "2"},
                            {"pz", "2"},  {"nx", "8"},
                            {"ny", "8"},  {"nz", "8"},
                            {"vars", "2"}, {"iterations", "2"},
                            {"compute_per_cell", "50ps"}};
  grid.gbps = {100, 400};
  // First three grid rows cover torus + fat-tree and static + adaptive
  // routing while keeping the test fast.
  grid.cases = {"torus3d-static", "torus3d-adaptive", "fattree-static"};
  return grid;
}

/// The metrics JSON minus the engine event-count lines — the one
/// legitimate difference between express and hop-by-hop documents.
std::string filter_engine_events(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("engine.events") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

TEST(ExpressExactness, Fig8MiniGridJsonIdenticalAcrossModesAndJobs) {
  const scenario::GridSpec grid_fast = mini_grid();
  scenario::GridSpec grid_slow = mini_grid();
  grid_slow.base.express = false;
  // Sampling stays off — sampled gauge timeseries may observe express's
  // eager port charges (DESIGN.md §8), and the document must be identical
  // without that caveat.

  std::vector<scenario::GridCell> fast, slow_serial, slow_parallel;
  std::string error;
  ASSERT_TRUE(scenario::run_grid(grid_fast, 1, &fast, &error)) << error;
  ASSERT_TRUE(scenario::run_grid(grid_slow, 1, &slow_serial, &error)) << error;
  ASSERT_TRUE(scenario::run_grid(grid_slow, 4, &slow_parallel, &error))
      << error;

  ASSERT_EQ(fast.size(), slow_serial.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // Same simulation results cell by cell; only event counts may move.
    EXPECT_EQ(fast[i].rdma.makespan, slow_serial[i].rdma.makespan) << i;
    EXPECT_EQ(fast[i].rvma.makespan, slow_serial[i].rvma.makespan) << i;
    EXPECT_EQ(fast[i].rdma.packets_delivered,
              slow_serial[i].rdma.packets_delivered)
        << i;
    EXPECT_EQ(fast[i].rvma.packets_delivered,
              slow_serial[i].rvma.packets_delivered)
        << i;
    EXPECT_EQ(fast[i].rdma.route_cache_hits,
              slow_serial[i].rdma.route_cache_hits)
        << i;
    EXPECT_EQ(scrub_engine_counters(fast[i].rvma.metrics),
              scrub_engine_counters(slow_serial[i].rvma.metrics))
        << i;
    EXPECT_EQ(slow_serial[i], slow_parallel[i]) << i;  // jobs determinism
  }

  const std::string dir = ::testing::TempDir();
  const std::string path_fast = dir + "express_grid_fast.json";
  const std::string path_slow = dir + "express_grid_slow.json";
  const std::string path_slow4 = dir + "express_grid_slow4.json";
  ASSERT_TRUE(obs::write_metrics_file(
      scenario::build_grid_metrics_doc(grid_fast, fast), path_fast));
  ASSERT_TRUE(obs::write_metrics_file(
      scenario::build_grid_metrics_doc(grid_slow, slow_serial), path_slow));
  ASSERT_TRUE(obs::write_metrics_file(
      scenario::build_grid_metrics_doc(grid_slow, slow_parallel), path_slow4));

  const std::string slow_bytes = read_file(path_slow);
  EXPECT_EQ(slow_bytes, read_file(path_slow4));  // byte-identical across jobs
  EXPECT_EQ(filter_engine_events(read_file(path_fast)),
            filter_engine_events(slow_bytes));
  std::remove(path_fast.c_str());
  std::remove(path_slow.c_str());
  std::remove(path_slow4.c_str());
}

}  // namespace
}  // namespace rvma
