// Trace facility tests: JSONL emission, hook coverage, and the
// enabled-flag fast path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/trace.hpp"
#include "core/endpoint.hpp"
#include "sim/engine.hpp"

namespace rvma {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "rvma_trace_test.jsonl";
  }
  void TearDown() override {
    Tracer::global().close();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(TraceTest, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(5, "evt", {});  // must be a no-op, not a crash
  EXPECT_EQ(tracer.events_written(), 0u);
}

TEST_F(TraceTest, WritesOneJsonObjectPerLine) {
  Tracer tracer;
  ASSERT_TRUE(tracer.open(path_));
  tracer.record(100, "hello", {{"a", 1}, {"b", -2}});
  tracer.record(200, "world", {});
  tracer.close();

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"t\":100,\"ev\":\"hello\",\"a\":1,\"b\":-2}");
  EXPECT_EQ(lines[1], "{\"t\":200,\"ev\":\"world\"}");
}

TEST_F(TraceTest, HooksCoverPutLifecycle) {
  ASSERT_TRUE(Tracer::global().open(path_));

  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  core::RvmaEndpoint sender(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint receiver(cluster.nic(1), core::RvmaParams{});
  receiver.init_window(0x1, 64, core::EpochType::kBytes);
  receiver.post_buffer_timing_only(0x1, 64);
  sender.put(1, 0x1, 0, nullptr, 64);
  sender.put(1, 0xBAD, 0, nullptr, 8);  // drop path
  cluster.engine().run();
  Tracer::global().close();

  const auto lines = read_lines(path_);
  int injects = 0, delivers = 0, completes = 0, drops = 0;
  for (const std::string& line : lines) {
    injects += line.find("\"ev\":\"pkt_inject\"") != std::string::npos;
    delivers += line.find("\"ev\":\"pkt_deliver\"") != std::string::npos;
    completes += line.find("\"ev\":\"rvma_complete\"") != std::string::npos;
    drops += line.find("\"ev\":\"rvma_drop\"") != std::string::npos;
  }
  EXPECT_GE(injects, 2);  // data put + drop put (+ NACK control)
  EXPECT_GE(delivers, 2);
  EXPECT_EQ(completes, 1);
  EXPECT_EQ(drops, 1);
}

TEST_F(TraceTest, StringFieldsAreQuoted) {
  Tracer tracer;
  ASSERT_TRUE(tracer.open(path_));
  tracer.record(10, "nack", {{"reason", "kNoBuffer"}, {"code", 3}});
  tracer.close();

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"t\":10,\"ev\":\"nack\",\"reason\":\"kNoBuffer\",\"code\":3}");
}

TEST_F(TraceTest, EngineIdIsStampedWhenNonNegative) {
  Tracer tracer;
  ASSERT_TRUE(tracer.open(path_));
  tracer.record(10, "evt", /*eng=*/7, {{"a", 1}});
  tracer.record(20, "evt", /*eng=*/-1, {});  // omitted: legacy layout
  tracer.close();

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"t\":10,\"ev\":\"evt\",\"eng\":7,\"a\":1}");
  EXPECT_EQ(lines[1], "{\"t\":20,\"ev\":\"evt\"}");
}

TEST_F(TraceTest, EngineStampsItsIdIntoTraceRecords) {
  Tracer tracer;
  ASSERT_TRUE(tracer.open(path_));
  sim::Engine engine;
  engine.set_tracer(&tracer, /*eng_id=*/42);
  engine.schedule(5, [&] { engine.trace("tick", {{"n", 1}}); });
  engine.run();
  tracer.close();

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"eng\":42"), std::string::npos) << lines[0];
}

TEST_F(TraceTest, ReopenTruncates) {
  Tracer tracer;
  ASSERT_TRUE(tracer.open(path_));
  tracer.record(1, "x", {});
  ASSERT_TRUE(tracer.open(path_));
  tracer.record(2, "y", {});
  tracer.close();
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"y\""), std::string::npos);
}

}  // namespace
}  // namespace rvma
