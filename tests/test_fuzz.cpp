// Randomized end-to-end fuzz tests for the middleware layers, checked
// against shadow models. Fixed seeds per instantiation for reproducibility.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "rma/rma_window.hpp"
#include "sockets/socket_stack.hpp"

namespace rvma {
namespace {

using core::RvmaEndpoint;
using core::RvmaParams;

net::NetworkConfig star(int nodes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = nodes;
  return cfg;
}

// ------------------------------------------------------------ sockets fuzz

// Random-size chunks streamed over a connection, drained with random-size
// recvs and periodic partial claims: the reassembled byte stream must be
// identical to what was sent.
class SocketsStreamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SocketsStreamFuzz, StreamIntegrity) {
  Rng rng(GetParam() * 7919);
  cluster::Cluster cluster(star(2), nic::NicParams{});
  RvmaEndpoint client_ep(cluster.nic(0), RvmaParams{});
  RvmaEndpoint server_ep(cluster.nic(1), RvmaParams{});
  sockets::SocketParams params;
  params.segment_bytes = 1024 + rng.next_below(4096);
  params.ring_depth = 64;  // deep enough for the whole fuzz stream
  sockets::SocketStack client(client_ep, params);
  sockets::SocketStack server(server_ep, params);

  sockets::ConnId client_conn = 0, server_conn = 0;
  server.listen(1, [&](sockets::ConnId id) { server_conn = id; });
  client.connect(1, 1, [&](sockets::ConnId id) { client_conn = id; });
  cluster.engine().run();
  ASSERT_NE(client_conn, 0u);
  ASSERT_NE(server_conn, 0u);

  // Send 10..30 chunks of 1..5000 bytes.
  std::vector<std::byte> sent;
  const int chunks = 10 + static_cast<int>(rng.next_below(21));
  for (int i = 0; i < chunks; ++i) {
    const std::uint64_t size = 1 + rng.next_below(5000);
    std::vector<std::byte> chunk(size);
    for (auto& b : chunk) b = static_cast<std::byte>(rng() & 0xff);
    sent.insert(sent.end(), chunk.begin(), chunk.end());
    ASSERT_EQ(client.send(client_conn, chunk.data(), size), Status::kOk);
    if (rng.next_bool(0.3)) cluster.engine().run();  // interleave draining
  }
  cluster.engine().run();
  server.claim_partial(server_conn);
  cluster.engine().run();

  ASSERT_EQ(server.available(server_conn), sent.size());
  std::vector<std::byte> got(sent.size());
  std::uint64_t off = 0;
  while (off < got.size()) {
    const std::uint64_t want = 1 + rng.next_below(3000);
    const std::uint64_t n =
        server.recv(server_conn, got.data() + off,
                    std::min<std::uint64_t>(want, got.size() - off));
    ASSERT_GT(n, 0u);
    off += n;
  }
  EXPECT_EQ(got, sent) << "stream corrupted (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocketsStreamFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// --------------------------------------------------------------- RMA fuzz

// Random non-overlapping puts between random rank pairs across several
// fences, mirrored into shadow windows; after every fence the real
// windows must equal the shadows.
class RmaFenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmaFenceFuzz, WindowsMatchShadowModel) {
  Rng rng(GetParam() * 104729);
  constexpr int kRanks = 4;
  constexpr std::uint64_t kSize = 2048;
  constexpr std::uint64_t kSlot = 64;  // puts are slot-aligned: no overlap

  cluster::Cluster cluster(star(kRanks), nic::NicParams{});
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  std::vector<RvmaEndpoint*> raw;
  for (int r = 0; r < kRanks; ++r) {
    eps.push_back(std::make_unique<RvmaEndpoint>(cluster.nic(r), RvmaParams{}));
    raw.push_back(eps.back().get());
  }
  rma::RmaWindow window(raw, 0xF22, rma::RmaWindow::Config{kSize, 2, true});

  std::vector<std::vector<std::byte>> shadow(
      kRanks, std::vector<std::byte>(kSize, std::byte{0}));
  // Payload staging must outlive the engine run.
  std::vector<std::unique_ptr<std::vector<std::byte>>> staging;

  const int epochs = 3;
  for (int e = 0; e < epochs; ++e) {
    const int puts = 1 + static_cast<int>(rng.next_below(12));
    // Conflicting puts to the same (target, slot) within one epoch are
    // erroneous in MPI RMA (arrival order is unspecified) — keep the
    // generated workload conflict-free.
    std::set<std::pair<int, std::uint64_t>> used;
    for (int i = 0; i < puts; ++i) {
      const int origin = static_cast<int>(rng.next_below(kRanks));
      int target = static_cast<int>(rng.next_below(kRanks - 1));
      if (target >= origin) ++target;
      const std::uint64_t slot = rng.next_below(kSize / kSlot);
      if (!used.insert({target, slot}).second) continue;
      staging.push_back(std::make_unique<std::vector<std::byte>>(
          kSlot, static_cast<std::byte>(rng() & 0xff)));
      const auto& payload = *staging.back();
      ASSERT_EQ(window.put(origin, target, slot * kSlot, payload.data(),
                           kSlot),
                Status::kOk);
      std::memcpy(shadow[target].data() + slot * kSlot, payload.data(),
                  kSlot);
    }
    int fenced = 0;
    window.fence([&](int) { ++fenced; });
    cluster.engine().run();
    ASSERT_EQ(fenced, kRanks) << "epoch " << e;
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_EQ(std::memcmp(window.data(r), shadow[r].data(), kSize), 0)
          << "rank " << r << " epoch " << e << " seed " << GetParam();
    }
  }
  EXPECT_EQ(window.epoch(), epochs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmaFenceFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------------- managed placement fuzz

// Random segment sizes and random put sizes in receiver-managed mode over
// an ordered path: the concatenation of completed segments plus the
// partial tail must reproduce the sent stream exactly.
class ManagedSplitFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManagedSplitFuzz, ReassemblyMatches) {
  Rng rng(GetParam() * 31337);
  cluster::Cluster cluster(star(2), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint receiver(cluster.nic(1), RvmaParams{});

  const std::uint64_t seg = 256 + rng.next_below(2048);
  constexpr int kSegments = 64;
  std::vector<std::vector<std::byte>> segs(kSegments,
                                           std::vector<std::byte>(seg));
  receiver.init_window(0x5, static_cast<std::int64_t>(seg),
                       core::EpochType::kBytes, core::Placement::kManaged);
  for (auto& s : segs) {
    ASSERT_EQ(receiver.post_buffer(0x5, s, nullptr, nullptr), Status::kOk);
  }

  std::vector<std::byte> sent;
  std::vector<std::unique_ptr<std::vector<std::byte>>> staging;
  const int puts = 5 + static_cast<int>(rng.next_below(20));
  for (int i = 0; i < puts; ++i) {
    const std::uint64_t size = 1 + rng.next_below(3 * seg);
    if (sent.size() + size > seg * kSegments) break;
    staging.push_back(std::make_unique<std::vector<std::byte>>(size));
    for (auto& b : *staging.back()) b = static_cast<std::byte>(rng() & 0xff);
    sent.insert(sent.end(), staging.back()->begin(), staging.back()->end());
    sender.put(1, 0x5, 0, staging.back()->data(), size);
  }
  cluster.engine().run();

  // Reassemble: completed segments in order, then the partial tail.
  std::vector<std::byte> got;
  const std::uint64_t full = sent.size() / seg;
  for (std::uint64_t s = 0; s < full; ++s) {
    got.insert(got.end(), segs[s].begin(), segs[s].end());
  }
  const core::Mailbox* mb = receiver.find_mailbox(0x5);
  ASSERT_NE(mb, nullptr);
  if (sent.size() % seg != 0) {
    ASSERT_TRUE(mb->has_active());
    EXPECT_EQ(mb->active().bytes_received, sent.size() % seg);
    got.insert(got.end(), segs[full].begin(),
               segs[full].begin() + static_cast<long>(sent.size() % seg));
  }
  EXPECT_EQ(got, sent) << "seed " << GetParam();
  EXPECT_EQ(receiver.completions(0x5), full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagedSplitFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rvma
