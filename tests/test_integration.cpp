// Integration tests: multi-node application-level scenarios moving real
// data across multi-hop topologies, and protocol coexistence on one NIC.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"
#include "rdma/rdma.hpp"

namespace rvma {
namespace {

using core::EpochType;
using core::RvmaEndpoint;
using core::RvmaParams;
using core::Window;

// A ring exchange over an adaptively routed dragonfly: every node puts a
// distinct payload to its successor's mailbox; all payloads must arrive
// intact. Exercises multi-hop routing + RVMA placement with real memory.
TEST(Integration, RingExchangeOnAdaptiveDragonfly) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = net::Routing::kAdaptive;
  cfg.df_p = 2;
  cfg.df_a = 4;
  cfg.df_h = 2;  // 72 nodes
  cfg.seed = 42;
  nic::NicParams nic_params;
  nic_params.mtu = 1024;
  cluster::Cluster cluster(cfg, nic_params);
  const int n = cluster.num_nodes();
  ASSERT_EQ(n, 72);

  constexpr std::uint64_t kBytes = 6000;  // multi-packet
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  std::vector<std::vector<std::byte>> rx(n), tx(n);
  std::vector<void*> notifs(n, nullptr);
  for (int node = 0; node < n; ++node) {
    eps.push_back(
        std::make_unique<RvmaEndpoint>(cluster.nic(node), RvmaParams{}));
    rx[node].assign(kBytes, std::byte{0});
    tx[node].assign(kBytes, static_cast<std::byte>(node & 0xff));
    eps[node]->init_window(0xAB, kBytes, EpochType::kBytes);
    ASSERT_EQ(eps[node]->post_buffer(0xAB, rx[node], &notifs[node], nullptr),
              Status::kOk);
  }
  for (int node = 0; node < n; ++node) {
    eps[node]->put((node + 1) % n, 0xAB, 0, tx[node].data(), kBytes);
  }
  cluster.engine().run();

  for (int node = 0; node < n; ++node) {
    const int pred = (node + n - 1) % n;
    EXPECT_EQ(notifs[node], rx[node].data()) << "node " << node;
    EXPECT_EQ(std::memcmp(rx[node].data(), tx[pred].data(), kBytes), 0)
        << "node " << node << " received corrupted data";
  }
}

// RDMA and RVMA endpoints share one NIC (distinct protocol classes): a
// realistic migration scenario where both stacks coexist.
TEST(Integration, RdmaAndRvmaCoexistOnOneNic) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});

  rdma::RdmaEndpoint rdma0(cluster.nic(0), rdma::RdmaParams{});
  rdma::RdmaEndpoint rdma1(cluster.nic(1), rdma::RdmaParams{});
  RvmaEndpoint rvma0(cluster.nic(0), RvmaParams{});
  RvmaEndpoint rvma1(cluster.nic(1), RvmaParams{});

  // RVMA path.
  std::vector<std::byte> rvma_buf(64, std::byte{0});
  void* notif = nullptr;
  rvma1.init_window(0x1, 64, EpochType::kBytes);
  ASSERT_EQ(rvma1.post_buffer(0x1, rvma_buf, &notif, nullptr), Status::kOk);
  std::vector<std::byte> rvma_payload(64, std::byte{0xAA});

  // RDMA path.
  std::vector<std::byte> rdma_buf(64, std::byte{0});
  std::uint64_t addr = 0;
  cluster.engine().schedule(0, [&] {
    rdma1.register_region(rdma_buf, 0, [&](std::uint64_t a) { addr = a; });
  });
  cluster.engine().run();
  std::vector<std::byte> rdma_payload(64, std::byte{0xBB});

  bool rdma_done = false;
  cluster.engine().schedule(0, [&] {
    rvma0.put(1, 0x1, 0, rvma_payload.data(), 64);
    rdma0.put(rdma::RemoteBuffer{1, addr, 64}, 0, rdma_payload.data(), 64,
              [&] { rdma_done = true; });
  });
  cluster.engine().run();

  EXPECT_EQ(notif, rvma_buf.data());
  EXPECT_EQ(rvma_buf[5], std::byte{0xAA});
  EXPECT_TRUE(rdma_done);
  EXPECT_EQ(rdma_buf[5], std::byte{0xBB});
}

// Many-to-one with real data: 16 clients stream records into one server
// mailbox bucket; every record lands in its own buffer, none interleave
// (paper §III-B: message separation via the bucket).
TEST(Integration, ManyToOneBucketSeparation) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kFatTree;
  cfg.fat_k = 4;  // 16 nodes
  cfg.routing = net::Routing::kAdaptive;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  const int n = cluster.num_nodes();

  constexpr std::uint64_t kRecord = 512;
  std::vector<std::unique_ptr<RvmaEndpoint>> eps;
  for (int node = 0; node < n; ++node) {
    eps.push_back(
        std::make_unique<RvmaEndpoint>(cluster.nic(node), RvmaParams{}));
  }
  RvmaEndpoint& server = *eps[0];
  const int records = n - 1;
  std::vector<std::vector<std::byte>> slots(records,
                                            std::vector<std::byte>(kRecord));
  server.init_window(0x5E4, kRecord, EpochType::kBytes);
  for (auto& slot : slots) {
    ASSERT_EQ(server.post_buffer(0x5E4, slot, nullptr, nullptr), Status::kOk);
  }

  std::vector<std::vector<std::byte>> payloads;
  for (int c = 1; c < n; ++c) {
    payloads.emplace_back(kRecord, static_cast<std::byte>(c));
  }
  for (int c = 1; c < n; ++c) {
    eps[c]->put(0, 0x5E4, 0, payloads[c - 1].data(), kRecord);
  }
  cluster.engine().run();

  EXPECT_EQ(server.completions(0x5E4), static_cast<std::uint64_t>(records));
  // Each filled slot holds exactly one client's record (no interleaving).
  std::vector<int> seen_from(n, 0);
  for (const auto& slot : slots) {
    const auto first = slot[0];
    for (const auto& b : slot) EXPECT_EQ(b, first);
    ++seen_from[std::to_integer<int>(first)];
  }
  for (int c = 1; c < n; ++c) EXPECT_EQ(seen_from[c], 1) << "client " << c;
}

// Epoch pipeline: a sender streams E epochs back-to-back; the receiver's
// bucket absorbs them; epochs complete in order with correct data.
TEST(Integration, PipelinedEpochStream) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint receiver(cluster.nic(1), RvmaParams{});

  constexpr int kEpochs = 12;
  constexpr std::uint64_t kBytes = 2048;
  std::vector<std::vector<std::byte>> bufs(kEpochs,
                                           std::vector<std::byte>(kBytes));
  Window win = receiver.init_window(0xE, kBytes, EpochType::kBytes);
  for (auto& b : bufs) ASSERT_EQ(win.post(b, nullptr), Status::kOk);

  std::vector<std::vector<std::byte>> payloads;
  for (int e = 0; e < kEpochs; ++e) {
    payloads.emplace_back(kBytes, static_cast<std::byte>(0x30 + e));
  }
  // Fire-and-forget stream — no per-epoch coordination (the RVMA pitch).
  for (int e = 0; e < kEpochs; ++e) {
    sender.put(1, 0xE, 0, payloads[e].data(), kBytes);
  }
  cluster.engine().run();

  EXPECT_EQ(win.epoch(), kEpochs);
  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(bufs[e][0], static_cast<std::byte>(0x30 + e)) << "epoch " << e;
    EXPECT_EQ(bufs[e][kBytes - 1], static_cast<std::byte>(0x30 + e));
  }
}

}  // namespace
}  // namespace rvma
