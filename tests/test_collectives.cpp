// Collective motif tests: program structure and execution on both
// transports, checking the RVMA advantage carries over to dependent-chain
// collective patterns.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "motifs/collectives.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/rvma_transport.hpp"

namespace rvma::motifs {
namespace {

net::NetworkConfig fattree(int nodes, net::Routing routing) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kFatTree;
  cfg.routing = routing;
  cfg.nodes_hint = nodes;
  cfg.seed = 3;
  return cfg;
}

TEST(Barrier, ProgramShape) {
  BarrierConfig cfg;
  cfg.ranks = 8;
  cfg.iterations = 2;
  const auto programs = build_barrier(cfg);
  ASSERT_EQ(programs.size(), 8u);
  // 8 ranks -> 3 rounds; per iteration: 3 sends + 3 waits + 3 posts.
  for (const auto& prog : programs) {
    EXPECT_EQ(prog.size(), 2u * 3 * 3);
  }
}

TEST(Barrier, NonPowerOfTwoRanks) {
  BarrierConfig cfg;
  cfg.ranks = 6;
  cfg.iterations = 1;
  const auto programs = build_barrier(cfg);
  const auto channels = MotifRunner::derive_channels(programs);
  // Every channel has a matching receiver.
  for (const auto& ch : channels) {
    bool found = false;
    for (const Op& op : programs[ch.dst]) {
      if (op.kind == Op::Kind::kRecvWait && op.peer == ch.src &&
          op.tag == ch.tag) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(AllReduce, ProgramShape) {
  AllReduceConfig cfg;
  cfg.ranks = 4;
  cfg.bytes = 4096;
  cfg.iterations = 1;
  const auto programs = build_allreduce(cfg);
  ASSERT_EQ(programs.size(), 4u);
  // 2(n-1) = 6 steps, each: post + send + wait (no reduce time configured).
  for (const auto& prog : programs) {
    EXPECT_EQ(prog.size(), 6u * 3);
  }
  // Chunks are size/n.
  for (const Op& op : programs[0]) {
    if (op.kind == Op::Kind::kSend) EXPECT_EQ(op.bytes, 1024u);
  }
}

TEST(Broadcast, TreeIsConsistent) {
  for (int ranks : {2, 5, 8, 13, 16}) {
    BroadcastConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto programs = build_broadcast(cfg);
    // Every non-root rank receives exactly once; total sends = n - 1.
    int sends = 0;
    for (int r = 0; r < ranks; ++r) {
      int recvs = 0;
      for (const Op& op : programs[r]) {
        sends += op.kind == Op::Kind::kSend;
        recvs += op.kind == Op::Kind::kRecvWait;
      }
      EXPECT_EQ(recvs, r == cfg.root ? 0 : 1) << "ranks=" << ranks << " r=" << r;
    }
    EXPECT_EQ(sends, ranks - 1) << "ranks=" << ranks;
  }
}

TEST(Broadcast, NonZeroRoot) {
  BroadcastConfig cfg;
  cfg.ranks = 8;
  cfg.root = 3;
  cfg.iterations = 1;
  const auto programs = build_broadcast(cfg);
  int root_recvs = 0;
  for (const Op& op : programs[3]) {
    root_recvs += op.kind == Op::Kind::kRecvWait;
  }
  EXPECT_EQ(root_recvs, 0);
}

struct CollectiveCase {
  const char* name;
  std::vector<RankProgram> (*build)(int ranks);
};

std::vector<RankProgram> make_barrier(int ranks) {
  BarrierConfig cfg;
  cfg.ranks = ranks;
  cfg.iterations = 4;
  return build_barrier(cfg);
}
std::vector<RankProgram> make_allreduce(int ranks) {
  AllReduceConfig cfg;
  cfg.ranks = ranks;
  cfg.bytes = 256 * KiB;
  cfg.iterations = 2;
  return build_allreduce(cfg);
}
std::vector<RankProgram> make_broadcast(int ranks) {
  BroadcastConfig cfg;
  cfg.ranks = ranks;
  cfg.iterations = 4;
  return build_broadcast(cfg);
}

class CollectiveExecutionTest
    : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveExecutionTest, RunsAndRvmaWins) {
  const int ranks = 16;
  const auto programs = GetParam().build(ranks);

  Time rvma_time = 0, rdma_time = 0;
  {
    cluster::Cluster cluster(fattree(ranks, net::Routing::kAdaptive),
                         nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    rvma_time = MotifRunner(cluster, transport, programs).run().makespan;
  }
  {
    cluster::Cluster cluster(fattree(ranks, net::Routing::kAdaptive),
                         nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{},
                            /*ordered_network=*/false);
    rdma_time = MotifRunner(cluster, transport, programs).run().makespan;
  }
  EXPECT_GT(rvma_time, 0u);
  EXPECT_LT(rvma_time, rdma_time) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Collectives, CollectiveExecutionTest,
    ::testing::Values(CollectiveCase{"barrier", make_barrier},
                      CollectiveCase{"allreduce", make_allreduce},
                      CollectiveCase{"broadcast", make_broadcast}),
    [](const ::testing::TestParamInfo<CollectiveCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rvma::motifs
