// Tests for core features beyond the basic put path: protection keys,
// managed-mode boundary spilling, owned-payload puts, window freeing,
// NIC transmit-queue limits, and network failure injection.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

namespace rvma::core {
namespace {

net::NetworkConfig star2() {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  return cfg;
}

class FeatureTest : public ::testing::Test {
 protected:
  FeatureTest()
      : cluster_(star2(), nic::NicParams{}),
        sender_(cluster_.nic(0), RvmaParams{}),
        receiver_(cluster_.nic(1), RvmaParams{}) {}

  void run() { cluster_.engine().run(); }

  cluster::Cluster cluster_;
  RvmaEndpoint sender_;
  RvmaEndpoint receiver_;
};

// ------------------------------------------------------- protection keys

TEST_F(FeatureTest, KeyedWindowRejectsWrongKey) {
  constexpr std::uint64_t kKey = 0xfeedface;
  receiver_.init_window(0x1, 64, EpochType::kBytes, Placement::kSteered, kKey);
  receiver_.post_buffer_timing_only(0x1, 64);

  Status nack = Status::kOk;
  sender_.on_nack([&](std::uint64_t, Status r) { nack = r; });
  sender_.put(1, 0x1, 0, nullptr, 64, {}, /*key=*/0xBAD);
  run();
  EXPECT_EQ(receiver_.stats().drops_bad_key, 1u);
  EXPECT_EQ(nack, Status::kError);
  EXPECT_EQ(receiver_.completions(0x1), 0u);
}

TEST_F(FeatureTest, KeyedWindowAcceptsCorrectKey) {
  constexpr std::uint64_t kKey = 0xfeedface;
  receiver_.init_window(0x1, 64, EpochType::kBytes, Placement::kSteered, kKey);
  receiver_.post_buffer_timing_only(0x1, 64);
  sender_.put(1, 0x1, 0, nullptr, 64, {}, kKey);
  run();
  EXPECT_EQ(receiver_.completions(0x1), 1u);
  EXPECT_EQ(receiver_.stats().drops_bad_key, 0u);
}

TEST_F(FeatureTest, UnkeyedWindowAcceptsAnything) {
  receiver_.init_window(0x1, 64, EpochType::kBytes);
  receiver_.post_buffer_timing_only(0x1, 64);
  sender_.put(1, 0x1, 0, nullptr, 64, {}, /*key=*/12345);
  run();
  EXPECT_EQ(receiver_.completions(0x1), 1u);
}

TEST_F(FeatureTest, KeyEnforcementCanBeDisabled) {
  RvmaParams params;
  params.enforce_keys = false;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);
  receiver.init_window(0x1, 64, EpochType::kBytes, Placement::kSteered, 0x77);
  receiver.post_buffer_timing_only(0x1, 64);
  sender.put(1, 0x1, 0, nullptr, 64, {}, /*key=*/0);
  cluster.engine().run();
  EXPECT_EQ(receiver.completions(0x1), 1u);
}

// -------------------------------------------- managed-mode boundary split

TEST_F(FeatureTest, ManagedModeSpillsAcrossBuffers) {
  std::vector<std::byte> seg_a(100), seg_b(100);
  receiver_.init_window(0x2, 100, EpochType::kBytes, Placement::kManaged);
  ASSERT_EQ(receiver_.post_buffer(0x2, seg_a, nullptr, nullptr), Status::kOk);
  ASSERT_EQ(receiver_.post_buffer(0x2, seg_b, nullptr, nullptr), Status::kOk);

  std::vector<std::byte> payload(150);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  sender_.put(1, 0x2, 0, payload.data(), payload.size());
  run();

  // First buffer completed full, second holds the 50-byte tail.
  EXPECT_EQ(receiver_.completions(0x2), 1u);
  EXPECT_EQ(std::memcmp(seg_a.data(), payload.data(), 100), 0);
  EXPECT_EQ(std::memcmp(seg_b.data(), payload.data() + 100, 50), 0);
  const Mailbox* mb = receiver_.find_mailbox(0x2);
  ASSERT_TRUE(mb->has_active());
  EXPECT_EQ(mb->active().bytes_received, 50u);
}

TEST_F(FeatureTest, ManagedSpillAcrossManyBuffersOnePacket) {
  // A single 4096-byte packet spanning 5 x 1000-byte segments.
  std::vector<std::vector<std::byte>> segs(5, std::vector<std::byte>(1000));
  receiver_.init_window(0x3, 1000, EpochType::kBytes, Placement::kManaged);
  for (auto& s : segs) {
    ASSERT_EQ(receiver_.post_buffer(0x3, s, nullptr, nullptr), Status::kOk);
  }
  std::vector<std::byte> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 7);
  }
  sender_.put(1, 0x3, 0, payload.data(), payload.size());
  run();
  EXPECT_EQ(receiver_.completions(0x3), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(std::memcmp(segs[s].data(), payload.data() + s * 1000, 1000), 0);
  }
  EXPECT_EQ(std::memcmp(segs[4].data(), payload.data() + 4000, 96), 0);
}

TEST_F(FeatureTest, ManagedRunsOutOfBuffersMidPacket) {
  std::vector<std::byte> seg(100);
  receiver_.init_window(0x4, 100, EpochType::kBytes, Placement::kManaged);
  ASSERT_EQ(receiver_.post_buffer(0x4, seg, nullptr, nullptr), Status::kOk);
  sender_.put(1, 0x4, 0, nullptr, 250);  // only 100 bytes have a home
  run();
  EXPECT_EQ(receiver_.completions(0x4), 1u);
  EXPECT_EQ(receiver_.stats().drops_no_buffer, 1u);
}

TEST_F(FeatureTest, SteeredModeStillBoundsChecks) {
  std::vector<std::byte> buf(100);
  receiver_.init_window(0x5, 100, EpochType::kBytes, Placement::kSteered);
  ASSERT_EQ(receiver_.post_buffer(0x5, buf, nullptr, nullptr), Status::kOk);
  sender_.put(1, 0x5, 50, nullptr, 100);  // 50 + 100 > 100
  run();
  EXPECT_EQ(receiver_.stats().drops_overflow, 1u);
  EXPECT_EQ(receiver_.completions(0x5), 0u);
}

// --------------------------------------------------- owned-payload puts

TEST_F(FeatureTest, PutOwnedSurvivesSenderBufferReuse) {
  std::vector<std::byte> buf(64, std::byte{0});
  void* notif = nullptr;
  receiver_.init_window(0x6, 64, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0x6, buf, &notif, nullptr), Status::kOk);

  std::vector<std::byte> payload(64, std::byte{0xCD});
  sender_.put_owned(1, 0x6, 0, std::move(payload));
  // The local vector was moved away; nothing for the caller to keep alive.
  run();
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(buf[0], std::byte{0xCD});
  EXPECT_EQ(buf[63], std::byte{0xCD});
}

// ------------------------------------------------------- window freeing

TEST_F(FeatureTest, FreeWindowReleasesCounterAndLutEntry) {
  RvmaParams params;
  params.nic_counters = 1;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  receiver.init_window(0xA, 64, EpochType::kBytes);
  receiver.post_buffer_timing_only(0xA, 64);
  EXPECT_EQ(receiver.counter_pool().in_use(), 1);
  ASSERT_EQ(receiver.free_window(0xA), Status::kOk);
  EXPECT_EQ(receiver.counter_pool().in_use(), 0);
  EXPECT_EQ(receiver.find_mailbox(0xA), nullptr);

  // Traffic to the freed vaddr behaves like "no mailbox".
  sender.put(1, 0xA, 0, nullptr, 64);
  cluster.engine().run();
  EXPECT_EQ(receiver.stats().drops_no_mailbox, 1u);
  EXPECT_EQ(receiver.free_window(0xA), Status::kNoMailbox);
}

// --------------------------------------------------- NIC transmit queue

TEST_F(FeatureTest, TxQueueLimitStallsButDelivers) {
  nic::NicParams nic_params;
  nic_params.tx_queue_limit = 500 * kNanosecond;  // tiny: ~6 KiB at 100 Gbps
  cluster::Cluster cluster(star2(), nic_params);
  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint receiver(cluster.nic(1), RvmaParams{});
  receiver.init_window(0x1, 1, EpochType::kOps);
  for (int i = 0; i < 20; ++i) receiver.post_buffer_timing_only(0x1, 1 * MiB);

  for (int i = 0; i < 20; ++i) {
    sender.put(1, 0x1, 0, nullptr, 32 * KiB);
  }
  cluster.engine().run();
  EXPECT_EQ(receiver.completions(0x1), 20u);  // everything still arrives
  EXPECT_GT(cluster.nic(0).tx_queue_stalls(), 0u);
}

TEST_F(FeatureTest, AmpleTxQueueNeverStalls) {
  for (int i = 0; i < 10; ++i) {
    receiver_.init_window(0x100 + i, 1, EpochType::kOps);
    receiver_.post_buffer_timing_only(0x100 + i, 1 * MiB);
    sender_.put(1, 0x100 + i, 0, nullptr, 64 * KiB);
  }
  run();
  EXPECT_EQ(cluster_.nic(0).tx_queue_stalls(), 0u);  // paper: ample depths
}

// ----------------------------------------------------- failure injection

TEST_F(FeatureTest, FailedNodeDropsTraffic) {
  receiver_.init_window(0x1, 64, EpochType::kBytes);
  receiver_.post_buffer_timing_only(0x1, 64);
  cluster_.network().fabric().fail_node(1);
  sender_.put(1, 0x1, 0, nullptr, 64);
  run();
  EXPECT_EQ(receiver_.completions(0x1), 0u);
  EXPECT_GT(cluster_.network().fabric().stats().packets_dropped_dead_node, 0u);
}

TEST_F(FeatureTest, RevivedNodeReceivesAgain) {
  receiver_.init_window(0x1, 64, EpochType::kBytes);
  receiver_.post_buffer_timing_only(0x1, 64);
  cluster_.network().fabric().fail_node(1);
  sender_.put(1, 0x1, 0, nullptr, 64);
  run();
  ASSERT_EQ(receiver_.completions(0x1), 0u);

  cluster_.network().fabric().revive_node(1);
  EXPECT_FALSE(cluster_.network().fabric().node_failed(1));
  sender_.put(1, 0x1, 0, nullptr, 64);
  run();
  EXPECT_EQ(receiver_.completions(0x1), 1u);
}

TEST_F(FeatureTest, FailureMidTransferLeavesPartialEpoch) {
  // Multi-packet transfer; the *sender* dies after injecting. The packets
  // already on the wire land; those dropped at injection never do — the
  // buffer stays incomplete and rewind recovers the previous epoch.
  nic::NicParams nic_params;
  nic_params.mtu = 1024;
  cluster::Cluster cluster(star2(), nic_params);
  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint receiver(cluster.nic(1), RvmaParams{});

  Window win = receiver.init_window(0x1, 8 * KiB, EpochType::kBytes);
  std::vector<std::byte> good(8 * KiB, std::byte{0x0A});
  std::vector<std::byte> buf0(8 * KiB), buf1(8 * KiB);
  ASSERT_EQ(win.post(buf0, nullptr), Status::kOk);
  ASSERT_EQ(win.post(buf1, nullptr), Status::kOk);

  sender.put(1, 0x1, 0, good.data(), good.size());
  cluster.engine().run();
  ASSERT_EQ(win.epoch(), 1);

  // Second epoch arrives as two halves; the sender dies between them.
  const Time t0 = cluster.engine().now();
  sender.put(1, 0x1, 0, good.data(), 4 * KiB);
  cluster.engine().schedule_at(t0 + 500 * kNanosecond, [&] {
    cluster.network().fabric().fail_node(0);
  });
  cluster.engine().schedule_at(t0 + kMicrosecond, [&] {
    sender.put(1, 0x1, 4 * KiB, good.data(), 4 * KiB);  // dropped: dead
  });
  cluster.engine().run();

  EXPECT_EQ(win.epoch(), 1);  // epoch 2 never completed
  const Mailbox* mb = receiver.find_mailbox(0x1);
  ASSERT_TRUE(mb->has_active());
  EXPECT_EQ(mb->active().bytes_received, 4u * KiB);  // half-written buffer

  void* recovered = nullptr;
  std::int64_t len = 0;
  ASSERT_EQ(win.rewind(1, &recovered, &len), Status::kOk);
  EXPECT_EQ(recovered, buf0.data());
  EXPECT_EQ(len, static_cast<std::int64_t>(8 * KiB));
}

}  // namespace
}  // namespace rvma::core
