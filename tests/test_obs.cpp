// Observability subsystem tests: histogram bucket math, merge
// associativity, percentile monotonicity, registry behavior, the
// engine-driven simulated-time sampler, metrics-document JSON round-trip,
// diff/check analysis, empty-stat table formatting, and per-engine trace
// grouping.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_io.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_analysis.hpp"
#include "sim/engine.hpp"

namespace rvma {
namespace {

// Deterministic value stream for histogram tests (no RNG state needed).
std::uint64_t pseudo(std::uint64_t i) {
  std::uint64_t x = i * 0x9e3779b97f4a7c15ULL + 1;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

TEST(Histogram, SmallValuesGetExactUnitBuckets) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(obs::Histogram::index_of(v), static_cast<int>(v)) << v;
    EXPECT_EQ(obs::Histogram::bucket_floor(static_cast<int>(v)), v);
    EXPECT_EQ(obs::Histogram::bucket_width(static_cast<int>(v)), 1u);
  }
}

TEST(Histogram, BucketFloorInvertsIndexOf) {
  for (int idx = 0; idx < 800; ++idx) {
    const std::uint64_t floor = obs::Histogram::bucket_floor(idx);
    const std::uint64_t width = obs::Histogram::bucket_width(idx);
    // Both ends of the bucket map back to it.
    EXPECT_EQ(obs::Histogram::index_of(floor), idx);
    EXPECT_EQ(obs::Histogram::index_of(floor + width - 1), idx);
    // The next value starts the next bucket.
    EXPECT_EQ(obs::Histogram::index_of(floor + width), idx + 1);
  }
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // Beyond the exact range, every bucket spans at most floor/32 values:
  // the ~3.2% relative-error bound quoted for percentiles.
  for (int idx = 64; idx < 1500; ++idx) {
    EXPECT_LE(obs::Histogram::bucket_width(idx) * 32,
              obs::Histogram::bucket_floor(idx))
        << idx;
  }
}

TEST(Histogram, ExtremeValuesDoNotOverflow) {
  obs::Histogram h;
  h.record(0);
  h.record(~0ULL);
  const int top = obs::Histogram::index_of(~0ULL);
  EXPECT_GT(obs::Histogram::bucket_width(top), 0u);  // unsigned-wrap exact
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, ~0ULL);
}

TEST(Histogram, MergeIsAssociative) {
  obs::Histogram a, b, c;
  for (std::uint64_t i = 0; i < 300; ++i) a.record(pseudo(i) % 1000000);
  for (std::uint64_t i = 0; i < 200; ++i) b.record(pseudo(i + 7) % 100);
  for (std::uint64_t i = 0; i < 100; ++i) c.record(pseudo(i + 99));

  obs::HistogramSnapshot ab_c = a.snapshot();
  ab_c.merge(b.snapshot());
  ab_c.merge(c.snapshot());

  obs::HistogramSnapshot bc = b.snapshot();
  bc.merge(c.snapshot());
  obs::HistogramSnapshot a_bc = a.snapshot();
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count, 600u);
}

TEST(Histogram, PercentilesAreMonotoneAndClamped) {
  obs::Histogram h;
  for (std::uint64_t i = 0; i < 500; ++i) h.record(pseudo(i) % 250000);
  const obs::HistogramSnapshot snap = h.snapshot();
  double prev = snap.percentile(0.0);
  EXPECT_GE(prev, static_cast<double>(snap.min));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = snap.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_LE(prev, static_cast<double>(snap.max));
  // Percentiles stay within the bucket error bound of the true order
  // statistics at the extremes.
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), static_cast<double>(snap.max));
}

TEST(Registry, InstrumentReferencesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x");
  c.inc(3);
  for (int i = 0; i < 100; ++i) reg.counter("other" + std::to_string(i));
  EXPECT_EQ(&c, &reg.counter("x"));  // node-based map: no reallocation
  EXPECT_EQ(reg.counter("x").value(), 3u);

  obs::Gauge& g = reg.gauge("lvl");
  g.set(10);
  g.set(4);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("lvl"), 10);  // high-water exported, not last
}

TEST(Snapshot, MergeSumsCountersAndMaxesGauges) {
  obs::MetricsSnapshot a, b;
  a.counters["c"] = 5;
  b.counters["c"] = 7;
  b.counters["only_b"] = 1;
  a.gauges["g"] = 10;
  b.gauges["g"] = 3;
  a.merge(b);
  EXPECT_EQ(a.counters.at("c"), 12u);
  EXPECT_EQ(a.counters.at("only_b"), 1u);
  EXPECT_EQ(a.gauges.at("g"), 10);
}

TEST(Sampler, RecordsExactPeriodBoundaries) {
  auto run = [] {
    sim::Engine engine;
    obs::MetricsRegistry reg;
    obs::Sampler sampler(reg);
    std::int64_t level = 0;
    sampler.add_gauge("level", [&] { return level; });
    sampler.enable(10 * kNanosecond);
    engine.set_sampler(&sampler);
    // Events at 4, 14, 24, 34, 44 ns; each raises the level by one. The
    // event at 14 ns is the first at/past the 10 ns boundary, so the row
    // for t=10 must see level=1 (the state after the 4 ns event).
    for (int i = 0; i < 5; ++i) {
      engine.schedule_at((4 + 10 * i) * kNanosecond, [&] { ++level; });
    }
    engine.run();
    return sampler.take_series();
  };

  const obs::Timeseries series = run();
  ASSERT_EQ(series.columns, std::vector<std::string>{"level"});
  const std::vector<Time> expected_times = {
      10 * kNanosecond, 20 * kNanosecond, 30 * kNanosecond, 40 * kNanosecond};
  EXPECT_EQ(series.times, expected_times);
  ASSERT_EQ(series.rows.size(), 4u);
  for (std::size_t i = 0; i < series.rows.size(); ++i) {
    EXPECT_EQ(series.rows[i], std::vector<std::int64_t>{
                                  static_cast<std::int64_t>(i + 1)});
  }
  // Simulated-time sampling is as deterministic as the simulation.
  EXPECT_EQ(series, run());
}

TEST(Sampler, GapsEmitOneRowPerCrossedBoundary) {
  sim::Engine engine;
  obs::MetricsRegistry reg;
  obs::Sampler sampler(reg);
  sampler.add_gauge("v", [] { return 1; });
  sampler.enable(10 * kNanosecond);
  engine.set_sampler(&sampler);
  engine.schedule_at(5 * kNanosecond, [] {});
  engine.schedule_at(37 * kNanosecond, [] {});  // crosses 10, 20, 30 at once
  engine.run();
  const obs::Timeseries series = sampler.take_series();
  const std::vector<Time> expected = {10 * kNanosecond, 20 * kNanosecond,
                                      30 * kNanosecond};
  EXPECT_EQ(series.times, expected);
}

TEST(MetricsDoc, JsonRoundTrip) {
  obs::MetricsDoc doc;
  doc.tool = "unit";
  doc.meta["nodes"] = "8";
  doc.totals.counters["c"] = 7;
  doc.totals.gauges["g"] = -3;
  obs::Histogram h;
  h.record(5);
  h.record(700);
  h.record(123456);
  doc.totals.histograms["h"] = h.snapshot();
  obs::Timeseries ts;
  ts.label = "run/one";
  ts.period = 10 * kNanosecond;
  ts.columns = {"a", "b"};
  ts.times = {10 * kNanosecond, 20 * kNanosecond};
  ts.rows = {{1, -2}, {3, 4}};
  doc.timeseries.push_back(ts);

  const std::string json = obs::to_json(doc);
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json, &root, &error)) << error;
  obs::MetricsDoc back;
  ASSERT_TRUE(obs::metrics_doc_from_json(root, &back, &error)) << error;

  EXPECT_EQ(back.schema, doc.schema);
  EXPECT_EQ(back.tool, doc.tool);
  EXPECT_EQ(back.meta, doc.meta);
  EXPECT_EQ(back.totals, doc.totals);
  ASSERT_EQ(back.timeseries.size(), 1u);
  EXPECT_EQ(back.timeseries[0], ts);

  // Canonical form: re-serializing the parsed document is byte-identical.
  EXPECT_EQ(obs::to_json(back), json);
}

TEST(MetricsDoc, DiffFlagsPerturbedCounterAndHonorsTolerance) {
  obs::MetricsDoc a;
  a.totals.counters["pkts"] = 1000;
  a.totals.gauges["depth"] = 5;
  obs::MetricsDoc b = a;
  b.totals.counters["pkts"] = 1010;

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(obs::print_metrics_diff(a, a, obs::DiffOptions{}, sink), 0);
  EXPECT_EQ(obs::print_metrics_diff(a, b, obs::DiffOptions{}, sink), 1);
  obs::DiffOptions loose;
  loose.rel_tol = 0.05;  // 1% change is within 5%
  EXPECT_EQ(obs::print_metrics_diff(a, b, loose, sink), 0);
  std::fclose(sink);
}

TEST(MetricsDoc, CheckValidatesRequiredInstruments) {
  obs::MetricsDoc doc;
  doc.totals.counters["c"] = 1;
  obs::Histogram h;
  h.record(42);
  doc.totals.histograms["lat"] = h.snapshot();

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::CheckOptions ok;
  ok.required = {"c", "lat"};
  ok.need_histogram = true;
  EXPECT_EQ(obs::check_metrics_doc(doc, ok, sink), 0);

  obs::CheckOptions bad;
  bad.required = {"missing"};
  bad.need_timeseries = true;  // doc has none
  EXPECT_EQ(obs::check_metrics_doc(doc, bad, sink), 2);

  obs::MetricsDoc wrong_schema = doc;
  wrong_schema.schema = "other";
  EXPECT_GT(obs::check_metrics_doc(wrong_schema, ok, sink), 0);
  std::fclose(sink);
}

TEST(Table, StatNumRendersDashForEmptyStats) {
  EXPECT_EQ(Table::stat_num(0, 123.0), "-");
  EXPECT_EQ(Table::stat_num(0, 0.0), "-");
  EXPECT_EQ(Table::stat_num(3, 2.5), Table::num(2.5, 2));
}

TEST(TraceAnalysis, GroupsRecordsByEngineField) {
  const std::string path = ::testing::TempDir() + "obs_trace.jsonl";
  {
    std::ofstream out(path);
    // eng 0 explicit, eng 1 explicit, and a legacy record with no eng
    // field (folded into engine 0), plus one unparseable line.
    out << R"({"t":100,"ev":"pkt_deliver","eng":0,"lat_ps":2000000,"dst":3,"hops":2})"
        << "\n";
    out << R"({"t":200,"ev":"pkt_deliver","eng":1,"lat_ps":3000000,"dst":4,"hops":3})"
        << "\n";
    out << R"({"t":300,"ev":"rvma_drop","eng":1,"reason":"kNoBuffer"})" << "\n";
    out << R"({"t":400,"ev":"rvma_nack","reason":5})" << "\n";
    out << "not json\n";
  }

  obs::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obs::analyze_trace_file(path, &analysis, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(analysis.lines, 5u);
  EXPECT_EQ(analysis.skipped, 1u);
  ASSERT_EQ(analysis.engines.size(), 2u);
  const obs::EngineTraceStats& e0 = analysis.engines.at(0);
  const obs::EngineTraceStats& e1 = analysis.engines.at(1);
  // Per-engine separation is the double-counting fix: each engine's
  // deliveries counted once, never summed across runs.
  EXPECT_EQ(e0.event_counts.at("pkt_deliver"), 1u);
  EXPECT_EQ(e1.event_counts.at("pkt_deliver"), 1u);
  EXPECT_EQ(e0.drops_per_reason.at("code 5"), 1u);  // legacy numeric reason
  EXPECT_EQ(e1.drops_per_reason.at("kNoBuffer"), 1u);
  EXPECT_EQ(e0.pkt_latency_us.count(), 1u);
  EXPECT_EQ(analysis.span(), static_cast<Time>(400));
}

}  // namespace
}  // namespace rvma
