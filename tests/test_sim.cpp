// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace rvma::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RelativeSchedule) {
  Engine e;
  Time seen = 0;
  e.schedule_at(50, [&] {
    e.schedule(25, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 75u);
}

TEST(Engine, EventsCanScheduleAtSameTime) {
  Engine e;
  int count = 0;
  e.schedule_at(10, [&] {
    e.schedule(0, [&] { ++count; });
    ++count;
  });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 10u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500u);
}

TEST(Engine, RunUntilAdvancesClockWithPendingFutureEvents) {
  // Regression: run_until used to leave now() at the last executed event
  // when events remained beyond the deadline, so a subsequent relative
  // schedule(delay) fired `deadline - now()` early.
  Engine e;
  Time late_fired_at = 0;
  e.schedule_at(10, [] {});
  e.schedule_at(1000, [&] { late_fired_at = e.now(); });
  e.run_until(500);
  EXPECT_EQ(e.now(), 500u);  // clock reached the deadline
  EXPECT_EQ(e.pending(), 1u);

  // A relative schedule issued after run_until anchors at the deadline.
  Time rel_fired_at = 0;
  e.schedule(100, [&] { rel_fired_at = e.now(); });
  e.run();
  EXPECT_EQ(rel_fired_at, 600u);
  EXPECT_EQ(late_fired_at, 1000u);
}

TEST(Engine, RunUntilStoppedDoesNotJumpToDeadline) {
  // stop() aborts the span: the clock stays at the stopping event so the
  // caller can observe where simulation actually halted.
  Engine e;
  e.schedule_at(10, [&] { e.stop(); });
  e.schedule_at(20, [&] {});
  e.run_until(500);
  EXPECT_EQ(e.now(), 10u);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, MoveOnlyCaptureAndLargeCaptureCallbacks) {
  // The SBO callback must handle move-only captures (std::function could
  // not) and captures larger than the inline buffer (pooled heap fallback).
  Engine e;
  int via_unique = 0;
  auto owned = std::make_unique<int>(7);
  e.schedule_at(1, [&via_unique, p = std::move(owned)] { via_unique = *p; });

  struct Big {
    char bytes[200];
  };
  Big big{};
  big.bytes[0] = 42;
  char seen = 0;
  e.schedule_at(2, [&seen, big] { seen = big.bytes[0]; });
  e.run();
  EXPECT_EQ(via_unique, 7);
  EXPECT_EQ(seen, 42);
}

TEST(Engine, ReservedSequencesPinTieBreakOrder) {
  // reserve_sequence lets lazily scheduled events (fabric packet bursts)
  // execute in the order they would have had if scheduled eagerly.
  Engine e;
  std::vector<int> order;
  const std::uint64_t base = e.reserve_sequence(2);
  // Scheduled later, but sequences reserved earlier: at an equal timestamp
  // the reserved events must run before this one.
  e.schedule_at(100, [&] { order.push_back(3); });
  e.schedule_at_seq(100, base + 1, e.now(), 0, [&] { order.push_back(2); });
  e.schedule_at_seq(100, base, e.now(), 0, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilStoppedMidWindow) {
  // run_until's stop contract (engine.hpp): an un-stopped window advances
  // the clock exactly to the deadline; a stop() mid-window leaves now()
  // on the last executed event and is consumed by the next run call.
  Engine e;
  std::vector<Time> fired;
  e.schedule_at(10, [&] { fired.push_back(e.now()); });
  e.schedule_at(20, [&] {
    fired.push_back(e.now());
    e.stop();
  });
  e.schedule_at(30, [&] { fired.push_back(e.now()); });

  EXPECT_EQ(e.run_until(40), 20u);  // stopped: clock stays on the event
  EXPECT_EQ(e.now(), 20u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));

  // The stop was consumed: the next window runs normally and, with no
  // event at the deadline, still lands the clock exactly on the edge.
  EXPECT_EQ(e.run_until(35), 35u);
  EXPECT_EQ(e.now(), 35u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30}));
  EXPECT_TRUE(e.empty());
}

TEST(Engine, SteadyStateSchedulingReusesSlots) {
  // Steady-state: a long self-rescheduling chain keeps pending() at 1 and
  // must not grow internal storage (zero-allocation invariant; the
  // allocation count itself is asserted by bench/engine_throughput).
  Engine e;
  int depth = 0;
  struct Hop {
    Engine& e;
    int& depth;
    std::uint64_t payload[6];  // 48-byte capture: stays inline
    void operator()() const {
      if (++depth < 100000) e.schedule(1, *this);
    }
  };
  e.schedule_at(0, Hop{e, depth, {}});
  e.run();
  EXPECT_EQ(depth, 100000);
  EXPECT_EQ(e.executed_events(), 100000u);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(20, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] { ++fired; });
  e.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 17; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.executed_events(), 17u);
}

TEST(Engine, CascadedEventsLargeFanout) {
  // A chain of events each spawning the next: exercises queue reuse.
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10000) e.schedule(1, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(depth, 10000);
  EXPECT_EQ(e.now(), 9999u);
}

}  // namespace
}  // namespace rvma::sim
