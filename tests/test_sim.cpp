// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace rvma::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RelativeSchedule) {
  Engine e;
  Time seen = 0;
  e.schedule_at(50, [&] {
    e.schedule(25, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 75u);
}

TEST(Engine, EventsCanScheduleAtSameTime) {
  Engine e;
  int count = 0;
  e.schedule_at(10, [&] {
    e.schedule(0, [&] { ++count; });
    ++count;
  });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 10u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500u);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(20, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] { ++fired; });
  e.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 17; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.executed_events(), 17u);
}

TEST(Engine, CascadedEventsLargeFanout) {
  // A chain of events each spawning the next: exercises queue reuse.
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10000) e.schedule(1, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(depth, 10000);
  EXPECT_EQ(e.now(), 9999u);
}

}  // namespace
}  // namespace rvma::sim
