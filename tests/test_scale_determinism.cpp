// Scale smoke tests and determinism guarantees: multi-hundred-node motif
// runs complete correctly, identical configurations replay identically,
// and the transports' control-message accounting matches their protocols.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cluster/cluster.hpp"
#include "common/trace.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "motifs/sweep3d.hpp"

namespace rvma::motifs {
namespace {

net::NetworkConfig dragonfly342(net::Routing routing) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = routing;
  cfg.df_p = 3;
  cfg.df_a = 6;
  cfg.df_h = 3;  // 19 groups * 6 switches * 3 nodes = 342
  cfg.seed = 2021;
  return cfg;
}

Halo3DConfig halo342() {
  Halo3DConfig cfg;
  cfg.px = 7;
  cfg.py = 7;
  cfg.pz = 6;  // 294 ranks on 342 nodes
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.iterations = 2;
  cfg.compute_per_cell = 0;
  return cfg;
}

TEST(Scale, Halo3DAt294RanksOnDragonfly342) {
  Time rvma_time = 0, rdma_time = 0;
  {
    cluster::Cluster cluster(dragonfly342(net::Routing::kAdaptive),
                         nic::NicParams{});
    ASSERT_EQ(cluster.num_nodes(), 342);
    RvmaTransport transport(cluster, core::RvmaParams{});
    const MotifResult result =
        MotifRunner(cluster, transport, build_halo3d(halo342())).run();
    rvma_time = result.makespan;
    EXPECT_GT(result.ops_executed, 9000u);
    EXPECT_EQ(result.transport.control_messages, 0u);
  }
  {
    cluster::Cluster cluster(dragonfly342(net::Routing::kAdaptive),
                         nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{}, false);
    rdma_time =
        MotifRunner(cluster, transport, build_halo3d(halo342())).run().makespan;
  }
  EXPECT_GT(rvma_time, 0u);
  EXPECT_LT(rvma_time, rdma_time);
}

TEST(Determinism, IdenticalConfigsReplayIdentically) {
  auto run_once = [] {
    cluster::Cluster cluster(dragonfly342(net::Routing::kAdaptive),
                         nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    Sweep3DConfig cfg;
    cfg.pex = 8;
    cfg.pey = 8;
    cfg.nz = 16;
    cfg.kba = 8;
    const MotifResult result =
        MotifRunner(cluster, transport, build_sweep3d(cfg)).run();
    return std::make_pair(result.makespan, result.engine_events);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);    // identical makespan
  EXPECT_EQ(a.second, b.second);  // identical event counts
}

TEST(Determinism, GoldenHalo3DStatsPinnedAcrossEngineRewrites) {
  // Golden values originally recorded from the seed engine (commit
  // d9148ab, std::function callbacks + std::priority_queue + per-packet
  // injection) on this exact configuration; re-pinned once when the
  // engine adopted the content-determined (time, rank, tie, seq)
  // tie-break (DESIGN.md §12) — an intentional, documented change to
  // equal-time arbitration order. The SBO-callback/slot-pool engine,
  // dense NIC dispatch, and burst fabric injection must replay this run
  // bit-identically: every timestamp, tie-break, and adaptive routing
  // decision. Any drift here means an engine change altered observable
  // simulation behaviour, not just its speed.
  cluster::Cluster cluster(dragonfly342(net::Routing::kAdaptive),
                       nic::NicParams{});
  RvmaTransport transport(cluster, core::RvmaParams{});
  const MotifResult result =
      MotifRunner(cluster, transport, build_halo3d(halo342())).run();

  EXPECT_EQ(result.makespan, 21803840u);
  EXPECT_EQ(result.engine_events, 45980u);
  EXPECT_EQ(result.ops_executed, 9576u);
  EXPECT_EQ(result.setup_done, 0u);
  EXPECT_EQ(result.transport.data_messages, 2996u);
  EXPECT_EQ(result.transport.control_messages, 0u);

  const net::FabricStats& fs = cluster.network().fabric().stats();
  EXPECT_EQ(fs.packets_delivered, 5992u);
  EXPECT_EQ(fs.wire_bytes_delivered, 24734976u);
  EXPECT_EQ(fs.total_hops, 17501u);
}

TEST(Determinism, SeedChangesAdaptiveOutcome) {
  auto run_with_seed = [](std::uint64_t seed) {
    net::NetworkConfig cfg = dragonfly342(net::Routing::kAdaptive);
    cfg.seed = seed;
    cluster::Cluster cluster(cfg, nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    Sweep3DConfig sweep;
    sweep.pex = 8;
    sweep.pey = 8;
    sweep.nz = 16;
    sweep.kba = 8;
    return MotifRunner(cluster, transport, build_sweep3d(sweep))
        .run()
        .makespan;
  };
  // Different seeds make different UGAL decisions (paths differ), so the
  // makespans should not be identical — the randomness is real but seeded.
  EXPECT_NE(run_with_seed(1), run_with_seed(999));
}

TEST(ControlTraffic, StaticRdmaHasNoCompletionSends) {
  Halo3DConfig cfg;
  cfg.px = cfg.py = 2;
  cfg.pz = 1;
  cfg.iterations = 2;
  cfg.nx = cfg.ny = cfg.nz = 8;

  auto control_msgs = [&](bool ordered) {
    net::NetworkConfig net_cfg;
    net_cfg.topology = net::TopologyKind::kStar;
    net_cfg.nodes_hint = cfg.ranks();
    net_cfg.routing = ordered ? net::Routing::kStatic : net::Routing::kAdaptive;
    cluster::Cluster cluster(net_cfg, nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{}, ordered);
    return MotifRunner(cluster, transport, build_halo3d(cfg))
        .run()
        .transport.control_messages;
  };
  const auto static_msgs = control_msgs(true);
  const auto adaptive_msgs = control_msgs(false);
  // Adaptive needs one extra completion send per data message.
  const std::uint64_t data_msgs = 4u /*ranks*/ * 2 /*neighbors*/ * 2 /*iters*/;
  EXPECT_EQ(adaptive_msgs, static_msgs + data_msgs);
}

TEST(TraceTool, AnalyzesGeneratedTrace) {
  const std::string trace_path = ::testing::TempDir() + "tool_trace.jsonl";
  ASSERT_TRUE(Tracer::global().open(trace_path));
  {
    cluster::Cluster cluster(dragonfly342(net::Routing::kAdaptive),
                         nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    Halo3DConfig cfg;
    cfg.px = cfg.py = cfg.pz = 2;
    cfg.iterations = 1;
    cfg.nx = cfg.ny = cfg.nz = 8;
    MotifRunner(cluster, transport, build_halo3d(cfg)).run();
  }
  Tracer::global().close();

  // Run the offline analyzer (`rvma_metrics trace`) and check its report.
  const std::string out_path = ::testing::TempDir() + "tool_out.txt";
  const std::string cmd = std::string(RVMA_METRICS_BIN) + " trace " +
                          trace_path + " > " + out_path;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(out_path);
  std::string report((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(report.find("pkt_deliver"), std::string::npos);
  EXPECT_NE(report.find("rvma_complete"), std::string::npos);
  EXPECT_NE(report.find("packet network latency"), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace rvma::motifs
