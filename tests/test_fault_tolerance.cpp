// Fault-tolerance tests (paper §IV-F): multi-epoch buffers, hardware
// rewind to a previous consistent epoch, recovery after a mid-epoch
// failure, and the "retired buffers must not be overwritten" caveat.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

namespace rvma::core {
namespace {

net::NetworkConfig star2() {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  return cfg;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest()
      : cluster_(star2(), nic::NicParams{}),
        sender_(cluster_.nic(0), RvmaParams{}),
        receiver_(cluster_.nic(1), RvmaParams{}) {}

  void run() { cluster_.engine().run(); }

  cluster::Cluster cluster_;
  RvmaEndpoint sender_;
  RvmaEndpoint receiver_;
};

// A "timestep simulation" sends one buffer per epoch; after a failure the
// application rewinds to the last completed timestep (MPIX_Rewind pattern).
TEST_F(FaultToleranceTest, RewindRecoversLastConsistentTimestep) {
  constexpr int kEpochs = 3;
  constexpr std::uint64_t kBytes = 1024;
  std::vector<std::vector<std::byte>> epoch_bufs(
      kEpochs + 1, std::vector<std::byte>(kBytes));
  Window win = receiver_.init_window(0x7777, kBytes, EpochType::kBytes);
  for (auto& buf : epoch_bufs) {
    ASSERT_EQ(win.post(buf, nullptr), Status::kOk);
  }

  // Three completed timesteps, each with distinct contents.
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<std::byte> payload(kBytes, static_cast<std::byte>(0x40 + e));
    sender_.put(1, 0x7777, 0, payload.data(), kBytes);
    run();
  }
  ASSERT_EQ(win.epoch(), kEpochs);

  // Timestep 3 fails mid-transfer: only half the data arrives.
  std::vector<std::byte> partial(kBytes / 2, std::byte{0xEE});
  sender_.put(1, 0x7777, 0, partial.data(), kBytes / 2);
  run();
  ASSERT_EQ(win.epoch(), kEpochs);  // incomplete: epoch did not advance

  // Recovery: rewind to the last completed epoch and verify its contents
  // are the consistent timestep data, untouched by the failed transfer.
  void* buf = nullptr;
  std::int64_t len = 0;
  ASSERT_EQ(win.rewind(1, &buf, &len), Status::kOk);
  EXPECT_EQ(buf, epoch_bufs[2].data());
  EXPECT_EQ(len, static_cast<std::int64_t>(kBytes));
  for (std::uint64_t i = 0; i < kBytes; ++i) {
    EXPECT_EQ(static_cast<const std::byte*>(buf)[i], std::byte{0x42});
  }
}

TEST_F(FaultToleranceTest, RewindDepthWalksEpochHistory) {
  constexpr std::uint64_t kBytes = 64;
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kBytes));
  Window win = receiver_.init_window(0x1, kBytes, EpochType::kBytes);
  for (auto& b : bufs) ASSERT_EQ(win.post(b, nullptr), Status::kOk);

  for (int e = 0; e < 4; ++e) {
    std::vector<std::byte> payload(kBytes, static_cast<std::byte>(e));
    sender_.put(1, 0x1, 0, payload.data(), kBytes);
    run();
  }
  for (int back = 1; back <= 4; ++back) {
    void* buf = nullptr;
    std::int64_t len = 0;
    ASSERT_EQ(win.rewind(back, &buf, &len), Status::kOk) << back;
    EXPECT_EQ(static_cast<const std::byte*>(buf)[0],
              static_cast<std::byte>(4 - back));
  }
}

TEST_F(FaultToleranceTest, RewindBeyondRetireDepthFails) {
  RvmaParams params;
  params.retire_depth = 2;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  Window win = receiver.init_window(0x1, 8, EpochType::kBytes);
  for (int e = 0; e < 3; ++e) {
    ASSERT_EQ(win.post_timing_only(8), Status::kOk);
    sender.put(1, 0x1, 0, nullptr, 8);
    cluster.engine().run();
  }
  void* buf = nullptr;
  std::int64_t len = 0;
  EXPECT_EQ(win.rewind(1, &buf, &len), Status::kOk);
  EXPECT_EQ(win.rewind(2, &buf, &len), Status::kOk);
  EXPECT_EQ(win.rewind(3, &buf, &len), Status::kNoBuffer);
}

// The paper's caveat: if the application writes over a retired buffer, the
// rewound address surfaces the modified data — recovery schemes must
// account for locally modified retired buffers.
TEST_F(FaultToleranceTest, RewindSurfacesLocalModifications) {
  constexpr std::uint64_t kBytes = 32;
  std::vector<std::byte> epoch_buf(kBytes);
  Window win = receiver_.init_window(0x2, kBytes, EpochType::kBytes);
  ASSERT_EQ(win.post(epoch_buf, nullptr), Status::kOk);

  std::vector<std::byte> payload(kBytes, std::byte{0x01});
  sender_.put(1, 0x2, 0, payload.data(), kBytes);
  run();

  // Application scribbles on the retired buffer.
  epoch_buf[0] = std::byte{0xFF};

  void* buf = nullptr;
  std::int64_t len = 0;
  ASSERT_EQ(win.rewind(1, &buf, &len), Status::kOk);
  EXPECT_EQ(static_cast<const std::byte*>(buf)[0], std::byte{0xFF});
}

// Rewind also works for soft (inc_epoch) completions — "a partial buffer
// may be of use" in error recovery (§III-C).
TEST_F(FaultToleranceTest, RewindAfterSoftCompletion) {
  std::vector<std::byte> buf(128);
  Window win = receiver_.init_window(0x3, 128, EpochType::kBytes);
  ASSERT_EQ(win.post(buf, nullptr), Status::kOk);

  std::vector<std::byte> partial(50, std::byte{0x77});
  sender_.put(1, 0x3, 0, partial.data(), 50);
  run();
  ASSERT_EQ(win.inc_epoch(), Status::kOk);

  void* got = nullptr;
  std::int64_t len = 0;
  ASSERT_EQ(win.rewind(1, &got, &len), Status::kOk);
  EXPECT_EQ(got, buf.data());
  EXPECT_EQ(len, 50);  // partial length preserved in the epoch history
}

TEST_F(FaultToleranceTest, RewindOnUnknownWindowFails) {
  void* buf = nullptr;
  std::int64_t len = 0;
  EXPECT_EQ(receiver_.rewind(0xBEEF, 1, &buf, &len), Status::kNoMailbox);
}

}  // namespace
}  // namespace rvma::core
