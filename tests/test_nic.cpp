// NIC model tests: segmentation, host-cost charging, protocol dispatch,
// message ids, payload slicing, cluster assembly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"

namespace rvma::nic {
namespace {

net::NetworkConfig star(int nodes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = nodes;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.link.latency = 100 * kNanosecond;
  cfg.switch_latency = 100 * kNanosecond;
  return cfg;
}

class NicTest : public ::testing::Test {
 protected:
  NicTest() : cluster_(star(2), NicParams{}) {}
  cluster::Cluster cluster_;
};

TEST_F(NicTest, SegmentsIntoMtuPackets) {
  std::vector<net::Packet> received;
  cluster_.nic(1).register_proto(kProtoRdma, [&](const net::Packet& pkt) {
    received.push_back(pkt);
  });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = 4096 * 3 + 100;  // 4 packets at MTU 4096
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster_.nic(0).send(std::move(msg));
  cluster_.engine().run();

  ASSERT_EQ(received.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& pkt : received) {
    EXPECT_EQ(pkt.total, 4u);
    total += pkt.bytes;
  }
  EXPECT_EQ(total, 4096u * 3 + 100);
  EXPECT_EQ(received.back().bytes, 100u);
  EXPECT_EQ(received.back().offset, 4096u * 3);
}

TEST_F(NicTest, ZeroByteMessageStillOnePacket) {
  int count = 0;
  cluster_.nic(1).register_proto(kProtoRdma,
                                 [&](const net::Packet&) { ++count; });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = 0;
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster_.nic(0).send(std::move(msg));
  cluster_.engine().run();
  EXPECT_EQ(count, 1);
}

TEST_F(NicTest, ChargesHostAndPcieBeforeWire) {
  Time delivered_at = 0;
  cluster_.nic(1).register_proto(kProtoRdma, [&](const net::Packet&) {
    delivered_at = cluster_.engine().now();
  });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = 8;
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster_.nic(0).send(std::move(msg));
  cluster_.engine().run();
  const NicParams& p = cluster_.nic(0).params();
  // Lower bound: host + pcie + 2 link latencies + switch latency + rx_proc.
  EXPECT_GT(delivered_at, p.host_overhead + p.pcie_latency +
                              2 * (100 * kNanosecond) + 100 * kNanosecond);
}

TEST_F(NicTest, SendDoneFiresAfterInjection) {
  Time sent_at = 0;
  net::Message msg;
  msg.dst = 1;
  msg.bytes = 64;
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster_.nic(1).register_proto(kProtoRdma, [](const net::Packet&) {});
  cluster_.nic(0).send(std::move(msg),
                       [&] { sent_at = cluster_.engine().now(); });
  cluster_.engine().run();
  const NicParams& p = cluster_.nic(0).params();
  EXPECT_EQ(sent_at, p.host_overhead + p.pcie_latency);
}

TEST_F(NicTest, TxQueueStallsAndDrainsUnderTightAdmission) {
  // A transmit-queue limit of one MTU serialization forces every message
  // after the first into the queue: admission must stall them (counted
  // once per queued message), the drain loop must recompute the backlog
  // only after injections actually move the link, and every message must
  // still reach the receiver in order.
  NicParams params;
  params.tx_queue_limit = Bandwidth::gbps(100).serialize(4096);
  cluster::Cluster cluster(star(2), params);
  std::vector<std::uint32_t> arrival_order;
  cluster.nic(1).register_proto(kProtoRdma, [&](const net::Packet& pkt) {
    if (pkt.seq + 1 == pkt.total) {
      arrival_order.push_back(static_cast<std::uint32_t>(pkt.msg->id & 0xff));
    }
  });
  constexpr int kMessages = 6;
  for (int i = 0; i < kMessages; ++i) {
    net::Message msg;
    msg.dst = 1;
    msg.bytes = 3 * 4096;  // three packets: each message overruns the limit
    msg.hdr.kind = net::make_kind(kProtoRdma, 1);
    cluster.nic(0).send(std::move(msg));
  }
  cluster.engine().run();

  ASSERT_EQ(arrival_order.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(arrival_order[static_cast<std::size_t>(i)],
              arrival_order[0] + static_cast<std::uint32_t>(i))
        << "FIFO order violated";
  }
  // All but the first message stalled exactly once; the registry mirror
  // must agree with the NIC-local counter.
  EXPECT_EQ(cluster.nic(0).tx_queue_stalls(),
            static_cast<std::uint64_t>(kMessages - 1));
  EXPECT_EQ(cluster.metrics().counter("nic.tx_queue_stalls").value(),
            static_cast<std::uint64_t>(kMessages - 1));
  EXPECT_EQ(cluster.nic(0).tx_queue_depth(), 0);
}

TEST_F(NicTest, AssignsDistinctMessageIds) {
  std::vector<net::MsgId> ids;
  cluster_.nic(1).register_proto(kProtoRdma, [&](const net::Packet& pkt) {
    if (pkt.seq == 0) ids.push_back(pkt.msg->id);
  });
  for (int i = 0; i < 5; ++i) {
    net::Message msg;
    msg.dst = 1;
    msg.bytes = 8;
    msg.hdr.kind = net::make_kind(kProtoRdma, 1);
    cluster_.nic(0).send(std::move(msg));
  }
  cluster_.engine().run();
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], ids[i - 1]);
  }
}

TEST_F(NicTest, DispatchesByProtocolClass) {
  int rdma_count = 0, rvma_count = 0;
  cluster_.nic(1).register_proto(kProtoRdma,
                                 [&](const net::Packet&) { ++rdma_count; });
  cluster_.nic(1).register_proto(kProtoRvma,
                                 [&](const net::Packet&) { ++rvma_count; });
  for (std::uint32_t proto : {kProtoRdma, kProtoRvma, kProtoRvma}) {
    net::Message msg;
    msg.dst = 1;
    msg.bytes = 8;
    msg.hdr.kind = net::make_kind(proto, 1);
    cluster_.nic(0).send(std::move(msg));
  }
  cluster_.engine().run();
  EXPECT_EQ(rdma_count, 1);
  EXPECT_EQ(rvma_count, 2);
}

TEST_F(NicTest, PayloadSlicesMatchOffsets) {
  std::vector<std::byte> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 % 251);
  }
  bool all_match = true;
  cluster_.nic(1).register_proto(kProtoRdma, [&](const net::Packet& pkt) {
    for (std::uint32_t i = 0; i < pkt.bytes; ++i) {
      if (pkt.msg->data[pkt.offset + i] != data[pkt.offset + i]) {
        all_match = false;
      }
    }
  });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = data.size();
  msg.data = data.data();
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster_.nic(0).send(std::move(msg));
  cluster_.engine().run();
  EXPECT_TRUE(all_match);
}

TEST(ClusterTest, BuildsNicPerNode) {
  cluster::Cluster cluster(star(5), NicParams{});
  EXPECT_EQ(cluster.num_nodes(), 5);
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(cluster.nic(n).node(), n);
  }
}

TEST(ClusterTest, CustomMtu) {
  NicParams params;
  params.mtu = 256;
  cluster::Cluster cluster(star(2), params);
  int packets = 0;
  cluster.nic(1).register_proto(kProtoRdma,
                                [&](const net::Packet&) { ++packets; });
  net::Message msg;
  msg.dst = 1;
  msg.bytes = 1024;
  msg.hdr.kind = net::make_kind(kProtoRdma, 1);
  cluster.nic(0).send(std::move(msg));
  cluster.engine().run();
  EXPECT_EQ(packets, 4);
}

}  // namespace
}  // namespace rvma::nic
