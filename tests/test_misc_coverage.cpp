// Edge-case coverage across small surfaces: invalid handles, formatting
// extremes, empty tables, asymmetric topologies, and endpoint corner
// states not exercised elsewhere.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/endpoint.hpp"
#include "net/topologies.hpp"

namespace rvma {
namespace {

TEST(MiscUnits, FormatExtremes) {
  EXPECT_EQ(format_time(0), "0.00 ps");
  EXPECT_EQ(format_time(2 * kSecond), "2.00 s");
  EXPECT_EQ(format_size(1), "1 B");
  EXPECT_EQ(format_size(5 * GiB), "5 GiB");
  EXPECT_EQ(format_size(1536), "1536 B");  // not a whole KiB
  EXPECT_EQ(format_bandwidth(Bandwidth::mbps(500)), "500 Mbps");
}

TEST(MiscTable, EmptyTableStillRendersHeader) {
  Table t({"a", "b"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(MiscTable, ShortRowsPadded) {
  Table t({"x", "y", "z"});
  t.add_row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

TEST(MiscWindow, DefaultHandleInvalid) {
  core::Window win;
  EXPECT_FALSE(win.valid());
  EXPECT_EQ(win.vaddr(), 0u);
}

TEST(MiscTopology, AsymmetricTorusRoutes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.torus_x = 5;
  cfg.torus_y = 2;
  cfg.torus_z = 3;
  cfg.routing = net::Routing::kAdaptive;
  sim::Engine engine;
  net::Network net(engine, cfg);
  ASSERT_EQ(net.num_nodes(), 30);

  int delivered = 0;
  for (net::NodeId n = 0; n < 30; ++n) {
    net.set_delivery(n, [&](net::Packet&&) { ++delivered; });
  }
  net::Message msg;
  msg.src = 0;
  msg.dst = 29;
  msg.id = 1;
  net::Packet pkt;
  pkt.src = 0;
  pkt.dst = 29;
  pkt.msg = net::MsgRef::make(std::move(msg));
  pkt.bytes = 64;
  net.inject(std::move(pkt));
  engine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(MiscTopology, AsymmetricHyperX) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kHyperX;
  cfg.hx_l1 = 2;
  cfg.hx_l2 = 7;
  sim::Engine engine;
  net::Network net(engine, cfg);
  EXPECT_EQ(net.num_nodes(), 14);
  EXPECT_EQ(net.fabric().num_switches(), 14);
}

TEST(MiscEndpoint, ReinitExistingWindowKeepsState) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  core::RvmaEndpoint sender(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint receiver(cluster.nic(1), core::RvmaParams{});

  receiver.init_window(0x9, 16, core::EpochType::kBytes);
  receiver.post_buffer_timing_only(0x9, 16);
  sender.put(1, 0x9, 0, nullptr, 16);
  cluster.engine().run();
  ASSERT_EQ(receiver.completions(0x9), 1u);

  // Re-init with different params: the existing mailbox (and its epoch
  // history) is preserved, per the idempotent-init contract.
  core::Window again =
      receiver.init_window(0x9, 9999, core::EpochType::kOps);
  EXPECT_EQ(again.epoch(), 1);
  EXPECT_EQ(again.completions(), 1u);
}

TEST(MiscEndpoint, ZeroByteOpsPutCountsAsOperation) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  core::RvmaEndpoint sender(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint receiver(cluster.nic(1), core::RvmaParams{});

  receiver.init_window(0x9, 2, core::EpochType::kOps);
  receiver.post_buffer_timing_only(0x9, 64);
  sender.put(1, 0x9, 0, nullptr, 0);  // zero-byte signal put
  sender.put(1, 0x9, 0, nullptr, 0);
  cluster.engine().run();
  EXPECT_EQ(receiver.completions(0x9), 1u);  // 2 ops -> epoch complete
  EXPECT_EQ(receiver.stats().puts_received, 2u);
}

TEST(MiscEndpoint, CatchAllDoesNotShadowRealMailboxes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  core::RvmaEndpoint sender(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint receiver(cluster.nic(1), core::RvmaParams{});

  receiver.init_catch_all(1, core::EpochType::kOps);
  receiver.post_buffer_timing_only(core::kCatchAllVaddr, 1 * MiB);
  receiver.init_window(0x1, 8, core::EpochType::kBytes);
  receiver.post_buffer_timing_only(0x1, 8);

  sender.put(1, 0x1, 0, nullptr, 8);  // matched: must NOT hit catch-all
  cluster.engine().run();
  EXPECT_EQ(receiver.completions(0x1), 1u);
  EXPECT_EQ(receiver.stats().catch_all_packets, 0u);
}

TEST(MiscEngine, RunOnEmptyEngineReturnsNow) {
  sim::Engine engine;
  EXPECT_EQ(engine.run(), 0u);
  engine.schedule_at(10, [] {});
  engine.run();
  EXPECT_EQ(engine.run(), 10u);  // idempotent on drained queue
}

}  // namespace
}  // namespace rvma
