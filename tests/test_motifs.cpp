// Motif engine tests: channel derivation, program generators, and the
// runner over both transports — including the headline ordering property
// (RVMA makespan <= RDMA makespan on the same workload).
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/incast.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "motifs/sweep3d.hpp"

namespace rvma::motifs {
namespace {

net::NetworkConfig torus_config(int nodes, net::Routing routing) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = routing;
  cfg.nodes_hint = nodes;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.seed = 99;
  return cfg;
}

// ------------------------------------------------------- channel derivation

TEST(DeriveChannels, CountsAndSizes) {
  std::vector<RankProgram> programs(2);
  programs[0].push_back({Op::Kind::kSend, 1, 5, 1024, 0});
  programs[0].push_back({Op::Kind::kSend, 1, 5, 1024, 0});
  programs[1].push_back({Op::Kind::kRecvWait, 0, 5, 1024, 0});
  programs[1].push_back({Op::Kind::kSend, 0, 9, 64, 0});

  const auto channels = MotifRunner::derive_channels(programs);
  ASSERT_EQ(channels.size(), 2u);
  std::map<std::uint64_t, Channel> by_tag;
  for (const auto& ch : channels) by_tag[ch.tag] = ch;
  EXPECT_EQ(by_tag[5].src, 0);
  EXPECT_EQ(by_tag[5].dst, 1);
  EXPECT_EQ(by_tag[5].count, 2);
  EXPECT_EQ(by_tag[5].bytes, 1024u);
  EXPECT_EQ(by_tag[9].count, 1);
}

// ------------------------------------------------------ program generators

TEST(Sweep3D, ProgramShape) {
  Sweep3DConfig cfg;
  cfg.pex = 3;
  cfg.pey = 2;
  cfg.nz = 16;
  cfg.kba = 4;
  const auto programs = build_sweep3d(cfg);
  ASSERT_EQ(programs.size(), 6u);

  // Corner rank 0 has no upstream in (+,+) octants; interior rank has both.
  int sends = 0, recv_waits = 0;
  for (const Op& op : programs[0]) {
    sends += op.kind == Op::Kind::kSend;
    recv_waits += op.kind == Op::Kind::kRecvWait;
  }
  EXPECT_GT(sends, 0);
  EXPECT_GT(recv_waits, 0);

  // Message sizes follow the face formulas.
  EXPECT_EQ(cfg.x_msg_bytes(), static_cast<std::uint64_t>(cfg.ny) * cfg.kba *
                                   cfg.vars * sizeof(double));
  EXPECT_EQ(cfg.z_steps(), 4);
}

TEST(Sweep3D, SendsAndReceivesBalance) {
  Sweep3DConfig cfg;
  cfg.pex = 4;
  cfg.pey = 4;
  cfg.nz = 8;
  cfg.kba = 4;
  const auto programs = build_sweep3d(cfg);
  std::uint64_t sends = 0, waits = 0, posts = 0;
  for (const auto& prog : programs) {
    for (const Op& op : prog) {
      sends += op.kind == Op::Kind::kSend;
      waits += op.kind == Op::Kind::kRecvWait;
      posts += op.kind == Op::Kind::kRecvPost;
    }
  }
  EXPECT_EQ(sends, waits);  // every message sent is awaited
  EXPECT_EQ(posts, waits);
}

TEST(Halo3D, ProgramShape) {
  Halo3DConfig cfg;
  cfg.px = cfg.py = cfg.pz = 2;
  cfg.iterations = 3;
  const auto programs = build_halo3d(cfg);
  ASSERT_EQ(programs.size(), 8u);
  // Every rank in a 2x2x2 grid has exactly 3 neighbors.
  for (const auto& prog : programs) {
    std::uint64_t sends = 0;
    for (const Op& op : prog) sends += op.kind == Op::Kind::kSend;
    EXPECT_EQ(sends, 3u * cfg.iterations);
  }
}

TEST(Halo3D, ChannelsPairUp) {
  Halo3DConfig cfg;
  cfg.px = 3;
  cfg.py = 2;
  cfg.pz = 1;
  cfg.iterations = 2;
  const auto programs = build_halo3d(cfg);
  const auto channels = MotifRunner::derive_channels(programs);
  // Every send channel must have a matching recv side in some program:
  // verified structurally — each (src,dst,tag) appears with dst's recv ops.
  for (const auto& ch : channels) {
    bool found = false;
    for (const Op& op : programs[ch.dst]) {
      if (op.kind == Op::Kind::kRecvWait && op.peer == ch.src &&
          op.tag == ch.tag) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "channel " << ch.src << "->" << ch.dst
                       << " tag " << ch.tag << " has no receiver";
  }
}

TEST(Incast, ProgramShape) {
  IncastConfig cfg;
  cfg.clients = 4;
  cfg.messages_per_client = 3;
  const auto programs = build_incast(cfg);
  ASSERT_EQ(programs.size(), 5u);
  std::uint64_t server_waits = 0;
  for (const Op& op : programs[0]) {
    server_waits += op.kind == Op::Kind::kRecvWait;
  }
  EXPECT_EQ(server_waits, 12u);
}

// ------------------------------------------------------------- execution

struct MotifRunCase {
  const char* name;
  net::Routing routing;
};

class MotifExecutionTest : public ::testing::TestWithParam<MotifRunCase> {};

TEST_P(MotifExecutionTest, Halo3DRunsOnBothTransportsRvmaWins) {
  Halo3DConfig cfg;
  cfg.px = cfg.py = 2;
  cfg.pz = 2;
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.iterations = 2;

  const net::Routing routing = GetParam().routing;
  Time rvma_time = 0, rdma_time = 0;
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), routing), nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    MotifRunner runner(cluster, transport, build_halo3d(cfg));
    const MotifResult result = runner.run();
    rvma_time = result.makespan;
    EXPECT_GT(result.makespan, 0u);
    EXPECT_EQ(result.transport.credit_stalls, 0u);  // RVMA never stalls
    EXPECT_EQ(result.transport.control_messages, 0u);
  }
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), routing), nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{},
                            routing == net::Routing::kStatic);
    MotifRunner runner(cluster, transport, build_halo3d(cfg));
    const MotifResult result = runner.run();
    rdma_time = result.makespan;
    EXPECT_GT(result.transport.control_messages, 0u);
  }
  EXPECT_LT(rvma_time, rdma_time)
      << "RVMA must beat RDMA (paper Figs. 7-8) under "
      << to_string(routing);
}

TEST_P(MotifExecutionTest, Sweep3DRunsOnBothTransportsRvmaWins) {
  Sweep3DConfig cfg;
  cfg.pex = 4;
  cfg.pey = 2;
  cfg.nx = cfg.ny = 8;
  cfg.nz = 16;
  cfg.kba = 8;

  const net::Routing routing = GetParam().routing;
  Time rvma_time = 0, rdma_time = 0;
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), routing), nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    MotifRunner runner(cluster, transport, build_sweep3d(cfg));
    rvma_time = runner.run().makespan;
  }
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), routing), nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{},
                            routing == net::Routing::kStatic);
    MotifRunner runner(cluster, transport, build_sweep3d(cfg));
    rdma_time = runner.run().makespan;
  }
  EXPECT_LT(rvma_time, rdma_time);
}

INSTANTIATE_TEST_SUITE_P(
    Routings, MotifExecutionTest,
    ::testing::Values(MotifRunCase{"static", net::Routing::kStatic},
                      MotifRunCase{"adaptive", net::Routing::kAdaptive}),
    [](const ::testing::TestParamInfo<MotifRunCase>& info) {
      return info.param.name;
    });

TEST(MotifExecution, IncastCompletesAllMessages) {
  IncastConfig cfg;
  cfg.clients = 7;
  cfg.messages_per_client = 4;
  cluster::Cluster cluster(torus_config(cfg.ranks(), net::Routing::kAdaptive),
                       nic::NicParams{});
  RvmaTransport transport(cluster, core::RvmaParams{});
  MotifRunner runner(cluster, transport, build_incast(cfg));
  const MotifResult result = runner.run();
  EXPECT_EQ(result.transport.data_messages,
            static_cast<std::uint64_t>(cfg.clients) * cfg.messages_per_client);
  EXPECT_GT(result.makespan, 0u);
}

TEST(MotifExecution, RdmaSlotsReduceCreditStalls) {
  IncastConfig cfg;
  cfg.clients = 3;
  cfg.messages_per_client = 6;
  std::uint64_t stalls_one_slot = 0, stalls_four_slots = 0;
  for (int slots : {1, 4}) {
    cluster::Cluster cluster(torus_config(cfg.ranks(), net::Routing::kStatic),
                         nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{}, true, slots);
    MotifRunner runner(cluster, transport, build_incast(cfg));
    const MotifResult result = runner.run();
    (slots == 1 ? stalls_one_slot : stalls_four_slots) =
        result.transport.credit_stalls;
  }
  EXPECT_GE(stalls_one_slot, stalls_four_slots);
}

TEST(MotifExecution, SetupTimeIsZeroForRvmaPositiveForRdma) {
  Halo3DConfig cfg;
  cfg.px = 2;
  cfg.py = 2;
  cfg.pz = 1;
  cfg.iterations = 1;
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), net::Routing::kStatic),
                         nic::NicParams{});
    RvmaTransport transport(cluster, core::RvmaParams{});
    MotifRunner runner(cluster, transport, build_halo3d(cfg));
    EXPECT_EQ(runner.run().setup_done, 0u);  // no handshakes
  }
  {
    cluster::Cluster cluster(torus_config(cfg.ranks(), net::Routing::kStatic),
                         nic::NicParams{});
    RdmaTransport transport(cluster, rdma::RdmaParams{}, true);
    MotifRunner runner(cluster, transport, build_halo3d(cfg));
    EXPECT_GT(runner.run().setup_done,
              rdma::RdmaParams{}.reg_base);  // handshake + registration
  }
}

}  // namespace
}  // namespace rvma::motifs
