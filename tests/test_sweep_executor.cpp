// SweepExecutor: worker-pool semantics, result ordering, exception
// isolation, and the serial-inline edge cases.
#include "exec/sweep_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rvma::exec {
namespace {

TEST(SweepExecutor, HardwareJobsIsPositive) {
  EXPECT_GE(hardware_jobs(), 1);
}

TEST(SweepExecutor, DefaultsToHardwareJobs) {
  EXPECT_EQ(SweepExecutor(0).jobs(), hardware_jobs());
  EXPECT_EQ(SweepExecutor(-3).jobs(), hardware_jobs());
  EXPECT_EQ(SweepExecutor(5).jobs(), 5);
}

TEST(SweepExecutor, ZeroJobsReturnsEmpty) {
  SweepExecutor executor(4);
  int calls = 0;
  auto errors = executor.run(0, [&](std::size_t) { ++calls; });
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(calls, 0);
}

TEST(SweepExecutor, SingleJobRunsInlineOnCallingThread) {
  SweepExecutor executor(8);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  auto errors = executor.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    seen = std::this_thread::get_id();
  });
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(seen, caller);
}

TEST(SweepExecutor, SerialExecutorRunsInIndexOrder) {
  SweepExecutor executor(1);
  std::vector<std::size_t> order;
  executor.run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SweepExecutor, RunsEveryJobExactlyOnce) {
  SweepExecutor executor(4);
  constexpr std::size_t kJobs = 200;
  std::vector<std::atomic<int>> counts(kJobs);
  auto errors = executor.run(kJobs, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_EQ(errors.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "job " << i;
    EXPECT_EQ(errors[i], nullptr) << "job " << i;
  }
}

TEST(SweepExecutor, MoreJobsThanWork) {
  SweepExecutor executor(16);
  std::vector<std::atomic<int>> counts(3);
  auto errors = executor.run(3, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_EQ(errors.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(SweepExecutor, ExceptionIsolation) {
  SweepExecutor executor(4);
  constexpr std::size_t kJobs = 64;
  std::vector<std::atomic<int>> counts(kJobs);
  auto errors = executor.run(kJobs, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
    if (i % 7 == 3) throw std::runtime_error("job " + std::to_string(i));
  });
  ASSERT_EQ(errors.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "job " << i;  // failures don't cancel
    if (i % 7 == 3) {
      ASSERT_NE(errors[i], nullptr) << "job " << i;
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "job " + std::to_string(i));
      }
    } else {
      EXPECT_EQ(errors[i], nullptr) << "job " << i;
    }
  }
}

TEST(SweepMap, ResultsComeBackInIndexOrder) {
  for (int jobs : {1, 2, 4, 16}) {
    auto out = sweep_map<std::size_t>(jobs, 100,
                                      [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(SweepMap, RethrowsLowestIndexFailure) {
  EXPECT_THROW(
      {
        sweep_map<int>(4, 32, [](std::size_t i) -> int {
          if (i == 9 || i == 21) throw std::runtime_error("boom");
          return static_cast<int>(i);
        });
      },
      std::runtime_error);
}

TEST(SweepMap, EmptyGrid) {
  auto out = sweep_map<int>(4, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(SweepExecutor, WorkersActuallyFanOut) {
  // With enough blocking jobs the pool must use more than one thread.
  SweepExecutor executor(4);
  if (executor.jobs() < 2) GTEST_SKIP() << "single-core executor";
  std::mutex mu;
  std::set<std::thread::id> threads;
  executor.run(64, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GE(threads.size(), 1u);
  EXPECT_LE(threads.size(), 4u);
}

}  // namespace
}  // namespace rvma::exec
