// RVMA endpoint tests: the paper's semantics end-to-end on a simulated
// two-node network — thresholds (bytes/ops), mailbox bucket separation
// (the 0x11FF0011 / 0x11FF0031 example from §III-B), offset assembly,
// out-of-order placement, close/NACK, catch-all, inc_epoch, counter spill,
// receiver-managed streaming, and get.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

namespace rvma::core {
namespace {

net::NetworkConfig star2() {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.link.latency = 100 * kNanosecond;
  cfg.switch_latency = 100 * kNanosecond;
  return cfg;
}

class RvmaTest : public ::testing::Test {
 protected:
  RvmaTest()
      : cluster_(star2(), nic::NicParams{}),
        sender_(cluster_.nic(0), RvmaParams{}),
        receiver_(cluster_.nic(1), RvmaParams{}) {}

  void run() { cluster_.engine().run(); }

  cluster::Cluster cluster_;
  RvmaEndpoint sender_;
  RvmaEndpoint receiver_;
};

TEST_F(RvmaTest, ByteThresholdCompletionWritesNotificationLine) {
  std::vector<std::byte> buf(4096, std::byte{0});
  void* notif = nullptr;
  std::int64_t len = -1;
  Window win = receiver_.init_window(0x100, 4096, EpochType::kBytes);
  ASSERT_EQ(win.post(buf, &notif, &len), Status::kOk);

  std::vector<std::byte> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i % 251);
  }
  sender_.put(1, 0x100, 0, src.data(), src.size());
  run();

  EXPECT_EQ(notif, buf.data());  // completion pointer -> buffer head
  EXPECT_EQ(len, 4096);
  EXPECT_EQ(std::memcmp(buf.data(), src.data(), src.size()), 0);
  EXPECT_EQ(receiver_.stats().completions, 1u);
  EXPECT_EQ(win.epoch(), 1);
}

TEST_F(RvmaTest, NoCompletionBelowThreshold) {
  void* notif = nullptr;
  std::vector<std::byte> buf(4096);
  Window win = receiver_.init_window(0x100, 4096, EpochType::kBytes);
  ASSERT_EQ(win.post(buf, &notif), Status::kOk);

  sender_.put(1, 0x100, 0, nullptr, 1000);
  run();
  EXPECT_EQ(notif, nullptr);
  EXPECT_EQ(receiver_.stats().completions, 0u);
  EXPECT_EQ(win.epoch(), 0);

  // The remaining bytes (at the right offset) complete the epoch.
  sender_.put(1, 0x100, 1000, nullptr, 3096);
  run();
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(win.epoch(), 1);
}

TEST_F(RvmaTest, OpsThresholdCountsWholePuts) {
  void* notif = nullptr;
  Window win = receiver_.init_window(0x200, 3, EpochType::kOps);
  ASSERT_EQ(receiver_.post_buffer_timing_only(0x200, 1 * MiB), Status::kOk);
  receiver_.notify_wait(0x200, [&](void* b, std::int64_t) { notif = b ? b : reinterpret_cast<void*>(1); });

  // A multi-packet put is ONE operation (counted on full arrival).
  sender_.put(1, 0x200, 0, nullptr, 10000);  // 3 packets at default MTU
  sender_.put(1, 0x200, 10000, nullptr, 64);
  run();
  EXPECT_EQ(win.epoch(), 0);  // only 2 ops so far
  sender_.put(1, 0x200, 10064, nullptr, 64);
  run();
  EXPECT_EQ(win.epoch(), 1);
  EXPECT_EQ(receiver_.stats().puts_received, 3u);
}

// Paper §III-B: puts to different RVMA addresses land in different
// mailboxes, NOT contiguously in memory.
TEST_F(RvmaTest, DistinctMailboxesAreDistinctBuckets) {
  std::vector<std::byte> buf_a(32), buf_b(32);
  void* notif_a = nullptr;
  void* notif_b = nullptr;
  receiver_.init_window(0x11FF0011, 32, EpochType::kBytes);
  receiver_.init_window(0x11FF0031, 32, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0x11FF0011, buf_a, &notif_a, nullptr),
            Status::kOk);
  ASSERT_EQ(receiver_.post_buffer(0x11FF0031, buf_b, &notif_b, nullptr),
            Status::kOk);

  std::vector<std::byte> first(32, std::byte{0xAA});
  std::vector<std::byte> second(32, std::byte{0xBB});
  sender_.put(1, 0x11FF0011, 0, first.data(), 32);
  sender_.put(1, 0x11FF0031, 0, second.data(), 32);
  run();

  EXPECT_EQ(notif_a, buf_a.data());
  EXPECT_EQ(notif_b, buf_b.data());
  EXPECT_EQ(buf_a[0], std::byte{0xAA});
  EXPECT_EQ(buf_b[0], std::byte{0xBB});
}

// Paper §III-B: two threshold-sized messages to the SAME mailbox complete
// two separate buffers out of the bucket.
TEST_F(RvmaTest, SameMailboxConsumesBucketInOrder) {
  std::vector<std::byte> buf1(32), buf2(32);
  void* notif1 = nullptr;
  void* notif2 = nullptr;
  receiver_.init_window(0x11FF0011, 32, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0x11FF0011, buf1, &notif1, nullptr),
            Status::kOk);
  ASSERT_EQ(receiver_.post_buffer(0x11FF0011, buf2, &notif2, nullptr),
            Status::kOk);

  std::vector<std::byte> m1(32, std::byte{0x11});
  std::vector<std::byte> m2(32, std::byte{0x22});
  sender_.put(1, 0x11FF0011, 0, m1.data(), 32);
  sender_.put(1, 0x11FF0011, 0, m2.data(), 32);
  run();

  EXPECT_EQ(notif1, buf1.data());
  EXPECT_EQ(notif2, buf2.data());
  EXPECT_EQ(buf1[0], std::byte{0x11});
  EXPECT_EQ(buf2[0], std::byte{0x22});
  EXPECT_EQ(receiver_.completions(0x11FF0011), 2u);
}

// Paper §III-B: a contiguous 64-byte payload is assembled with two puts at
// offsets 0 and 32 to the same mailbox.
TEST_F(RvmaTest, OffsetsAssembleContiguousPayload) {
  std::vector<std::byte> buf(64, std::byte{0});
  void* notif = nullptr;
  receiver_.init_window(0x11FF0011, 64, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0x11FF0011, buf, &notif, nullptr),
            Status::kOk);

  std::vector<std::byte> lo(32, std::byte{0x01});
  std::vector<std::byte> hi(32, std::byte{0x02});
  sender_.put(1, 0x11FF0011, 0, lo.data(), 32);
  sender_.put(1, 0x11FF0011, 32, hi.data(), 32);
  run();

  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(buf[0], std::byte{0x01});
  EXPECT_EQ(buf[31], std::byte{0x01});
  EXPECT_EQ(buf[32], std::byte{0x02});
  EXPECT_EQ(buf[63], std::byte{0x02});
}

TEST_F(RvmaTest, ClosedWindowDropsAndNacks) {
  Window win = receiver_.init_window(0x300, 64, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer_timing_only(0x300, 64), Status::kOk);
  ASSERT_EQ(win.close(), Status::kOk);

  Status nack_reason = Status::kOk;
  std::uint64_t nack_vaddr = 0;
  sender_.on_nack([&](std::uint64_t vaddr, Status reason) {
    nack_vaddr = vaddr;
    nack_reason = reason;
  });
  sender_.put(1, 0x300, 0, nullptr, 64);
  run();
  EXPECT_EQ(receiver_.stats().drops_closed, 1u);
  EXPECT_EQ(nack_vaddr, 0x300u);
  EXPECT_EQ(nack_reason, Status::kClosed);
  EXPECT_EQ(sender_.stats().nacks_received, 1u);
  EXPECT_EQ(win.epoch(), 0);
}

TEST_F(RvmaTest, UnknownMailboxNacks) {
  Status reason = Status::kOk;
  sender_.on_nack([&](std::uint64_t, Status r) { reason = r; });
  sender_.put(1, 0xDEAD, 0, nullptr, 64);
  run();
  EXPECT_EQ(receiver_.stats().drops_no_mailbox, 1u);
  EXPECT_EQ(reason, Status::kNoMailbox);
}

TEST_F(RvmaTest, NacksCanBeDisabled) {
  RvmaParams params;
  params.nacks_enabled = false;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);
  int nacks = 0;
  sender.on_nack([&](std::uint64_t, Status) { ++nacks; });
  sender.put(1, 0xDEAD, 0, nullptr, 64);
  cluster.engine().run();
  EXPECT_EQ(receiver.stats().drops_no_mailbox, 1u);
  EXPECT_EQ(receiver.stats().nacks_sent, 0u);
  EXPECT_EQ(nacks, 0);
}

TEST_F(RvmaTest, NoPostedBufferNacks) {
  receiver_.init_window(0x400, 64, EpochType::kBytes);
  Status reason = Status::kOk;
  sender_.on_nack([&](std::uint64_t, Status r) { reason = r; });
  sender_.put(1, 0x400, 0, nullptr, 64);
  run();
  EXPECT_EQ(receiver_.stats().drops_no_buffer, 1u);
  EXPECT_EQ(reason, Status::kNoBuffer);
}

TEST_F(RvmaTest, OverflowBeyondBufferExtentNacks) {
  std::vector<std::byte> buf(64);
  receiver_.init_window(0x500, 64, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0x500, buf, nullptr, nullptr), Status::kOk);
  Status reason = Status::kOk;
  sender_.on_nack([&](std::uint64_t, Status r) { reason = r; });
  sender_.put(1, 0x500, 32, nullptr, 64);  // 32 + 64 > 64
  run();
  EXPECT_EQ(receiver_.stats().drops_overflow, 1u);
  EXPECT_EQ(reason, Status::kOverflow);
  EXPECT_EQ(receiver_.completions(0x500), 0u);
}

TEST_F(RvmaTest, CatchAllReceivesUnmatchedTraffic) {
  std::vector<std::byte> buf(4096, std::byte{0});
  void* notif = nullptr;
  Window catch_all = receiver_.init_catch_all(128, EpochType::kBytes);
  ASSERT_EQ(catch_all.post(buf, &notif), Status::kOk);

  std::vector<std::byte> payload(128, std::byte{0x5C});
  sender_.put(1, 0xFEED, 0, payload.data(), 128);  // no such mailbox
  run();
  EXPECT_EQ(receiver_.stats().catch_all_packets, 1u);
  EXPECT_EQ(receiver_.stats().drops_no_mailbox, 0u);
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(buf[0], std::byte{0x5C});
  EXPECT_EQ(buf[127], std::byte{0x5C});
}

TEST_F(RvmaTest, IncEpochHandsOverPartialBuffer) {
  std::vector<std::byte> buf(4096);
  void* notif = nullptr;
  std::int64_t len = -1;
  Window win = receiver_.init_window(0x600, 4096, EpochType::kBytes);
  ASSERT_EQ(win.post(buf, &notif, &len), Status::kOk);

  sender_.put(1, 0x600, 0, nullptr, 600);
  run();
  ASSERT_EQ(notif, nullptr);
  ASSERT_EQ(win.inc_epoch(), Status::kOk);
  run();
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(len, 600);  // partial length reported
  EXPECT_EQ(win.epoch(), 1);
  EXPECT_EQ(receiver_.stats().soft_completions, 1u);
  EXPECT_EQ(receiver_.stats().completions, 0u);
}

TEST_F(RvmaTest, IncEpochWithoutBufferFails) {
  Window win = receiver_.init_window(0x700, 64, EpochType::kBytes);
  EXPECT_EQ(win.inc_epoch(), Status::kNoBuffer);
}

TEST_F(RvmaTest, GetEpochAndBufPtrs) {
  Window win = receiver_.init_window(0x800, 64, EpochType::kBytes);
  EXPECT_EQ(win.epoch(), 0);
  EXPECT_EQ(receiver_.get_epoch(0x9999), -1);  // unknown mailbox

  void* lines[2] = {};
  void** notif_a = reinterpret_cast<void**>(&lines[0]);
  void** notif_b = reinterpret_cast<void**>(&lines[1]);
  std::vector<std::byte> buf_a(64), buf_b(64);
  ASSERT_EQ(receiver_.post_buffer(0x800, buf_a, notif_a, nullptr), Status::kOk);
  ASSERT_EQ(receiver_.post_buffer(0x800, buf_b, notif_b, nullptr), Status::kOk);
  void* out[4] = {};
  EXPECT_EQ(win.get_buf_ptrs(out, 4), 2);
  EXPECT_EQ(out[0], static_cast<void*>(notif_a));
  EXPECT_EQ(out[1], static_cast<void*>(notif_b));
}

TEST_F(RvmaTest, CounterSpillFallsBackToHostMemory) {
  RvmaParams params;
  params.nic_counters = 1;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  receiver.init_window(0xA, 64, EpochType::kBytes);
  receiver.init_window(0xB, 64, EpochType::kBytes);
  ASSERT_EQ(receiver.post_buffer_timing_only(0xA, 64), Status::kOk);
  ASSERT_EQ(receiver.post_buffer_timing_only(0xB, 64), Status::kOk);
  EXPECT_EQ(receiver.counter_pool().in_use(), 1);  // second spilled

  sender.put(1, 0xA, 0, nullptr, 64);
  sender.put(1, 0xB, 0, nullptr, 64);
  cluster.engine().run();
  EXPECT_EQ(receiver.completions(0xA) + receiver.completions(0xB), 2u);
  EXPECT_GT(receiver.stats().host_counter_packets, 0u);
}

TEST_F(RvmaTest, CounterReleasedOnCompletionIsReused) {
  RvmaParams params;
  params.nic_counters = 1;
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  receiver.init_window(0xA, 64, EpochType::kBytes);
  ASSERT_EQ(receiver.post_buffer_timing_only(0xA, 64), Status::kOk);
  sender.put(1, 0xA, 0, nullptr, 64);
  cluster.engine().run();
  EXPECT_EQ(receiver.counter_pool().in_use(), 0);  // released at completion

  receiver.init_window(0xB, 64, EpochType::kBytes);
  ASSERT_EQ(receiver.post_buffer_timing_only(0xB, 64), Status::kOk);
  EXPECT_EQ(receiver.counter_pool().in_use(), 1);  // reacquired by B
}

TEST_F(RvmaTest, ReceiverManagedAppendsInArrivalOrder) {
  // Receiver-managed (sockets-like) mode: offsets ignored, bytes appended.
  std::vector<std::byte> buf(96, std::byte{0});
  void* notif = nullptr;
  receiver_.init_window(0x900, 96, EpochType::kBytes, Placement::kManaged);
  ASSERT_EQ(receiver_.post_buffer(0x900, buf, &notif, nullptr), Status::kOk);

  std::vector<std::byte> a(32, std::byte{0x0A});
  std::vector<std::byte> b(64, std::byte{0x0B});
  // Both sent with offset 0 — steered mode would overwrite; managed
  // appends (star topology delivers in injection order).
  sender_.put(1, 0x900, 0, a.data(), 32);
  sender_.put(1, 0x900, 0, b.data(), 64);
  run();
  EXPECT_EQ(notif, buf.data());
  EXPECT_EQ(buf[0], std::byte{0x0A});
  EXPECT_EQ(buf[31], std::byte{0x0A});
  EXPECT_EQ(buf[32], std::byte{0x0B});
  EXPECT_EQ(buf[95], std::byte{0x0B});
}

TEST_F(RvmaTest, GetPullsFromActiveBufferIntoReplyMailbox) {
  // Target (node 1) has data in its active buffer at 0xD00.
  std::vector<std::byte> remote(256);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i);
  }
  receiver_.init_window(0xD00, 1 << 20, EpochType::kBytes);
  ASSERT_EQ(receiver_.post_buffer(0xD00, remote, nullptr, nullptr), Status::kOk);

  // Requester (node 0) prepares the reply mailbox.
  std::vector<std::byte> reply(128, std::byte{0});
  void* notif = nullptr;
  sender_.init_window(0xE00, 128, EpochType::kBytes);
  ASSERT_EQ(sender_.post_buffer(0xE00, reply, &notif, nullptr), Status::kOk);

  sender_.get(1, 0xD00, 64, 128, 0xE00);
  run();
  EXPECT_EQ(notif, reply.data());
  EXPECT_EQ(std::memcmp(reply.data(), remote.data() + 64, 128), 0);
}

TEST_F(RvmaTest, NotifyWaitIsOneShotObserverIsPersistent) {
  receiver_.init_window(0xF00, 8, EpochType::kBytes);
  receiver_.post_buffer_timing_only(0xF00, 8);
  receiver_.post_buffer_timing_only(0xF00, 8);

  int waits = 0, observes = 0;
  receiver_.notify_wait(0xF00, [&](void*, std::int64_t) { ++waits; });
  receiver_.set_completion_observer(0xF00,
                                    [&](void*, std::int64_t) { ++observes; });
  sender_.put(1, 0xF00, 0, nullptr, 8);
  sender_.put(1, 0xF00, 0, nullptr, 8);
  run();
  EXPECT_EQ(waits, 1);
  EXPECT_EQ(observes, 2);
}

TEST_F(RvmaTest, WindowHandleRoundTrip) {
  Window win = receiver_.init_window(0xAB, 16, EpochType::kBytes);
  EXPECT_TRUE(win.valid());
  EXPECT_EQ(win.vaddr(), 0xABu);
  EXPECT_EQ(win.completions(), 0u);
  ASSERT_EQ(win.post_timing_only(16), Status::kOk);
  sender_.put(1, 0xAB, 0, nullptr, 16);
  run();
  EXPECT_EQ(win.completions(), 1u);
}

TEST_F(RvmaTest, PostToUnknownMailboxFails) {
  std::vector<std::byte> buf(64);
  EXPECT_EQ(receiver_.post_buffer(0xCAFE, buf, nullptr, nullptr),
            Status::kNoMailbox);
  EXPECT_EQ(receiver_.post_buffer_timing_only(0xCAFE, 64), Status::kNoMailbox);
  EXPECT_EQ(receiver_.close_window(0xCAFE), Status::kNoMailbox);
  EXPECT_EQ(receiver_.inc_epoch(0xCAFE), Status::kNoMailbox);
}

TEST_F(RvmaTest, SendDoneCallbackFires) {
  receiver_.init_window(0x1, 64, EpochType::kBytes);
  receiver_.post_buffer_timing_only(0x1, 64);
  Time sent_at = 0;
  sender_.put(1, 0x1, 0, nullptr, 64,
              [&] { sent_at = cluster_.engine().now(); });
  run();
  EXPECT_GT(sent_at, 0u);
}

}  // namespace
}  // namespace rvma::core
