// Network substrate tests: fabric mechanics, topology wiring, routing
// properties (reachability, hop bounds, static in-order delivery, adaptive
// reordering), parameterized across all four paper topologies.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/topologies.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace rvma::net {
namespace {

NetworkConfig base_config(TopologyKind kind, Routing routing, int nodes) {
  NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = routing;
  cfg.nodes_hint = nodes;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.link.latency = 50 * kNanosecond;
  cfg.switch_latency = 50 * kNanosecond;
  cfg.seed = 12345;
  return cfg;
}

Packet make_packet(NodeId src, NodeId dst, std::uint32_t bytes, MsgId id,
                   std::uint32_t seq = 0, std::uint32_t total = 1) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.id = id;
  msg.bytes = bytes;
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.msg = net::MsgRef::make(std::move(msg));
  pkt.bytes = bytes;
  pkt.seq = seq;
  pkt.total = total;
  return pkt;
}

// ------------------------------------------------------------------ fabric

TEST(Fabric, SingleSwitchDelivery) {
  sim::Engine engine;
  Network net(engine, base_config(TopologyKind::kStar, Routing::kStatic, 4));
  ASSERT_EQ(net.num_nodes(), 4);

  int delivered = 0;
  Time arrival = 0;
  for (NodeId n = 0; n < 4; ++n) {
    net.set_delivery(n, [&, n](Packet&& pkt) {
      EXPECT_EQ(pkt.dst, n);
      ++delivered;
      arrival = engine.now();
    });
  }
  net.inject(make_packet(0, 3, 1000, 1));
  engine.run();
  EXPECT_EQ(delivered, 1);
  // injection ser + link + switch + xbar ser + ejection ser + link > 0.
  EXPECT_GT(arrival, 2 * 50 * kNanosecond);
}

TEST(Fabric, SerializationPacesBackToBackPackets) {
  sim::Engine engine;
  Network net(engine, base_config(TopologyKind::kStar, Routing::kStatic, 2));
  std::vector<Time> arrivals;
  net.set_delivery(0, [](Packet&&) {});
  net.set_delivery(1, [&](Packet&&) { arrivals.push_back(engine.now()); });
  // 12500-byte packets at 100 Gbps serialize in 1 us each.
  for (int i = 0; i < 3; ++i) {
    net.inject(make_packet(0, 1, 12500 - 32, static_cast<MsgId>(i + 1)));
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const Time gap1 = arrivals[1] - arrivals[0];
  const Time gap2 = arrivals[2] - arrivals[1];
  EXPECT_NEAR(static_cast<double>(gap1), static_cast<double>(kMicrosecond),
              static_cast<double>(kMicrosecond) * 0.01);
  EXPECT_EQ(gap1, gap2);
}

TEST(Fabric, StatsAccumulate) {
  sim::Engine engine;
  Network net(engine, base_config(TopologyKind::kStar, Routing::kStatic, 3));
  for (NodeId n = 0; n < 3; ++n) net.set_delivery(n, [](Packet&&) {});
  net.inject(make_packet(0, 1, 100, 1));
  net.inject(make_packet(1, 2, 100, 2));
  engine.run();
  EXPECT_EQ(net.fabric().stats().packets_injected, 2u);
  EXPECT_EQ(net.fabric().stats().packets_delivered, 2u);
  EXPECT_EQ(net.fabric().stats().total_hops, 2u);  // one switch each
}

// -------------------------------------------------------- topology sizing

TEST(TopologySizing, MeetsNodeHints) {
  for (const TopologyKind kind :
       {TopologyKind::kTorus3D, TopologyKind::kFatTree, TopologyKind::kDragonfly,
        TopologyKind::kHyperX}) {
    for (const int hint : {8, 64, 200}) {
      const auto topo = make_topology(base_config(kind, Routing::kStatic, hint));
      EXPECT_GE(topo->num_nodes(), hint)
          << to_string(kind) << " hint=" << hint;
    }
  }
}

TEST(TopologySizing, ExplicitShapes) {
  NetworkConfig cfg = base_config(TopologyKind::kTorus3D, Routing::kStatic, 0);
  cfg.torus_x = 4;
  cfg.torus_y = 3;
  cfg.torus_z = 2;
  cfg.concentration = 2;
  EXPECT_EQ(make_topology(cfg)->num_nodes(), 4 * 3 * 2 * 2);

  cfg = base_config(TopologyKind::kFatTree, Routing::kStatic, 0);
  cfg.fat_k = 4;
  EXPECT_EQ(make_topology(cfg)->num_nodes(), 16);  // k^3/4

  cfg = base_config(TopologyKind::kDragonfly, Routing::kStatic, 0);
  cfg.df_p = 2;
  cfg.df_a = 4;
  cfg.df_h = 2;
  EXPECT_EQ(make_topology(cfg)->num_nodes(), (4 * 2 + 1) * 4 * 2);  // g*a*p

  cfg = base_config(TopologyKind::kHyperX, Routing::kStatic, 0);
  cfg.hx_l1 = 3;
  cfg.hx_l2 = 5;
  cfg.concentration = 4;
  EXPECT_EQ(make_topology(cfg)->num_nodes(), 3 * 5 * 4);
}

// ------------------------------------------------- parameterized routing

struct RouteCase {
  TopologyKind kind;
  Routing routing;
  int nodes;
  int max_hops;  // switch hops incl. ejection-switch, with detour slack
};

class RoutingTest : public ::testing::TestWithParam<RouteCase> {};

TEST_P(RoutingTest, AllSampledPairsReachable) {
  const RouteCase& rc = GetParam();
  sim::Engine engine;
  Network net(engine, base_config(rc.kind, rc.routing, rc.nodes));
  const int n = net.num_nodes();

  std::map<MsgId, NodeId> expect;
  int delivered = 0;
  int max_hops_seen = 0;
  for (NodeId node = 0; node < n; ++node) {
    net.set_delivery(node, [&, node](Packet&& pkt) {
      ASSERT_TRUE(expect.contains(pkt.msg->id));
      EXPECT_EQ(expect[pkt.msg->id], node);
      max_hops_seen = std::max(max_hops_seen, static_cast<int>(pkt.hops));
      ++delivered;
    });
  }

  MsgId id = 1;
  int sent = 0;
  const int stride = std::max(1, n / 17);
  for (NodeId src = 0; src < n; src += stride) {
    for (NodeId dst = 0; dst < n; dst += stride) {
      if (src == dst) continue;
      expect[id] = dst;
      net.inject(make_packet(src, dst, 256, id));
      ++id;
      ++sent;
    }
  }
  engine.run();
  EXPECT_EQ(delivered, sent);
  EXPECT_LE(max_hops_seen, rc.max_hops) << to_string(rc.kind);
}

TEST_P(RoutingTest, StaticDeliversInOrderPerPair) {
  const RouteCase& rc = GetParam();
  if (rc.routing != Routing::kStatic) GTEST_SKIP();
  sim::Engine engine;
  Network net(engine, base_config(rc.kind, rc.routing, rc.nodes));
  const int n = net.num_nodes();
  const NodeId src = 0, dst = static_cast<NodeId>(n - 1);

  std::vector<MsgId> order;
  for (NodeId node = 0; node < n; ++node) {
    net.set_delivery(node, [&](Packet&& pkt) { order.push_back(pkt.msg->id); });
  }
  for (MsgId id = 1; id <= 40; ++id) {
    net.inject(make_packet(src, dst, 1024, id));
  }
  engine.run();
  ASSERT_EQ(order.size(), 40u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i + 1) << "static routing must preserve order";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RoutingTest,
    ::testing::Values(
        RouteCase{TopologyKind::kStar, Routing::kStatic, 8, 1},
        RouteCase{TopologyKind::kTorus3D, Routing::kStatic, 27, 7},
        RouteCase{TopologyKind::kTorus3D, Routing::kAdaptive, 27, 7},
        RouteCase{TopologyKind::kTorus3D, Routing::kStatic, 64, 8},
        RouteCase{TopologyKind::kTorus3D, Routing::kAdaptive, 64, 8},
        RouteCase{TopologyKind::kFatTree, Routing::kStatic, 16, 5},
        RouteCase{TopologyKind::kFatTree, Routing::kAdaptive, 16, 5},
        RouteCase{TopologyKind::kFatTree, Routing::kStatic, 128, 5},
        RouteCase{TopologyKind::kFatTree, Routing::kAdaptive, 128, 5},
        RouteCase{TopologyKind::kDragonfly, Routing::kStatic, 72, 5},
        RouteCase{TopologyKind::kDragonfly, Routing::kAdaptive, 72, 9},
        RouteCase{TopologyKind::kDragonfly, Routing::kStatic, 342, 5},
        RouteCase{TopologyKind::kDragonfly, Routing::kAdaptive, 342, 9},
        RouteCase{TopologyKind::kHyperX, Routing::kStatic, 16, 3},
        RouteCase{TopologyKind::kHyperX, Routing::kAdaptive, 16, 3},
        RouteCase{TopologyKind::kHyperX, Routing::kStatic, 100, 3},
        RouteCase{TopologyKind::kHyperX, Routing::kAdaptive, 100, 3}),
    [](const ::testing::TestParamInfo<RouteCase>& info) {
      return to_string(info.param.kind) + "_" + to_string(info.param.routing) +
             "_" + std::to_string(info.param.nodes);
    });

// --------------------------------------------- adaptive actually reorders

TEST(AdaptiveRouting, ReordersUnderCongestion) {
  // HyperX corner-to-corner (0,0) -> (3,3): the two minimal route shapes
  // (dim0-first via (3,0), dim1-first via (0,3)) are disjoint. Congesting
  // the dim1-first path's second hop makes packets that adaptively chose
  // dim1 arrive far later than younger packets that chose dim0.
  NetworkConfig cfg = base_config(TopologyKind::kHyperX, Routing::kAdaptive, 0);
  cfg.hx_l1 = 4;
  cfg.hx_l2 = 4;
  sim::Engine engine;
  Network net(engine, cfg);
  const int n = net.num_nodes();

  std::vector<std::uint32_t> arrivals;  // seq numbers of the watched message
  for (NodeId node = 0; node < n; ++node) {
    net.set_delivery(node, [&, node](Packet&& pkt) {
      if (node == 15 && pkt.msg->id == 999) arrivals.push_back(pkt.seq);
    });
  }

  // Cross flow node 3 (switch (0,3)) -> node 15: forced onto (0,3)'s dim0
  // port, the watched flow's dim1-first second hop.
  for (int i = 0; i < 20; ++i) {
    net.inject(make_packet(3, 15, 8000, static_cast<MsgId>(i + 1)));
  }
  // The watched multi-packet "message" 0 -> 15 (corner to corner).
  Message watched;
  watched.src = 0;
  watched.dst = 15;
  watched.id = 999;
  watched.bytes = 32 * 1024;
  const net::MsgRef msg = net::MsgRef::make(std::move(watched));
  for (std::uint32_t seq = 0; seq < 32; ++seq) {
    Packet pkt;
    pkt.src = 0;
    pkt.dst = 15;
    pkt.msg = msg;
    pkt.bytes = 1024;
    pkt.offset = seq * 1024;
    pkt.seq = seq;
    pkt.total = 32;
    net.inject(std::move(pkt));
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 32u);
  bool reordered = false;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] < arrivals[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered)
      << "adaptive routing under congestion should reorder packets";
}

// --------------------------------------------------- topology internals

TEST(Dragonfly, CanonicalGlobalWiringConsistent) {
  NetworkConfig cfg = base_config(TopologyKind::kDragonfly, Routing::kStatic, 0);
  cfg.df_p = 2;
  cfg.df_a = 4;
  cfg.df_h = 2;
  sim::Engine engine;
  Network net(engine, cfg);  // Network::check_wired aborts on bad wiring
  DragonflyTopology& topo = static_cast<DragonflyTopology&>(net.topology());
  EXPECT_EQ(topo.groups(), 9);
  EXPECT_EQ(topo.switches_per_group(), 4);
  EXPECT_EQ(net.fabric().num_switches(), 36);
}

TEST(FatTree, SwitchCounts) {
  NetworkConfig cfg = base_config(TopologyKind::kFatTree, Routing::kStatic, 0);
  cfg.fat_k = 4;
  sim::Engine engine;
  Network net(engine, cfg);
  // k=4: 8 edges + 8 aggs + 4 cores.
  EXPECT_EQ(net.fabric().num_switches(), 20);
}

TEST(Torus, WrapAroundShortestPath) {
  NetworkConfig cfg = base_config(TopologyKind::kTorus3D, Routing::kStatic, 0);
  cfg.torus_x = 8;
  cfg.torus_y = 2;
  cfg.torus_z = 2;
  sim::Engine engine;
  Network net(engine, cfg);
  int hops = -1;
  for (NodeId node = 0; node < net.num_nodes(); ++node) {
    net.set_delivery(node, [&](Packet&& pkt) { hops = pkt.hops; });
  }
  // x=0 -> x=7 should wrap (1 x-hop) not go the long way (7 hops).
  // node ids: (x*2 + y)*2 + z ; src (0,0,0)=0, dst (7,0,0)=28.
  net.inject(make_packet(0, 28, 64, 1));
  engine.run();
  EXPECT_EQ(hops, 2);  // src switch (x wrap) + dst switch ejection
}

}  // namespace
}  // namespace rvma::net
