// Portals-style match list tests: wildcard semantics, posted-order
// priority, use-once consumption — the §IV-A contrast model.
#include <gtest/gtest.h>

#include "portals/match_list.hpp"

namespace rvma::portals {
namespace {

MatchEntry entry(std::uint64_t bits, std::uint64_t ignore = 0,
                 NodeId src = kAnySource, bool use_once = true) {
  MatchEntry e;
  e.match_bits = bits;
  e.ignore_bits = ignore;
  e.source = src;
  e.use_once = use_once;
  return e;
}

TEST(MatchList, ExactMatch) {
  MatchList list;
  list.append(entry(0x42));
  EXPECT_FALSE(list.match(0, 0x41).has_value());
  const auto hit = list.match(0, 0x42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->match_bits, 0x42u);
}

TEST(MatchList, IgnoreBitsAreWildcards) {
  MatchList list;
  list.append(entry(0x1200, /*ignore=*/0xFF, kAnySource, false));
  EXPECT_TRUE(list.match(0, 0x1200).has_value());
  EXPECT_TRUE(list.match(0, 0x12AB).has_value());  // low byte ignored
  EXPECT_FALSE(list.match(0, 0x1300).has_value());
}

TEST(MatchList, SourceFiltering) {
  MatchList list;
  list.append(entry(0x1, 0, /*src=*/7, false));
  EXPECT_FALSE(list.match(3, 0x1).has_value());
  EXPECT_TRUE(list.match(7, 0x1).has_value());
}

TEST(MatchList, AnySourceMatchesAll) {
  MatchList list;
  list.append(entry(0x1, 0, kAnySource, false));
  EXPECT_TRUE(list.match(0, 0x1).has_value());
  EXPECT_TRUE(list.match(99, 0x1).has_value());
}

TEST(MatchList, PostedOrderPriority) {
  // Two entries both match; the earlier-posted one must win (MPI
  // semantics) — the ordering constraint that forces list traversal.
  MatchList list;
  MatchEntry first = entry(0x5, /*ignore=*/~0ULL);  // matches anything
  std::byte marker_a{}, marker_b{};
  first.base = &marker_a;
  list.append(first);
  MatchEntry second = entry(0x5);
  second.base = &marker_b;
  list.append(second);

  const auto hit = list.match(0, 0x5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->base, &marker_a);
}

TEST(MatchList, UseOnceConsumes) {
  MatchList list;
  list.append(entry(0x9, 0, kAnySource, /*use_once=*/true));
  EXPECT_TRUE(list.match(0, 0x9).has_value());
  EXPECT_FALSE(list.match(0, 0x9).has_value());
  EXPECT_EQ(list.size(), 0u);
}

TEST(MatchList, PersistentEntrySurvives) {
  MatchList list;
  list.append(entry(0x9, 0, kAnySource, /*use_once=*/false));
  EXPECT_TRUE(list.match(0, 0x9).has_value());
  EXPECT_TRUE(list.match(0, 0x9).has_value());
  EXPECT_EQ(list.size(), 1u);
}

TEST(MatchList, UnlinkRemoves) {
  MatchList list;
  const auto id = list.append(entry(0x1));
  EXPECT_TRUE(list.unlink(id));
  EXPECT_FALSE(list.unlink(id));  // already gone
  EXPECT_FALSE(list.match(0, 0x1).has_value());
}

TEST(MatchList, TraversalCostGrowsWithListDepth) {
  // The quantitative §IV-A point: a miss (or a late match) traverses the
  // whole list; RVMA's LUT resolves in a single lookup regardless.
  MatchList list;
  for (int i = 0; i < 1000; ++i) {
    list.append(entry(static_cast<std::uint64_t>(i), 0, kAnySource, false));
  }
  list.match(0, 999);  // worst-case late match
  EXPECT_EQ(list.entries_traversed(), 1000u);
  list.match(0, 5000);  // miss traverses everything again
  EXPECT_EQ(list.entries_traversed(), 2000u);
  EXPECT_EQ(list.match_misses(), 1u);
  EXPECT_EQ(list.matches_found(), 1u);
}

}  // namespace
}  // namespace rvma::portals
