// Microbenchmark harness tests (Figures 4-6 machinery): latency ordering
// between the three completion schemes, profile sanity, setup measurement,
// and amortization math.
#include <gtest/gtest.h>

#include "perf/latency.hpp"
#include "perf/profiles.hpp"

namespace rvma::perf {
namespace {

TEST(Profiles, DistinctCalibrations) {
  const SystemProfile verbs = verbs_opa();
  const SystemProfile ucx = ucx_cx5();
  EXPECT_EQ(verbs.name, "verbs-opa");
  EXPECT_EQ(ucx.name, "ucx-cx5");
  EXPECT_NE(verbs.nic.host_overhead, ucx.nic.host_overhead);
  EXPECT_DOUBLE_EQ(verbs.link.bw.gbps_value(), 100.0);
}

class LatencyOrderingTest
    : public ::testing::TestWithParam<std::uint64_t> {};  // message bytes

TEST_P(LatencyOrderingTest, RvmaBeatsAdaptiveRdmaAndMatchesStatic) {
  const SystemProfile profile = verbs_opa();
  const std::uint64_t bytes = GetParam();
  const int iters = 50, runs = 3;
  const auto rvma =
      measure_put_latency(profile, Mode::kRvma, bytes, iters, runs, 1);
  const auto rdma_static =
      measure_put_latency(profile, Mode::kRdmaStatic, bytes, iters, runs, 1);
  const auto rdma_adaptive =
      measure_put_latency(profile, Mode::kRdmaAdaptive, bytes, iters, runs, 1);

  // Paper Fig. 4: RVMA clearly under the spec-compliant adaptive scheme...
  EXPECT_LT(rvma.mean_us, rdma_adaptive.mean_us);
  // ...and comparable to statically routed RDMA (within 15%).
  EXPECT_NEAR(rvma.mean_us, rdma_static.mean_us, rdma_static.mean_us * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LatencyOrderingTest,
                         ::testing::Values(2, 64, 4096, 65536, 1 << 20),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return std::to_string(i.param) + "B";
                         });

TEST(Latency, SmallMessageReductionInPaperBand) {
  // Paper: up to 65.8% latency reduction (Verbs). Our calibration should
  // land the small-message reduction in the same band (40-75%).
  const SystemProfile profile = verbs_opa();
  const auto rvma = measure_put_latency(profile, Mode::kRvma, 8, 100, 3, 2);
  const auto rdma =
      measure_put_latency(profile, Mode::kRdmaAdaptive, 8, 100, 3, 2);
  const double reduction = 1.0 - rvma.mean_us / rdma.mean_us;
  EXPECT_GT(reduction, 0.40);
  EXPECT_LT(reduction, 0.75);
}

TEST(Latency, GrowsWithMessageSize) {
  const SystemProfile profile = ucx_cx5();
  const auto small = measure_put_latency(profile, Mode::kRvma, 64, 30, 2, 3);
  const auto large =
      measure_put_latency(profile, Mode::kRvma, 1 << 20, 30, 2, 3);
  EXPECT_GT(large.mean_us, small.mean_us * 10);  // 1 MiB @ 100 Gbps ~ 84 us
}

TEST(Latency, StddevReflectsRunNoise) {
  const SystemProfile profile = ucx_cx5();
  const auto r = measure_put_latency(profile, Mode::kRvma, 1024, 20, 5, 11);
  EXPECT_EQ(r.runs, 5);
  EXPECT_GT(r.stddev_us, 0.0);          // jittered host overhead
  EXPECT_LT(r.stddev_us, r.mean_us * 0.05);  // but small
}

TEST(Latency, DeterministicForSameSeed) {
  const SystemProfile profile = verbs_opa();
  const auto a = measure_put_latency(profile, Mode::kRdmaAdaptive, 512, 20, 2, 7);
  const auto b = measure_put_latency(profile, Mode::kRdmaAdaptive, 512, 20, 2, 7);
  EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
  EXPECT_DOUBLE_EQ(a.stddev_us, b.stddev_us);
}

TEST(Setup, HandshakeCostsAtLeastRegistrationPlusRtt) {
  const SystemProfile profile = ucx_cx5();
  const Time setup = measure_setup_time(profile, 64 * KiB);
  EXPECT_GT(setup, profile.rdma.reg_base);
  // Registration scales with size.
  EXPECT_GT(measure_setup_time(profile, 16 * MiB), setup);
}

TEST(Amortization, MatchesDefinition) {
  // setup 10 us, transfer 1 us, margin 3% -> need ceil(10/0.03) = 334.
  EXPECT_EQ(amortization_exchanges(us(10), us(1), 0.03), 334u);
  EXPECT_EQ(amortization_exchanges(us(10), us(10), 0.03), 34u);
  EXPECT_EQ(amortization_exchanges(0, us(1), 0.03), 0u);
  EXPECT_EQ(amortization_exchanges(us(1), 0, 0.03), 0u);
}

TEST(Amortization, FewerExchangesForLargerTransfers) {
  const SystemProfile profile = ucx_cx5();
  const Time setup = measure_setup_time(profile, 1 << 20);
  const auto small = measure_put_latency(profile, Mode::kRdmaStatic, 64, 20, 1, 5);
  const auto large =
      measure_put_latency(profile, Mode::kRdmaStatic, 1 << 20, 20, 1, 5);
  const auto n_small = amortization_exchanges(setup, us(small.mean_us));
  const auto n_large = amortization_exchanges(setup, us(large.mean_us));
  EXPECT_GT(n_small, n_large);
  EXPECT_GT(n_small, 50u);  // paper: "a large number of exchanges"
}

}  // namespace
}  // namespace rvma::perf
